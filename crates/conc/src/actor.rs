//! A minimal message-passing actor runtime over [`crate::channel`].
//!
//! Each actor owns its state and processes its mailbox sequentially — there
//! is no shared mutable state to lock, which is the message-passing answer to
//! the paper's Challenge 4. Request/response is built by embedding a reply
//! [`Sender`] in the message, exactly like the Rust example in the course
//! notes that carried the paper.

use crate::channel::{channel, Sender};
use std::thread::{self, JoinHandle};

/// What an actor wants after handling one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep processing the mailbox.
    Continue,
    /// Stop; the actor's final state is returned from [`ActorHandle::join`].
    Stop,
}

/// A unit of isolated state plus a message handler.
pub trait Actor: Send + 'static {
    /// The mailbox message type.
    type Msg: Send + 'static;

    /// Handles one message. Runs on the actor's own thread; `self` is never
    /// aliased, so no locking is needed.
    fn handle(&mut self, msg: Self::Msg) -> Flow;
}

/// A cloneable handle for sending messages to an actor.
#[derive(Debug)]
pub struct Address<M> {
    tx: Sender<M>,
}

impl<M> Clone for Address<M> {
    fn clone(&self) -> Self {
        Address {
            tx: self.tx.clone(),
        }
    }
}

impl<M: Send + 'static> Address<M> {
    /// Sends a message; returns `false` if the actor has terminated.
    pub fn send(&self, msg: M) -> bool {
        self.tx.send(msg).is_ok()
    }
}

/// Join handle returning the actor's final state.
#[derive(Debug)]
pub struct ActorHandle<A: Actor> {
    handle: JoinHandle<A>,
}

impl<A: Actor> ActorHandle<A> {
    /// Waits for the actor to stop (mailbox closed or [`Flow::Stop`]) and
    /// returns its final state.
    ///
    /// # Panics
    ///
    /// Panics if the actor thread itself panicked.
    pub fn join(self) -> A {
        self.handle.join().expect("actor thread panicked")
    }

    /// True once the actor's thread has exited.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

/// Spawns `actor` on its own thread with an unbounded mailbox.
///
/// The actor runs until it returns [`Flow::Stop`] or every [`Address`] is
/// dropped and the mailbox drains.
pub fn spawn<A: Actor>(mut actor: A) -> (Address<A::Msg>, ActorHandle<A>) {
    let (tx, rx) = channel();
    let handle = thread::spawn(move || {
        while let Ok(msg) = rx.recv() {
            if actor.handle(msg) == Flow::Stop {
                break;
            }
        }
        actor
    });
    (Address { tx }, ActorHandle { handle })
}

/// Sends `msg` built from a fresh reply channel and waits for the response —
/// the standard request/response ("ask") pattern.
///
/// Returns `None` if the actor is gone or drops the reply sender.
pub fn ask<M, R, F>(addr: &Address<M>, make_msg: F) -> Option<R>
where
    M: Send + 'static,
    R: Send + 'static,
    F: FnOnce(Sender<R>) -> M,
{
    let (reply_tx, reply_rx) = channel();
    if !addr.send(make_msg(reply_tx)) {
        return None;
    }
    reply_rx.recv().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        count: i64,
    }

    enum CounterMsg {
        Add(i64),
        Get(Sender<i64>),
        Stop,
    }

    impl Actor for Counter {
        type Msg = CounterMsg;

        fn handle(&mut self, msg: CounterMsg) -> Flow {
            match msg {
                CounterMsg::Add(n) => {
                    self.count += n;
                    Flow::Continue
                }
                CounterMsg::Get(reply) => {
                    let _ = reply.send(self.count);
                    Flow::Continue
                }
                CounterMsg::Stop => Flow::Stop,
            }
        }
    }

    #[test]
    fn actor_processes_messages_in_order() {
        let (addr, handle) = spawn(Counter { count: 0 });
        for _ in 0..100 {
            assert!(addr.send(CounterMsg::Add(1)));
        }
        let observed = ask(&addr, CounterMsg::Get).unwrap();
        assert_eq!(observed, 100);
        addr.send(CounterMsg::Stop);
        assert_eq!(handle.join().count, 100);
    }

    #[test]
    fn actor_stops_when_addresses_drop() {
        let (addr, handle) = spawn(Counter { count: 7 });
        addr.send(CounterMsg::Add(3));
        drop(addr);
        assert_eq!(handle.join().count, 10);
    }

    #[test]
    fn concurrent_senders_do_not_lose_messages() {
        let (addr, handle) = spawn(Counter { count: 0 });
        let senders: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        addr.send(CounterMsg::Add(1));
                    }
                })
            })
            .collect();
        for s in senders {
            s.join().unwrap();
        }
        assert_eq!(ask(&addr, CounterMsg::Get), Some(20_000));
        drop(addr);
        assert_eq!(handle.join().count, 20_000);
    }

    #[test]
    fn ask_returns_none_for_dead_actor() {
        let (addr, handle) = spawn(Counter { count: 0 });
        addr.send(CounterMsg::Stop);
        handle.join();
        // The mailbox still accepts until the receiver side is dropped, but
        // the reply channel will never be answered; either way, no hang.
        let r: Option<i64> = ask(&addr, CounterMsg::Get);
        assert!(r.is_none());
    }

    struct PingPong {
        hits: usize,
        peer: Option<Address<PingMsg>>,
    }

    struct PingMsg {
        remaining: usize,
    }

    impl Actor for PingPong {
        type Msg = PingMsg;

        fn handle(&mut self, msg: PingMsg) -> Flow {
            self.hits += 1;
            if msg.remaining == 0 {
                return Flow::Stop;
            }
            if let Some(peer) = &self.peer {
                peer.send(PingMsg {
                    remaining: msg.remaining - 1,
                });
            }
            if msg.remaining == 1 {
                Flow::Stop
            } else {
                Flow::Continue
            }
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        // sink <- pinger <- main: the ball bounces pinger -> sink until the
        // countdown hits 1 on each side, then both stop.
        let (sink_addr, sink_handle) = spawn(PingPong {
            hits: 0,
            peer: None,
        });
        let (pinger_addr, pinger_handle) = spawn(PingPong {
            hits: 0,
            peer: Some(sink_addr.clone()),
        });
        assert!(pinger_addr.send(PingMsg { remaining: 1 }));
        // remaining == 1: pinger forwards the ball once, then stops.
        drop(pinger_addr);
        let pinger = pinger_handle.join();
        assert_eq!(pinger.hits, 1);
        drop(sink_addr);
        let sink = sink_handle.join();
        assert_eq!(sink.hits, 1, "the ball reached the sink");
    }
}
