//! Lock primitives built from atomics: test-and-set spinlocks, fair ticket
//! locks, and sequence locks.
//!
//! These are the building blocks a kernel uses where blocking is impossible
//! (interrupt paths, scheduler internals). They also serve as E7's "what the
//! careful C programmer writes by hand" baseline.
//!
//! All atomics go through `syscheck::shim`, so the same code path that runs
//! in release builds is exhaustively model-checked by the `checker_*` tests
//! below. The checker surfaced two hazards in the original implementation,
//! both fixed here and pinned by `checker_spinlock_mutual_exclusion`:
//!
//! * the test-and-test-and-set read spun with `Relaxed` ordering — upgraded
//!   to `Acquire` so the "looks free" observation synchronizes with the
//!   owner's release before the acquire attempt;
//! * both spin loops were unbounded busy-waits — on a uniprocessor (or any
//!   oversubscribed box) a spinner burning its whole quantum while the owner
//!   is preempted is a livelock, which the checker reports as a step-budget
//!   blowup. Spinning now escalates to `yield_now` after [`SPIN_LIMIT`]
//!   iterations.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use syscheck::shim::{spin_loop, yield_now, AtomicBool, AtomicU64, AtomicUsize};

/// Iterations a spinner burns before it starts yielding its timeslice to
/// whoever holds the lock.
const SPIN_LIMIT: u32 = 64;

/// Relax the CPU for the first [`SPIN_LIMIT`] iterations, then yield: the
/// lock holder may need our core to make progress.
#[inline]
fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < SPIN_LIMIT {
        spin_loop();
    } else {
        yield_now();
    }
}

/// A test-and-test-and-set spinlock.
///
/// ```
/// use sysconc::spinlock::SpinLock;
/// use std::sync::Arc;
///
/// let lock = Arc::new(SpinLock::new(0u64));
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let lock = Arc::clone(&lock);
///         std::thread::spawn(move || {
///             for _ in 0..1000 {
///                 *lock.lock() += 1;
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// assert_eq!(*lock.lock(), 4000);
/// ```
#[derive(Debug, Default)]
pub struct SpinLock<T> {
    locked: AtomicBool,
    contended: AtomicU64,
    data: UnsafeCell<T>,
}

// SAFETY: the lock provides exclusive access to the data; T must be Send to
// cross threads, and the lock itself can then be shared.
unsafe impl<T: Send> Sync for SpinLock<T> {}
unsafe impl<T: Send> Send for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Wraps `value` in an unlocked spinlock.
    pub const fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            contended: AtomicU64::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Spins until the lock is acquired.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let mut spun = false;
        let mut spins = 0u32;
        loop {
            // Test-and-test-and-set: spin on a read to avoid cache-line
            // ping-pong, only attempting the RMW when the lock looks free.
            // The read is `Acquire` so observing "unlocked" synchronizes
            // with the previous owner's release.
            while self.locked.load(Ordering::Acquire) {
                spun = true;
                backoff(&mut spins);
            }
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                if spun {
                    self.contended.fetch_add(1, Ordering::Relaxed);
                }
                return SpinGuard { lock: self };
            }
        }
    }

    /// Tries to acquire without spinning.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| SpinGuard { lock: self })
    }

    /// Number of acquisitions that had to spin (contention metric for E7).
    pub fn contended_acquires(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

/// RAII guard for [`SpinLock`].
#[derive(Debug)]
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: guard existence implies exclusive ownership of the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard existence implies exclusive ownership of the lock.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// A fair FIFO ticket lock: threads acquire in arrival order, eliminating
/// the starvation a plain spinlock permits.
#[derive(Debug, Default)]
pub struct TicketLock<T> {
    next_ticket: AtomicUsize,
    now_serving: AtomicUsize,
    data: UnsafeCell<T>,
}

// SAFETY: same argument as SpinLock.
unsafe impl<T: Send> Sync for TicketLock<T> {}
unsafe impl<T: Send> Send for TicketLock<T> {}

impl<T> TicketLock<T> {
    /// Wraps `value` in an unlocked ticket lock.
    pub const fn new(value: T) -> Self {
        TicketLock {
            next_ticket: AtomicUsize::new(0),
            now_serving: AtomicUsize::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Takes a ticket and spins until it is served.
    pub fn lock(&self) -> TicketGuard<'_, T> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        while self.now_serving.load(Ordering::Acquire) != ticket {
            backoff(&mut spins);
        }
        TicketGuard { lock: self }
    }
}

/// RAII guard for [`TicketLock`].
#[derive(Debug)]
pub struct TicketGuard<'a, T> {
    lock: &'a TicketLock<T>,
}

impl<T> Deref for TicketGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: guard existence implies exclusive ownership of the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for TicketGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard existence implies exclusive ownership of the lock.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for TicketGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.now_serving.fetch_add(1, Ordering::Release);
    }
}

/// A sequence lock for small `Copy` data: writers increment a sequence
/// counter around updates; readers retry if they observe a torn or odd
/// sequence. Reads are wait-free when there is no concurrent writer.
#[derive(Debug, Default)]
pub struct SeqLock<T: Copy> {
    seq: AtomicU64,
    writer: SpinLock<()>,
    data: UnsafeCell<T>,
}

// SAFETY: readers copy out under sequence validation; writers are serialized
// by the internal spinlock.
unsafe impl<T: Copy + Send> Sync for SeqLock<T> {}
unsafe impl<T: Copy + Send> Send for SeqLock<T> {}

impl<T: Copy> SeqLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        SeqLock {
            seq: AtomicU64::new(0),
            writer: SpinLock::new(()),
            data: UnsafeCell::new(value),
        }
    }

    /// Reads a consistent snapshot, retrying across concurrent writes.
    pub fn read(&self) -> T {
        let mut spins = 0u32;
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                backoff(&mut spins);
                continue;
            }
            // SAFETY: value is Copy; a torn read is detected by the sequence
            // check below and discarded.
            let value = unsafe { std::ptr::read_volatile(self.data.get()) };
            let s2 = self.seq.load(Ordering::Acquire);
            if s1 == s2 {
                return value;
            }
        }
    }

    /// Replaces the value.
    pub fn write(&self, value: T) {
        let _guard = self.writer.lock();
        self.seq.fetch_add(1, Ordering::AcqRel); // now odd: readers back off
                                                 // SAFETY: writers are serialized by `writer`; readers validate seq.
        unsafe { std::ptr::write_volatile(self.data.get(), value) };
        self.seq.fetch_add(1, Ordering::AcqRel); // even again
    }

    /// Applies `f` to the current value and stores the result.
    pub fn update<F: FnOnce(T) -> T>(&self, f: F) {
        let _guard = self.writer.lock();
        self.seq.fetch_add(1, Ordering::AcqRel);
        // SAFETY: as in `write`.
        unsafe {
            let cur = std::ptr::read(self.data.get());
            std::ptr::write_volatile(self.data.get(), f(cur));
        }
        self.seq.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn spinlock_provides_mutual_exclusion() {
        let lock = Arc::new(SpinLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 80_000);
    }

    #[test]
    fn spinlock_try_lock_fails_when_held() {
        let lock = SpinLock::new(5);
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn ticket_lock_provides_mutual_exclusion() {
        let lock = Arc::new(TicketLock::new(Vec::new()));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for i in 0..1000 {
                        lock.lock().push(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.lock().len(), 4000);
    }

    #[test]
    fn ticket_lock_serves_in_fifo_order_single_thread() {
        // Single-threaded check that tickets advance monotonically.
        let lock = TicketLock::new(0);
        for _ in 0..10 {
            let mut g = lock.lock();
            *g += 1;
        }
        assert_eq!(*lock.lock(), 10);
    }

    #[test]
    fn seqlock_readers_never_see_torn_pairs() {
        // The invariant: both halves of the pair are always equal.
        let sl = Arc::new(SeqLock::new((0u64, 0u64)));
        let writer = {
            let sl = Arc::clone(&sl);
            thread::spawn(move || {
                for i in 1..=50_000u64 {
                    sl.write((i, i));
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let sl = Arc::clone(&sl);
                thread::spawn(move || {
                    for _ in 0..50_000 {
                        let (a, b) = sl.read();
                        assert_eq!(a, b, "torn read observed");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn seqlock_update_applies_function() {
        let sl = SeqLock::new(10u64);
        sl.update(|v| v * 3);
        assert_eq!(sl.read(), 30);
    }

    #[test]
    fn contention_counter_reports_spinning() {
        let lock = Arc::new(SpinLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for _ in 0..20_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // With 4 threads hammering, at least some acquisitions contended.
        // (Not guaranteed on a 1-core machine, so only sanity-check the API.)
        let _ = lock.contended_acquires();
    }

    #[test]
    fn guards_release_on_drop() {
        let lock = SpinLock::new(1);
        {
            let _g = lock.lock();
        }
        // Must not deadlock:
        assert_eq!(*lock.lock(), 1);
    }

    // ---- syscheck models -------------------------------------------------

    /// Pinned regression model for the two checker-surfaced hazards: every
    /// interleaving of two threads doing two locked increments each must
    /// terminate (bounded spin yields to the owner) and end at exactly 4.
    #[test]
    fn checker_spinlock_mutual_exclusion() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let lock = Arc::new(SpinLock::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let lock = Arc::clone(&lock);
                    syscheck::shim::spawn(move || {
                        for _ in 0..2 {
                            *lock.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let v = *lock.lock();
            assert_eq!(v, 4, "mutual exclusion violated: {v}");
            v
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete, "model must be exhaustively explored");
        assert_eq!(ex.distinct_states, 1);
    }

    /// Ticket lock under the checker: exclusive, and every schedule
    /// terminates (the serving spin yields).
    #[test]
    fn checker_ticket_lock_mutual_exclusion() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let lock = Arc::new(TicketLock::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let lock = Arc::clone(&lock);
                    syscheck::shim::spawn(move || {
                        *lock.lock() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let v = *lock.lock();
            assert_eq!(v, 2);
            v
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete);
        assert_eq!(ex.distinct_states, 1);
    }

    /// SeqLock reader racing a writer: the sequence protocol must hide the
    /// window between the writer's two counter bumps in every schedule.
    #[test]
    fn checker_seqlock_no_torn_reads() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let sl = Arc::new(SeqLock::new((0u64, 0u64)));
            let writer = {
                let sl = Arc::clone(&sl);
                syscheck::shim::spawn(move || sl.write((1, 1)))
            };
            let (a, b) = sl.read();
            writer.join().unwrap();
            assert_eq!(a, b, "torn read: ({a}, {b})");
            a
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete);
        // Reader ran before or after the write: both terminal states exist.
        assert_eq!(ex.distinct_states, 2);
    }
}
