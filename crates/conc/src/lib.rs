//! # sysconc — managing shared state
//!
//! Substrate for the paper's Challenge 4: "managing shared state". The paper
//! (and the course material that carried it) argues that lock-based code does
//! not compose: a correctly locked `debit` and a correctly locked `credit` do
//! not make a correct `transfer`, because the intermediate state is exposed.
//! This crate builds every concurrency model that argument compares:
//!
//! * [`spinlock`] — test-and-set spinlocks, fair ticket locks, and seqlocks,
//!   built from atomics (the primitives a kernel would use),
//! * [`stm`] — a TL2-style software transactional memory with composable
//!   `atomically` blocks, optimistic versioned reads, and commit-time
//!   validation (the Harris et al. model),
//! * [`channel`] — blocking MPMC channels with bounded backpressure, built
//!   from a mutex and condvars,
//! * [`actor`] — a small message-passing actor runtime over those channels,
//! * [`bank`] — the classic bank-account composition workload, implemented
//!   five ways (coarse lock, fine-grained locks, *broken* two-phase locking,
//!   STM, actors) so experiment E7 can measure what composition costs.
//!
//! ```
//! use sysconc::stm::{TVar, atomically};
//!
//! let a = TVar::new(100i64);
//! let b = TVar::new(0i64);
//! atomically(|tx| {
//!     let va = tx.read(&a)?;
//!     tx.write(&a, va - 40)?;
//!     let vb = tx.read(&b)?;
//!     tx.write(&b, vb + 40)?;
//!     Ok(())
//! });
//! assert_eq!(atomically(|tx| tx.read(&a)), 60);
//! assert_eq!(atomically(|tx| tx.read(&b)), 40);
//! ```

pub mod actor;
pub mod bank;
pub mod channel;
pub mod spinlock;
pub mod stm;

#[cfg(test)]
mod tests {
    #[test]
    fn crate_compiles_and_links() {
        // Smoke test: module tree is wired.
        let v = crate::stm::TVar::new(1u32);
        assert_eq!(crate::stm::atomically(|tx| tx.read(&v)), 1);
    }
}
