//! Blocking MPMC channels built from a mutex and condition variables, with
//! bounded capacity for backpressure.
//!
//! Message passing is one of the "alternative concurrency models" the paper's
//! discussion points toward (and the model Erlang, Go, and Rust's `mpsc`
//! adopted). This implementation is deliberately from scratch — the substrate
//! rule — and is the transport under the [`crate::actor`] runtime.
//!
//! The mutex and condvars come from `syscheck::shim`, so the blocking
//! protocol (including the timeout paths) is exhaustively model-checked by
//! the `checker_*` tests below; on ordinary threads the shim is `std` plus
//! one relaxed load. [`BrokenSignal`] is a deliberately buggy wait/notify
//! cell kept as a known-defect specimen for the checker (E13).

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use syscheck::shim::{Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "send on a channel with no receivers")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recv on an empty channel with no senders")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel empty"),
            TryRecvError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity right now; the message comes back.
    Full(T),
    /// Every receiver is gone; the message comes back.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "try_send on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "send on a channel with no receivers"),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error returned by [`Sender::send_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The channel stayed full for the whole timeout; the message comes
    /// back.
    Timeout(T),
    /// Every receiver is gone; the message comes back.
    Disconnected(T),
}

impl<T> fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => write!(f, "send timed out on a full channel"),
            SendTimeoutError::Disconnected(_) => {
                write!(f, "send on a channel with no receivers")
            }
        }
    }
}

impl<T: fmt::Debug> std::error::Error for SendTimeoutError<T> {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The channel stayed empty for the whole timeout.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "recv timed out on an empty channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "recv on an empty channel with no senders")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

#[derive(Debug)]
struct Shared<T> {
    queue: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Creates an unbounded channel.
#[must_use]
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity_inner(None)
}

/// Creates a bounded channel: `send` blocks while `capacity` messages are
/// queued, applying backpressure to producers.
///
/// # Panics
///
/// Panics if `capacity` is zero (rendezvous channels are not supported).
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded channel capacity must be nonzero");
    with_capacity_inner(Some(capacity))
}

fn with_capacity_inner<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half of a channel. Cloneable (multi-producer).
#[derive(Debug)]
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the message back if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if state.items.len() >= cap => {
                    state = self.shared.not_full.wait(state).expect("channel poisoned");
                }
                _ => break,
            }
        }
        state.items.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        sysobs::obs_count!("chan.sends", 1);
        Ok(())
    }

    /// Sends without blocking: if a bounded channel is at capacity the
    /// message comes straight back instead of stalling the producer. This is
    /// the primitive the `sysnet` dispatcher builds head-of-line-blocking
    /// avoidance from — one slow consumer's full queue must not stop traffic
    /// destined to every other consumer.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when the channel is at capacity,
    /// [`TrySendError::Disconnected`] when every receiver is gone; both
    /// return the message.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.capacity {
            if state.items.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        state.items.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        sysobs::obs_count!("chan.sends", 1);
        Ok(())
    }

    /// Like [`Sender::send`], but gives up after `timeout` instead of
    /// blocking indefinitely on a full channel — backpressure with a
    /// deadline, so a stalled consumer costs the producer bounded time.
    ///
    /// # Errors
    ///
    /// [`SendTimeoutError::Timeout`] if the channel stayed full,
    /// [`SendTimeoutError::Disconnected`] if every receiver is gone; both
    /// return the message.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        // A timeout too large to represent as an Instant (e.g. Duration::MAX)
        // means "wait forever" — it must not panic the sender.
        let deadline = Instant::now().checked_add(timeout);
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            match self.shared.capacity {
                Some(cap) if state.items.len() >= cap => {
                    let Some(deadline) = deadline else {
                        state = self.shared.not_full.wait(state).expect("channel poisoned");
                        continue;
                    };
                    let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                        sysobs::obs_count!("chan.send_timeouts", 1);
                        return Err(SendTimeoutError::Timeout(value));
                    };
                    let (s, wait) = self
                        .shared
                        .not_full
                        .wait_timeout(state, left)
                        .expect("channel poisoned");
                    state = s;
                    if wait.timed_out() && state.items.len() >= cap {
                        if state.receivers == 0 {
                            return Err(SendTimeoutError::Disconnected(value));
                        }
                        sysobs::obs_count!("chan.send_timeouts", 1);
                        return Err(SendTimeoutError::Timeout(value));
                    }
                }
                _ => break,
            }
        }
        state.items.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        sysobs::obs_count!("chan.sends", 1);
        Ok(())
    }

    /// Number of queued messages (racy; for monitoring only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("channel poisoned")
            .items
            .len()
    }

    /// True if no messages are queued (racy; for monitoring only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half of a channel. Cloneable (multi-consumer).
#[derive(Debug)]
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Receives the next message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and all senders are
    /// gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if let Some(v) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                sysobs::obs_count!("chan.recvs", 1);
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Like [`Receiver::recv`], but gives up after `timeout` instead of
    /// blocking indefinitely on an empty channel.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] once the channel is empty and all
    /// senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        // As in [`Sender::send_timeout`]: an unrepresentable deadline means
        // "wait forever", not an `Instant` addition panic.
        let deadline = Instant::now().checked_add(timeout);
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if let Some(v) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                sysobs::obs_count!("chan.recvs", 1);
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(deadline) = deadline else {
                state = self.shared.not_empty.wait(state).expect("channel poisoned");
                continue;
            };
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                sysobs::obs_count!("chan.recv_timeouts", 1);
                return Err(RecvTimeoutError::Timeout);
            };
            let (s, wait) = self
                .shared
                .not_empty
                .wait_timeout(state, left)
                .expect("channel poisoned");
            state = s;
            if wait.timed_out() && state.items.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                sysobs::obs_count!("chan.recv_timeouts", 1);
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] if nothing is queued,
    /// [`TryRecvError::Disconnected`] if additionally all senders are gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        if let Some(v) = state.items.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            sysobs::obs_count!("chan.recvs", 1);
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Drains and returns everything currently queued.
    #[must_use]
    pub fn drain(&self) -> Vec<T> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        let out: Vec<T> = state.items.drain(..).collect();
        drop(state);
        self.shared.not_full.notify_all();
        out
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .queue
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Iterator for Receiver<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.recv().ok()
    }
}

/// A deliberately broken one-shot wait/notify cell: the textbook lost
/// wakeup, kept (like `bank::BrokenComposedBank`) as a known-defect specimen
/// the checker must rediscover.
///
/// [`BrokenSignal::wait`] samples the flag under the lock, *releases the
/// lock*, and only then parks on the condvar — without re-checking the flag
/// under the re-acquired lock. A [`BrokenSignal::notify`] landing in that
/// window finds no waiter to wake, and the subsequent naked `Condvar::wait`
/// sleeps forever. OS schedulers hit the window rarely enough that the stress
/// test for the original bug this models passed for weeks; `syscheck` finds
/// it in a handful of schedules and reports it as a deadlock
/// (`checker_broken_signal_loses_wakeup`).
#[derive(Debug, Default)]
pub struct BrokenSignal {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl BrokenSignal {
    /// Creates an unsignaled cell.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the flag and wakes one waiter (correct half of the protocol).
    pub fn notify(&self) {
        let mut g = self.ready.lock().expect("signal poisoned");
        *g = true;
        drop(g);
        self.cv.notify_one();
    }

    /// Blocks until [`BrokenSignal::notify`] — except it doesn't, always:
    /// the check-then-park window described on [`BrokenSignal`] loses a
    /// concurrent notify.
    pub fn wait(&self) {
        let signaled = *self.ready.lock().expect("signal poisoned");
        if signaled {
            return;
        }
        // BUG: between the check above and the wait below the notifier can
        // set the flag and notify; the wait that follows never re-checks the
        // predicate, so that wakeup is lost for good.
        let g = self.ready.lock().expect("signal poisoned");
        let _g = self.cv.wait(g).expect("signal poisoned");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn messages_arrive_in_fifo_order() {
        let (tx, rx) = channel();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    /// Formerly a sleep-20ms-and-hope real-thread test: now every
    /// interleaving of the blocking receiver against the sender is explored,
    /// including the ones where the receiver parks first.
    #[test]
    fn checker_recv_blocks_until_send() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let (tx, rx) = channel();
            let h = syscheck::shim::spawn(move || rx.recv().unwrap());
            tx.send(7u8).unwrap();
            let got = h.join().unwrap();
            assert_eq!(got, 7);
            u64::from(got)
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete);
        assert_eq!(ex.distinct_states, 1);
    }

    #[test]
    fn multi_producer_delivers_everything() {
        let (tx, rx) = channel();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..1000 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got: Vec<i32> = rx.collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got.len(), 4000);
        assert_eq!(got[0], 0);
        assert_eq!(got[3999], 3999);
    }

    /// Formerly asserted "producer still blocked after 20ms" with real
    /// threads (flaky both ways). The model states the actual contract: the
    /// over-capacity send cannot complete before a recv frees a slot, so
    /// FIFO order is preserved in *every* schedule.
    #[test]
    fn checker_bounded_send_applies_backpressure() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = {
                let tx = tx.clone();
                syscheck::shim::spawn(move || {
                    tx.send(2).unwrap(); // must block until the recv below
                })
            };
            assert_eq!(rx.recv().unwrap(), 1, "backpressure preserves FIFO");
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
            0
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = channel::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = channel::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn multi_consumer_partitions_messages() {
        let (tx, rx) = channel();
        let rx2 = rx.clone();
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h1 = thread::spawn(move || rx.count());
        let h2 = thread::spawn(move || rx2.count());
        assert_eq!(h1.join().unwrap() + h2.join().unwrap(), 1000);
    }

    #[test]
    fn drain_empties_the_queue() {
        let (tx, rx) = channel();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.drain(), vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_is_rejected() {
        let _ = bounded::<u8>(0);
    }

    #[test]
    fn try_send_fills_then_reports_full() {
        let (tx, rx) = bounded(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(tx.try_send(3), Ok(()), "space freed by the recv");
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn try_send_never_blocks_and_reports_disconnect() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        // Full channel: returns immediately with the message.
        let t0 = std::time::Instant::now();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert!(t0.elapsed() < Duration::from_millis(100));
        drop(rx);
        assert_eq!(
            tx.try_send(2),
            Err(TrySendError::Disconnected(2)),
            "disconnect wins over full"
        );
        assert_eq!(TrySendError::Full(7).into_inner(), 7);
    }

    #[test]
    fn try_send_on_unbounded_always_succeeds() {
        let (tx, rx) = channel();
        for i in 0..1000 {
            assert_eq!(tx.try_send(i), Ok(()));
        }
        assert_eq!(rx.drain().len(), 1000);
    }

    #[test]
    fn recv_timeout_returns_value_or_times_out() {
        let (tx, rx) = channel::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }

    /// Formerly "sleep 20ms, hope the receiver parked first". Under the
    /// checker a timed wait only times out when the model would otherwise
    /// deadlock, so with a live sender the receiver must get the message in
    /// every schedule — parked-before-send and arrived-after-send alike.
    #[test]
    fn checker_recv_timeout_sees_late_arrivals() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let (tx, rx) = channel::<u8>();
            let h = syscheck::shim::spawn(move || rx.recv_timeout(Duration::from_secs(3600)));
            tx.send(9).unwrap();
            assert_eq!(h.join().unwrap(), Ok(9));
            0
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete);
    }

    #[test]
    fn recv_timeout_reports_disconnect() {
        let (tx, rx) = channel::<u8>();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_timeout_times_out_on_full_bounded_channel() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(10)),
            Err(SendTimeoutError::Timeout(2))
        );
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(tx.send_timeout(3, Duration::from_millis(10)), Ok(()));
        assert_eq!(rx.recv().unwrap(), 3);
    }

    /// Formerly sleep-based; now exhaustive: with a consumer draining, a
    /// timed send on a full channel completes (never times out) in every
    /// schedule.
    #[test]
    fn checker_send_timeout_unblocks_when_space_frees() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = {
                let tx = tx.clone();
                syscheck::shim::spawn(move || tx.send_timeout(2, Duration::from_secs(3600)))
            };
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(t.join().unwrap(), Ok(()));
            assert_eq!(rx.recv().unwrap(), 2);
            0
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete);
    }

    /// Regression (now exhaustive): `Instant::now() + Duration::MAX` used to
    /// panic; an unrepresentable deadline must behave as wait-forever.
    #[test]
    fn checker_recv_timeout_with_huge_timeout_waits_instead_of_panicking() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let (tx, rx) = channel::<u8>();
            let h = syscheck::shim::spawn(move || rx.recv_timeout(Duration::MAX));
            tx.send(9).unwrap();
            assert_eq!(h.join().unwrap(), Ok(9));
            0
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete);
    }

    #[test]
    fn checker_recv_timeout_with_huge_timeout_still_sees_disconnect() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let (tx, rx) = channel::<u8>();
            let h = syscheck::shim::spawn(move || rx.recv_timeout(Duration::MAX));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvTimeoutError::Disconnected));
            0
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete);
    }

    #[test]
    fn checker_send_timeout_with_huge_timeout_waits_instead_of_panicking() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = {
                let tx = tx.clone();
                syscheck::shim::spawn(move || tx.send_timeout(2, Duration::MAX))
            };
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(t.join().unwrap(), Ok(()));
            assert_eq!(rx.recv().unwrap(), 2);
            0
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete);
    }

    #[test]
    fn send_timeout_reports_disconnect() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(
            tx.send_timeout(7, Duration::from_millis(10)),
            Err(SendTimeoutError::Disconnected(7))
        );
    }

    /// `try_send` racing a consumer: never blocks, and every accepted
    /// message is delivered exactly once in every schedule.
    #[test]
    fn checker_try_send_conserves_messages() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let (tx, rx) = bounded(1);
            let h = {
                let tx = tx.clone();
                syscheck::shim::spawn(move || {
                    let mut accepted = 0u64;
                    for i in 0..2 {
                        if tx.try_send(i).is_ok() {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            };
            drop(tx);
            let accepted = h.join().unwrap();
            let mut got = 0u64;
            while rx.recv().is_ok() {
                got += 1;
            }
            assert_eq!(got, accepted, "accepted messages must all arrive");
            // Digest: how many of the two try_sends got through.
            accepted
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete);
    }

    /// The checker rediscovers the lost wakeup seeded in [`BrokenSignal`]:
    /// notify lands between the waiter's flag check and its park, and the
    /// execution deadlocks. Both search modes must find it, and the shrunken
    /// reproduction needs at most two forced preemptions.
    #[test]
    fn checker_broken_signal_loses_wakeup() {
        let model = || {
            let sig = Arc::new(BrokenSignal::new());
            let waiter = {
                let sig = Arc::clone(&sig);
                syscheck::shim::spawn(move || sig.wait())
            };
            sig.notify();
            waiter.join().unwrap();
            0
        };
        let cfg = syscheck::Config::default();
        let ex = syscheck::explore(&cfg, model);
        let failure = ex.failure.expect("DFS must find the lost wakeup");
        assert_eq!(failure.kind, syscheck::FailureKind::Deadlock);
        assert!(
            ex.schedules <= 10_000,
            "must be found within the E13 budget, took {}",
            ex.schedules
        );

        let shrunk = syscheck::shrink::shrink_failure(&cfg, &failure, model);
        assert!(
            shrunk.report.failure.is_some(),
            "shrunken schedule still fails"
        );
        assert!(
            (1..=2).contains(&shrunk.deviations.len()),
            "lost wakeup needs 1-2 preemptions, got {:?}",
            shrunk.deviations
        );

        let exr = syscheck::explore_random(&cfg, 0xBAD_5EED, model);
        let rf = exr.failure.expect("random schedules must find it too");
        let seed = rf.seed.expect("random failure carries a seed");
        let replay = syscheck::replay_seed(&cfg, seed, model);
        assert_eq!(
            replay
                .failure
                .expect("seed replays the deadlock")
                .trace
                .digest(),
            rf.trace.digest()
        );
    }

    /// The one intentionally wall-clock stress run for this module (the
    /// checker models above cover correctness): real threads, real
    /// contention, real timeouts.
    #[test]
    #[ignore = "wall-clock stress; run with --ignored"]
    fn stress_channel_with_real_threads() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..5_000 {
                        tx.send(t * 5_000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut n = 0usize;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 20_000);
    }
}
