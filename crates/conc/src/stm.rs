//! Software transactional memory in the TL2 style: versioned optimistic
//! reads, commit-time write locking, and a global version clock.
//!
//! The programming model follows Harris, Marlow, Peyton Jones & Herlihy,
//! *Composable Memory Transactions*: [`atomically`] runs a closure against
//! transactional variables ([`TVar`]); [`Tx::retry`] blocks the transaction
//! until something it read changes; [`Tx::or_else`] composes alternatives.
//! Unlike lock-based code, two correct transactions compose into a correct
//! larger transaction — the property the paper's bank-account example shows
//! locks lack.
//!
//! # Protocol
//!
//! Each `TVar` carries a version word (`clock_at_last_write << 1 | locked`).
//! A transaction snapshots the global clock at start (`rv`), validates every
//! read against `rv`, and at commit time locks its write set in address
//! order, re-validates the read set, publishes values, and stamps them with a
//! fresh clock value. Conflicts abort and transparently re-run the closure.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use syscheck::shim::{sleep, spin_loop, yield_now, AtomicU64, Mutex};

/// The protocol state (clock, versions, value cells) lives behind
/// `syscheck::shim` types so the full TL2 commit dance is model-checkable;
/// the stats counters below are plain `std` atomics on purpose — they are
/// observability, not protocol, and shimming them would only inflate the
/// schedule space.
static GLOBAL_CLOCK: AtomicU64 = AtomicU64::new(0);
static COMMITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static ABORTS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Snapshot of global STM counters (commits and aborts since process start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmStats {
    /// Successfully committed transactions.
    pub commits: u64,
    /// Aborted-and-retried attempts (conflicts + explicit retries).
    pub aborts: u64,
}

/// Reads the global STM counters.
#[must_use]
pub fn stm_stats() -> StmStats {
    StmStats {
        commits: COMMITS.load(Ordering::Relaxed),
        aborts: ABORTS.load(Ordering::Relaxed),
    }
}

impl StmStats {
    /// Renders these counters as a [`sysobs::Snapshot`] under `stm.*`.
    #[must_use]
    pub fn to_snapshot(&self) -> sysobs::Snapshot {
        let mut snap = sysobs::Snapshot::default();
        snap.set_counter("stm.commits", self.commits);
        snap.set_counter("stm.aborts", self.aborts);
        snap
    }
}

/// Bumps the commit counter (and its observability mirror).
fn note_commit() {
    COMMITS.fetch_add(1, Ordering::Relaxed);
    sysobs::obs_count!("stm.commits", 1);
}

/// Bumps the abort counter (and its observability mirror).
fn note_abort() {
    ABORTS.fetch_add(1, Ordering::Relaxed);
    sysobs::obs_count!("stm.aborts", 1);
}

type Boxed = Arc<dyn Any + Send + Sync>;

#[derive(Debug)]
struct VarCore {
    /// `version << 1 | locked`.
    version: AtomicU64,
    value: Mutex<Boxed>,
}

/// A transactional variable holding a `T`.
///
/// Cloning a `TVar` clones the *handle*; both handles name the same shared
/// cell (like `Arc`).
#[derive(Debug)]
pub struct TVar<T> {
    core: Arc<VarCore>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            core: Arc::clone(&self.core),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TVar<T> {
    /// Creates a new transactional variable.
    #[must_use]
    pub fn new(value: T) -> Self {
        TVar {
            core: Arc::new(VarCore {
                version: AtomicU64::new(0),
                value: Mutex::new(Arc::new(value)),
            }),
            _marker: std::marker::PhantomData,
        }
    }

    /// Reads the value outside any transaction (a consistent single-variable
    /// snapshot).
    #[must_use]
    pub fn read_atomic(&self) -> T {
        loop {
            let v1 = self.core.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                spin_loop();
                continue;
            }
            let val = Arc::clone(&self.core.value.lock().expect("poisoned tvar"));
            let v2 = self.core.version.load(Ordering::Acquire);
            if v1 == v2 {
                return val
                    .downcast_ref::<T>()
                    .expect("tvar type invariant")
                    .clone();
            }
        }
    }

    fn id(&self) -> usize {
        Arc::as_ptr(&self.core) as usize
    }
}

/// Why a transaction attempt stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmAbort {
    /// A read or commit-time validation conflicted with another commit.
    Conflict,
    /// The transaction called [`Tx::retry`]: block until an input changes.
    Retry,
}

/// Result type threaded through transaction bodies (use `?`).
pub type StmResult<T> = Result<T, StmAbort>;

/// An in-flight transaction. Obtain one via [`atomically`].
#[derive(Debug)]
pub struct Tx {
    rv: u64,
    reads: Vec<(usize, Arc<VarCore>, u64)>,
    writes: HashMap<usize, (Arc<VarCore>, Boxed)>,
}

impl Tx {
    fn new() -> Self {
        Tx {
            rv: GLOBAL_CLOCK.load(Ordering::Acquire),
            reads: Vec::new(),
            writes: HashMap::new(),
        }
    }

    /// Reads a `TVar` inside the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`StmAbort::Conflict`] if the variable changed after this
    /// transaction started (the closure will be re-run).
    pub fn read<T: Clone + Send + Sync + 'static>(&mut self, var: &TVar<T>) -> StmResult<T> {
        if let Some((_, pending)) = self.writes.get(&var.id()) {
            return Ok(pending
                .downcast_ref::<T>()
                .expect("tvar type invariant")
                .clone());
        }
        loop {
            let v1 = var.core.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                // Locked by a committing transaction; brief wait then retry.
                spin_loop();
                continue;
            }
            let val = Arc::clone(&var.core.value.lock().expect("poisoned tvar"));
            let v2 = var.core.version.load(Ordering::Acquire);
            if v1 == v2 {
                if v1 >> 1 > self.rv {
                    return Err(StmAbort::Conflict);
                }
                self.reads.push((var.id(), Arc::clone(&var.core), v1));
                return Ok(val
                    .downcast_ref::<T>()
                    .expect("tvar type invariant")
                    .clone());
            }
        }
    }

    /// Writes a `TVar` inside the transaction (visible to later reads in the
    /// same transaction, published only at commit).
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `StmResult` so bodies compose with `?`.
    pub fn write<T: Clone + Send + Sync + 'static>(
        &mut self,
        var: &TVar<T>,
        value: T,
    ) -> StmResult<()> {
        self.writes
            .insert(var.id(), (Arc::clone(&var.core), Arc::new(value)));
        Ok(())
    }

    /// Signals that the transaction cannot proceed yet; [`atomically`] will
    /// block until one of the variables read so far changes, then re-run.
    ///
    /// # Errors
    ///
    /// Always returns [`StmAbort::Retry`] (use with `?` or `return`).
    pub fn retry<T>(&self) -> StmResult<T> {
        Err(StmAbort::Retry)
    }

    /// Runs `first`; if it calls [`Tx::retry`], rolls back its writes and
    /// runs `second` instead — Harris et al.'s `orElse` composition.
    ///
    /// # Errors
    ///
    /// Propagates conflicts from either branch, and `Retry` if *both*
    /// branches retry.
    pub fn or_else<T>(
        &mut self,
        first: impl FnOnce(&mut Tx) -> StmResult<T>,
        second: impl FnOnce(&mut Tx) -> StmResult<T>,
    ) -> StmResult<T> {
        let snapshot: HashMap<usize, (Arc<VarCore>, Boxed)> = self
            .writes
            .iter()
            .map(|(k, (core, v))| (*k, (Arc::clone(core), Arc::clone(v))))
            .collect();
        match first(self) {
            Err(StmAbort::Retry) => {
                self.writes = snapshot;
                second(self)
            }
            other => other,
        }
    }

    /// Attempts to commit. Returns `true` on success.
    fn commit(self) -> bool {
        // Read-only transactions validated on the fly: nothing to publish.
        if self.writes.is_empty() {
            note_commit();
            return true;
        }
        // Lock write set in address order (deadlock freedom).
        let mut locked: Vec<(&Arc<VarCore>, u64)> = Vec::with_capacity(self.writes.len());
        let mut entries: Vec<(&usize, &(Arc<VarCore>, Boxed))> = self.writes.iter().collect();
        entries.sort_by_key(|(id, _)| **id);
        for (_, (core, _)) in &entries {
            let v = core.version.load(Ordering::Acquire);
            if v & 1 == 1
                || core
                    .version
                    .compare_exchange(v, v | 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
            {
                for (c, orig) in locked {
                    c.version.store(orig, Ordering::Release);
                }
                note_abort();
                return false;
            }
            locked.push((core, v));
        }
        // Validate read set against rv, tolerating our own locks.
        for (id, core, v1) in &self.reads {
            let cur = core.version.load(Ordering::Acquire);
            let ours = self.writes.contains_key(id);
            let expected = if ours { *v1 | 1 } else { *v1 };
            if cur != expected {
                for (c, orig) in locked {
                    c.version.store(orig, Ordering::Release);
                }
                note_abort();
                return false;
            }
        }
        let wv = GLOBAL_CLOCK.fetch_add(1, Ordering::AcqRel) + 1;
        for (_, (core, value)) in &entries {
            *core.value.lock().expect("poisoned tvar") = Arc::clone(value);
            core.version.store(wv << 1, Ordering::Release);
        }
        note_commit();
        true
    }

    /// Spins until any variable in the read set changes version (used to
    /// implement blocking `retry`).
    fn wait_for_change(&self) {
        if self.reads.is_empty() {
            yield_now();
            return;
        }
        loop {
            for (_, core, v1) in &self.reads {
                if core.version.load(Ordering::Acquire) != *v1 {
                    return;
                }
            }
            yield_now();
        }
    }
}

/// Runs `body` as a transaction, retrying on conflict, until it commits.
///
/// The closure may run multiple times; it must be free of side effects other
/// than `TVar` access (the same contract as STM-Haskell, enforced there by
/// the type system and here by discipline — which is itself one of the
/// paper's points about what a language should check for you).
pub fn atomically<T>(mut body: impl FnMut(&mut Tx) -> StmResult<T>) -> T {
    loop {
        let mut tx = Tx::new();
        match body(&mut tx) {
            Ok(result) => {
                if tx.commit() {
                    return result;
                }
            }
            Err(StmAbort::Conflict) => {
                note_abort();
            }
            Err(StmAbort::Retry) => {
                note_abort();
                tx.wait_for_change();
            }
        }
    }
}

/// Fault site consulted by [`atomically_faulted`] after each successful
/// body run: when it fires, the attempt aborts as if a conflict occurred.
pub const SITE_STM_ABORT: &str = "stm.abort";

/// A bounded retry policy for [`atomically_budgeted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudget {
    /// Maximum attempts (body runs) before giving up. Must be at least 1.
    pub max_attempts: u32,
    /// Backoff before attempt `k` (k ≥ 2): `backoff_base_us << (k - 2)`
    /// microseconds, capped at [`RetryBudget::MAX_BACKOFF_US`]. Zero
    /// disables backoff.
    pub backoff_base_us: u64,
}

impl RetryBudget {
    /// Cap on a single backoff sleep.
    pub const MAX_BACKOFF_US: u64 = 10_000;

    /// A budget of `max_attempts` with 1 µs base backoff.
    #[must_use]
    pub fn attempts(max_attempts: u32) -> Self {
        RetryBudget {
            max_attempts: max_attempts.max(1),
            backoff_base_us: 1,
        }
    }

    fn backoff(&self, attempt: u32) -> u64 {
        if self.backoff_base_us == 0 || attempt < 2 {
            return 0;
        }
        let shift = (attempt - 2).min(20);
        (self.backoff_base_us << shift).min(Self::MAX_BACKOFF_US)
    }
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            max_attempts: 64,
            backoff_base_us: 1,
        }
    }
}

/// Typed exhaustion error: the transaction kept aborting until its budget
/// ran out. Carries the attempt count so callers can report contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmExhausted {
    /// Attempts consumed (equals the budget's `max_attempts`).
    pub attempts: u32,
}

impl std::fmt::Display for StmExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transaction aborted {} times and exhausted its retry budget",
            self.attempts
        )
    }
}

impl std::error::Error for StmExhausted {}

/// Like [`atomically`], but bounded: after `budget.max_attempts` aborts the
/// caller gets a typed [`StmExhausted`] instead of an unbounded spin —
/// livelock becomes a reportable, recoverable condition. Attempts after the
/// first back off exponentially to shed contention.
///
/// # Errors
///
/// Returns [`StmExhausted`] when every attempt aborted.
pub fn atomically_budgeted<T>(
    budget: RetryBudget,
    body: impl FnMut(&mut Tx) -> StmResult<T>,
) -> Result<T, StmExhausted> {
    atomically_with(budget, None, body)
}

/// [`atomically_budgeted`] with fault injection: after each successful body
/// run the injector is consulted at [`SITE_STM_ABORT`]; a firing forces an
/// abort-and-retry, consuming budget exactly like a real conflict.
///
/// # Errors
///
/// Returns [`StmExhausted`] when every attempt aborted (injected or real).
pub fn atomically_faulted<T>(
    budget: RetryBudget,
    injector: &sysfault::SharedInjector,
    body: impl FnMut(&mut Tx) -> StmResult<T>,
) -> Result<T, StmExhausted> {
    atomically_with(budget, Some(injector), body)
}

fn atomically_with<T>(
    budget: RetryBudget,
    injector: Option<&sysfault::SharedInjector>,
    mut body: impl FnMut(&mut Tx) -> StmResult<T>,
) -> Result<T, StmExhausted> {
    let max = budget.max_attempts.max(1);
    for attempt in 1..=max {
        let pause = budget.backoff(attempt);
        if pause > 0 {
            sleep(std::time::Duration::from_micros(pause));
        }
        let mut tx = Tx::new();
        match body(&mut tx) {
            Ok(result) => {
                if injector.is_some_and(|i| i.should_fail(SITE_STM_ABORT)) {
                    // Injected abort: throw the attempt away, uncommitted.
                    note_abort();
                    continue;
                }
                if tx.commit() {
                    sysobs::obs_hist!("stm.attempts", u64::from(attempt));
                    return Ok(result);
                }
            }
            Err(StmAbort::Conflict) => {
                note_abort();
            }
            Err(StmAbort::Retry) => {
                note_abort();
                tx.wait_for_change();
            }
        }
    }
    Err(StmExhausted { attempts: max })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use std::thread;

    #[test]
    fn read_write_roundtrip() {
        let v = TVar::new(5i64);
        atomically(|tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x + 1)
        });
        assert_eq!(v.read_atomic(), 6);
    }

    #[test]
    fn reads_see_own_writes() {
        let v = TVar::new(1i64);
        let observed = atomically(|tx| {
            tx.write(&v, 42)?;
            tx.read(&v)
        });
        assert_eq!(observed, 42);
    }

    #[test]
    fn counter_increments_are_not_lost() {
        let v = StdArc::new(TVar::new(0i64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let v = StdArc::clone(&v);
                thread::spawn(move || {
                    for _ in 0..2_000 {
                        atomically(|tx| {
                            let x = tx.read(&v)?;
                            tx.write(&v, x + 1)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.read_atomic(), 16_000, "STM must prevent lost updates");
    }

    #[test]
    fn transfers_conserve_total() {
        let a = StdArc::new(TVar::new(10_000i64));
        let b = StdArc::new(TVar::new(10_000i64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let a = StdArc::clone(&a);
                let b = StdArc::clone(&b);
                thread::spawn(move || {
                    for i in 0..2_000i64 {
                        let amt = (i + t) % 7;
                        atomically(|tx| {
                            let va = tx.read(&a)?;
                            let vb = tx.read(&b)?;
                            tx.write(&a, va - amt)?;
                            tx.write(&b, vb + amt)
                        });
                    }
                })
            })
            .collect();
        // Concurrent audits must always see the conserved total.
        let auditor = {
            let a = StdArc::clone(&a);
            let b = StdArc::clone(&b);
            thread::spawn(move || {
                for _ in 0..5_000 {
                    let total = atomically(|tx| {
                        let va = tx.read(&a)?;
                        let vb = tx.read(&b)?;
                        Ok(va + vb)
                    });
                    assert_eq!(total, 20_000, "audit saw intermediate state");
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        auditor.join().unwrap();
        assert_eq!(a.read_atomic() + b.read_atomic(), 20_000);
    }

    /// Formerly "sleep 30ms and assert the waiter hasn't finished" — flaky
    /// in both directions. The model checks the real contract in every
    /// schedule: a `retry` transaction completes once (and only because) its
    /// input changes, and no interleaving strands the waiter.
    #[test]
    fn checker_retry_blocks_until_input_changes() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let flag = StdArc::new(TVar::new(false));
            let waiter = {
                let flag = StdArc::clone(&flag);
                syscheck::shim::spawn(move || {
                    atomically(|tx| if tx.read(&flag)? { Ok(()) } else { tx.retry() });
                })
            };
            atomically(|tx| tx.write(&flag, true));
            waiter.join().unwrap();
            0
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
    }

    /// Two transactional increments racing: TL2 must serialize them in every
    /// interleaving of clock reads, version validations, and commit locking.
    #[test]
    fn checker_stm_counter_has_no_lost_updates() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let v = StdArc::new(TVar::new(0i64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let v = StdArc::clone(&v);
                    syscheck::shim::spawn(move || {
                        atomically(|tx| {
                            let x = tx.read(&v)?;
                            tx.write(&v, x + 1)
                        });
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            let got = v.read_atomic();
            assert_eq!(got, 2, "lost transactional update");
            u64::try_from(got).expect("non-negative")
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
    }

    /// The composition claim, checked exhaustively on a small instance: an
    /// audit transaction never observes a transfer's intermediate state.
    #[test]
    fn checker_stm_transfer_never_exposes_intermediate_state() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let a = StdArc::new(TVar::new(100i64));
            let b = StdArc::new(TVar::new(100i64));
            let t = {
                let a = StdArc::clone(&a);
                let b = StdArc::clone(&b);
                syscheck::shim::spawn(move || {
                    atomically(|tx| {
                        let va = tx.read(&a)?;
                        let vb = tx.read(&b)?;
                        tx.write(&a, va - 30)?;
                        tx.write(&b, vb + 30)
                    });
                })
            };
            let total = atomically(|tx| {
                let va = tx.read(&a)?;
                let vb = tx.read(&b)?;
                Ok(va + vb)
            });
            t.join().unwrap();
            assert_eq!(total, 200, "audit saw a half-applied transfer");
            0
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
    }

    #[test]
    fn or_else_takes_second_branch_on_retry() {
        let empty = TVar::new(Option::<i64>::None);
        let fallback = TVar::new(Some(9i64));
        let got = atomically(|tx| {
            let e = empty.clone();
            let f = fallback.clone();
            tx.or_else(
                move |tx| match tx.read(&e)? {
                    Some(v) => Ok(v),
                    None => tx.retry(),
                },
                move |tx| match tx.read(&f)? {
                    Some(v) => Ok(v),
                    None => tx.retry(),
                },
            )
        });
        assert_eq!(got, 9);
    }

    #[test]
    fn or_else_rolls_back_first_branch_writes() {
        let v = TVar::new(0i64);
        let witness = TVar::new(0i64);
        atomically(|tx| {
            let v2 = v.clone();
            let w = witness.clone();
            tx.or_else(
                move |tx| {
                    tx.write(&v2, 111)?; // must be rolled back
                    tx.retry()
                },
                move |tx| tx.write(&w, 1),
            )
        });
        assert_eq!(v.read_atomic(), 0, "first branch's write leaked");
        assert_eq!(witness.read_atomic(), 1);
    }

    #[test]
    fn tvar_clone_shares_the_cell() {
        let a = TVar::new(1u8);
        let b = a.clone();
        atomically(|tx| tx.write(&a, 7));
        assert_eq!(b.read_atomic(), 7);
    }

    #[test]
    fn budgeted_succeeds_like_atomically() {
        let v = TVar::new(5i64);
        let got = atomically_budgeted(RetryBudget::default(), |tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x + 1)?;
            Ok(x)
        });
        assert_eq!(got, Ok(5));
        assert_eq!(v.read_atomic(), 6);
    }

    #[test]
    fn budgeted_reports_exhaustion_typed() {
        // A body that always retries can never commit; the budget converts
        // the livelock into a typed error. (Plain `atomically` would hang.)
        let v = TVar::new(0u8);
        let r: Result<(), StmExhausted> = atomically_budgeted(
            RetryBudget {
                max_attempts: 3,
                backoff_base_us: 0,
            },
            |tx| {
                // Read something so Retry has a wait set that changes... it
                // won't, so keep the body conflicting instead: bump the var
                // outside the transaction to invalidate the read.
                let x = tx.read(&v)?;
                atomically(|tx2| tx2.write(&v, x.wrapping_add(1)));
                tx.write(&v, x)
            },
        );
        assert_eq!(r, Err(StmExhausted { attempts: 3 }));
        assert!(r.unwrap_err().to_string().contains("retry budget"));
    }

    #[test]
    fn injected_aborts_consume_budget_then_succeed() {
        use sysfault::{FaultPlan, Schedule, SharedInjector};
        let inj = SharedInjector::new(
            FaultPlan::new(3).with_site(SITE_STM_ABORT, Schedule::OneShotAt(1)),
        );
        let v = TVar::new(10i64);
        let before = stm_stats().aborts;
        let got = atomically_faulted(RetryBudget::attempts(4), &inj, |tx| tx.read(&v));
        assert_eq!(got, Ok(10));
        assert_eq!(stm_stats().aborts, before + 1, "injected abort was counted");
        assert_eq!(inj.faults_fired(), 1);
    }

    #[test]
    fn injected_aborts_can_exhaust_the_budget() {
        use sysfault::{FaultPlan, Schedule, SharedInjector};
        let inj =
            SharedInjector::new(FaultPlan::new(3).with_site(SITE_STM_ABORT, Schedule::EveryNth(1)));
        let v = TVar::new(0i64);
        let r = atomically_faulted(
            RetryBudget {
                max_attempts: 5,
                backoff_base_us: 0,
            },
            &inj,
            |tx| tx.read(&v),
        );
        assert_eq!(r, Err(StmExhausted { attempts: 5 }));
        assert_eq!(v.read_atomic(), 0, "no injected attempt may commit");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let b = RetryBudget {
            max_attempts: 40,
            backoff_base_us: 2,
        };
        assert_eq!(b.backoff(1), 0, "first attempt is eager");
        assert_eq!(b.backoff(2), 2);
        assert_eq!(b.backoff(3), 4);
        assert_eq!(b.backoff(40), RetryBudget::MAX_BACKOFF_US);
    }

    #[test]
    fn stats_count_commits() {
        let before = stm_stats().commits;
        let v = TVar::new(0u8);
        atomically(|tx| tx.write(&v, 1));
        assert!(stm_stats().commits > before);
    }
}
