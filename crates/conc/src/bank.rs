//! The bank-account composition workload — the paper's (and the course
//! notes') canonical demonstration that lock-based code does not compose.
//!
//! Five implementations of one interface:
//!
//! | Implementation | Model | Composes? |
//! |---|---|---|
//! | [`CoarseLockBank`] | one global mutex | yes, by serializing everything |
//! | [`FineLockBank`] | per-account locks, ordered 2-phase acquisition | yes, but the ordering protocol is part of the API |
//! | [`BrokenComposedBank`] | per-account locks, debit then credit as separate critical sections | **no** — audits observe vanished money |
//! | [`StmBank`] | transactions over [`crate::stm`] | yes, by construction |
//! | [`ActorBank`] | message passing to an owning actor | yes, by construction |
//!
//! [`run_contention`] drives any of them with concurrent transfer threads and
//! a continuous auditor, counting audit anomalies (experiment E7).

use crate::actor::{ask, spawn, Actor, Address, Flow};
use crate::channel::Sender;
use crate::stm::{atomically, TVar};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use syscheck::shim::Mutex;

/// Uniform interface over all bank implementations.
pub trait Bank: Send + Sync {
    /// A short stable name for reports.
    fn name(&self) -> &'static str;

    /// Atomically moves `amount` from `from` to `to`. Returns `false` (and
    /// changes nothing) if `from` has insufficient funds.
    fn transfer(&self, from: usize, to: usize, amount: i64) -> bool;

    /// Sums every balance. A correct implementation always returns the same
    /// total no matter how many transfers race with it.
    fn audit(&self) -> i64;

    /// Reads one balance.
    fn balance(&self, account: usize) -> i64;

    /// Number of accounts.
    fn accounts(&self) -> usize;
}

/// One mutex around the whole vector of balances.
#[derive(Debug)]
pub struct CoarseLockBank {
    balances: Mutex<Vec<i64>>,
}

impl CoarseLockBank {
    /// Creates `n` accounts each holding `initial`.
    #[must_use]
    pub fn new(n: usize, initial: i64) -> Self {
        CoarseLockBank {
            balances: Mutex::new(vec![initial; n]),
        }
    }
}

impl Bank for CoarseLockBank {
    fn name(&self) -> &'static str {
        "coarse-lock"
    }

    fn transfer(&self, from: usize, to: usize, amount: i64) -> bool {
        let mut b = self.balances.lock().expect("bank poisoned");
        if b[from] < amount || from == to {
            return false;
        }
        b[from] -= amount;
        b[to] += amount;
        true
    }

    fn audit(&self) -> i64 {
        self.balances.lock().expect("bank poisoned").iter().sum()
    }

    fn balance(&self, account: usize) -> i64 {
        self.balances.lock().expect("bank poisoned")[account]
    }

    fn accounts(&self) -> usize {
        self.balances.lock().expect("bank poisoned").len()
    }
}

/// Per-account mutexes with a global lock order (lower index first). Correct,
/// scalable — and the ordering protocol is invisible in the types, which is
/// exactly the composition hazard the paper describes.
#[derive(Debug)]
pub struct FineLockBank {
    balances: Vec<Mutex<i64>>,
}

impl FineLockBank {
    /// Creates `n` accounts each holding `initial`.
    #[must_use]
    pub fn new(n: usize, initial: i64) -> Self {
        FineLockBank {
            balances: (0..n).map(|_| Mutex::new(initial)).collect(),
        }
    }
}

impl Bank for FineLockBank {
    fn name(&self) -> &'static str {
        "fine-lock"
    }

    fn transfer(&self, from: usize, to: usize, amount: i64) -> bool {
        if from == to {
            return false;
        }
        // Two-phase locking in index order prevents deadlock.
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        let lo_guard = self.balances[lo].lock().expect("bank poisoned");
        let hi_guard = self.balances[hi].lock().expect("bank poisoned");
        let (mut from_guard, mut to_guard) = if from < to {
            (lo_guard, hi_guard)
        } else {
            (hi_guard, lo_guard)
        };
        if *from_guard < amount {
            return false;
        }
        *from_guard -= amount;
        *to_guard += amount;
        true
    }

    fn audit(&self) -> i64 {
        // Lock *all* accounts in order before reading any: a full two-phase
        // audit. Correct, but O(n) lock hold time — the price locks charge.
        let guards: Vec<_> = self
            .balances
            .iter()
            .map(|m| m.lock().expect("bank poisoned"))
            .collect();
        guards.iter().map(|g| **g).sum()
    }

    fn balance(&self, account: usize) -> i64 {
        *self.balances[account].lock().expect("bank poisoned")
    }

    fn accounts(&self) -> usize {
        self.balances.len()
    }
}

/// The broken composition: `debit` and `credit` are each individually
/// correct critical sections, and `transfer` calls one after the other,
/// exposing the in-flight state. Audits can observe the money in neither
/// account. This is the paper's slide-23 example, kept deliberately.
#[derive(Debug)]
pub struct BrokenComposedBank {
    balances: Vec<Mutex<i64>>,
    /// Counts transfers currently between debit and credit (test hook).
    in_flight: syscheck::shim::AtomicU64,
}

impl BrokenComposedBank {
    /// Creates `n` accounts each holding `initial`.
    #[must_use]
    pub fn new(n: usize, initial: i64) -> Self {
        BrokenComposedBank {
            balances: (0..n).map(|_| Mutex::new(initial)).collect(),
            in_flight: syscheck::shim::AtomicU64::new(0),
        }
    }

    /// The individually-correct debit operation.
    pub fn debit(&self, account: usize, amount: i64) -> bool {
        let mut b = self.balances[account].lock().expect("bank poisoned");
        if *b < amount {
            return false;
        }
        *b -= amount;
        true
    }

    /// The individually-correct credit operation.
    pub fn credit(&self, account: usize, amount: i64) {
        *self.balances[account].lock().expect("bank poisoned") += amount;
    }

    /// Transfers currently between their debit and credit halves — the
    /// window in which an audit observes vanished money. Test hook: lets a
    /// detector aim its audits at the window instead of sampling blindly.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }
}

impl Bank for BrokenComposedBank {
    fn name(&self) -> &'static str {
        "broken-composed"
    }

    fn transfer(&self, from: usize, to: usize, amount: i64) -> bool {
        if from == to || !self.debit(from, amount) {
            return false;
        }
        // The intermediate state — money in neither account — is observable
        // right here. yield_now widens the window the way preemption would.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        syscheck::shim::yield_now();
        self.credit(to, amount);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        true
    }

    fn audit(&self) -> i64 {
        self.balances
            .iter()
            .map(|m| *m.lock().expect("bank poisoned"))
            .sum()
    }

    fn balance(&self, account: usize) -> i64 {
        *self.balances[account].lock().expect("bank poisoned")
    }

    fn accounts(&self) -> usize {
        self.balances.len()
    }
}

/// Transactional bank: transfer and audit are single `atomically` blocks.
#[derive(Debug)]
pub struct StmBank {
    balances: Vec<TVar<i64>>,
}

impl StmBank {
    /// Creates `n` accounts each holding `initial`.
    #[must_use]
    pub fn new(n: usize, initial: i64) -> Self {
        StmBank {
            balances: (0..n).map(|_| TVar::new(initial)).collect(),
        }
    }
}

impl Bank for StmBank {
    fn name(&self) -> &'static str {
        "stm"
    }

    fn transfer(&self, from: usize, to: usize, amount: i64) -> bool {
        if from == to {
            return false;
        }
        atomically(|tx| {
            let f = tx.read(&self.balances[from])?;
            if f < amount {
                return Ok(false);
            }
            let t = tx.read(&self.balances[to])?;
            tx.write(&self.balances[from], f - amount)?;
            tx.write(&self.balances[to], t + amount)?;
            Ok(true)
        })
    }

    fn audit(&self) -> i64 {
        atomically(|tx| {
            let mut total = 0;
            for v in &self.balances {
                total += tx.read(v)?;
            }
            Ok(total)
        })
    }

    fn balance(&self, account: usize) -> i64 {
        self.balances[account].read_atomic()
    }

    fn accounts(&self) -> usize {
        self.balances.len()
    }
}

#[derive(Debug)]
enum BankMsg {
    Transfer {
        from: usize,
        to: usize,
        amount: i64,
        reply: Sender<bool>,
    },
    Audit {
        reply: Sender<i64>,
    },
    Balance {
        account: usize,
        reply: Sender<i64>,
    },
}

struct BankActor {
    balances: Vec<i64>,
}

impl Actor for BankActor {
    type Msg = BankMsg;

    fn handle(&mut self, msg: BankMsg) -> Flow {
        match msg {
            BankMsg::Transfer {
                from,
                to,
                amount,
                reply,
            } => {
                let ok = from != to && self.balances[from] >= amount;
                if ok {
                    self.balances[from] -= amount;
                    self.balances[to] += amount;
                }
                let _ = reply.send(ok);
            }
            BankMsg::Audit { reply } => {
                let _ = reply.send(self.balances.iter().sum());
            }
            BankMsg::Balance { account, reply } => {
                let _ = reply.send(self.balances[account]);
            }
        }
        Flow::Continue
    }
}

/// Message-passing bank: a single actor owns every balance; operations are
/// requests. Atomicity comes from the actor's sequential mailbox.
#[derive(Debug)]
pub struct ActorBank {
    addr: Address<BankMsg>,
    n: usize,
}

impl ActorBank {
    /// Creates `n` accounts each holding `initial`, spawning the owner actor.
    #[must_use]
    pub fn new(n: usize, initial: i64) -> Self {
        let (addr, handle) = spawn(BankActor {
            balances: vec![initial; n],
        });
        // The actor lives as long as any Address clone; detach the handle.
        std::mem::forget(handle);
        ActorBank { addr, n }
    }
}

impl Bank for ActorBank {
    fn name(&self) -> &'static str {
        "actor"
    }

    fn transfer(&self, from: usize, to: usize, amount: i64) -> bool {
        ask(&self.addr, |reply| BankMsg::Transfer {
            from,
            to,
            amount,
            reply,
        })
        .unwrap_or(false)
    }

    fn audit(&self) -> i64 {
        ask(&self.addr, |reply| BankMsg::Audit { reply }).unwrap_or(0)
    }

    fn balance(&self, account: usize) -> i64 {
        ask(&self.addr, |reply| BankMsg::Balance { account, reply }).unwrap_or(0)
    }

    fn accounts(&self) -> usize {
        self.n
    }
}

/// Results of one contention run.
#[derive(Debug, Clone)]
pub struct BankReport {
    /// Implementation name.
    pub bank: &'static str,
    /// Worker threads used.
    pub threads: usize,
    /// Completed transfer attempts (successful or declined).
    pub transfers: u64,
    /// Audits performed.
    pub audits: u64,
    /// Audits that saw a total different from the invariant.
    pub audit_anomalies: u64,
    /// Wall time in nanoseconds.
    pub elapsed_ns: u64,
}

impl BankReport {
    /// Transfer attempts per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.transfers as f64 / (self.elapsed_ns as f64 / 1e9)
        }
    }
}

/// Drives `bank` with `threads` transfer workers (each performing `ops`
/// pseudo-random transfers) plus one continuous auditor thread, and reports
/// throughput and how many audits observed a violated invariant.
pub fn run_contention(bank: &dyn Bank, threads: usize, ops: usize) -> BankReport {
    let n = bank.accounts();
    let expected: i64 = bank.audit();
    let start = Instant::now();
    let transfers = AtomicU64::new(0);
    let audits = AtomicU64::new(0);
    let anomalies = AtomicU64::new(0);
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let transfers = &transfers;
            let bank = &bank;
            scope.spawn(move || {
                // Cheap deterministic LCG per thread.
                let mut state = (t as u64).wrapping_mul(0x9e37_79b9) + 1;
                let mut next = move || {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1);
                    (state >> 33) as usize
                };
                for _ in 0..ops {
                    let from = next() % n;
                    let to = next() % n;
                    let amount = i64::try_from(next() % 50).expect("small");
                    bank.transfer(from, to, amount);
                    transfers.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let audits = &audits;
        let anomalies = &anomalies;
        let done = &done;
        let bank = &bank;
        scope.spawn(move || {
            while !done.load(Ordering::Acquire) {
                let total = bank.audit();
                audits.fetch_add(1, Ordering::Relaxed);
                if total != expected {
                    anomalies.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        // Wait for workers by joining the scope implicitly; signal auditor.
        // (The scope joins all threads at the end; we flip `done` from a
        // monitor thread that waits for the transfer count.)
        let total_ops = (threads * ops) as u64;
        let transfers = &transfers;
        scope.spawn(move || {
            while transfers.load(Ordering::Relaxed) < total_ops {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });
    BankReport {
        bank: bank.name(),
        threads,
        transfers: transfers.load(Ordering::Relaxed),
        audits: audits.load(Ordering::Relaxed),
        audit_anomalies: anomalies.load(Ordering::Relaxed),
        elapsed_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_single_thread(bank: &dyn Bank) {
        let total = bank.audit();
        assert!(bank.transfer(0, 1, 30));
        assert_eq!(bank.balance(0), 70);
        assert_eq!(bank.balance(1), 130);
        assert!(!bank.transfer(0, 1, 1_000), "insufficient funds must fail");
        assert!(!bank.transfer(2, 2, 10), "self-transfer must fail");
        assert_eq!(bank.audit(), total, "total conserved");
    }

    #[test]
    fn coarse_bank_basics() {
        exercise_single_thread(&CoarseLockBank::new(4, 100));
    }

    #[test]
    fn fine_bank_basics() {
        exercise_single_thread(&FineLockBank::new(4, 100));
    }

    #[test]
    fn stm_bank_basics() {
        exercise_single_thread(&StmBank::new(4, 100));
    }

    #[test]
    fn actor_bank_basics() {
        exercise_single_thread(&ActorBank::new(4, 100));
    }

    #[test]
    fn broken_bank_conserves_total_only_when_quiescent() {
        let bank = BrokenComposedBank::new(4, 100);
        assert!(bank.transfer(0, 1, 30));
        assert_eq!(bank.audit(), 400, "sequential use looks correct");
    }

    #[test]
    fn broken_bank_exposes_intermediate_state_deterministically() {
        // Single-threaded demonstration of the composition failure: call the
        // two individually-correct halves and audit in between.
        let bank = BrokenComposedBank::new(2, 100);
        assert!(bank.debit(0, 40));
        let mid_audit = bank.audit();
        assert_eq!(mid_audit, 160, "the money is in neither account");
        bank.credit(1, 40);
        assert_eq!(bank.audit(), 200);
    }

    fn contention_invariant(bank: &dyn Bank) {
        let expected = bank.audit();
        let r = run_contention(bank, 4, 2_000);
        assert_eq!(bank.audit(), expected, "{}: money leaked", bank.name());
        assert_eq!(
            r.audit_anomalies,
            0,
            "{}: audit saw intermediate state",
            bank.name()
        );
        assert!(r.audits > 0);
    }

    #[test]
    fn coarse_bank_survives_contention() {
        contention_invariant(&CoarseLockBank::new(16, 1_000));
    }

    #[test]
    fn fine_bank_survives_contention() {
        contention_invariant(&FineLockBank::new(16, 1_000));
    }

    #[test]
    fn stm_bank_survives_contention() {
        contention_invariant(&StmBank::new(16, 1_000));
    }

    #[test]
    fn actor_bank_survives_contention() {
        contention_invariant(&ActorBank::new(16, 1_000));
    }

    #[test]
    fn broken_bank_still_conserves_after_the_dust_settles() {
        // The broken bank's *final* state is correct (no money is lost by
        // the end); only concurrent observers see anomalies. That is what
        // makes the bug so hard to find — the paper's "failures are silent".
        let bank = BrokenComposedBank::new(16, 1_000);
        let r = run_contention(&bank, 4, 2_000);
        assert_eq!(bank.audit(), 16_000);
        // Anomalies are *likely* but not guaranteed on every run/host, so we
        // only record them; the deterministic test above proves the defect.
        let _ = r.audit_anomalies;
    }

    /// Regression fixture, formerly a race-the-OS-scheduler poll loop (a
    /// million blind audits hoping to land in the debit-credit window). The
    /// checker makes the window a scheduling decision: DFS steers an audit
    /// into it deterministically, the shrinker reduces the reproduction to
    /// its essential preemptions, and random mode pins a replayable seed —
    /// the E13 "known bug detected" row. If someone "fixes" the bank by
    /// holding both locks across the transfer, this test fails and the
    /// fixture must be updated deliberately.
    #[test]
    fn checker_broken_bank_audit_anomaly_is_rediscovered() {
        let model = || {
            let bank = std::sync::Arc::new(BrokenComposedBank::new(2, 100));
            let t = {
                let bank = std::sync::Arc::clone(&bank);
                syscheck::shim::spawn(move || {
                    assert!(bank.transfer(0, 1, 30));
                })
            };
            let observed = bank.audit();
            assert_eq!(observed, 200, "audit saw vanished money");
            t.join().unwrap();
            u64::try_from(bank.audit()).expect("non-negative")
        };
        let cfg = syscheck::Config::default();
        let ex = syscheck::explore(&cfg, model);
        let failure = ex.failure.expect("DFS must expose the audit anomaly");
        assert_eq!(failure.kind, syscheck::FailureKind::Panic);
        assert!(
            failure.message.contains("vanished money"),
            "{}",
            failure.message
        );
        assert!(
            ex.schedules <= 10_000,
            "within the E13 budget: {}",
            ex.schedules
        );

        let shrunk = syscheck::shrink::shrink_failure(&cfg, &failure, model);
        assert!(shrunk.report.failure.is_some());
        assert!(
            (1..=2).contains(&shrunk.deviations.len()),
            "the anomaly needs 1-2 preemptions: {:?}",
            shrunk.deviations
        );

        let exr = syscheck::explore_random(&cfg, 0xE13, model);
        let rf = exr.failure.expect("random mode must also find it");
        let seed = rf.seed.expect("random failures carry seeds");
        let replay = syscheck::replay_seed(&cfg, seed, model);
        assert_eq!(
            replay
                .failure
                .expect("seed replay fails too")
                .trace
                .digest(),
            rf.trace.digest()
        );
    }

    /// The coarse bank under the checker: no interleaving of a transfer and
    /// an audit can observe a torn total.
    #[test]
    fn checker_coarse_bank_audit_always_conserves() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let bank = std::sync::Arc::new(CoarseLockBank::new(2, 100));
            let t = {
                let bank = std::sync::Arc::clone(&bank);
                syscheck::shim::spawn(move || {
                    assert!(bank.transfer(0, 1, 30));
                })
            };
            let total = bank.audit();
            assert_eq!(total, 200);
            t.join().unwrap();
            assert_eq!(bank.audit(), 200);
            0
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete);
    }

    /// The fine bank's ordered two-phase locking: opposite-direction
    /// transfers must not deadlock in any schedule (drop the ordering and
    /// the checker reports the ABBA deadlock), and the audit never tears.
    #[test]
    fn checker_fine_bank_opposite_transfers_no_deadlock() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let bank = std::sync::Arc::new(FineLockBank::new(2, 100));
            let t = {
                let bank = std::sync::Arc::clone(&bank);
                syscheck::shim::spawn(move || {
                    bank.transfer(1, 0, 10);
                })
            };
            bank.transfer(0, 1, 10);
            t.join().unwrap();
            let total = bank.audit();
            assert_eq!(total, 200);
            0
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
        assert!(ex.complete);
    }

    /// The STM bank under the checker: transfer versus audit, exhaustively.
    #[test]
    fn checker_stm_bank_audit_always_conserves() {
        let ex = syscheck::explore(&syscheck::Config::default(), || {
            let bank = std::sync::Arc::new(StmBank::new(2, 100));
            let t = {
                let bank = std::sync::Arc::clone(&bank);
                syscheck::shim::spawn(move || {
                    assert!(bank.transfer(0, 1, 30));
                })
            };
            let total = bank.audit();
            assert_eq!(total, 200);
            t.join().unwrap();
            0
        });
        assert!(ex.failure.is_none(), "{:?}", ex.failure);
    }

    /// The one intentionally wall-clock stress run for this module: the
    /// original poll-the-window detector, real threads and all. The checker
    /// model above proves the defect deterministically; this keeps evidence
    /// that it is observable on real hardware too.
    #[test]
    #[ignore = "wall-clock stress; run with --ignored"]
    fn stress_broken_bank_anomaly_with_real_threads() {
        use std::sync::atomic::AtomicBool;
        let bank = BrokenComposedBank::new(2, 100);
        let stop = AtomicBool::new(false);
        let mut detected = false;
        std::thread::scope(|scope| {
            let bank_ref = &bank;
            let stop_ref = &stop;
            scope.spawn(move || {
                while !stop_ref.load(Ordering::Acquire) {
                    bank_ref.transfer(0, 1, 10);
                    bank_ref.transfer(1, 0, 10);
                }
            });
            for _ in 0..1_000_000 {
                if bank.in_flight() > 0 && bank.audit() != 200 {
                    detected = true;
                    break;
                }
            }
            stop.store(true, Ordering::Release);
        });
        assert!(
            detected,
            "the composition bug must be observable under contention"
        );
        assert_eq!(bank.audit(), 200, "quiescent total is still conserved");
    }

    #[test]
    fn reports_compute_throughput() {
        let bank = CoarseLockBank::new(4, 100);
        let r = run_contention(&bank, 2, 100);
        assert_eq!(r.transfers, 200);
        assert!(r.throughput() > 0.0);
    }
}
