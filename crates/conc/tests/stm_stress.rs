//! Stress and semantics tests for the STM and channels beyond the unit
//! suites: snapshot isolation for readers, invariant preservation under
//! heavy contention, composed alternatives, and bounded-channel pipelines.

use std::sync::Arc;
use std::thread;
use sysconc::channel::bounded;
use sysconc::stm::{atomically, StmResult, TVar, Tx};

#[test]
fn readers_always_see_consistent_snapshots() {
    // Writers keep `a + b == 0` true transactionally; readers must never
    // observe a violation, no matter how the commits interleave.
    let a = Arc::new(TVar::new(0i64));
    let b = Arc::new(TVar::new(0i64));
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            thread::spawn(move || {
                for i in 0..3_000i64 {
                    let delta = (i % 17) - 8 + t;
                    atomically(|tx| {
                        let va = tx.read(&a)?;
                        let vb = tx.read(&b)?;
                        tx.write(&a, va + delta)?;
                        tx.write(&b, vb - delta)
                    });
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            thread::spawn(move || {
                for _ in 0..3_000 {
                    let (va, vb) = atomically(|tx| {
                        let va = tx.read(&a)?;
                        let vb = tx.read(&b)?;
                        Ok((va, vb))
                    });
                    assert_eq!(va + vb, 0, "snapshot violated the invariant");
                }
            })
        })
        .collect();
    for h in writers.into_iter().chain(readers) {
        h.join().unwrap();
    }
    assert_eq!(a.read_atomic() + b.read_atomic(), 0);
}

#[test]
fn ring_rotation_preserves_multiset() {
    // N TVars arranged in a ring; each transaction rotates three adjacent
    // cells. The multiset of values is invariant.
    const N: usize = 12;
    let ring: Arc<Vec<TVar<i64>>> = Arc::new(
        (0..N)
            .map(|i| TVar::new(i64::try_from(i).unwrap()))
            .collect(),
    );
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for i in 0..2_000 {
                    let start = (i * 5 + t * 3) % N;
                    atomically(|tx| {
                        let x = tx.read(&ring[start])?;
                        let y = tx.read(&ring[(start + 1) % N])?;
                        let z = tx.read(&ring[(start + 2) % N])?;
                        tx.write(&ring[start], z)?;
                        tx.write(&ring[(start + 1) % N], x)?;
                        tx.write(&ring[(start + 2) % N], y)
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut values: Vec<i64> = ring.iter().map(TVar::read_atomic).collect();
    values.sort_unstable();
    let expected: Vec<i64> = (0..N).map(|i| i64::try_from(i).unwrap()).collect();
    assert_eq!(values, expected, "rotation lost or duplicated a value");
}

#[test]
fn nested_or_else_takes_the_first_ready_alternative() {
    let q1 = TVar::new(Vec::<i64>::new());
    let q2 = TVar::new(vec![7i64]);
    let q3 = TVar::new(vec![9i64]);
    let take_from = |q: TVar<Vec<i64>>| {
        move |tx: &mut Tx| -> StmResult<i64> {
            let mut items = tx.read(&q)?;
            match items.pop() {
                Some(v) => {
                    tx.write(&q, items)?;
                    Ok(v)
                }
                None => tx.retry(),
            }
        }
    };
    let got = atomically(|tx| {
        let a = take_from(q1.clone());
        let b = take_from(q2.clone());
        let c = take_from(q3.clone());
        tx.or_else(a, move |tx| tx.or_else(b, c))
    });
    assert_eq!(got, 7, "second alternative was the first ready one");
    assert!(q2.read_atomic().is_empty());
    assert_eq!(q3.read_atomic(), vec![9], "third alternative untouched");
}

#[test]
fn bounded_pipeline_moves_every_item_under_backpressure() {
    // producer -> stage -> consumer through two bounded(4) channels.
    let (tx1, rx1) = bounded::<u64>(4);
    let (tx2, rx2) = bounded::<u64>(4);
    const ITEMS: u64 = 5_000;
    let producer = thread::spawn(move || {
        for i in 0..ITEMS {
            tx1.send(i).unwrap();
        }
    });
    let stage = thread::spawn(move || {
        while let Ok(v) = rx1.recv() {
            tx2.send(v * 2).unwrap();
        }
    });
    let consumer = thread::spawn(move || {
        let mut sum = 0u64;
        let mut count = 0u64;
        while let Ok(v) = rx2.recv() {
            sum += v;
            count += 1;
        }
        (sum, count)
    });
    producer.join().unwrap();
    stage.join().unwrap();
    let (sum, count) = consumer.join().unwrap();
    assert_eq!(count, ITEMS);
    assert_eq!(sum, ITEMS * (ITEMS - 1)); // 2 * sum(0..ITEMS)
}

#[test]
fn stm_and_channels_compose_in_one_program() {
    // Workers pull jobs from a channel and commit results into TVars.
    let (tx, rx) = bounded::<usize>(8);
    let cells: Arc<Vec<TVar<i64>>> = Arc::new((0..16).map(|_| TVar::new(0i64)).collect());
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let rx = rx.clone();
            let cells = Arc::clone(&cells);
            thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    atomically(|tx| {
                        let v = tx.read(&cells[job % 16])?;
                        tx.write(&cells[job % 16], v + 1)
                    });
                }
            })
        })
        .collect();
    drop(rx);
    for job in 0..1_600 {
        tx.send(job).unwrap();
    }
    drop(tx);
    for w in workers {
        w.join().unwrap();
    }
    let total: i64 = cells.iter().map(TVar::read_atomic).sum();
    assert_eq!(total, 1_600);
}
