//! Kernel objects and capabilities.

use crate::rights::Rights;
use std::fmt;

/// Kernel object identifier (index into the kernel's object table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// What kind of object a capability names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// A schedulable process.
    Process,
    /// A synchronous IPC endpoint.
    Endpoint,
    /// A fixed-size memory page.
    Page,
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectKind::Process => "process",
            ObjectKind::Endpoint => "endpoint",
            ObjectKind::Page => "page",
        };
        f.write_str(s)
    }
}

/// A capability: unforgeable reference + rights. Capabilities are the *only*
/// way to name kernel objects — there is no global namespace to attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capability {
    /// Target object.
    pub target: ObjId,
    /// Kind of the target (cached for error messages; validated on use).
    pub kind: ObjectKind,
    /// Rights over the target.
    pub rights: Rights,
}

impl Capability {
    /// Creates a capability.
    #[must_use]
    pub fn new(target: ObjId, kind: ObjectKind, rights: Rights) -> Self {
        Capability {
            target,
            kind,
            rights,
        }
    }

    /// Mints a diminished copy: the result's rights are the intersection of
    /// this capability's rights with `requested`. Never amplifies.
    #[must_use]
    pub fn mint(&self, requested: Rights) -> Capability {
        Capability {
            target: self.target,
            kind: self.kind,
            rights: self.rights & requested,
        }
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cap({} {} [{}])", self.kind, self.target, self.rights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_intersects_rights() {
        let c = Capability::new(ObjId(1), ObjectKind::Endpoint, Rights::SEND | Rights::GRANT);
        let m = c.mint(Rights::SEND | Rights::RECV);
        assert_eq!(m.rights, Rights::SEND);
        assert_eq!(m.target, c.target);
    }

    #[test]
    fn mint_can_only_diminish() {
        let c = Capability::new(ObjId(1), ObjectKind::Page, Rights::READ);
        let m = c.mint(Rights::ALL);
        assert!(c.rights.contains(m.rights));
    }

    #[test]
    fn display_shows_kind_target_rights() {
        let c = Capability::new(ObjId(2), ObjectKind::Page, Rights::READ | Rights::WRITE);
        assert_eq!(c.to_string(), "cap(page obj2 [RW])");
    }
}
