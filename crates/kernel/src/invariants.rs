//! Kernel invariants as machine-checkable contracts — the paper's
//! Challenge 1 ("application constraint checking") applied to the paper's
//! own application domain.
//!
//! Each invariant is a [`bitc_verify::vcgen::Procedure`] modelling one
//! kernel state transition plus the property it must preserve. The prover
//! discharges all of them ([`invariant_suite`]); the *seeded-bug* variants
//! ([`seeded_bug_suite`]) contain deliberate, realistic mistakes (a missing
//! ring-buffer wrap, a rights check dropped) that the prover must refute
//! with a concrete counterexample — demonstrating the workflow the paper
//! says systems programmers need from a language toolchain.

use bitc_verify::term::{Cmp, Formula, Term};
use bitc_verify::vcgen::{Procedure, Stmt};

fn v(n: &str) -> Term {
    Term::var(n)
}

fn int(n: i64) -> Term {
    Term::Int(n)
}

fn plus(a: Term, b: Term) -> Term {
    Term::Add(Box::new(a), Box::new(b))
}

fn bit_constraint(name: &str) -> Formula {
    Formula::and(
        Formula::cmp(Cmp::Ge, v(name), int(0)),
        Formula::cmp(Cmp::Le, v(name), int(1)),
    )
}

/// Mint monotonicity: for every rights bit, the minted capability's bit is
/// the conjunction of the source bit and the requested bit — so minted
/// rights never exceed source rights.
///
/// With `seeded_bug`, one bit copies the *request* unconditionally (the
/// classic "forgot to intersect" mistake); the prover finds the
/// amplification.
#[must_use]
pub fn mint_procedure(seeded_bug: bool) -> Procedure {
    const BITS: usize = 3; // READ, WRITE, GRANT — enough to show the shape
    let mut requires = vec![Formula::True];
    let mut body = Vec::new();
    let mut ensures = vec![Formula::True];
    for i in 0..BITS {
        let src = format!("src{i}");
        let req = format!("req{i}");
        let out = format!("out{i}");
        requires.push(bit_constraint(&src));
        requires.push(bit_constraint(&req));
        let both = Formula::and(
            Formula::cmp(Cmp::Eq, v(&src), int(1)),
            Formula::cmp(Cmp::Eq, v(&req), int(1)),
        );
        if seeded_bug && i == 1 {
            // Bug: out1 := req1 (source ignored — amplification possible).
            body.push(Stmt::Assign(out.clone(), v(&req)));
        } else {
            body.push(Stmt::If(
                both,
                vec![Stmt::Assign(out.clone(), int(1))],
                vec![Stmt::Assign(out.clone(), int(0))],
            ));
        }
        // No amplification: out_i <= src_i.
        ensures.push(Formula::cmp(Cmp::Le, v(&out), v(&src)));
    }
    Procedure {
        name: if seeded_bug {
            "mint-buggy".into()
        } else {
            "mint".into()
        },
        requires: Formula::And(requires),
        ensures: Formula::And(ensures),
        body,
    }
}

/// Capability-space lookup stays in bounds: given `0 <= slot < size`, the
/// computed table address lies inside `[base, base + size)`.
#[must_use]
pub fn cspace_lookup_procedure(seeded_bug: bool) -> Procedure {
    let requires = Formula::And(vec![
        Formula::cmp(Cmp::Ge, v("slot"), int(0)),
        // The buggy variant uses <= where < is needed (off-by-one).
        if seeded_bug {
            Formula::cmp(Cmp::Le, v("slot"), v("size"))
        } else {
            Formula::cmp(Cmp::Lt, v("slot"), v("size"))
        },
        Formula::cmp(Cmp::Ge, v("base"), int(0)),
        Formula::cmp(Cmp::Ge, v("size"), int(1)),
    ]);
    let body = vec![Stmt::Assign("addr".into(), plus(v("base"), v("slot")))];
    let ensures = Formula::And(vec![
        Formula::cmp(Cmp::Ge, v("addr"), v("base")),
        Formula::cmp(Cmp::Lt, v("addr"), plus(v("base"), v("size"))),
    ]);
    Procedure {
        name: if seeded_bug {
            "cspace-lookup-buggy".into()
        } else {
            "cspace-lookup".into()
        },
        requires,
        ensures,
        body,
    }
}

/// Endpoint ring-buffer enqueue preserves `0 <= tail < cap` and
/// `count <= cap`. The buggy variant forgets the wrap-around, so `tail`
/// escapes the buffer — the bounds bug that becomes a kernel memory-safety
/// hole in C.
#[must_use]
pub fn queue_enqueue_procedure(seeded_bug: bool) -> Procedure {
    let requires = Formula::And(vec![
        Formula::cmp(Cmp::Ge, v("tail"), int(0)),
        Formula::cmp(Cmp::Lt, v("tail"), v("cap")),
        Formula::cmp(Cmp::Ge, v("count"), int(0)),
        Formula::cmp(Cmp::Lt, v("count"), v("cap")),
        Formula::cmp(Cmp::Ge, v("cap"), int(1)),
    ]);
    let bump = Stmt::Assign("tail".into(), plus(v("tail"), int(1)));
    let wrap = Stmt::If(
        Formula::cmp(Cmp::Ge, v("tail"), v("cap")),
        vec![Stmt::Assign("tail".into(), int(0))],
        vec![],
    );
    let body = if seeded_bug {
        vec![bump, Stmt::Assign("count".into(), plus(v("count"), int(1)))]
    } else {
        vec![
            bump,
            wrap,
            Stmt::Assign("count".into(), plus(v("count"), int(1))),
        ]
    };
    let ensures = Formula::And(vec![
        Formula::cmp(Cmp::Ge, v("tail"), int(0)),
        Formula::cmp(Cmp::Lt, v("tail"), v("cap")),
        Formula::cmp(Cmp::Le, v("count"), v("cap")),
    ]);
    Procedure {
        name: if seeded_bug {
            "queue-enqueue-buggy".into()
        } else {
            "queue-enqueue".into()
        },
        requires,
        ensures,
        body,
    }
}

/// Scheduler state exclusivity: a process is exactly one of
/// {ready, blocked, dead} before and after a block transition.
#[must_use]
pub fn scheduler_block_procedure(seeded_bug: bool) -> Procedure {
    let one_hot = |r: &str, b: &str, d: &str| {
        Formula::And(vec![
            bit_constraint(r),
            bit_constraint(b),
            bit_constraint(d),
            Formula::cmp(Cmp::Eq, plus(plus(v(r), v(b)), v(d)), int(1)),
        ])
    };
    let requires = Formula::and(
        one_hot("ready", "blocked", "dead"),
        // Only a ready process can block.
        Formula::cmp(Cmp::Eq, v("ready"), int(1)),
    );
    let body = if seeded_bug {
        // Bug: marks blocked without clearing ready (process on two queues).
        vec![Stmt::Assign("blocked".into(), int(1))]
    } else {
        vec![
            Stmt::Assign("ready".into(), int(0)),
            Stmt::Assign("blocked".into(), int(1)),
        ]
    };
    let ensures = one_hot("ready", "blocked", "dead");
    Procedure {
        name: if seeded_bug {
            "sched-block-buggy".into()
        } else {
            "sched-block".into()
        },
        requires,
        ensures,
        body,
    }
}

/// IPC payload copy bound: copying `len` words starting at `dst` stays in a
/// buffer of `buf` words when `len <= buf` and offsets are in range.
#[must_use]
pub fn ipc_copy_procedure(seeded_bug: bool) -> Procedure {
    let requires = Formula::And(vec![
        Formula::cmp(Cmp::Ge, v("len"), int(0)),
        if seeded_bug {
            // Bug: validates against the *request* size, not the buffer.
            Formula::cmp(Cmp::Le, v("len"), v("req"))
        } else {
            Formula::cmp(Cmp::Le, v("len"), v("buf"))
        },
        Formula::cmp(Cmp::Ge, v("buf"), int(0)),
        Formula::cmp(Cmp::Ge, v("req"), int(0)),
    ]);
    let body = vec![Stmt::Assign("end".into(), v("len"))];
    let ensures = Formula::cmp(Cmp::Le, v("end"), v("buf"));
    Procedure {
        name: if seeded_bug {
            "ipc-copy-buggy".into()
        } else {
            "ipc-copy".into()
        },
        requires,
        ensures,
        body,
    }
}

/// Watchdog reap transition: reaping an overdue blocked IPC moves the
/// process from blocked to ready, preserving state exclusivity — a reaped
/// process must never sit on both the blocked and ready queues. The buggy
/// variant wakes the process without clearing the blocked bit, the exact
/// double-queue mistake that turns a recovery path into a scheduler
/// corruption.
#[must_use]
pub fn watchdog_reap_procedure(seeded_bug: bool) -> Procedure {
    let one_hot = |r: &str, b: &str, d: &str| {
        Formula::And(vec![
            bit_constraint(r),
            bit_constraint(b),
            bit_constraint(d),
            Formula::cmp(Cmp::Eq, plus(plus(v(r), v(b)), v(d)), int(1)),
        ])
    };
    let requires = Formula::And(vec![
        one_hot("ready", "blocked", "dead"),
        // Only a blocked process with an expired deadline is reaped.
        Formula::cmp(Cmp::Eq, v("blocked"), int(1)),
        Formula::cmp(Cmp::Ge, v("now"), int(0)),
        Formula::cmp(Cmp::Ge, v("deadline"), int(0)),
        Formula::cmp(Cmp::Lt, v("deadline"), v("now")),
    ]);
    let body = if seeded_bug {
        // Bug: wakes without clearing blocked (process on two queues).
        vec![Stmt::Assign("ready".into(), int(1))]
    } else {
        vec![
            Stmt::Assign("blocked".into(), int(0)),
            Stmt::Assign("ready".into(), int(1)),
        ]
    };
    let ensures = Formula::and(
        one_hot("ready", "blocked", "dead"),
        Formula::cmp(Cmp::Eq, v("blocked"), int(0)),
    );
    Procedure {
        name: if seeded_bug {
            "watchdog-reap-buggy".into()
        } else {
            "watchdog-reap".into()
        },
        requires,
        ensures,
        body,
    }
}

/// The full invariant suite: every procedure here must verify.
#[must_use]
pub fn invariant_suite() -> Vec<Procedure> {
    vec![
        mint_procedure(false),
        cspace_lookup_procedure(false),
        queue_enqueue_procedure(false),
        scheduler_block_procedure(false),
        ipc_copy_procedure(false),
        watchdog_reap_procedure(false),
    ]
}

/// Seeded-bug variants: every procedure here must be *refuted* with a
/// counterexample (a prover that proves these is broken).
#[must_use]
pub fn seeded_bug_suite() -> Vec<Procedure> {
    vec![
        mint_procedure(true),
        cspace_lookup_procedure(true),
        queue_enqueue_procedure(true),
        scheduler_block_procedure(true),
        ipc_copy_procedure(true),
        watchdog_reap_procedure(true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitc_verify::vcgen::{is_verified, verify_procedure, VcOutcome};

    #[test]
    fn all_correct_invariants_verify() {
        for proc in invariant_suite() {
            assert!(is_verified(&proc), "{} failed to verify", proc.name);
        }
    }

    #[test]
    fn all_seeded_bugs_are_refuted() {
        for proc in seeded_bug_suite() {
            let results = verify_procedure(&proc);
            let refuted = results
                .iter()
                .any(|(_, o)| matches!(o, VcOutcome::Refuted(_)));
            assert!(refuted, "{} should have been refuted", proc.name);
        }
    }

    #[test]
    fn mint_bug_counterexample_shows_amplification() {
        let results = verify_procedure(&mint_procedure(true));
        let (_, outcome) = &results[0];
        let VcOutcome::Refuted(model) = outcome else {
            panic!("expected refutation, got {outcome}");
        };
        // The counterexample must set src1 = 0 with req1 = 1: rights from
        // nowhere.
        assert!(model.contains("src1 = 0"), "model: {model}");
        assert!(model.contains("req1 = 1"), "model: {model}");
    }

    #[test]
    fn queue_bug_counterexample_is_the_wrap_case() {
        let results = verify_procedure(&queue_enqueue_procedure(true));
        let (_, outcome) = &results[0];
        assert!(matches!(outcome, VcOutcome::Refuted(_)), "got {outcome}");
    }

    #[test]
    fn suite_names_are_distinct() {
        let mut names: Vec<String> = invariant_suite().into_iter().map(|p| p.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
