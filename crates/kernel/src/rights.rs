//! The capability rights lattice.
//!
//! Rights form a powerset lattice ordered by inclusion; the kernel's core
//! security invariant — *no operation ever produces a capability with rights
//! outside its source's* — is monotonicity in this lattice. The invariant is
//! checked at runtime here and proved over the abstract transition system in
//! [`crate::invariants`].

use std::fmt;
use std::ops::{BitAnd, BitOr};

/// A set of capability rights (a tiny hand-rolled bitset: the dependency
/// policy keeps `bitflags` out).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rights(u8);

impl Rights {
    /// No rights.
    pub const NONE: Rights = Rights(0);
    /// Read object contents (pages).
    pub const READ: Rights = Rights(1);
    /// Write object contents (pages).
    pub const WRITE: Rights = Rights(1 << 1);
    /// Send to an endpoint.
    pub const SEND: Rights = Rights(1 << 2);
    /// Receive from an endpoint.
    pub const RECV: Rights = Rights(1 << 3);
    /// Mint diminished copies and transfer them to other processes.
    pub const GRANT: Rights = Rights(1 << 4);
    /// Destroy or mutate the object itself.
    pub const CONTROL: Rights = Rights(1 << 5);
    /// Every right.
    pub const ALL: Rights = Rights(0b11_1111);

    /// True if `self` includes every right in `other`.
    #[must_use]
    pub fn contains(self, other: Rights) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if no rights are present.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set difference.
    #[must_use]
    pub fn without(self, other: Rights) -> Rights {
        Rights(self.0 & !other.0)
    }

    /// The raw bits (used by the prover encoding).
    #[must_use]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs from raw bits, masking unknown bits away.
    #[must_use]
    pub fn from_bits(bits: u8) -> Rights {
        Rights(bits & Rights::ALL.0)
    }
}

impl BitOr for Rights {
    type Output = Rights;

    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

impl BitAnd for Rights {
    type Output = Rights;

    fn bitand(self, rhs: Rights) -> Rights {
        Rights(self.0 & rhs.0)
    }
}

impl fmt::Display for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "-");
        }
        let names = [
            (Rights::READ, "R"),
            (Rights::WRITE, "W"),
            (Rights::SEND, "S"),
            (Rights::RECV, "V"),
            (Rights::GRANT, "G"),
            (Rights::CONTROL, "C"),
        ];
        for (r, n) in names {
            if self.contains(r) {
                f.write_str(n)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_is_subset_order() {
        let rw = Rights::READ | Rights::WRITE;
        assert!(rw.contains(Rights::READ));
        assert!(rw.contains(Rights::NONE));
        assert!(!rw.contains(Rights::SEND));
        assert!(Rights::ALL.contains(rw));
    }

    #[test]
    fn without_removes_rights() {
        let r = Rights::ALL.without(Rights::GRANT);
        assert!(!r.contains(Rights::GRANT));
        assert!(r.contains(Rights::CONTROL));
    }

    #[test]
    fn intersection_models_mint() {
        let source = Rights::READ | Rights::SEND;
        let requested = Rights::SEND | Rights::WRITE;
        let minted = source & requested;
        assert_eq!(minted, Rights::SEND);
        assert!(source.contains(minted), "mint is always non-amplifying");
    }

    #[test]
    fn from_bits_masks_garbage() {
        assert_eq!(Rights::from_bits(0xFF), Rights::ALL);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!((Rights::READ | Rights::GRANT).to_string(), "RG");
        assert_eq!(Rights::NONE.to_string(), "-");
    }
}
