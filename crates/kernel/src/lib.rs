//! # microkernel — an EROS/Coyotos-flavoured capability kernel simulator
//!
//! Shapiro's day job — and the workload that motivates the whole paper — is
//! high-performance capability microkernels (EROS, Coyotos). This crate
//! simulates that world so the reproduction can measure the claims *in
//! situ*:
//!
//! * [`rights`] / [`object`] — capabilities with a rights lattice over kernel
//!   objects (processes, endpoints, pages),
//! * [`kernel`] — the kernel proper: per-process capability spaces,
//!   synchronous rendezvous IPC, a round-robin scheduler, and a syscall
//!   interface; message buffers are allocated through any
//!   [`sysmem::Manager`], which is how experiment E6 injects different heap
//!   policies into the IPC fast path,
//! * [`cycles`] — a transparent cost model (the paper's "transparency":
//!   the programmer can predict machine-level cost) charging every syscall,
//!   capability lookup, and copied word,
//! * [`invariants`] — kernel invariants (no rights amplification, c-space
//!   bounds, queue sanity) expressed as `bitc-verify` contracts and
//!   discharged by the prover (experiment E5), including seeded-bug variants
//!   the prover must refute.
//!
//! ```
//! use microkernel::kernel::{Kernel, Message, Syscall, SysResult};
//! use microkernel::rights::Rights;
//!
//! let mut k = Kernel::with_default_heap();
//! let server = k.spawn_process();
//! let client = k.spawn_process();
//! let ep = k.create_endpoint(server).unwrap();
//! let ep_client = k.grant_cap(server, ep, client, Rights::SEND).unwrap();
//!
//! // Server waits; client sends; rendezvous delivers.
//! assert_eq!(k.syscall(server, Syscall::Recv { cap: ep }).unwrap(), SysResult::Blocked);
//! k.syscall(client, Syscall::Send { cap: ep_client, msg: Message::words(&[42]) }).unwrap();
//! let msg = k.take_delivered(server).unwrap();
//! assert_eq!(msg.payload, vec![42]);
//! ```

pub mod cycles;
pub mod invariants;
pub mod kernel;
pub mod object;
pub mod rights;

use std::fmt;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A slot index in a process's capability space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CapSlot(pub u32);

impl fmt::Display for CapSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// Kernel errors. Every failed syscall names its reason; nothing faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The pid does not name a live process.
    NoSuchProcess(Pid),
    /// The slot is empty or out of range.
    InvalidCapSlot(CapSlot),
    /// The capability lacks a required right.
    InsufficientRights {
        /// Right that was required.
        required: &'static str,
    },
    /// The capability's target object was destroyed.
    DanglingCapability,
    /// Operation is invalid for the object kind.
    WrongObjectKind {
        /// What the operation expected.
        expected: &'static str,
    },
    /// Attempted to mint a capability with rights not in the source.
    RightsAmplification,
    /// Page offset out of range.
    PageFault {
        /// Offending offset.
        offset: usize,
    },
    /// Kernel heap exhausted.
    OutOfMemory,
    /// The process is blocked and cannot issue syscalls.
    ProcessBlocked(Pid),
    /// The process has exited.
    ProcessDead(Pid),
    /// C-space is full.
    CapSpaceFull,
    /// A blocked IPC exceeded its deadline and was reaped by the watchdog,
    /// or a retried operation exhausted its retry budget.
    TimedOut(Pid),
    /// Kernel heap bookkeeping failed mid-operation (a stored message's
    /// backing object vanished). Always a kernel bug, never user error —
    /// but reported, not panicked.
    HeapCorruption,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchProcess(p) => write!(f, "no such process {p}"),
            KernelError::InvalidCapSlot(s) => write!(f, "invalid capability {s}"),
            KernelError::InsufficientRights { required } => {
                write!(f, "capability lacks {required} right")
            }
            KernelError::DanglingCapability => write!(f, "capability target was destroyed"),
            KernelError::WrongObjectKind { expected } => {
                write!(f, "operation requires a {expected} capability")
            }
            KernelError::RightsAmplification => {
                write!(f, "mint would amplify rights")
            }
            KernelError::PageFault { offset } => write!(f, "page fault at offset {offset}"),
            KernelError::OutOfMemory => write!(f, "kernel heap exhausted"),
            KernelError::ProcessBlocked(p) => write!(f, "process {p} is blocked"),
            KernelError::ProcessDead(p) => write!(f, "process {p} has exited"),
            KernelError::CapSpaceFull => write!(f, "capability space is full"),
            KernelError::TimedOut(p) => write!(f, "process {p} timed out"),
            KernelError::HeapCorruption => write!(f, "kernel heap bookkeeping corrupted"),
        }
    }
}

impl std::error::Error for KernelError {}

/// Kernel result alias.
pub type Result<T> = std::result::Result<T, KernelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_compactly() {
        assert_eq!(Pid(3).to_string(), "pid3");
        assert_eq!(CapSlot(7).to_string(), "slot7");
    }

    #[test]
    fn errors_name_their_cause() {
        let e = KernelError::InsufficientRights { required: "WRITE" };
        assert_eq!(e.to_string(), "capability lacks WRITE right");
        assert!(KernelError::RightsAmplification
            .to_string()
            .contains("amplify"));
    }
}
