//! The transparent cost model.
//!
//! The paper's footnote 2 defines "transparency" as an implementation in
//! which the programmer has a relatively direct understanding of
//! machine-level behaviour. This module is that understanding, reified: a
//! fixed, documented cycle price for every kernel operation, accumulated on
//! a counter the benches read. The constants are loosely calibrated to the
//! published EROS IPC breakdowns (syscall entry/exit and context switch
//! dominate; per-word copy is cheap).

/// Cycle cost of syscall entry + exit (trap, register save/restore).
pub const SYSCALL: u64 = 150;
/// Cycle cost of one capability-space lookup.
pub const CAP_LOOKUP: u64 = 20;
/// Cycle cost of a context switch between processes.
pub const CONTEXT_SWITCH: u64 = 250;
/// Cycle cost per payload word copied through the kernel.
pub const COPY_WORD: u64 = 2;
/// Cycle cost of a scheduler decision.
pub const SCHEDULE: u64 = 40;
/// Cycle cost of allocating a kernel object (excluding heap-manager time).
pub const OBJECT_ALLOC: u64 = 60;
/// Cycle cost of a rights check.
pub const RIGHTS_CHECK: u64 = 4;
/// Cycle cost of the watchdog reaping one overdue blocked IPC (queue
/// removal, message teardown, wakeup).
pub const WATCHDOG_REAP: u64 = 120;
/// Base cycle cost of one retry backoff step; attempt `k` waits
/// `BACKOFF_BASE << k` cycles (exponential backoff).
pub const BACKOFF_BASE: u64 = 400;

/// A cycle accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleCounter {
    total: u64,
}

impl CycleCounter {
    /// Zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` cycles.
    pub fn charge(&mut self, n: u64) {
        self.total = self.total.saturating_add(n);
    }

    /// Total cycles consumed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Difference since an earlier snapshot.
    #[must_use]
    pub fn since(&self, snapshot: CycleCounter) -> u64 {
        self.total - snapshot.total
    }
}

/// Cycle cost of delivering a message of `words` payload words over the IPC
/// fast path (send syscall + lookup + checks + copy + switch to receiver).
#[must_use]
pub fn ipc_fast_path(words: usize) -> u64 {
    SYSCALL + CAP_LOOKUP + RIGHTS_CHECK + COPY_WORD * words as u64 + CONTEXT_SWITCH
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_snapshots() {
        let mut c = CycleCounter::new();
        c.charge(SYSCALL);
        let snap = c;
        c.charge(CONTEXT_SWITCH);
        assert_eq!(c.total(), SYSCALL + CONTEXT_SWITCH);
        assert_eq!(c.since(snap), CONTEXT_SWITCH);
    }

    #[test]
    fn fast_path_scales_linearly_in_payload() {
        let base = ipc_fast_path(0);
        assert_eq!(ipc_fast_path(64) - base, 128);
    }

    #[test]
    fn fixed_costs_dominate_small_messages() {
        // The paper's F1 argument: for small messages the constant overheads
        // are the message cost; a 1.5x regression there is a 1.5x IPC
        // regression.
        assert!(ipc_fast_path(8) < 2 * ipc_fast_path(0));
    }
}
