//! The kernel proper: capability spaces, synchronous IPC, scheduling, and
//! the syscall interface.
//!
//! The design follows EROS/Coyotos in miniature: all authority flows through
//! capabilities; IPC is synchronous rendezvous through endpoints; message
//! payloads are copied through kernel heap objects. The kernel heap is any
//! [`sysmem::Manager`], injected at construction — experiment E6 swaps heap
//! policies (region, freelist, mark-sweep, generational) under the identical
//! IPC fast path and watches what happens to the tail latency.

use crate::cycles::{self, CycleCounter};
use crate::object::{Capability, ObjId, ObjectKind};
use crate::rights::Rights;
use crate::{CapSlot, KernelError, Pid, Result};
use std::collections::VecDeque;
use sysfault::SharedInjector;
use sysmem::freelist::FreeListHeap;
use sysmem::{Handle, Manager};

/// Maximum capability-space slots per process.
pub const CSPACE_CAPACITY: usize = 1024;

/// Fault site: an IPC send silently loses its message after the rights check
/// (the sender sees success; the receiver waits forever — until the
/// watchdog).
pub const SITE_IPC_DROP: &str = "kernel.ipc.drop";

/// Fault site: a kernel-heap allocation reports exhaustion regardless of the
/// heap's real state, driving the graceful-degradation path.
pub const SITE_KERNEL_OOM: &str = "kernel.oom";

/// An IPC message: payload words plus an optional capability transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Payload words.
    pub payload: Vec<u64>,
    /// Capability delivered alongside the payload, if any.
    pub cap: Option<Capability>,
    /// Causal trace context ([`sysobs::context`] carrier form; 0 = none).
    /// Stamped from the sender's thread-local context on `Send` when unset,
    /// carried through the kernel heap with the payload, and recorded on
    /// delivery — one sampled round trip links its send and recv spans.
    pub ctx: u64,
}

impl Message {
    /// A plain data message.
    #[must_use]
    pub fn words(payload: &[u64]) -> Self {
        Message {
            payload: payload.to_vec(),
            cap: None,
            ctx: 0,
        }
    }

    /// An empty message.
    #[must_use]
    pub fn empty() -> Self {
        Message {
            payload: Vec::new(),
            cap: None,
            ctx: 0,
        }
    }
}

/// Result of a successful syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysResult {
    /// Operation completed with nothing to return.
    Done,
    /// Operation completed; message was delivered to [`Kernel::take_delivered`].
    Delivered,
    /// The caller is now blocked waiting for a partner.
    Blocked,
    /// A new capability slot.
    Slot(CapSlot),
    /// A data word (page reads).
    Value(u64),
    /// The caller's blocked IPC exceeded its deadline and was reaped by the
    /// watchdog (reported by [`Kernel::poll_ipc`]).
    TimedOut,
}

/// System calls.
#[derive(Debug, Clone)]
pub enum Syscall {
    /// Send `msg` through an endpoint capability (requires SEND).
    Send {
        /// Endpoint capability slot.
        cap: CapSlot,
        /// The message.
        msg: Message,
    },
    /// Receive from an endpoint capability (requires RECV).
    Recv {
        /// Endpoint capability slot.
        cap: CapSlot,
    },
    /// Mint a diminished copy of a capability (requires GRANT).
    Mint {
        /// Source slot.
        src: CapSlot,
        /// Requested rights (intersected with the source's).
        rights: Rights,
    },
    /// Allocate a page of `words` words (returns an ALL-rights page cap).
    AllocPage {
        /// Page size in words.
        words: usize,
    },
    /// Write a word to a page (requires WRITE).
    WritePage {
        /// Page capability slot.
        cap: CapSlot,
        /// Word offset.
        offset: usize,
        /// Value to store.
        value: u64,
    },
    /// Read a word from a page (requires READ).
    ReadPage {
        /// Page capability slot.
        cap: CapSlot,
        /// Word offset.
        offset: usize,
    },
    /// Destroy an endpoint (requires CONTROL). Waiters are woken empty.
    DestroyEndpoint {
        /// Endpoint capability slot.
        cap: CapSlot,
    },
    /// Yield the CPU.
    Yield,
    /// Exit the calling process.
    Exit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Ready,
    BlockedSend(u32),
    BlockedRecv(u32),
    Dead,
}

#[derive(Debug)]
struct Process {
    state: ProcState,
    cspace: Vec<Option<Capability>>,
    delivered: VecDeque<Message>,
    /// IPC deadline in cycles: a blocked send/recv older than this is reaped
    /// by the watchdog. `None` means wait forever (the pre-fault-framework
    /// behaviour, still the default).
    deadline: Option<u64>,
    /// Cycle timestamp at which the process last blocked.
    blocked_at: u64,
    /// Set by the watchdog when it reaps this process's blocked IPC; cleared
    /// and reported by [`Kernel::poll_ipc`].
    timed_out: bool,
    /// Essential processes are never chosen by [`Kernel::shed_for_memory`].
    essential: bool,
}

#[derive(Debug)]
struct StoredMessage {
    handle: Handle,
    len: usize,
    cap: Option<Capability>,
    sender: Pid,
    /// The in-flight message's causal context (see [`Message::ctx`]).
    ctx: u64,
}

#[derive(Debug, Default)]
struct Endpoint {
    senders: VecDeque<StoredMessage>,
    receivers: VecDeque<Pid>,
    alive: bool,
}

#[derive(Debug, Clone, Copy)]
struct ObjEntry {
    kind: ObjectKind,
    index: u32,
    alive: bool,
}

#[derive(Debug, Clone, Copy)]
struct PageEntry {
    handle: Handle,
    owner: Pid,
    obj: ObjId,
    alive: bool,
}

/// Counters for the kernel's recovery machinery, read by experiment E9.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Blocked IPCs reaped by the watchdog after their deadline passed.
    pub watchdog_reaps: u64,
    /// Processes killed by graceful OOM degradation.
    pub shed_processes: u64,
    /// Messages lost to injected IPC drops.
    pub dropped_messages: u64,
    /// Allocation failures surfaced to syscalls (injected or real).
    pub oom_failures: u64,
}

impl FaultStats {
    /// Renders these counters as a [`sysobs::Snapshot`] under `kernel.*` —
    /// the kernel's slice of the unified observability surface.
    #[must_use]
    pub fn to_snapshot(&self) -> sysobs::Snapshot {
        let mut snap = sysobs::Snapshot::default();
        snap.set_counter("kernel.watchdog_reaps", self.watchdog_reaps);
        snap.set_counter("kernel.shed_processes", self.shed_processes);
        snap.set_counter("kernel.dropped_messages", self.dropped_messages);
        snap.set_counter("kernel.oom_failures", self.oom_failures);
        snap
    }
}

/// One round trip's outcome under [`Kernel::ping_pong_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpcOutcome {
    /// Total cycles charged, including failed attempts and backoff.
    pub cycles: u64,
    /// Attempts that failed before the round trip succeeded.
    pub retries: u32,
}

/// The kernel.
pub struct Kernel {
    mem: Box<dyn Manager>,
    objects: Vec<ObjEntry>,
    processes: Vec<Process>,
    endpoints: Vec<Endpoint>,
    pages: Vec<PageEntry>,
    run_queue: VecDeque<Pid>,
    injector: Option<SharedInjector>,
    fault_stats: FaultStats,
    /// Transparent cycle accounting.
    pub cycles: CycleCounter,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("heap", &self.mem.name())
            .field("processes", &self.processes.len())
            .field("endpoints", &self.endpoints.len())
            .field("cycles", &self.cycles.total())
            .finish()
    }
}

impl Kernel {
    /// Creates a kernel over the given heap manager.
    #[must_use]
    pub fn new(mem: Box<dyn Manager>) -> Self {
        Kernel {
            mem,
            objects: Vec::new(),
            processes: Vec::new(),
            endpoints: Vec::new(),
            pages: Vec::new(),
            run_queue: VecDeque::new(),
            injector: None,
            fault_stats: FaultStats::default(),
            cycles: CycleCounter::new(),
        }
    }

    /// Attaches a fault injector; kernel sites ([`SITE_IPC_DROP`],
    /// [`SITE_KERNEL_OOM`]) consult it. Without one the kernel runs
    /// fault-free with zero overhead on the fast path.
    pub fn set_injector(&mut self, injector: SharedInjector) {
        self.injector = Some(injector);
    }

    /// Recovery-machinery counters.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// One unified metrics view of this kernel instance: recovery counters
    /// (`kernel.*`), heap accounting and GC pauses (`mem.<heap>.*`), and the
    /// cycle total — the [`sysobs::Snapshot`] experiment harnesses merge
    /// with router and STM snapshots.
    #[must_use]
    pub fn metrics_snapshot(&self) -> sysobs::Snapshot {
        let mut snap = self.fault_stats.to_snapshot();
        snap.set_counter("kernel.cycles", self.cycles.total());
        snap.merge(
            &self
                .mem
                .stats()
                .to_snapshot(&format!("mem.{}", self.mem.name())),
        );
        snap
    }

    /// Runtime mirror of the six proved invariant pairs in
    /// [`crate::invariants`]: where the prover discharges each transition in
    /// isolation, this walks the *live* kernel state and checks that every
    /// transition composed so far preserved the same properties. Model
    /// checking calls it after every interleaved operation (see
    /// `tests/ipc_interleavings.rs`), so a schedule that drives
    /// `deliver_to`/`wake`/`cancel_ipc` into a corrupt state names the
    /// violated invariant instead of failing far downstream.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, named after its proved
    /// counterpart (`mint`, `cspace-lookup`, `queue-enqueue`, `sched-block`,
    /// `ipc-copy`, `watchdog-reap`), with the offending pid/endpoint.
    #[allow(clippy::missing_panics_doc)] // u32 conversions cannot fail below
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        for (i, proc) in self.processes.iter().enumerate() {
            let pid = Pid(u32::try_from(i).expect("pids fit u32"));
            // cspace-lookup: every slot stays inside the table bounds.
            if proc.cspace.len() > CSPACE_CAPACITY {
                return Err(format!("cspace-lookup: {pid} c-space exceeds capacity"));
            }
            for cap in proc.cspace.iter().flatten() {
                let Some(entry) = self.objects.get(cap.target.0 as usize) else {
                    return Err(format!(
                        "cspace-lookup: {pid} holds a capability to object {} outside the table",
                        cap.target.0
                    ));
                };
                // mint: a minted or transferred capability can never change
                // what kind of object it names (amplification across kinds).
                if entry.kind != cap.kind {
                    return Err(format!(
                        "mint: {pid} capability kind disagrees with object {}",
                        cap.target.0
                    ));
                }
            }
            // sched-block: a ready process must be schedulable (stale
            // blocked/dead queue entries are fine — schedule() drops them).
            if proc.state == ProcState::Ready && !self.run_queue.contains(&pid) {
                return Err(format!("sched-block: {pid} ready but not in the run queue"));
            }
            // watchdog-reap: reaping always wakes — a timed-out process must
            // never still sit blocked on an endpoint.
            if proc.timed_out
                && matches!(
                    proc.state,
                    ProcState::BlockedSend(_) | ProcState::BlockedRecv(_)
                )
            {
                return Err(format!("watchdog-reap: {pid} timed out yet still blocked"));
            }
            // ipc-copy: a blocked process waits in exactly one queue — the
            // one its state names.
            match proc.state {
                ProcState::BlockedSend(ep) => {
                    let (mut here, mut elsewhere) = (0usize, 0usize);
                    for (j, e) in self.endpoints.iter().enumerate() {
                        let n = e.senders.iter().filter(|s| s.sender == pid).count();
                        if j == ep as usize {
                            here = n;
                        } else {
                            elsewhere += n;
                        }
                    }
                    if here != 1 || elsewhere != 0 {
                        return Err(format!(
                            "ipc-copy: {pid} blocked sending on endpoint {ep} but queued \
                             {here} times there, {elsewhere} elsewhere"
                        ));
                    }
                }
                ProcState::BlockedRecv(ep) => {
                    let (mut here, mut elsewhere) = (0usize, 0usize);
                    for (j, e) in self.endpoints.iter().enumerate() {
                        let n = e.receivers.iter().filter(|&&p| p == pid).count();
                        if j == ep as usize {
                            here = n;
                        } else {
                            elsewhere += n;
                        }
                    }
                    if here != 1 || elsewhere != 0 {
                        return Err(format!(
                            "ipc-copy: {pid} blocked receiving on endpoint {ep} but queued \
                             {here} times there, {elsewhere} elsewhere"
                        ));
                    }
                }
                ProcState::Ready | ProcState::Dead => {}
            }
        }
        // queue-enqueue: endpoint queues only ever hold live, matching
        // waiters, and a destroyed endpoint holds nothing.
        for (j, ep) in self.endpoints.iter().enumerate() {
            if !ep.alive && (!ep.senders.is_empty() || !ep.receivers.is_empty()) {
                return Err(format!(
                    "queue-enqueue: dead endpoint {j} still queues waiters"
                ));
            }
            let ep_id = u32::try_from(j).expect("endpoint ids fit u32");
            for s in &ep.senders {
                let state = self.processes.get(s.sender.0 as usize).map(|p| p.state);
                if state != Some(ProcState::BlockedSend(ep_id)) {
                    return Err(format!(
                        "queue-enqueue: endpoint {j} queues a message from {} which is not \
                         blocked sending there ({state:?})",
                        s.sender
                    ));
                }
            }
            for &p in &ep.receivers {
                let state = self.processes.get(p.0 as usize).map(|pr| pr.state);
                if state != Some(ProcState::BlockedRecv(ep_id)) {
                    return Err(format!(
                        "queue-enqueue: endpoint {j} queues receiver {p} which is not \
                         blocked receiving there ({state:?})"
                    ));
                }
            }
        }
        Ok(())
    }

    fn inject(&mut self, site: &str) -> bool {
        self.injector.as_ref().is_some_and(|i| i.should_fail(site))
    }

    /// Creates a kernel over a 1 MiB free-list heap (the C-like default).
    #[must_use]
    pub fn with_default_heap() -> Self {
        Kernel::new(Box::new(FreeListHeap::new(1 << 20)))
    }

    /// Name of the heap policy in use.
    #[must_use]
    pub fn heap_name(&self) -> &'static str {
        self.mem.name()
    }

    fn new_object(&mut self, kind: ObjectKind, index: u32) -> ObjId {
        let id = ObjId(u32::try_from(self.objects.len()).expect("object ids fit u32"));
        self.objects.push(ObjEntry {
            kind,
            index,
            alive: true,
        });
        id
    }

    /// Spawns a new process with an empty capability space.
    pub fn spawn_process(&mut self) -> Pid {
        self.cycles.charge(cycles::OBJECT_ALLOC);
        let pid = Pid(u32::try_from(self.processes.len()).expect("pids fit u32"));
        self.processes.push(Process {
            state: ProcState::Ready,
            cspace: Vec::new(),
            delivered: VecDeque::new(),
            deadline: None,
            blocked_at: 0,
            timed_out: false,
            essential: false,
        });
        self.new_object(ObjectKind::Process, pid.0);
        self.run_queue.push_back(pid);
        pid
    }

    /// Sets the cycle deadline after which `pid`'s blocked IPCs are reaped by
    /// the watchdog sweep in [`Kernel::schedule`]. `None` waits forever.
    ///
    /// # Errors
    ///
    /// Fails if `pid` is unknown.
    pub fn set_ipc_deadline(&mut self, pid: Pid, deadline: Option<u64>) -> Result<()> {
        self.process_mut(pid)?.deadline = deadline;
        Ok(())
    }

    /// Marks `pid` essential: graceful OOM degradation will never shed it.
    ///
    /// # Errors
    ///
    /// Fails if `pid` is unknown.
    pub fn set_essential(&mut self, pid: Pid, essential: bool) -> Result<()> {
        self.process_mut(pid)?.essential = essential;
        Ok(())
    }

    fn process(&self, pid: Pid) -> Result<&Process> {
        self.processes
            .get(pid.0 as usize)
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    fn process_mut(&mut self, pid: Pid) -> Result<&mut Process> {
        self.processes
            .get_mut(pid.0 as usize)
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    fn install_cap(&mut self, pid: Pid, cap: Capability) -> Result<CapSlot> {
        let proc = self.process_mut(pid)?;
        if let Some(free) = proc.cspace.iter().position(Option::is_none) {
            proc.cspace[free] = Some(cap);
            return Ok(CapSlot(u32::try_from(free).expect("fits")));
        }
        if proc.cspace.len() >= CSPACE_CAPACITY {
            return Err(KernelError::CapSpaceFull);
        }
        proc.cspace.push(Some(cap));
        Ok(CapSlot(u32::try_from(proc.cspace.len() - 1).expect("fits")))
    }

    fn lookup_cap(&mut self, pid: Pid, slot: CapSlot) -> Result<Capability> {
        self.cycles.charge(cycles::CAP_LOOKUP);
        self.process(pid)?
            .cspace
            .get(slot.0 as usize)
            .copied()
            .flatten()
            .ok_or(KernelError::InvalidCapSlot(slot))
    }

    fn require(
        &mut self,
        cap: Capability,
        kind: ObjectKind,
        right: Rights,
        name: &'static str,
    ) -> Result<u32> {
        self.cycles.charge(cycles::RIGHTS_CHECK);
        // A capability whose target id is outside the object table is as
        // dangling as one whose target died — report it, don't index-panic.
        let entry = *self
            .objects
            .get(cap.target.0 as usize)
            .ok_or(KernelError::DanglingCapability)?;
        if !entry.alive {
            return Err(KernelError::DanglingCapability);
        }
        if entry.kind != kind {
            return Err(KernelError::WrongObjectKind {
                expected: match kind {
                    ObjectKind::Endpoint => "endpoint",
                    ObjectKind::Page => "page",
                    ObjectKind::Process => "process",
                },
            });
        }
        if !cap.rights.contains(right) {
            return Err(KernelError::InsufficientRights { required: name });
        }
        Ok(entry.index)
    }

    /// Creates an endpoint owned by `owner`, returning an ALL-rights cap.
    ///
    /// # Errors
    ///
    /// Fails if the owner is unknown or its c-space is full.
    pub fn create_endpoint(&mut self, owner: Pid) -> Result<CapSlot> {
        self.cycles.charge(cycles::OBJECT_ALLOC);
        let index = u32::try_from(self.endpoints.len()).expect("fits");
        self.endpoints.push(Endpoint {
            alive: true,
            ..Endpoint::default()
        });
        let id = self.new_object(ObjectKind::Endpoint, index);
        self.install_cap(
            owner,
            Capability::new(id, ObjectKind::Endpoint, Rights::ALL),
        )
    }

    /// Root-task operation: mints a diminished copy of `from`'s capability
    /// into `to`'s c-space (requires GRANT on the source capability).
    ///
    /// # Errors
    ///
    /// Fails on bad slots, missing GRANT, or a full destination c-space.
    pub fn grant_cap(
        &mut self,
        from: Pid,
        slot: CapSlot,
        to: Pid,
        rights: Rights,
    ) -> Result<CapSlot> {
        let cap = self.lookup_cap(from, slot)?;
        self.cycles.charge(cycles::RIGHTS_CHECK);
        if !cap.rights.contains(Rights::GRANT) {
            return Err(KernelError::InsufficientRights { required: "GRANT" });
        }
        let minted = cap.mint(rights);
        debug_assert!(cap.rights.contains(minted.rights), "mint must not amplify");
        self.install_cap(to, minted)
    }

    /// Reads the capability in one of `pid`'s slots (inspection only; the
    /// capability stays where it is).
    ///
    /// # Errors
    ///
    /// Fails on unknown pids or empty slots.
    pub fn inspect_cap(&mut self, pid: Pid, slot: CapSlot) -> Result<Capability> {
        self.lookup_cap(pid, slot)
    }

    /// The set of object ids `pid` currently holds capabilities to — its
    /// *authority*. Confinement reasoning in the EROS tradition: authority
    /// can only grow through a capability explicitly transferred over an
    /// endpoint both parties can reach; two processes with disjoint
    /// authority can never affect each other, and the tests prove it by
    /// running adversarial syscall sequences.
    #[must_use]
    pub fn authority(&self, pid: Pid) -> std::collections::BTreeSet<crate::object::ObjId> {
        self.processes
            .get(pid.0 as usize)
            .map(|p| p.cspace.iter().flatten().map(|c| c.target).collect())
            .unwrap_or_default()
    }

    /// Pops the next delivered message for `pid`.
    pub fn take_delivered(&mut self, pid: Pid) -> Option<Message> {
        self.processes
            .get_mut(pid.0 as usize)?
            .delivered
            .pop_front()
    }

    /// True if the process is ready to run.
    #[must_use]
    pub fn is_ready(&self, pid: Pid) -> bool {
        self.processes
            .get(pid.0 as usize)
            .is_some_and(|p| p.state == ProcState::Ready)
    }

    /// The scheduler: returns the next ready process, rotating the queue.
    ///
    /// Every scheduling decision first runs the watchdog sweep, reaping any
    /// blocked IPC whose deadline has passed — so a lost message costs its
    /// sender a timeout, never the system a hang.
    pub fn schedule(&mut self) -> Option<Pid> {
        sysobs::obs_span!("kernel.schedule");
        self.cycles.charge(cycles::SCHEDULE);
        self.watchdog_sweep();
        for _ in 0..self.run_queue.len() {
            let pid = self.run_queue.pop_front()?;
            // Checked lookup: a reaped or bogus pid silently drops off the
            // queue instead of indexing out of bounds.
            if self.is_ready(pid) {
                self.run_queue.push_back(pid);
                return Some(pid);
            }
            // Blocked/dead processes drop off; they re-enter on wake.
        }
        None
    }

    fn wake(&mut self, pid: Pid) {
        let Ok(proc) = self.process_mut(pid) else {
            return;
        };
        if proc.state != ProcState::Dead {
            proc.state = ProcState::Ready;
            self.run_queue.push_back(pid);
        }
    }

    /// Reaps every blocked IPC whose deadline has passed: the message (if
    /// any) is torn down, the process is woken with its `timed_out` flag
    /// set, and the event is counted. Called from [`Kernel::schedule`].
    fn watchdog_sweep(&mut self) {
        let now = self.cycles.total();
        let overdue: Vec<Pid> = self
            .processes
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let blocked = matches!(
                    p.state,
                    ProcState::BlockedSend(_) | ProcState::BlockedRecv(_)
                );
                let expired = p
                    .deadline
                    .is_some_and(|d| now.saturating_sub(p.blocked_at) > d);
                (blocked && expired).then(|| Pid(u32::try_from(i).expect("pids fit u32")))
            })
            .collect();
        for pid in overdue {
            self.cycles.charge(cycles::WATCHDOG_REAP);
            self.cancel_ipc(pid);
            self.fault_stats.watchdog_reaps += 1;
            sysobs::obs_count!("kernel.watchdog_reaps", 1);
            sysobs::obs_instant!("kernel.watchdog.reap", u64::from(pid.0));
        }
    }

    /// Cancels `pid`'s blocked IPC (if any): removes it from endpoint
    /// queues, frees its stored message, and wakes it with `timed_out` set.
    fn cancel_ipc(&mut self, pid: Pid) {
        let Ok(state) = self.process(pid).map(|p| p.state) else {
            return;
        };
        match state {
            ProcState::BlockedSend(ep) => {
                let Some(queue) = self.endpoints.get_mut(ep as usize).map(|e| &mut e.senders)
                else {
                    return;
                };
                if let Some(at) = queue.iter().position(|s| s.sender == pid) {
                    let stored = queue.remove(at).expect("position is in range");
                    self.release_stored(&stored);
                }
            }
            ProcState::BlockedRecv(ep) => {
                if let Some(endpoint) = self.endpoints.get_mut(ep as usize) {
                    endpoint.receivers.retain(|&p| p != pid);
                }
            }
            ProcState::Ready | ProcState::Dead => return,
        }
        if let Ok(proc) = self.process_mut(pid) {
            proc.timed_out = true;
        }
        self.wake(pid);
    }

    /// Reports the fate of `pid`'s last blocking IPC without blocking:
    /// [`SysResult::TimedOut`] if the watchdog reaped it (one-shot; the flag
    /// clears), [`SysResult::Blocked`] while still waiting,
    /// [`SysResult::Delivered`] when a message is waiting in the inbox, and
    /// [`SysResult::Done`] otherwise.
    ///
    /// # Errors
    ///
    /// Fails if `pid` is unknown.
    pub fn poll_ipc(&mut self, pid: Pid) -> Result<SysResult> {
        let proc = self.process_mut(pid)?;
        if proc.timed_out {
            proc.timed_out = false;
            return Ok(SysResult::TimedOut);
        }
        Ok(match proc.state {
            ProcState::BlockedSend(_) | ProcState::BlockedRecv(_) => SysResult::Blocked,
            _ if !proc.delivered.is_empty() => SysResult::Delivered,
            _ => SysResult::Done,
        })
    }

    /// Graceful OOM degradation: kills the newest non-essential process
    /// (never `protect`), releasing its pages and any queued message, and
    /// returns its pid. Returns `None` when nothing can be shed — at which
    /// point the allocation failure is surfaced as a typed error.
    fn shed_for_memory(&mut self, protect: Pid) -> Option<Pid> {
        let victim = self
            .processes
            .iter()
            .enumerate()
            .rev()
            .map(|(i, p)| (Pid(u32::try_from(i).expect("pids fit u32")), p))
            .find(|&(pid, p)| pid != protect && !p.essential && p.state != ProcState::Dead)
            .map(|(pid, _)| pid)?;
        self.cancel_ipc(victim);
        for i in 0..self.pages.len() {
            let page = self.pages[i];
            if page.owner == victim && page.alive {
                self.mem.remove_root(page.handle);
                let _ = self.mem.free(page.handle);
                self.pages[i].alive = false;
                self.objects[page.obj.0 as usize].alive = false;
            }
        }
        if let Ok(proc) = self.process_mut(victim) {
            proc.state = ProcState::Dead;
        }
        self.fault_stats.shed_processes += 1;
        sysobs::obs_count!("kernel.shed_processes", 1);
        sysobs::obs_instant!("kernel.oom.shed", u64::from(victim.0));
        Some(victim)
    }

    /// Kernel-heap allocation with fault injection and graceful OOM
    /// degradation: on failure (injected via [`SITE_KERNEL_OOM`] or real),
    /// sheds non-essential processes and retries before giving up.
    fn kernel_alloc(&mut self, caller: Pid, nwords: usize) -> Result<Handle> {
        let injected = self.inject(SITE_KERNEL_OOM);
        if !injected {
            if let Ok(h) = self.mem.try_alloc(0, nwords) {
                return Ok(h);
            }
        }
        while self.shed_for_memory(caller).is_some() {
            if let Ok(h) = self.mem.try_alloc(0, nwords) {
                return Ok(h);
            }
        }
        self.fault_stats.oom_failures += 1;
        sysobs::obs_count!("kernel.oom_failures", 1);
        Err(KernelError::OutOfMemory)
    }

    fn store_message(&mut self, sender: Pid, msg: Message) -> Result<StoredMessage> {
        let len = msg.payload.len();
        let handle = self.kernel_alloc(sender, len.max(1))?;
        for (i, w) in msg.payload.iter().enumerate() {
            self.mem
                .set_word(handle, i, *w)
                .map_err(|_| KernelError::OutOfMemory)?;
        }
        self.mem.add_root(handle);
        self.cycles.charge(cycles::COPY_WORD * len as u64);
        Ok(StoredMessage {
            handle,
            len,
            cap: msg.cap,
            sender,
            ctx: msg.ctx,
        })
    }

    /// Releases a stored message's heap object without delivering it.
    fn release_stored(&mut self, stored: &StoredMessage) {
        self.mem.remove_root(stored.handle);
        // Manual managers want an explicit free; collected heaps refuse it,
        // which is fine — the root release above made it garbage.
        let _ = self.mem.free(stored.handle);
    }

    fn load_message(&mut self, stored: &StoredMessage) -> Result<Message> {
        let mut payload = Vec::with_capacity(stored.len);
        for i in 0..stored.len {
            payload.push(
                self.mem
                    .get_word(stored.handle, i)
                    .map_err(|_| KernelError::HeapCorruption)?,
            );
        }
        self.cycles.charge(cycles::COPY_WORD * stored.len as u64);
        self.release_stored(stored);
        Ok(Message {
            payload,
            cap: stored.cap,
            ctx: stored.ctx,
        })
    }

    fn deliver_to(&mut self, receiver: Pid, stored: StoredMessage) -> Result<()> {
        let msg = self.load_message(&stored)?;
        // The recv half of the causal link: a traced message's delivery
        // records under the same trace id its send did.
        sysobs::obs_span_hot!("kernel.ipc.recv", ctx = msg.ctx);
        if let Some(cap) = msg.cap {
            // Transferred capability lands in the receiver's c-space.
            let _ = self.install_cap(receiver, cap);
        }
        self.process_mut(receiver)?.delivered.push_back(msg);
        self.cycles.charge(cycles::CONTEXT_SWITCH);
        Ok(())
    }

    fn block(&mut self, pid: Pid, state: ProcState) {
        let now = self.cycles.total();
        let Ok(proc) = self.process_mut(pid) else {
            return;
        };
        proc.state = state;
        proc.blocked_at = now;
    }

    /// Executes one syscall on behalf of `pid`.
    ///
    /// # Errors
    ///
    /// Every failure mode is a typed [`KernelError`]; the kernel never
    /// panics on user input (the "segfaults should never happen" rule).
    pub fn syscall(&mut self, pid: Pid, call: Syscall) -> Result<SysResult> {
        // Hot path: a syscall completes in well under a microsecond, so the
        // span is a single marker event (one ring write, one clock read)
        // rather than a begin/end pair.
        sysobs::obs_span_hot!("kernel.syscall");
        self.cycles.charge(cycles::SYSCALL);
        {
            let proc = self.process(pid)?;
            match proc.state {
                ProcState::Dead => return Err(KernelError::ProcessDead(pid)),
                ProcState::BlockedSend(_) | ProcState::BlockedRecv(_) => {
                    return Err(KernelError::ProcessBlocked(pid))
                }
                ProcState::Ready => {}
            }
        }
        match call {
            Syscall::Send { cap, mut msg } => {
                let capability = self.lookup_cap(pid, cap)?;
                let ep_index =
                    self.require(capability, ObjectKind::Endpoint, Rights::SEND, "SEND")?;
                // Stamp the sender's live causal context onto the message
                // (unless the caller already attached one) and record the
                // send half of the IPC link.
                if msg.ctx == 0 {
                    msg.ctx = sysobs::context::current_packed();
                }
                sysobs::obs_span_hot!("kernel.ipc.send", ctx = msg.ctx);
                let stored = self.store_message(pid, msg)?;
                if self.inject(SITE_IPC_DROP) {
                    // The message is lost in transit: the sender sees
                    // success, the receiver keeps waiting. Only deadlines
                    // and retry recover from this — which is the point.
                    self.release_stored(&stored);
                    self.fault_stats.dropped_messages += 1;
                    sysobs::obs_count!("kernel.dropped_messages", 1);
                    return Ok(SysResult::Delivered);
                }
                if let Some(receiver) = self.endpoints[ep_index as usize].receivers.pop_front() {
                    self.deliver_to(receiver, stored)?;
                    self.wake(receiver);
                    Ok(SysResult::Delivered)
                } else {
                    self.endpoints[ep_index as usize].senders.push_back(stored);
                    self.block(pid, ProcState::BlockedSend(ep_index));
                    Ok(SysResult::Blocked)
                }
            }
            Syscall::Recv { cap } => {
                let capability = self.lookup_cap(pid, cap)?;
                let ep_index =
                    self.require(capability, ObjectKind::Endpoint, Rights::RECV, "RECV")?;
                if let Some(stored) = self.endpoints[ep_index as usize].senders.pop_front() {
                    let sender = stored.sender;
                    self.deliver_to(pid, stored)?;
                    self.wake(sender);
                    Ok(SysResult::Delivered)
                } else {
                    self.endpoints[ep_index as usize].receivers.push_back(pid);
                    self.block(pid, ProcState::BlockedRecv(ep_index));
                    Ok(SysResult::Blocked)
                }
            }
            Syscall::Mint { src, rights } => {
                let cap = self.lookup_cap(pid, src)?;
                self.cycles.charge(cycles::RIGHTS_CHECK);
                if !cap.rights.contains(Rights::GRANT) {
                    return Err(KernelError::InsufficientRights { required: "GRANT" });
                }
                let minted = cap.mint(rights);
                if !cap.rights.contains(minted.rights) {
                    return Err(KernelError::RightsAmplification);
                }
                let slot = self.install_cap(pid, minted)?;
                Ok(SysResult::Slot(slot))
            }
            Syscall::AllocPage { words } => {
                self.cycles.charge(cycles::OBJECT_ALLOC);
                let handle = self.kernel_alloc(pid, words.max(1))?;
                self.mem.add_root(handle);
                let index = u32::try_from(self.pages.len()).expect("fits");
                let id = self.new_object(ObjectKind::Page, index);
                self.pages.push(PageEntry {
                    handle,
                    owner: pid,
                    obj: id,
                    alive: true,
                });
                let slot =
                    self.install_cap(pid, Capability::new(id, ObjectKind::Page, Rights::ALL))?;
                Ok(SysResult::Slot(slot))
            }
            Syscall::WritePage { cap, offset, value } => {
                let capability = self.lookup_cap(pid, cap)?;
                let index = self.require(capability, ObjectKind::Page, Rights::WRITE, "WRITE")?;
                let handle = self.pages[index as usize].handle;
                self.mem
                    .set_word(handle, offset, value)
                    .map_err(|_| KernelError::PageFault { offset })?;
                Ok(SysResult::Done)
            }
            Syscall::ReadPage { cap, offset } => {
                let capability = self.lookup_cap(pid, cap)?;
                let index = self.require(capability, ObjectKind::Page, Rights::READ, "READ")?;
                let handle = self.pages[index as usize].handle;
                let v = self
                    .mem
                    .get_word(handle, offset)
                    .map_err(|_| KernelError::PageFault { offset })?;
                Ok(SysResult::Value(v))
            }
            Syscall::DestroyEndpoint { cap } => {
                let capability = self.lookup_cap(pid, cap)?;
                let index =
                    self.require(capability, ObjectKind::Endpoint, Rights::CONTROL, "CONTROL")?;
                let ep = &mut self.endpoints[index as usize];
                ep.alive = false;
                let orphans: Vec<StoredMessage> = ep.senders.drain(..).collect();
                let receivers: Vec<Pid> = ep.receivers.drain(..).collect();
                self.objects[capability.target.0 as usize].alive = false;
                for stored in orphans {
                    // Undelivered messages die with the endpoint; their heap
                    // objects must not leak.
                    let sender = stored.sender;
                    self.release_stored(&stored);
                    self.wake(sender);
                }
                for p in receivers {
                    self.wake(p);
                }
                Ok(SysResult::Done)
            }
            Syscall::Yield => {
                self.cycles.charge(cycles::SCHEDULE);
                Ok(SysResult::Done)
            }
            Syscall::Exit => {
                self.process_mut(pid)?.state = ProcState::Dead;
                Ok(SysResult::Done)
            }
        }
    }

    /// One complete IPC round trip: client sends `words` payload words to a
    /// waiting server; server replies on a second endpoint. Returns the
    /// cycles charged for the round trip. Used by experiment E6.
    ///
    /// # Errors
    ///
    /// Propagates any syscall failure.
    pub fn ping_pong(
        &mut self,
        client: Pid,
        server: Pid,
        request_ep: (CapSlot, CapSlot),
        reply_ep: (CapSlot, CapSlot),
        words: usize,
    ) -> Result<u64> {
        // Root a sampled causal trace for this round trip: when the draw
        // wins, the request's send and recv markers (and the reply's) all
        // record under one trace id.
        let _root = sysobs::obs_trace_root!("kernel.ipc.ping_pong");
        sysobs::obs_span_hot!("kernel.ipc.ping_pong");
        let snapshot = self.cycles;
        let payload = vec![0xAB; words];
        // Server posts a receive, then client sends (rendezvous).
        self.syscall(server, Syscall::Recv { cap: request_ep.0 })?;
        self.syscall(
            client,
            Syscall::Send {
                cap: request_ep.1,
                msg: Message::words(&payload),
            },
        )?;
        let req = self
            .take_delivered(server)
            .ok_or(KernelError::DanglingCapability)?;
        // Client waits for the reply; server echoes.
        self.syscall(client, Syscall::Recv { cap: reply_ep.1 })?;
        self.syscall(
            server,
            Syscall::Send {
                cap: reply_ep.0,
                msg: Message::words(&req.payload),
            },
        )?;
        let _ = self
            .take_delivered(client)
            .ok_or(KernelError::DanglingCapability)?;
        Ok(self.cycles.since(snapshot))
    }

    /// Drives the clock (via scheduler sweeps) until `pid` is no longer
    /// blocked — normally because the watchdog reaped its overdue IPC. Falls
    /// back to a direct cancel if the process has no deadline set.
    fn ride_out_timeout(&mut self, pid: Pid) {
        let deadline = self.process(pid).ok().and_then(|p| p.deadline).unwrap_or(0);
        // Each schedule() charges SCHEDULE cycles, so this many sweeps is
        // guaranteed to push `now - blocked_at` past the deadline.
        let sweeps = deadline / cycles::SCHEDULE + 2;
        for _ in 0..sweeps {
            if self.is_ready(pid) {
                return;
            }
            let _ = self.schedule();
        }
        if !self.is_ready(pid) {
            self.cycles.charge(cycles::WATCHDOG_REAP);
            self.cancel_ipc(pid);
        }
    }

    /// A fault-tolerant IPC round trip: like [`Kernel::ping_pong`], but with
    /// per-attempt deadlines, watchdog-driven recovery of lost messages, and
    /// bounded retry with exponential backoff. Returns the cycles charged
    /// (failed attempts and backoff included) and the retry count.
    ///
    /// This is the recovery path experiment E9 measures: under injected
    /// message drops and allocation failures, round trips still complete —
    /// they just cost more cycles.
    ///
    /// # Errors
    ///
    /// [`KernelError::TimedOut`] after `max_retries` failed attempts;
    /// propagates non-recoverable syscall failures (bad caps, dead
    /// processes) immediately.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    pub fn ping_pong_resilient(
        &mut self,
        client: Pid,
        server: Pid,
        request_ep: (CapSlot, CapSlot),
        reply_ep: (CapSlot, CapSlot),
        words: usize,
        deadline: u64,
        max_retries: u32,
    ) -> Result<IpcOutcome> {
        let snapshot = self.cycles;
        self.set_ipc_deadline(client, Some(deadline))?;
        self.set_ipc_deadline(server, Some(deadline))?;
        let payload = vec![0xAB; words];
        // An error is recoverable when retrying can plausibly change the
        // outcome: transient exhaustion, or a partner stuck from a prior
        // lost message. Anything else (bad caps, dead processes) aborts.
        fn recoverable(e: &KernelError) -> bool {
            matches!(
                e,
                KernelError::OutOfMemory
                    | KernelError::TimedOut(_)
                    | KernelError::ProcessBlocked(_)
            )
        }
        let mut retries = 0u32;
        while retries <= max_retries {
            if retries > 0 {
                self.cycles
                    .charge(cycles::BACKOFF_BASE << (retries - 1).min(16));
            }
            // Recover any party left blocked by a failed attempt, and drop
            // stale half-round-trip messages so a late reply from attempt
            // N-1 cannot satisfy attempt N.
            for pid in [client, server] {
                if !self.is_ready(pid) {
                    self.ride_out_timeout(pid);
                }
                let proc = self.process_mut(pid)?;
                proc.timed_out = false;
                proc.delivered.clear();
            }
            let attempt = (|| -> Result<bool> {
                self.syscall(server, Syscall::Recv { cap: request_ep.0 })?;
                self.syscall(
                    client,
                    Syscall::Send {
                        cap: request_ep.1,
                        msg: Message::words(&payload),
                    },
                )?;
                let Some(req) = self.take_delivered(server) else {
                    return Ok(false); // request lost in transit
                };
                self.syscall(client, Syscall::Recv { cap: reply_ep.1 })?;
                self.syscall(
                    server,
                    Syscall::Send {
                        cap: reply_ep.0,
                        msg: Message::words(&req.payload),
                    },
                )?;
                Ok(self.take_delivered(client).is_some())
            })();
            match attempt {
                Ok(true) => {
                    return Ok(IpcOutcome {
                        cycles: self.cycles.since(snapshot),
                        retries,
                    })
                }
                Ok(false) => retries += 1,
                Err(ref e) if recoverable(e) => retries += 1,
                Err(e) => return Err(e),
            }
        }
        Err(KernelError::TimedOut(client))
    }

    /// Forces a heap collection (no-op for manual managers); exposed so the
    /// E6 driver can include collection pauses in its measurements.
    pub fn collect_heap(&mut self) {
        self.mem.collect();
    }

    /// Live bytes in the kernel heap.
    #[must_use]
    pub fn heap_live_bytes(&self) -> usize {
        self.mem.live_bytes()
    }

    /// Worst collection pause observed in the kernel heap, in nanoseconds.
    #[must_use]
    pub fn heap_max_pause_ns(&self) -> u64 {
        self.mem.stats().gc_pauses.max_ns()
    }

    /// Number of collections the kernel heap has run.
    #[must_use]
    pub fn heap_collections(&self) -> u64 {
        self.mem.stats().collections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysmem::generational::GenerationalHeap;
    use sysmem::marksweep::MarkSweepHeap;

    fn setup() -> (Kernel, Pid, Pid, CapSlot, CapSlot) {
        let mut k = Kernel::with_default_heap();
        let server = k.spawn_process();
        let client = k.spawn_process();
        let ep_server = k.create_endpoint(server).unwrap();
        let ep_client = k
            .grant_cap(server, ep_server, client, Rights::SEND)
            .unwrap();
        (k, server, client, ep_server, ep_client)
    }

    #[test]
    fn rendezvous_delivers_payload() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        assert_eq!(
            k.syscall(server, Syscall::Recv { cap: ep_server }).unwrap(),
            SysResult::Blocked
        );
        assert!(!k.is_ready(server));
        let r = k
            .syscall(
                client,
                Syscall::Send {
                    cap: ep_client,
                    msg: Message::words(&[1, 2, 3]),
                },
            )
            .unwrap();
        assert_eq!(r, SysResult::Delivered);
        assert!(k.is_ready(server), "receiver woken by rendezvous");
        assert_eq!(k.take_delivered(server).unwrap().payload, vec![1, 2, 3]);
    }

    #[test]
    fn sender_blocks_until_receiver_arrives() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        let r = k
            .syscall(
                client,
                Syscall::Send {
                    cap: ep_client,
                    msg: Message::words(&[9]),
                },
            )
            .unwrap();
        assert_eq!(r, SysResult::Blocked);
        assert!(!k.is_ready(client));
        k.syscall(server, Syscall::Recv { cap: ep_server }).unwrap();
        assert!(k.is_ready(client), "sender woken after delivery");
        assert_eq!(k.take_delivered(server).unwrap().payload, vec![9]);
    }

    #[test]
    fn send_right_is_required() {
        let (mut k, server, client, ep_server, _) = setup();
        // Client got SEND only; server granting RECV-only produces a cap
        // that cannot send.
        let recv_only = k
            .grant_cap(server, ep_server, client, Rights::RECV)
            .unwrap();
        let err = k
            .syscall(
                client,
                Syscall::Send {
                    cap: recv_only,
                    msg: Message::empty(),
                },
            )
            .unwrap_err();
        assert_eq!(err, KernelError::InsufficientRights { required: "SEND" });
    }

    #[test]
    fn grant_requires_grant_right() {
        let (mut k, server, client, _ep_server, ep_client) = setup();
        // Client's cap was minted with SEND only; it cannot re-grant.
        let third = k.spawn_process();
        let err = k
            .grant_cap(client, ep_client, third, Rights::SEND)
            .unwrap_err();
        assert_eq!(err, KernelError::InsufficientRights { required: "GRANT" });
        let _ = server;
    }

    #[test]
    fn mint_never_amplifies() {
        let (mut k, server, _, ep_server, _) = setup();
        // Server holds ALL; minting SEND|RECV gives exactly that.
        let r = k.syscall(
            server,
            Syscall::Mint {
                src: ep_server,
                rights: Rights::SEND | Rights::RECV,
            },
        );
        let SysResult::Slot(slot) = r.unwrap() else {
            panic!("expected slot")
        };
        let cap = k.lookup_cap(server, slot).unwrap();
        assert_eq!(cap.rights, Rights::SEND | Rights::RECV);
    }

    #[test]
    fn capability_transfer_moves_authority() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        // Server allocates a page and sends a READ-only cap to the client.
        let SysResult::Slot(page) = k.syscall(server, Syscall::AllocPage { words: 8 }).unwrap()
        else {
            panic!("expected slot")
        };
        k.syscall(
            server,
            Syscall::WritePage {
                cap: page,
                offset: 3,
                value: 77,
            },
        )
        .unwrap();
        let page_cap = k.lookup_cap(server, page).unwrap();
        let readonly = page_cap.mint(Rights::READ);
        k.syscall(client, Syscall::Recv { cap: ep_client }).err();
        // Client needs RECV; grant it.
        let ep_client_rv = k
            .grant_cap(server, ep_server, client, Rights::RECV)
            .unwrap();
        k.syscall(client, Syscall::Recv { cap: ep_client_rv })
            .unwrap();
        k.syscall(
            server,
            Syscall::Send {
                cap: ep_server,
                msg: Message {
                    payload: vec![],
                    cap: Some(readonly),
                    ctx: 0,
                },
            },
        )
        .unwrap();
        let msg = k.take_delivered(client).unwrap();
        assert!(msg.cap.is_some());
        // The transferred cap landed in the client's c-space; find it.
        let transferred = (0..CSPACE_CAPACITY)
            .map(|i| CapSlot(u32::try_from(i).unwrap()))
            .find(|&s| {
                k.lookup_cap(client, s)
                    .map(|c| c.kind == ObjectKind::Page)
                    .unwrap_or(false)
            })
            .expect("transferred page cap present");
        let SysResult::Value(v) = k
            .syscall(
                client,
                Syscall::ReadPage {
                    cap: transferred,
                    offset: 3,
                },
            )
            .unwrap()
        else {
            panic!("expected value")
        };
        assert_eq!(v, 77);
        // But writing through the READ-only cap fails.
        let err = k
            .syscall(
                client,
                Syscall::WritePage {
                    cap: transferred,
                    offset: 0,
                    value: 1,
                },
            )
            .unwrap_err();
        assert_eq!(err, KernelError::InsufficientRights { required: "WRITE" });
    }

    #[test]
    fn page_bounds_fault_cleanly() {
        let mut k = Kernel::with_default_heap();
        let p = k.spawn_process();
        let SysResult::Slot(page) = k.syscall(p, Syscall::AllocPage { words: 4 }).unwrap() else {
            panic!("expected slot")
        };
        let err = k
            .syscall(
                p,
                Syscall::ReadPage {
                    cap: page,
                    offset: 10,
                },
            )
            .unwrap_err();
        assert_eq!(err, KernelError::PageFault { offset: 10 });
    }

    #[test]
    fn destroyed_endpoint_dangles() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        k.syscall(server, Syscall::DestroyEndpoint { cap: ep_server })
            .unwrap();
        let err = k
            .syscall(
                client,
                Syscall::Send {
                    cap: ep_client,
                    msg: Message::empty(),
                },
            )
            .unwrap_err();
        assert_eq!(err, KernelError::DanglingCapability);
    }

    #[test]
    fn destroying_endpoint_wakes_waiters() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        k.syscall(
            client,
            Syscall::Send {
                cap: ep_client,
                msg: Message::empty(),
            },
        )
        .unwrap();
        assert!(!k.is_ready(client));
        k.syscall(server, Syscall::DestroyEndpoint { cap: ep_server })
            .unwrap();
        assert!(k.is_ready(client), "blocked sender must not hang forever");
    }

    #[test]
    fn blocked_processes_cannot_syscall() {
        let (mut k, server, _, ep_server, _) = setup();
        k.syscall(server, Syscall::Recv { cap: ep_server }).unwrap();
        let err = k.syscall(server, Syscall::Yield).unwrap_err();
        assert_eq!(err, KernelError::ProcessBlocked(server));
    }

    #[test]
    fn dead_processes_cannot_syscall() {
        let mut k = Kernel::with_default_heap();
        let p = k.spawn_process();
        k.syscall(p, Syscall::Exit).unwrap();
        assert_eq!(
            k.syscall(p, Syscall::Yield).unwrap_err(),
            KernelError::ProcessDead(p)
        );
    }

    #[test]
    fn syscalls_against_a_reaped_pid_yield_typed_errors() {
        // Regression: kernel hot paths used to index `processes[pid]`
        // directly; a dead or never-spawned pid must surface as a typed
        // error on every public entry point, never a panic.
        let (mut k, server, client, ep_server, ep_client) = setup();
        k.syscall(client, Syscall::Exit).unwrap();
        assert_eq!(
            k.syscall(
                client,
                Syscall::Send {
                    cap: ep_client,
                    msg: Message::empty()
                }
            )
            .unwrap_err(),
            KernelError::ProcessDead(client)
        );
        // A pid the kernel never issued: out of bounds for the process table.
        let ghost = Pid(999);
        assert_eq!(
            k.syscall(ghost, Syscall::Yield).unwrap_err(),
            KernelError::NoSuchProcess(ghost)
        );
        assert_eq!(
            k.poll_ipc(ghost).unwrap_err(),
            KernelError::NoSuchProcess(ghost)
        );
        assert_eq!(
            k.set_ipc_deadline(ghost, Some(100)).unwrap_err(),
            KernelError::NoSuchProcess(ghost)
        );
        assert_eq!(
            k.set_essential(ghost, true).unwrap_err(),
            KernelError::NoSuchProcess(ghost)
        );
        assert!(k.take_delivered(ghost).is_none());
        assert!(!k.is_ready(ghost));
        assert!(k.authority(ghost).is_empty());
        // The resilient round-trip driver used to panic in ride_out_timeout
        // when handed a ghost pid; now it reports the bad pid.
        let reply_server = k.create_endpoint(server).unwrap();
        let err = k
            .ping_pong_resilient(
                ghost,
                server,
                (ep_server, ep_client),
                (reply_server, reply_server),
                4,
                500,
                1,
            )
            .unwrap_err();
        assert_eq!(err, KernelError::NoSuchProcess(ghost));
    }

    #[test]
    fn scheduler_skips_dead_pids_without_panicking() {
        let mut k = Kernel::with_default_heap();
        let a = k.spawn_process();
        let b = k.spawn_process();
        k.syscall(a, Syscall::Exit).unwrap();
        // The dead pid is still in the run queue; scheduling must drop it.
        for _ in 0..4 {
            assert_eq!(k.schedule(), Some(b));
        }
    }

    #[test]
    fn scheduler_rotates_ready_processes() {
        let mut k = Kernel::with_default_heap();
        let a = k.spawn_process();
        let b = k.spawn_process();
        let first = k.schedule().unwrap();
        let second = k.schedule().unwrap();
        assert_ne!(first, second);
        assert_eq!(k.schedule().unwrap(), first);
        let _ = (a, b);
    }

    #[test]
    fn cycles_accumulate_per_syscall() {
        let mut k = Kernel::with_default_heap();
        let p = k.spawn_process();
        let before = k.cycles.total();
        k.syscall(p, Syscall::Yield).unwrap();
        assert!(k.cycles.total() > before);
    }

    #[test]
    fn ping_pong_round_trip_works_and_counts_cycles() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        let reply_server = k.create_endpoint(server).unwrap();
        let reply_client = k
            .grant_cap(server, reply_server, client, Rights::RECV)
            .unwrap();
        let cycles = k
            .ping_pong(
                client,
                server,
                (ep_server, ep_client),
                (reply_server, reply_client),
                8,
            )
            .unwrap();
        assert!(cycles > 0);
        // Larger payloads must cost more cycles.
        let cycles_big = k
            .ping_pong(
                client,
                server,
                (ep_server, ep_client),
                (reply_server, reply_client),
                256,
            )
            .unwrap();
        assert!(cycles_big > cycles);
    }

    #[test]
    fn kernel_runs_on_gc_heaps_too() {
        for heap in [
            Box::new(MarkSweepHeap::new(1 << 20)) as Box<dyn Manager>,
            Box::new(GenerationalHeap::new(1 << 20, 1 << 12)) as Box<dyn Manager>,
        ] {
            let mut k = Kernel::new(heap);
            let server = k.spawn_process();
            let client = k.spawn_process();
            let ep_s = k.create_endpoint(server).unwrap();
            let ep_c = k.grant_cap(server, ep_s, client, Rights::SEND).unwrap();
            for i in 0..200 {
                k.syscall(server, Syscall::Recv { cap: ep_s }).unwrap();
                k.syscall(
                    client,
                    Syscall::Send {
                        cap: ep_c,
                        msg: Message::words(&[i; 16]),
                    },
                )
                .unwrap();
                let m = k.take_delivered(server).unwrap();
                assert_eq!(m.payload, vec![i; 16]);
            }
            k.collect_heap();
        }
    }

    #[test]
    fn watchdog_reaps_overdue_recv() {
        let (mut k, server, _, ep_server, _) = setup();
        k.set_ipc_deadline(server, Some(500)).unwrap();
        k.syscall(server, Syscall::Recv { cap: ep_server }).unwrap();
        assert!(!k.is_ready(server));
        // Drive the clock past the deadline; each schedule() charges cycles
        // and runs the watchdog sweep.
        for _ in 0..20 {
            k.schedule();
        }
        assert!(k.is_ready(server), "watchdog must reap the overdue recv");
        assert_eq!(k.poll_ipc(server).unwrap(), SysResult::TimedOut);
        // The flag is one-shot.
        assert_eq!(k.poll_ipc(server).unwrap(), SysResult::Done);
        assert_eq!(k.fault_stats().watchdog_reaps, 1);
    }

    #[test]
    fn watchdog_reaps_overdue_send_and_frees_its_message() {
        let (mut k, _, client, _, ep_client) = setup();
        k.set_ipc_deadline(client, Some(500)).unwrap();
        let live_before = k.heap_live_bytes();
        k.syscall(
            client,
            Syscall::Send {
                cap: ep_client,
                msg: Message::words(&[1; 64]),
            },
        )
        .unwrap();
        assert!(
            k.heap_live_bytes() > live_before,
            "queued message holds heap"
        );
        for _ in 0..20 {
            k.schedule();
        }
        assert!(k.is_ready(client));
        assert_eq!(k.poll_ipc(client).unwrap(), SysResult::TimedOut);
        assert_eq!(
            k.heap_live_bytes(),
            live_before,
            "reaped message must not leak"
        );
    }

    #[test]
    fn no_deadline_means_wait_forever() {
        let (mut k, server, _, ep_server, _) = setup();
        k.syscall(server, Syscall::Recv { cap: ep_server }).unwrap();
        for _ in 0..100 {
            k.schedule();
        }
        assert!(
            !k.is_ready(server),
            "without a deadline the watchdog stays out"
        );
    }

    #[test]
    fn injected_drop_loses_the_message_but_not_the_kernel() {
        use sysfault::{FaultPlan, Schedule, SharedInjector};
        let (mut k, server, client, ep_server, ep_client) = setup();
        k.set_injector(SharedInjector::new(
            FaultPlan::new(1).with_site(SITE_IPC_DROP, Schedule::OneShotAt(1)),
        ));
        k.syscall(server, Syscall::Recv { cap: ep_server }).unwrap();
        let r = k
            .syscall(
                client,
                Syscall::Send {
                    cap: ep_client,
                    msg: Message::words(&[7]),
                },
            )
            .unwrap();
        assert_eq!(r, SysResult::Delivered, "sender believes the send worked");
        assert!(k.take_delivered(server).is_none(), "receiver got nothing");
        assert!(!k.is_ready(server), "receiver still waiting");
        assert_eq!(k.fault_stats().dropped_messages, 1);
        // Second send is not dropped (one-shot) and reaches the receiver.
        k.syscall(
            client,
            Syscall::Send {
                cap: ep_client,
                msg: Message::words(&[8]),
            },
        )
        .unwrap();
        assert_eq!(k.take_delivered(server).unwrap().payload, vec![8]);
    }

    #[test]
    fn injected_oom_sheds_newest_non_essential_process() {
        use sysfault::{FaultPlan, Schedule, SharedInjector};
        let mut k = Kernel::with_default_heap();
        let worker = k.spawn_process();
        let expendable = k.spawn_process();
        k.set_essential(worker, true).unwrap();
        let SysResult::Slot(_) = k
            .syscall(expendable, Syscall::AllocPage { words: 8 })
            .unwrap()
        else {
            panic!("expected slot")
        };
        k.set_injector(SharedInjector::new(
            FaultPlan::new(1).with_site(SITE_KERNEL_OOM, Schedule::OneShotAt(1)),
        ));
        // The injected OOM triggers shedding; the expendable process dies,
        // its page is freed, and the retry succeeds.
        let r = k.syscall(worker, Syscall::AllocPage { words: 8 });
        assert!(matches!(r, Ok(SysResult::Slot(_))), "got {r:?}");
        assert_eq!(k.fault_stats().shed_processes, 1);
        assert_eq!(
            k.syscall(expendable, Syscall::Yield).unwrap_err(),
            KernelError::ProcessDead(expendable)
        );
    }

    #[test]
    fn real_heap_exhaustion_sheds_then_fails_typed() {
        // A tiny heap: the first big page fits, the second cannot until the
        // first owner is shed; with nothing expendable left, the failure is
        // the typed error, never a panic.
        let mut k = Kernel::new(Box::new(FreeListHeap::new(4096)));
        let hog = k.spawn_process();
        let worker = k.spawn_process();
        k.set_essential(worker, true).unwrap();
        k.syscall(hog, Syscall::AllocPage { words: 300 }).unwrap();
        let r = k.syscall(worker, Syscall::AllocPage { words: 300 });
        assert!(
            matches!(r, Ok(SysResult::Slot(_))),
            "shedding should free room: {r:?}"
        );
        assert_eq!(k.fault_stats().shed_processes, 1);
        let r = k.syscall(worker, Syscall::AllocPage { words: 10_000 });
        assert_eq!(r.unwrap_err(), KernelError::OutOfMemory);
    }

    #[test]
    fn resilient_ping_pong_matches_plain_when_fault_free() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        let reply_server = k.create_endpoint(server).unwrap();
        let reply_client = k
            .grant_cap(server, reply_server, client, Rights::RECV)
            .unwrap();
        let out = k
            .ping_pong_resilient(
                client,
                server,
                (ep_server, ep_client),
                (reply_server, reply_client),
                8,
                5_000,
                4,
            )
            .unwrap();
        assert_eq!(out.retries, 0);
        assert!(out.cycles > 0);
    }

    #[test]
    fn resilient_ping_pong_recovers_from_dropped_request() {
        use sysfault::{FaultPlan, Schedule, SharedInjector};
        let (mut k, server, client, ep_server, ep_client) = setup();
        let reply_server = k.create_endpoint(server).unwrap();
        let reply_client = k
            .grant_cap(server, reply_server, client, Rights::RECV)
            .unwrap();
        k.set_injector(SharedInjector::new(
            FaultPlan::new(1).with_site(SITE_IPC_DROP, Schedule::OneShotAt(1)),
        ));
        let out = k
            .ping_pong_resilient(
                client,
                server,
                (ep_server, ep_client),
                (reply_server, reply_client),
                8,
                2_000,
                4,
            )
            .unwrap();
        assert_eq!(out.retries, 1, "one attempt lost to the drop");
        assert!(
            k.fault_stats().watchdog_reaps >= 1,
            "recovery went through the watchdog"
        );
    }

    #[test]
    fn resilient_ping_pong_gives_up_with_typed_timeout() {
        use sysfault::{FaultPlan, Schedule, SharedInjector};
        let (mut k, server, client, ep_server, ep_client) = setup();
        let reply_server = k.create_endpoint(server).unwrap();
        let reply_client = k
            .grant_cap(server, reply_server, client, Rights::RECV)
            .unwrap();
        // Every send is dropped: no retry budget can succeed.
        k.set_injector(SharedInjector::new(
            FaultPlan::new(1).with_site(SITE_IPC_DROP, Schedule::EveryNth(1)),
        ));
        let err = k
            .ping_pong_resilient(
                client,
                server,
                (ep_server, ep_client),
                (reply_server, reply_client),
                8,
                1_000,
                3,
            )
            .unwrap_err();
        assert_eq!(err, KernelError::TimedOut(client));
    }

    #[test]
    fn fault_campaign_is_replayable_from_its_seed() {
        use sysfault::{FaultPlan, Schedule, SharedInjector};
        let plan = FaultPlan::new(0xFEED)
            .with_site(SITE_IPC_DROP, Schedule::Probability(0.2))
            .with_site(SITE_KERNEL_OOM, Schedule::Probability(0.05));
        let run = |plan: FaultPlan| {
            let (mut k, server, client, ep_server, ep_client) = setup();
            let reply_server = k.create_endpoint(server).unwrap();
            let reply_client = k
                .grant_cap(server, reply_server, client, Rights::RECV)
                .unwrap();
            let inj = SharedInjector::new(plan);
            k.set_injector(inj.clone());
            let mut outcomes = Vec::new();
            for _ in 0..50 {
                outcomes.push(
                    k.ping_pong_resilient(
                        client,
                        server,
                        (ep_server, ep_client),
                        (reply_server, reply_client),
                        4,
                        1_500,
                        3,
                    )
                    .map(|o| o.retries)
                    .map_err(|_| ()),
                );
            }
            (outcomes, inj.digest())
        };
        let (a_out, a_digest) = run(plan.clone());
        let (b_out, b_digest) = run(plan);
        assert_eq!(a_out, b_out, "same seed, same outcomes");
        assert_eq!(a_digest, b_digest, "same seed, same fault log digest");
    }

    #[test]
    fn cspace_exhaustion_is_reported() {
        let mut k = Kernel::with_default_heap();
        let p = k.spawn_process();
        let mut last = Ok(SysResult::Done);
        for _ in 0..=CSPACE_CAPACITY {
            last = k.syscall(p, Syscall::AllocPage { words: 1 });
            if last.is_err() {
                break;
            }
        }
        assert_eq!(last.unwrap_err(), KernelError::CapSpaceFull);
    }

    #[test]
    fn metrics_snapshot_unifies_kernel_and_heap_counters() {
        let mut k = Kernel::with_default_heap();
        let p = k.spawn_process();
        let _ = k.syscall(p, Syscall::AllocPage { words: 4 });
        let snap = k.metrics_snapshot();
        assert!(
            snap.counter("kernel.cycles") > 0,
            "cycles were charged: {snap}"
        );
        assert_eq!(snap.counter("kernel.watchdog_reaps"), 0);
        assert!(
            snap.counter("mem.freelist.allocs") > 0,
            "heap accounting flows through the same snapshot: {snap}"
        );
    }
}
