//! The kernel proper: capability spaces, synchronous IPC, scheduling, and
//! the syscall interface.
//!
//! The design follows EROS/Coyotos in miniature: all authority flows through
//! capabilities; IPC is synchronous rendezvous through endpoints; message
//! payloads are copied through kernel heap objects. The kernel heap is any
//! [`sysmem::Manager`], injected at construction — experiment E6 swaps heap
//! policies (region, freelist, mark-sweep, generational) under the identical
//! IPC fast path and watches what happens to the tail latency.

use crate::cycles::{self, CycleCounter};
use crate::object::{Capability, ObjId, ObjectKind};
use crate::rights::Rights;
use crate::{CapSlot, KernelError, Pid, Result};
use std::collections::VecDeque;
use sysmem::freelist::FreeListHeap;
use sysmem::{Handle, Manager};

/// Maximum capability-space slots per process.
pub const CSPACE_CAPACITY: usize = 1024;

/// An IPC message: payload words plus an optional capability transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Payload words.
    pub payload: Vec<u64>,
    /// Capability delivered alongside the payload, if any.
    pub cap: Option<Capability>,
}

impl Message {
    /// A plain data message.
    #[must_use]
    pub fn words(payload: &[u64]) -> Self {
        Message { payload: payload.to_vec(), cap: None }
    }

    /// An empty message.
    #[must_use]
    pub fn empty() -> Self {
        Message { payload: Vec::new(), cap: None }
    }
}

/// Result of a successful syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysResult {
    /// Operation completed with nothing to return.
    Done,
    /// Operation completed; message was delivered to [`Kernel::take_delivered`].
    Delivered,
    /// The caller is now blocked waiting for a partner.
    Blocked,
    /// A new capability slot.
    Slot(CapSlot),
    /// A data word (page reads).
    Value(u64),
}

/// System calls.
#[derive(Debug, Clone)]
pub enum Syscall {
    /// Send `msg` through an endpoint capability (requires SEND).
    Send {
        /// Endpoint capability slot.
        cap: CapSlot,
        /// The message.
        msg: Message,
    },
    /// Receive from an endpoint capability (requires RECV).
    Recv {
        /// Endpoint capability slot.
        cap: CapSlot,
    },
    /// Mint a diminished copy of a capability (requires GRANT).
    Mint {
        /// Source slot.
        src: CapSlot,
        /// Requested rights (intersected with the source's).
        rights: Rights,
    },
    /// Allocate a page of `words` words (returns an ALL-rights page cap).
    AllocPage {
        /// Page size in words.
        words: usize,
    },
    /// Write a word to a page (requires WRITE).
    WritePage {
        /// Page capability slot.
        cap: CapSlot,
        /// Word offset.
        offset: usize,
        /// Value to store.
        value: u64,
    },
    /// Read a word from a page (requires READ).
    ReadPage {
        /// Page capability slot.
        cap: CapSlot,
        /// Word offset.
        offset: usize,
    },
    /// Destroy an endpoint (requires CONTROL). Waiters are woken empty.
    DestroyEndpoint {
        /// Endpoint capability slot.
        cap: CapSlot,
    },
    /// Yield the CPU.
    Yield,
    /// Exit the calling process.
    Exit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Ready,
    BlockedSend(u32),
    BlockedRecv(u32),
    Dead,
}

#[derive(Debug)]
struct Process {
    state: ProcState,
    cspace: Vec<Option<Capability>>,
    delivered: VecDeque<Message>,
}

#[derive(Debug)]
struct StoredMessage {
    handle: Handle,
    len: usize,
    cap: Option<Capability>,
    sender: Pid,
}

#[derive(Debug, Default)]
struct Endpoint {
    senders: VecDeque<StoredMessage>,
    receivers: VecDeque<Pid>,
    alive: bool,
}

#[derive(Debug, Clone, Copy)]
struct ObjEntry {
    kind: ObjectKind,
    index: u32,
    alive: bool,
}

/// The kernel.
pub struct Kernel {
    mem: Box<dyn Manager>,
    objects: Vec<ObjEntry>,
    processes: Vec<Process>,
    endpoints: Vec<Endpoint>,
    pages: Vec<Handle>,
    run_queue: VecDeque<Pid>,
    /// Transparent cycle accounting.
    pub cycles: CycleCounter,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("heap", &self.mem.name())
            .field("processes", &self.processes.len())
            .field("endpoints", &self.endpoints.len())
            .field("cycles", &self.cycles.total())
            .finish()
    }
}

impl Kernel {
    /// Creates a kernel over the given heap manager.
    #[must_use]
    pub fn new(mem: Box<dyn Manager>) -> Self {
        Kernel {
            mem,
            objects: Vec::new(),
            processes: Vec::new(),
            endpoints: Vec::new(),
            pages: Vec::new(),
            run_queue: VecDeque::new(),
            cycles: CycleCounter::new(),
        }
    }

    /// Creates a kernel over a 1 MiB free-list heap (the C-like default).
    #[must_use]
    pub fn with_default_heap() -> Self {
        Kernel::new(Box::new(FreeListHeap::new(1 << 20)))
    }

    /// Name of the heap policy in use.
    #[must_use]
    pub fn heap_name(&self) -> &'static str {
        self.mem.name()
    }

    fn new_object(&mut self, kind: ObjectKind, index: u32) -> ObjId {
        let id = ObjId(u32::try_from(self.objects.len()).expect("object ids fit u32"));
        self.objects.push(ObjEntry { kind, index, alive: true });
        id
    }

    /// Spawns a new process with an empty capability space.
    pub fn spawn_process(&mut self) -> Pid {
        self.cycles.charge(cycles::OBJECT_ALLOC);
        let pid = Pid(u32::try_from(self.processes.len()).expect("pids fit u32"));
        self.processes.push(Process {
            state: ProcState::Ready,
            cspace: Vec::new(),
            delivered: VecDeque::new(),
        });
        self.new_object(ObjectKind::Process, pid.0);
        self.run_queue.push_back(pid);
        pid
    }

    fn process(&self, pid: Pid) -> Result<&Process> {
        self.processes.get(pid.0 as usize).ok_or(KernelError::NoSuchProcess(pid))
    }

    fn process_mut(&mut self, pid: Pid) -> Result<&mut Process> {
        self.processes.get_mut(pid.0 as usize).ok_or(KernelError::NoSuchProcess(pid))
    }

    fn install_cap(&mut self, pid: Pid, cap: Capability) -> Result<CapSlot> {
        let proc = self.process_mut(pid)?;
        if let Some(free) = proc.cspace.iter().position(Option::is_none) {
            proc.cspace[free] = Some(cap);
            return Ok(CapSlot(u32::try_from(free).expect("fits")));
        }
        if proc.cspace.len() >= CSPACE_CAPACITY {
            return Err(KernelError::CapSpaceFull);
        }
        proc.cspace.push(Some(cap));
        Ok(CapSlot(u32::try_from(proc.cspace.len() - 1).expect("fits")))
    }

    fn lookup_cap(&mut self, pid: Pid, slot: CapSlot) -> Result<Capability> {
        self.cycles.charge(cycles::CAP_LOOKUP);
        self.process(pid)?
            .cspace
            .get(slot.0 as usize)
            .copied()
            .flatten()
            .ok_or(KernelError::InvalidCapSlot(slot))
    }

    fn require(&mut self, cap: Capability, kind: ObjectKind, right: Rights, name: &'static str)
        -> Result<u32> {
        self.cycles.charge(cycles::RIGHTS_CHECK);
        let entry = self.objects[cap.target.0 as usize];
        if !entry.alive {
            return Err(KernelError::DanglingCapability);
        }
        if entry.kind != kind {
            return Err(KernelError::WrongObjectKind {
                expected: match kind {
                    ObjectKind::Endpoint => "endpoint",
                    ObjectKind::Page => "page",
                    ObjectKind::Process => "process",
                },
            });
        }
        if !cap.rights.contains(right) {
            return Err(KernelError::InsufficientRights { required: name });
        }
        Ok(entry.index)
    }

    /// Creates an endpoint owned by `owner`, returning an ALL-rights cap.
    ///
    /// # Errors
    ///
    /// Fails if the owner is unknown or its c-space is full.
    pub fn create_endpoint(&mut self, owner: Pid) -> Result<CapSlot> {
        self.cycles.charge(cycles::OBJECT_ALLOC);
        let index = u32::try_from(self.endpoints.len()).expect("fits");
        self.endpoints.push(Endpoint { alive: true, ..Endpoint::default() });
        let id = self.new_object(ObjectKind::Endpoint, index);
        self.install_cap(owner, Capability::new(id, ObjectKind::Endpoint, Rights::ALL))
    }

    /// Root-task operation: mints a diminished copy of `from`'s capability
    /// into `to`'s c-space (requires GRANT on the source capability).
    ///
    /// # Errors
    ///
    /// Fails on bad slots, missing GRANT, or a full destination c-space.
    pub fn grant_cap(&mut self, from: Pid, slot: CapSlot, to: Pid, rights: Rights)
        -> Result<CapSlot> {
        let cap = self.lookup_cap(from, slot)?;
        self.cycles.charge(cycles::RIGHTS_CHECK);
        if !cap.rights.contains(Rights::GRANT) {
            return Err(KernelError::InsufficientRights { required: "GRANT" });
        }
        let minted = cap.mint(rights);
        debug_assert!(cap.rights.contains(minted.rights), "mint must not amplify");
        self.install_cap(to, minted)
    }

    /// Reads the capability in one of `pid`'s slots (inspection only; the
    /// capability stays where it is).
    ///
    /// # Errors
    ///
    /// Fails on unknown pids or empty slots.
    pub fn inspect_cap(&mut self, pid: Pid, slot: CapSlot) -> Result<Capability> {
        self.lookup_cap(pid, slot)
    }

    /// The set of object ids `pid` currently holds capabilities to — its
    /// *authority*. Confinement reasoning in the EROS tradition: authority
    /// can only grow through a capability explicitly transferred over an
    /// endpoint both parties can reach; two processes with disjoint
    /// authority can never affect each other, and the tests prove it by
    /// running adversarial syscall sequences.
    #[must_use]
    pub fn authority(&self, pid: Pid) -> std::collections::BTreeSet<crate::object::ObjId> {
        self.processes
            .get(pid.0 as usize)
            .map(|p| p.cspace.iter().flatten().map(|c| c.target).collect())
            .unwrap_or_default()
    }

    /// Pops the next delivered message for `pid`.
    pub fn take_delivered(&mut self, pid: Pid) -> Option<Message> {
        self.processes.get_mut(pid.0 as usize)?.delivered.pop_front()
    }

    /// True if the process is ready to run.
    #[must_use]
    pub fn is_ready(&self, pid: Pid) -> bool {
        self.processes.get(pid.0 as usize).is_some_and(|p| p.state == ProcState::Ready)
    }

    /// The scheduler: returns the next ready process, rotating the queue.
    pub fn schedule(&mut self) -> Option<Pid> {
        self.cycles.charge(cycles::SCHEDULE);
        for _ in 0..self.run_queue.len() {
            let pid = self.run_queue.pop_front()?;
            if self.processes[pid.0 as usize].state == ProcState::Ready {
                self.run_queue.push_back(pid);
                return Some(pid);
            }
            // Blocked/dead processes drop off; they re-enter on wake.
        }
        None
    }

    fn wake(&mut self, pid: Pid) {
        let proc = &mut self.processes[pid.0 as usize];
        if proc.state != ProcState::Dead {
            proc.state = ProcState::Ready;
            self.run_queue.push_back(pid);
        }
    }

    fn store_message(&mut self, sender: Pid, msg: Message) -> Result<StoredMessage> {
        let len = msg.payload.len();
        let handle =
            self.mem.alloc(0, len.max(1)).map_err(|_| KernelError::OutOfMemory)?;
        for (i, w) in msg.payload.iter().enumerate() {
            self.mem.set_word(handle, i, *w).map_err(|_| KernelError::OutOfMemory)?;
        }
        self.mem.add_root(handle);
        self.cycles.charge(cycles::COPY_WORD * len as u64);
        Ok(StoredMessage { handle, len, cap: msg.cap, sender })
    }

    fn load_message(&mut self, stored: &StoredMessage) -> Message {
        let mut payload = Vec::with_capacity(stored.len);
        for i in 0..stored.len {
            payload.push(self.mem.get_word(stored.handle, i).expect("kernel heap intact"));
        }
        self.cycles.charge(cycles::COPY_WORD * stored.len as u64);
        self.mem.remove_root(stored.handle);
        // Manual managers want an explicit free; collected heaps refuse it,
        // which is fine — the root release above made it garbage.
        let _ = self.mem.free(stored.handle);
        Message { payload, cap: stored.cap }
    }

    fn deliver_to(&mut self, receiver: Pid, stored: StoredMessage) {
        let msg = self.load_message(&stored);
        if let Some(cap) = msg.cap {
            // Transferred capability lands in the receiver's c-space.
            let _ = self.install_cap(receiver, cap);
        }
        self.processes[receiver.0 as usize].delivered.push_back(msg);
        self.cycles.charge(cycles::CONTEXT_SWITCH);
    }

    /// Executes one syscall on behalf of `pid`.
    ///
    /// # Errors
    ///
    /// Every failure mode is a typed [`KernelError`]; the kernel never
    /// panics on user input (the "segfaults should never happen" rule).
    pub fn syscall(&mut self, pid: Pid, call: Syscall) -> Result<SysResult> {
        self.cycles.charge(cycles::SYSCALL);
        {
            let proc = self.process(pid)?;
            match proc.state {
                ProcState::Dead => return Err(KernelError::ProcessDead(pid)),
                ProcState::BlockedSend(_) | ProcState::BlockedRecv(_) => {
                    return Err(KernelError::ProcessBlocked(pid))
                }
                ProcState::Ready => {}
            }
        }
        match call {
            Syscall::Send { cap, msg } => {
                let capability = self.lookup_cap(pid, cap)?;
                let ep_index =
                    self.require(capability, ObjectKind::Endpoint, Rights::SEND, "SEND")?;
                let stored = self.store_message(pid, msg)?;
                if let Some(receiver) = self.endpoints[ep_index as usize].receivers.pop_front() {
                    self.deliver_to(receiver, stored);
                    self.wake(receiver);
                    Ok(SysResult::Delivered)
                } else {
                    self.endpoints[ep_index as usize].senders.push_back(stored);
                    self.processes[pid.0 as usize].state = ProcState::BlockedSend(ep_index);
                    Ok(SysResult::Blocked)
                }
            }
            Syscall::Recv { cap } => {
                let capability = self.lookup_cap(pid, cap)?;
                let ep_index =
                    self.require(capability, ObjectKind::Endpoint, Rights::RECV, "RECV")?;
                if let Some(stored) = self.endpoints[ep_index as usize].senders.pop_front() {
                    let sender = stored.sender;
                    self.deliver_to(pid, stored);
                    self.wake(sender);
                    Ok(SysResult::Delivered)
                } else {
                    self.endpoints[ep_index as usize].receivers.push_back(pid);
                    self.processes[pid.0 as usize].state = ProcState::BlockedRecv(ep_index);
                    Ok(SysResult::Blocked)
                }
            }
            Syscall::Mint { src, rights } => {
                let cap = self.lookup_cap(pid, src)?;
                self.cycles.charge(cycles::RIGHTS_CHECK);
                if !cap.rights.contains(Rights::GRANT) {
                    return Err(KernelError::InsufficientRights { required: "GRANT" });
                }
                let minted = cap.mint(rights);
                if !cap.rights.contains(minted.rights) {
                    return Err(KernelError::RightsAmplification);
                }
                let slot = self.install_cap(pid, minted)?;
                Ok(SysResult::Slot(slot))
            }
            Syscall::AllocPage { words } => {
                self.cycles.charge(cycles::OBJECT_ALLOC);
                let handle = self
                    .mem
                    .alloc(0, words.max(1))
                    .map_err(|_| KernelError::OutOfMemory)?;
                self.mem.add_root(handle);
                let index = u32::try_from(self.pages.len()).expect("fits");
                self.pages.push(handle);
                let id = self.new_object(ObjectKind::Page, index);
                let slot =
                    self.install_cap(pid, Capability::new(id, ObjectKind::Page, Rights::ALL))?;
                Ok(SysResult::Slot(slot))
            }
            Syscall::WritePage { cap, offset, value } => {
                let capability = self.lookup_cap(pid, cap)?;
                let index = self.require(capability, ObjectKind::Page, Rights::WRITE, "WRITE")?;
                let handle = self.pages[index as usize];
                self.mem
                    .set_word(handle, offset, value)
                    .map_err(|_| KernelError::PageFault { offset })?;
                Ok(SysResult::Done)
            }
            Syscall::ReadPage { cap, offset } => {
                let capability = self.lookup_cap(pid, cap)?;
                let index = self.require(capability, ObjectKind::Page, Rights::READ, "READ")?;
                let handle = self.pages[index as usize];
                let v = self
                    .mem
                    .get_word(handle, offset)
                    .map_err(|_| KernelError::PageFault { offset })?;
                Ok(SysResult::Value(v))
            }
            Syscall::DestroyEndpoint { cap } => {
                let capability = self.lookup_cap(pid, cap)?;
                let index =
                    self.require(capability, ObjectKind::Endpoint, Rights::CONTROL, "CONTROL")?;
                let ep = &mut self.endpoints[index as usize];
                ep.alive = false;
                let senders: Vec<Pid> = ep.senders.drain(..).map(|s| s.sender).collect();
                let receivers: Vec<Pid> = ep.receivers.drain(..).collect();
                self.objects[capability.target.0 as usize].alive = false;
                for p in senders.into_iter().chain(receivers) {
                    self.wake(p);
                }
                Ok(SysResult::Done)
            }
            Syscall::Yield => {
                self.cycles.charge(cycles::SCHEDULE);
                Ok(SysResult::Done)
            }
            Syscall::Exit => {
                self.processes[pid.0 as usize].state = ProcState::Dead;
                Ok(SysResult::Done)
            }
        }
    }

    /// One complete IPC round trip: client sends `words` payload words to a
    /// waiting server; server replies on a second endpoint. Returns the
    /// cycles charged for the round trip. Used by experiment E6.
    ///
    /// # Errors
    ///
    /// Propagates any syscall failure.
    pub fn ping_pong(
        &mut self,
        client: Pid,
        server: Pid,
        request_ep: (CapSlot, CapSlot),
        reply_ep: (CapSlot, CapSlot),
        words: usize,
    ) -> Result<u64> {
        let snapshot = self.cycles;
        let payload = vec![0xAB; words];
        // Server posts a receive, then client sends (rendezvous).
        self.syscall(server, Syscall::Recv { cap: request_ep.0 })?;
        self.syscall(client, Syscall::Send { cap: request_ep.1, msg: Message::words(&payload) })?;
        let req = self.take_delivered(server).ok_or(KernelError::DanglingCapability)?;
        // Client waits for the reply; server echoes.
        self.syscall(client, Syscall::Recv { cap: reply_ep.1 })?;
        self.syscall(server, Syscall::Send { cap: reply_ep.0, msg: Message::words(&req.payload) })?;
        let _ = self.take_delivered(client).ok_or(KernelError::DanglingCapability)?;
        Ok(self.cycles.since(snapshot))
    }

    /// Forces a heap collection (no-op for manual managers); exposed so the
    /// E6 driver can include collection pauses in its measurements.
    pub fn collect_heap(&mut self) {
        self.mem.collect();
    }

    /// Live bytes in the kernel heap.
    #[must_use]
    pub fn heap_live_bytes(&self) -> usize {
        self.mem.live_bytes()
    }

    /// Worst collection pause observed in the kernel heap, in nanoseconds.
    #[must_use]
    pub fn heap_max_pause_ns(&self) -> u64 {
        self.mem.stats().gc_pauses.max_ns()
    }

    /// Number of collections the kernel heap has run.
    #[must_use]
    pub fn heap_collections(&self) -> u64 {
        self.mem.stats().collections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysmem::generational::GenerationalHeap;
    use sysmem::marksweep::MarkSweepHeap;

    fn setup() -> (Kernel, Pid, Pid, CapSlot, CapSlot) {
        let mut k = Kernel::with_default_heap();
        let server = k.spawn_process();
        let client = k.spawn_process();
        let ep_server = k.create_endpoint(server).unwrap();
        let ep_client = k.grant_cap(server, ep_server, client, Rights::SEND).unwrap();
        (k, server, client, ep_server, ep_client)
    }

    #[test]
    fn rendezvous_delivers_payload() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        assert_eq!(k.syscall(server, Syscall::Recv { cap: ep_server }).unwrap(), SysResult::Blocked);
        assert!(!k.is_ready(server));
        let r = k
            .syscall(client, Syscall::Send { cap: ep_client, msg: Message::words(&[1, 2, 3]) })
            .unwrap();
        assert_eq!(r, SysResult::Delivered);
        assert!(k.is_ready(server), "receiver woken by rendezvous");
        assert_eq!(k.take_delivered(server).unwrap().payload, vec![1, 2, 3]);
    }

    #[test]
    fn sender_blocks_until_receiver_arrives() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        let r = k
            .syscall(client, Syscall::Send { cap: ep_client, msg: Message::words(&[9]) })
            .unwrap();
        assert_eq!(r, SysResult::Blocked);
        assert!(!k.is_ready(client));
        k.syscall(server, Syscall::Recv { cap: ep_server }).unwrap();
        assert!(k.is_ready(client), "sender woken after delivery");
        assert_eq!(k.take_delivered(server).unwrap().payload, vec![9]);
    }

    #[test]
    fn send_right_is_required() {
        let (mut k, server, client, ep_server, _) = setup();
        // Client got SEND only; server granting RECV-only produces a cap
        // that cannot send.
        let recv_only = k.grant_cap(server, ep_server, client, Rights::RECV).unwrap();
        let err = k
            .syscall(client, Syscall::Send { cap: recv_only, msg: Message::empty() })
            .unwrap_err();
        assert_eq!(err, KernelError::InsufficientRights { required: "SEND" });
    }

    #[test]
    fn grant_requires_grant_right() {
        let (mut k, server, client, _ep_server, ep_client) = setup();
        // Client's cap was minted with SEND only; it cannot re-grant.
        let third = k.spawn_process();
        let err = k.grant_cap(client, ep_client, third, Rights::SEND).unwrap_err();
        assert_eq!(err, KernelError::InsufficientRights { required: "GRANT" });
        let _ = server;
    }

    #[test]
    fn mint_never_amplifies() {
        let (mut k, server, _, ep_server, _) = setup();
        // Server holds ALL; minting SEND|RECV gives exactly that.
        let r = k.syscall(server, Syscall::Mint { src: ep_server, rights: Rights::SEND | Rights::RECV });
        let SysResult::Slot(slot) = r.unwrap() else { panic!("expected slot") };
        let cap = k.lookup_cap(server, slot).unwrap();
        assert_eq!(cap.rights, Rights::SEND | Rights::RECV);
    }

    #[test]
    fn capability_transfer_moves_authority() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        // Server allocates a page and sends a READ-only cap to the client.
        let SysResult::Slot(page) = k.syscall(server, Syscall::AllocPage { words: 8 }).unwrap()
        else {
            panic!("expected slot")
        };
        k.syscall(server, Syscall::WritePage { cap: page, offset: 3, value: 77 }).unwrap();
        let page_cap = k.lookup_cap(server, page).unwrap();
        let readonly = page_cap.mint(Rights::READ);
        k.syscall(client, Syscall::Recv { cap: ep_client }).err();
        // Client needs RECV; grant it.
        let ep_client_rv = k.grant_cap(server, ep_server, client, Rights::RECV).unwrap();
        k.syscall(client, Syscall::Recv { cap: ep_client_rv }).unwrap();
        k.syscall(
            server,
            Syscall::Send {
                cap: ep_server,
                msg: Message { payload: vec![], cap: Some(readonly) },
            },
        )
        .unwrap();
        let msg = k.take_delivered(client).unwrap();
        assert!(msg.cap.is_some());
        // The transferred cap landed in the client's c-space; find it.
        let transferred = (0..CSPACE_CAPACITY)
            .map(|i| CapSlot(u32::try_from(i).unwrap()))
            .find(|&s| {
                k.lookup_cap(client, s)
                    .map(|c| c.kind == ObjectKind::Page)
                    .unwrap_or(false)
            })
            .expect("transferred page cap present");
        let SysResult::Value(v) =
            k.syscall(client, Syscall::ReadPage { cap: transferred, offset: 3 }).unwrap()
        else {
            panic!("expected value")
        };
        assert_eq!(v, 77);
        // But writing through the READ-only cap fails.
        let err = k
            .syscall(client, Syscall::WritePage { cap: transferred, offset: 0, value: 1 })
            .unwrap_err();
        assert_eq!(err, KernelError::InsufficientRights { required: "WRITE" });
    }

    #[test]
    fn page_bounds_fault_cleanly() {
        let mut k = Kernel::with_default_heap();
        let p = k.spawn_process();
        let SysResult::Slot(page) = k.syscall(p, Syscall::AllocPage { words: 4 }).unwrap() else {
            panic!("expected slot")
        };
        let err = k.syscall(p, Syscall::ReadPage { cap: page, offset: 10 }).unwrap_err();
        assert_eq!(err, KernelError::PageFault { offset: 10 });
    }

    #[test]
    fn destroyed_endpoint_dangles() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        k.syscall(server, Syscall::DestroyEndpoint { cap: ep_server }).unwrap();
        let err = k
            .syscall(client, Syscall::Send { cap: ep_client, msg: Message::empty() })
            .unwrap_err();
        assert_eq!(err, KernelError::DanglingCapability);
    }

    #[test]
    fn destroying_endpoint_wakes_waiters() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        k.syscall(client, Syscall::Send { cap: ep_client, msg: Message::empty() }).unwrap();
        assert!(!k.is_ready(client));
        k.syscall(server, Syscall::DestroyEndpoint { cap: ep_server }).unwrap();
        assert!(k.is_ready(client), "blocked sender must not hang forever");
    }

    #[test]
    fn blocked_processes_cannot_syscall() {
        let (mut k, server, _, ep_server, _) = setup();
        k.syscall(server, Syscall::Recv { cap: ep_server }).unwrap();
        let err = k.syscall(server, Syscall::Yield).unwrap_err();
        assert_eq!(err, KernelError::ProcessBlocked(server));
    }

    #[test]
    fn dead_processes_cannot_syscall() {
        let mut k = Kernel::with_default_heap();
        let p = k.spawn_process();
        k.syscall(p, Syscall::Exit).unwrap();
        assert_eq!(k.syscall(p, Syscall::Yield).unwrap_err(), KernelError::ProcessDead(p));
    }

    #[test]
    fn scheduler_rotates_ready_processes() {
        let mut k = Kernel::with_default_heap();
        let a = k.spawn_process();
        let b = k.spawn_process();
        let first = k.schedule().unwrap();
        let second = k.schedule().unwrap();
        assert_ne!(first, second);
        assert_eq!(k.schedule().unwrap(), first);
        let _ = (a, b);
    }

    #[test]
    fn cycles_accumulate_per_syscall() {
        let mut k = Kernel::with_default_heap();
        let p = k.spawn_process();
        let before = k.cycles.total();
        k.syscall(p, Syscall::Yield).unwrap();
        assert!(k.cycles.total() > before);
    }

    #[test]
    fn ping_pong_round_trip_works_and_counts_cycles() {
        let (mut k, server, client, ep_server, ep_client) = setup();
        let reply_server = k.create_endpoint(server).unwrap();
        let reply_client = k.grant_cap(server, reply_server, client, Rights::RECV).unwrap();
        let cycles = k
            .ping_pong(client, server, (ep_server, ep_client), (reply_server, reply_client), 8)
            .unwrap();
        assert!(cycles > 0);
        // Larger payloads must cost more cycles.
        let cycles_big = k
            .ping_pong(client, server, (ep_server, ep_client), (reply_server, reply_client), 256)
            .unwrap();
        assert!(cycles_big > cycles);
    }

    #[test]
    fn kernel_runs_on_gc_heaps_too() {
        for heap in [
            Box::new(MarkSweepHeap::new(1 << 20)) as Box<dyn Manager>,
            Box::new(GenerationalHeap::new(1 << 20, 1 << 12)) as Box<dyn Manager>,
        ] {
            let mut k = Kernel::new(heap);
            let server = k.spawn_process();
            let client = k.spawn_process();
            let ep_s = k.create_endpoint(server).unwrap();
            let ep_c = k.grant_cap(server, ep_s, client, Rights::SEND).unwrap();
            for i in 0..200 {
                k.syscall(server, Syscall::Recv { cap: ep_s }).unwrap();
                k.syscall(client, Syscall::Send { cap: ep_c, msg: Message::words(&[i; 16]) })
                    .unwrap();
                let m = k.take_delivered(server).unwrap();
                assert_eq!(m.payload, vec![i; 16]);
            }
            k.collect_heap();
        }
    }

    #[test]
    fn cspace_exhaustion_is_reported() {
        let mut k = Kernel::with_default_heap();
        let p = k.spawn_process();
        let mut last = Ok(SysResult::Done);
        for _ in 0..=CSPACE_CAPACITY {
            last = k.syscall(p, Syscall::AllocPage { words: 1 });
            if last.is_err() {
                break;
            }
        }
        assert_eq!(last.unwrap_err(), KernelError::CapSpaceFull);
    }
}
