//! Model-checked IPC interleavings: `deliver_to`/`wake`/`cancel_ipc` racing
//! the watchdog reap.
//!
//! The kernel itself is single-threaded (`&mut self` everywhere), so the
//! interesting concurrency is *operation* interleaving: in what order do a
//! client's send, a server's recv, and the scheduler's watchdog sweep hit
//! the kernel? Production drivers pick one order; an adversarial caller
//! picks any. These models wrap a [`Kernel`] in a `syscheck` shimmed mutex
//! and let the cooperative scheduler drive every bounded interleaving of
//! those operations, calling [`Kernel::check_invariants`] — the runtime
//! mirror of the six proved invariant pairs — after every single step.
//!
//! A schedule where a reap leaves a process on two queues, a dead endpoint
//! keeps a waiter, or a woken process misses the run queue fails here with
//! the violated invariant's name, plus a replayable schedule.

use microkernel::kernel::{Kernel, Message, SysResult, Syscall};
use microkernel::rights::Rights;
use std::sync::Arc;
use syscheck::shim::{spawn_named, yield_now, Mutex};
use syscheck::Config;

/// Runs `op` under the kernel lock and checks every invariant afterwards;
/// the panic (with the invariant's name) becomes a syscheck failure carrying
/// the schedule that produced it.
fn step<T>(k: &Mutex<Kernel>, label: &str, op: impl FnOnce(&mut Kernel) -> T) -> T {
    let mut kernel = k.lock().unwrap();
    let out = op(&mut kernel);
    if let Err(violation) = kernel.check_invariants() {
        panic!("after {label}: {violation}");
    }
    out
}

fn poll_code(r: SysResult) -> u64 {
    match r {
        SysResult::TimedOut => 1,
        SysResult::Blocked => 2,
        SysResult::Delivered => 3,
        _ => 4,
    }
}

/// Client send vs server recv vs watchdog sweeps, all with a 1-cycle IPC
/// deadline so any sweep that observes a blocked party reaps it. The digest
/// separates terminal outcomes (delivered, sender reaped, receiver reaped,
/// both) so the exploration's distinct-state count proves the race is real.
fn send_recv_reap_model() -> u64 {
    let mut kernel = Kernel::with_default_heap();
    let server = kernel.spawn_process();
    let client = kernel.spawn_process();
    let ep_server = kernel.create_endpoint(server).unwrap();
    let ep_client = kernel
        .grant_cap(server, ep_server, client, Rights::SEND)
        .unwrap();
    kernel.set_ipc_deadline(server, Some(1)).unwrap();
    kernel.set_ipc_deadline(client, Some(1)).unwrap();
    let kernel = Arc::new(Mutex::new(kernel));

    let k = Arc::clone(&kernel);
    let sender = spawn_named("client", move || {
        let sent = step(&k, "client send", |kernel| {
            kernel.syscall(
                client,
                Syscall::Send {
                    cap: ep_client,
                    msg: Message::words(&[7]),
                },
            )
        });
        let polled = step(&k, "client poll", |kernel| kernel.poll_ipc(client).unwrap());
        u64::from(matches!(sent, Ok(SysResult::Delivered))) | poll_code(polled) << 1
    });

    let k = Arc::clone(&kernel);
    let watchdog = spawn_named("watchdog", move || {
        for _ in 0..3 {
            step(&k, "watchdog sweep", |kernel| {
                let _ = kernel.schedule();
            });
            yield_now();
        }
        0u64
    });

    let received = step(&kernel, "server recv", |kernel| {
        let r = kernel.syscall(server, Syscall::Recv { cap: ep_server });
        let msg = kernel.take_delivered(server);
        (matches!(r, Ok(SysResult::Delivered)), msg.is_some())
    });
    let server_poll = step(&kernel, "server poll", |kernel| {
        kernel.poll_ipc(server).unwrap()
    });

    let client_bits = sender.join().unwrap();
    watchdog.join().unwrap();
    let reaps = step(&kernel, "final audit", |kernel| {
        kernel.fault_stats().watchdog_reaps
    });
    client_bits
        | u64::from(received.0) << 4
        | u64::from(received.1) << 5
        | poll_code(server_poll) << 6
        | reaps << 9
}

#[test]
fn checker_ipc_invariants_hold_under_watchdog_races() {
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 10_000,
        ..Config::default()
    };
    let ex = syscheck::explore(&cfg, send_recv_reap_model);
    assert!(
        ex.failure.is_none(),
        "an interleaving violated a kernel invariant: {:?}",
        ex.failure
    );
    assert!(ex.schedules > 1, "the model must actually branch");
    // Different interleavings genuinely end differently (message delivered
    // vs sender reaped vs receiver reaped) — the race these invariants
    // survive is real, not scheduled away.
    assert!(
        ex.distinct_states >= 2,
        "expected racing outcomes, saw {} distinct states over {} schedules",
        ex.distinct_states,
        ex.schedules
    );
}

/// Endpoint destruction racing a blocked send and the watchdog: the drained
/// sender must be woken exactly once, its stored message freed, and the dead
/// endpoint left with empty queues — in every order of destroy vs send vs
/// sweep.
fn destroy_vs_send_model() -> u64 {
    let mut kernel = Kernel::with_default_heap();
    let server = kernel.spawn_process();
    let client = kernel.spawn_process();
    let ep_server = kernel.create_endpoint(server).unwrap();
    let ep_client = kernel
        .grant_cap(server, ep_server, client, Rights::SEND)
        .unwrap();
    kernel.set_ipc_deadline(client, Some(1)).unwrap();
    let kernel = Arc::new(Mutex::new(kernel));

    let k = Arc::clone(&kernel);
    let sender = spawn_named("client", move || {
        let sent = step(&k, "client send", |kernel| {
            kernel.syscall(
                client,
                Syscall::Send {
                    cap: ep_client,
                    msg: Message::words(&[9; 8]),
                },
            )
        });
        match sent {
            Ok(SysResult::Delivered) => 1u64,
            Ok(SysResult::Blocked) => 2,
            Ok(_) => 3,
            Err(_) => 4, // endpoint already destroyed: dangling, typed
        }
    });

    let k = Arc::clone(&kernel);
    let watchdog = spawn_named("watchdog", move || {
        step(&k, "watchdog sweep", |kernel| {
            let _ = kernel.schedule();
        });
        0u64
    });

    let destroyed = step(&kernel, "destroy endpoint", |kernel| {
        kernel
            .syscall(server, Syscall::DestroyEndpoint { cap: ep_server })
            .is_ok()
    });

    let client_code = sender.join().unwrap();
    watchdog.join().unwrap();
    let (client_ready, live) = step(&kernel, "final audit", |kernel| {
        (kernel.is_ready(client), kernel.heap_live_bytes() as u64)
    });
    assert!(destroyed, "owner holds CONTROL; destroy cannot fail");
    assert!(client_ready, "a drained or reaped sender must be runnable");
    assert_eq!(live, 0, "destroyed endpoint must free queued messages");
    client_code | u64::from(client_ready) << 3
}

#[test]
fn checker_endpoint_destroy_races_leave_no_corpses() {
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 10_000,
        ..Config::default()
    };
    let ex = syscheck::explore(&cfg, destroy_vs_send_model);
    assert!(
        ex.failure.is_none(),
        "a destroy/send/reap interleaving corrupted the kernel: {:?}",
        ex.failure
    );
    assert!(
        ex.distinct_states >= 2,
        "destroy vs send must actually race"
    );
}

#[test]
fn invariants_hold_through_a_plain_rendezvous() {
    // Non-model sanity: the checker's oracle accepts every state a normal
    // rendezvous passes through.
    let mut k = Kernel::with_default_heap();
    let server = k.spawn_process();
    let client = k.spawn_process();
    let ep_server = k.create_endpoint(server).unwrap();
    let ep_client = k
        .grant_cap(server, ep_server, client, Rights::SEND)
        .unwrap();
    k.check_invariants().unwrap();
    k.syscall(server, Syscall::Recv { cap: ep_server }).unwrap();
    k.check_invariants().unwrap();
    k.syscall(
        client,
        Syscall::Send {
            cap: ep_client,
            msg: Message::words(&[1, 2, 3]),
        },
    )
    .unwrap();
    k.check_invariants().unwrap();
    assert_eq!(k.take_delivered(server).unwrap().payload, vec![1, 2, 3]);
    k.check_invariants().unwrap();
}
