//! Confinement: the EROS-family security property, tested adversarially.
//!
//! Authority (the set of objects a process holds capabilities to) can only
//! flow along explicitly granted channels. Two processes with disjoint
//! authority must remain disjoint no matter what syscalls they issue; a
//! process may only gain authority through a capability transferred over an
//! endpoint it could already reach.

use microkernel::kernel::{Kernel, Message, SysResult, Syscall};
use microkernel::rights::Rights;
use microkernel::{CapSlot, Pid};
use proptest::prelude::*;

/// Adversarial syscall script entries (indices are taken modulo the
/// process's plausible slot range, so every script is well-formed enough to
/// execute but free to probe).
#[derive(Debug, Clone)]
enum AdversarialOp {
    Send { slot: u32, words: u8 },
    Recv { slot: u32 },
    Mint { slot: u32, rights: u8 },
    AllocPage { words: u8 },
    ReadPage { slot: u32, offset: u8 },
    WritePage { slot: u32, offset: u8, value: u64 },
    Probe { slot: u32 }, // destroy attempt on an arbitrary slot
}

fn arb_op() -> impl Strategy<Value = AdversarialOp> {
    prop_oneof![
        (0u32..8, any::<u8>()).prop_map(|(slot, words)| AdversarialOp::Send { slot, words }),
        (0u32..8).prop_map(|slot| AdversarialOp::Recv { slot }),
        (0u32..8, any::<u8>()).prop_map(|(slot, rights)| AdversarialOp::Mint { slot, rights }),
        (1u8..16).prop_map(|words| AdversarialOp::AllocPage { words }),
        (0u32..8, any::<u8>()).prop_map(|(slot, offset)| AdversarialOp::ReadPage { slot, offset }),
        (0u32..8, any::<u8>(), any::<u64>()).prop_map(|(slot, offset, value)| {
            AdversarialOp::WritePage {
                slot,
                offset,
                value,
            }
        }),
        (0u32..8).prop_map(|slot| AdversarialOp::Probe { slot }),
    ]
}

fn execute(k: &mut Kernel, pid: Pid, op: &AdversarialOp) {
    // Every call may legitimately fail; what matters is what authority
    // looks like afterwards. A blocked process is unblocked by nothing in
    // these scripts, so skip its calls.
    let result = match *op {
        AdversarialOp::Send { slot, words } => k.syscall(
            pid,
            Syscall::Send {
                cap: CapSlot(slot),
                msg: Message::words(&vec![7; usize::from(words % 8)]),
            },
        ),
        AdversarialOp::Recv { slot } => k.syscall(pid, Syscall::Recv { cap: CapSlot(slot) }),
        AdversarialOp::Mint { slot, rights } => k.syscall(
            pid,
            Syscall::Mint {
                src: CapSlot(slot),
                rights: Rights::from_bits(rights),
            },
        ),
        AdversarialOp::AllocPage { words } => k.syscall(
            pid,
            Syscall::AllocPage {
                words: usize::from(words),
            },
        ),
        AdversarialOp::ReadPage { slot, offset } => k.syscall(
            pid,
            Syscall::ReadPage {
                cap: CapSlot(slot),
                offset: usize::from(offset),
            },
        ),
        AdversarialOp::WritePage {
            slot,
            offset,
            value,
        } => k.syscall(
            pid,
            Syscall::WritePage {
                cap: CapSlot(slot),
                offset: usize::from(offset),
                value,
            },
        ),
        AdversarialOp::Probe { slot } => {
            k.syscall(pid, Syscall::DestroyEndpoint { cap: CapSlot(slot) })
        }
    };
    let _ = result;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two processes with disjoint initial authority stay disjoint under
    /// arbitrary syscall scripts: no sequence of kernel calls manufactures
    /// a capability to the other side's objects.
    #[test]
    fn disjoint_authority_stays_disjoint(
        script_a in proptest::collection::vec(arb_op(), 0..24),
        script_b in proptest::collection::vec(arb_op(), 0..24),
    ) {
        let mut k = Kernel::with_default_heap();
        let a = k.spawn_process();
        let b = k.spawn_process();
        // Each side gets its own private endpoint and page.
        let _ep_a = k.create_endpoint(a).unwrap();
        let _ep_b = k.create_endpoint(b).unwrap();
        k.syscall(a, Syscall::AllocPage { words: 4 }).unwrap();
        k.syscall(b, Syscall::AllocPage { words: 4 }).unwrap();
        let before_a = k.authority(a);
        let before_b = k.authority(b);
        prop_assert!(before_a.is_disjoint(&before_b));

        for (op_a, op_b) in script_a.iter().zip(script_b.iter().chain(std::iter::repeat(&AdversarialOp::AllocPage { words: 1 }))) {
            execute(&mut k, a, op_a);
            execute(&mut k, b, op_b);
        }
        for op in script_b.iter().skip(script_a.len()) {
            execute(&mut k, b, op);
        }

        let after_a = k.authority(a);
        let after_b = k.authority(b);
        prop_assert!(
            after_a.is_disjoint(&after_b),
            "confinement broken: shared objects {:?}",
            after_a.intersection(&after_b).collect::<Vec<_>>()
        );
        // Authority may grow only by self-created objects (pages/endpoints
        // the process allocated), never by acquiring pre-existing foreign
        // objects.
        prop_assert!(
            after_a.intersection(&before_b).next().is_none(),
            "process a acquired b's initial authority"
        );
        prop_assert!(
            after_b.intersection(&before_a).next().is_none(),
            "process b acquired a's initial authority"
        );
    }
}

#[test]
fn authority_flows_only_over_granted_channels() {
    let mut k = Kernel::with_default_heap();
    let server = k.spawn_process();
    let client = k.spawn_process();
    let ep = k.create_endpoint(server).unwrap();
    let SysResult::Slot(page) = k.syscall(server, Syscall::AllocPage { words: 2 }).unwrap() else {
        panic!("expected slot")
    };
    // Before any grant, the client has no authority at all.
    assert!(k.authority(client).is_empty());
    // Grant the endpoint; authority grows by exactly that object.
    let ep_c = k
        .grant_cap(server, ep, client, Rights::SEND | Rights::RECV)
        .unwrap();
    let ep_obj = k.inspect_cap(client, ep_c).unwrap().target;
    assert_eq!(k.authority(client).len(), 1);
    assert!(k.authority(client).contains(&ep_obj));
    // Transfer the page cap over the endpoint; authority grows by the page.
    let page_cap = k.inspect_cap(server, page).unwrap().mint(Rights::READ);
    k.syscall(client, Syscall::Recv { cap: ep_c }).unwrap();
    k.syscall(
        server,
        Syscall::Send {
            cap: ep,
            msg: Message {
                payload: vec![],
                cap: Some(page_cap),
                ctx: 0,
            },
        },
    )
    .unwrap();
    let _ = k.take_delivered(client);
    assert_eq!(k.authority(client).len(), 2);
    assert!(k.authority(client).contains(&page_cap.target));
}

#[test]
fn minted_authority_is_never_new_authority() {
    // Minting produces capabilities only to objects already in the c-space.
    let mut k = Kernel::with_default_heap();
    let p = k.spawn_process();
    let _ep = k.create_endpoint(p).unwrap();
    k.syscall(p, Syscall::AllocPage { words: 1 }).unwrap();
    let before = k.authority(p);
    for slot in 0..4u32 {
        let _ = k.syscall(
            p,
            Syscall::Mint {
                src: CapSlot(slot),
                rights: Rights::ALL,
            },
        );
    }
    assert_eq!(k.authority(p), before, "mint changed the authority set");
}
