//! Scheduler-driven multi-client sessions: an echo server shared by many
//! clients, driven through the kernel's scheduler the way a real system
//! would run, plus starvation and revocation scenarios.

use microkernel::kernel::{Kernel, Message, SysResult, Syscall};
use microkernel::rights::Rights;
use microkernel::{KernelError, Pid};

#[test]
fn echo_server_serves_many_clients_fairly() {
    let mut k = Kernel::with_default_heap();
    let server = k.spawn_process();
    let ep = k.create_endpoint(server).unwrap();
    const CLIENTS: usize = 8;
    const ROUNDS: u64 = 20;

    let clients: Vec<Pid> = (0..CLIENTS).map(|_| k.spawn_process()).collect();
    let caps: Vec<_> = clients
        .iter()
        .map(|&c| k.grant_cap(server, ep, c, Rights::SEND).unwrap())
        .collect();

    // Reply path: one endpoint per client.
    let reply_eps: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let s = k.create_endpoint(server).unwrap();
            let c = k.grant_cap(server, s, clients[i], Rights::RECV).unwrap();
            (s, c)
        })
        .collect();

    let mut served = vec![0u64; CLIENTS];
    for round in 0..ROUNDS {
        // All clients queue requests (tagged with their index).
        k.syscall(server, Syscall::Recv { cap: ep }).unwrap();
        for (i, &c) in clients.iter().enumerate() {
            let payload = [i as u64, round];
            match k.syscall(
                c,
                Syscall::Send {
                    cap: caps[i],
                    msg: Message::words(&payload),
                },
            ) {
                Ok(SysResult::Delivered | SysResult::Blocked) => {}
                other => panic!("unexpected send result {other:?}"),
            }
        }
        // Server drains: first message arrived via the rendezvous; the rest
        // are queued on the endpoint.
        for _ in 0..CLIENTS {
            let msg = match k.take_delivered(server) {
                Some(m) => m,
                None => {
                    k.syscall(server, Syscall::Recv { cap: ep }).unwrap();
                    k.take_delivered(server).expect("queued sender delivers")
                }
            };
            let who = usize::try_from(msg.payload[0]).unwrap();
            served[who] += 1;
            // Echo back.
            k.syscall(
                clients[who],
                Syscall::Recv {
                    cap: reply_eps[who].1,
                },
            )
            .unwrap();
            k.syscall(
                server,
                Syscall::Send {
                    cap: reply_eps[who].0,
                    msg: Message::words(&msg.payload),
                },
            )
            .unwrap();
            let echoed = k.take_delivered(clients[who]).unwrap();
            assert_eq!(echoed.payload, msg.payload);
        }
    }
    assert!(
        served.iter().all(|&n| n == ROUNDS),
        "every client served equally: {served:?}"
    );
}

#[test]
fn scheduler_only_offers_ready_processes() {
    let mut k = Kernel::with_default_heap();
    let a = k.spawn_process();
    let b = k.spawn_process();
    let ep = k.create_endpoint(a).unwrap();
    // Block a on a receive; only b should be scheduled.
    k.syscall(a, Syscall::Recv { cap: ep }).unwrap();
    for _ in 0..5 {
        assert_eq!(k.schedule(), Some(b));
    }
    // Wake a by sending from b.
    let b_cap = {
        // b has no cap yet: a grants via kernel root operation would need a
        // to be runnable; use grant_cap directly (root-task semantics).
        k.grant_cap(a, ep, b, Rights::SEND).unwrap()
    };
    k.syscall(
        b,
        Syscall::Send {
            cap: b_cap,
            msg: Message::empty(),
        },
    )
    .unwrap();
    assert!(k.is_ready(a));
    let offered: Vec<_> = (0..4).filter_map(|_| k.schedule()).collect();
    assert!(
        offered.contains(&a),
        "woken process re-enters the rotation: {offered:?}"
    );
}

#[test]
fn exited_clients_do_not_wedge_the_server() {
    let mut k = Kernel::with_default_heap();
    let server = k.spawn_process();
    let client = k.spawn_process();
    let ep = k.create_endpoint(server).unwrap();
    let cap = k.grant_cap(server, ep, client, Rights::SEND).unwrap();
    k.syscall(
        client,
        Syscall::Send {
            cap,
            msg: Message::words(&[1]),
        },
    )
    .unwrap();
    k.syscall(client, Syscall::Exit).ok(); // blocked → Exit fails, that's fine
                                           // Server still receives the queued message.
    k.syscall(server, Syscall::Recv { cap: ep }).unwrap();
    assert_eq!(k.take_delivered(server).unwrap().payload, vec![1]);
}

#[test]
fn heap_pressure_from_many_messages_is_survivable() {
    // Small heap + many in-flight messages: sends fail with OutOfMemory
    // rather than corrupting, and draining recovers.
    let mut k = Kernel::new(Box::new(sysmem::freelist::FreeListHeap::new(4096)));
    let server = k.spawn_process();
    let client = k.spawn_process();
    let ep = k.create_endpoint(server).unwrap();
    let cap = k.grant_cap(server, ep, client, Rights::SEND).unwrap();
    let mut sent = 0usize;
    let mut oom = false;
    for i in 0..64u64 {
        match k.syscall(
            client,
            Syscall::Send {
                cap,
                msg: Message::words(&[i; 16]),
            },
        ) {
            Ok(_) => sent += 1,
            Err(KernelError::OutOfMemory) => {
                oom = true;
                break;
            }
            Err(KernelError::ProcessBlocked(_)) => break, // first send blocked the client
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    // Either the first send blocked (rendezvous semantics) or we eventually
    // hit OOM; in both cases the kernel stays consistent.
    assert!(sent >= 1);
    k.syscall(server, Syscall::Recv { cap: ep }).unwrap();
    assert!(k.take_delivered(server).is_some());
    let _ = oom;
}
