//! # syscheck — deterministic concurrency model checking
//!
//! The paper's Challenge 4 ("managing shared state") is only half answered
//! by building lock, STM, and channel substrates — the other half is
//! *knowing they are right*, and real-thread stress tests only prove a bug
//! exists when the OS scheduler feels like exposing it. This crate makes
//! interleavings an enumerable input, in the mold of loom and CHESS:
//!
//! * [`shim`] — drop-in `std::sync` / `std::thread` replacements that cost
//!   one relaxed load in normal builds and become scheduling decision points
//!   under a checker runtime;
//! * [`explore`] — bounded-exhaustive DFS over the schedule tree with a
//!   preemption bound (small models: every schedule, certainty);
//! * [`explore_random`] — seeded-random schedules (large models: coverage
//!   with a recorded `u64` seed per schedule);
//! * [`replay_seed`] / [`replay_choices`] — byte-for-byte reproduction of a
//!   failing schedule from its seed or its recorded decision list;
//! * [`shrink::shrink_failure`] — minimizes a failing schedule to the few
//!   preemptions that matter, by driving `sysfault::shrink::minimize` over
//!   plans whose fault sites *are* preemptions;
//! * failures carry an obs-style event [`trace::Trace`] of the schedule.
//!
//! The model is sequential consistency: one thread runs at a time and every
//! shimmed operation is a potential switch point. Weak-memory reorderings
//! are out of scope (orderings are recorded, not modeled) — the bugs this
//! repo cares about (torn invariants, lost wakeups, deadlocks, two-phase
//! locking races) are all SC-visible.
//!
//! ```
//! use syscheck::{explore, Config};
//! use syscheck::shim::{spawn, Mutex};
//! use std::sync::Arc;
//!
//! let ex = explore(&Config::default(), || {
//!     let total = Arc::new(Mutex::new(0u64));
//!     let t = {
//!         let total = Arc::clone(&total);
//!         spawn(move || *total.lock().unwrap() += 1)
//!     };
//!     *total.lock().unwrap() += 1;
//!     t.join().unwrap();
//!     let v = *total.lock().unwrap();
//!     assert_eq!(v, 2);
//!     v // terminal-state digest
//! });
//! assert!(ex.failure.is_none());
//! assert!(ex.complete);
//! ```

pub mod shim;
pub mod shrink;
pub mod trace;

mod rt;

use rt::{Chooser, SplitMix64};
use std::collections::HashSet;
use std::sync::Arc;
use trace::Trace;

/// Exploration limits and bounds.
#[derive(Debug, Clone)]
pub struct Config {
    /// DFS preemption bound: schedules may switch away from a runnable
    /// thread at most this many times. 2 finds most real bugs (CHESS's
    /// observation) while keeping small models exhaustively checkable.
    pub preemption_bound: u32,
    /// Per-execution decision budget; exceeding it is a failure (a live
    /// lock or runaway model, not a checker limit to tune around).
    pub max_steps: u64,
    /// Schedule budget for one exploration.
    pub max_schedules: u64,
    /// Model-thread cap per execution.
    pub max_threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_steps: 20_000,
            max_schedules: 10_000,
            max_threads: 8,
        }
    }
}

/// Why a schedule failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure).
    Panic,
    /// No thread could run: every live thread was blocked with no timed
    /// waiter left to fire. Lost wakeups land here.
    Deadlock,
    /// The execution exceeded [`Config::max_steps`] decisions.
    StepBudget,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FailureKind::Panic => "panic",
            FailureKind::Deadlock => "deadlock",
            FailureKind::StepBudget => "step-budget",
        })
    }
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Panic message or deadlock description.
    pub message: String,
    /// The schedule's seed when found by [`explore_random`]; replay it with
    /// [`replay_seed`].
    pub seed: Option<u64>,
    /// The decision list (thread id per step); replay it with
    /// [`replay_choices`] — this works for DFS-found failures too.
    pub choices: Vec<usize>,
    /// Preemptions the failing schedule used.
    pub preemptions: u32,
    /// Obs-style event log of the failing schedule.
    pub trace: Trace,
}

/// Result of one exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Schedules executed.
    pub schedules: u64,
    /// Distinct terminal-state digests observed across passing schedules
    /// (the model closure's return value).
    pub distinct_states: usize,
    /// First failing schedule, if any (exploration stops there).
    pub failure: Option<Failure>,
    /// True when DFS exhausted the (bounded) schedule tree.
    pub complete: bool,
}

/// Result of replaying a single schedule.
#[derive(Debug, Clone)]
pub struct Report {
    /// The failure this schedule produces, if any.
    pub failure: Option<Failure>,
    /// Event log of the replayed schedule (also inside `failure`, when set).
    pub trace: Trace,
    /// Terminal-state digest (absent when the schedule failed).
    pub digest: Option<u64>,
    /// Preemptions the schedule used.
    pub preemptions: u32,
}

pub(crate) struct RunOut {
    pub chooser: Chooser,
    pub decisions: Vec<rt::Decision>,
    pub trace: Trace,
    pub digest: Option<u64>,
    pub failure: Option<(FailureKind, String)>,
    pub preemptions: u32,
}

/// Silences the default panic hook on checker-owned threads. Exploration
/// *expects* panics — every failing schedule panics once while the search
/// runs, and shrinking replays the failure dozens of times — so the stock
/// hook would flood stderr with backtraces for failures the checker already
/// captures (message, trace, and schedule all land in [`Failure`]). Panics
/// on the caller's own threads keep the previous hook untouched.
fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let checker_thread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("syscheck-t"));
            if !checker_thread {
                prev(info);
            }
        }));
    });
}

/// Runs the model once under `chooser`.
pub(crate) fn run_once<F>(cfg: &Config, chooser: Chooser, f: Arc<F>) -> RunOut
where
    F: Fn() -> u64 + Send + Sync + 'static,
{
    assert!(
        rt::current().is_none(),
        "syscheck explorations cannot nest inside a model"
    );
    install_quiet_panic_hook();
    let rtm = rt::Runtime::new(cfg, chooser);
    let model = move || f();
    let (_, slot, os) = rtm.spawn_thread(None, model);
    rtm.wait_done();
    let _ = os.join();
    let digest = slot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
        .and_then(std::result::Result::ok);
    let h = rtm.harvest();
    RunOut {
        chooser: h.chooser,
        decisions: h.decisions,
        trace: h.trace,
        digest,
        failure: h.failure,
        preemptions: h.preemptions,
    }
}

fn failure_from(out: &RunOut, seed: Option<u64>) -> Option<Failure> {
    out.failure.as_ref().map(|(kind, message)| Failure {
        kind: *kind,
        message: message.clone(),
        seed,
        choices: out.decisions.iter().map(|d| d.chosen).collect(),
        preemptions: out.preemptions,
        trace: out.trace.clone(),
    })
}

/// Bounded-exhaustive DFS over the model's schedule tree.
///
/// The model closure runs once per schedule and must be deterministic up to
/// scheduling; its `u64` return value is a terminal-state digest, counted
/// into [`Exploration::distinct_states`]. Exploration stops at the first
/// failing schedule.
pub fn explore<F>(cfg: &Config, f: F) -> Exploration
where
    F: Fn() -> u64 + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut path: Vec<rt::DfsNode> = Vec::new();
    let mut schedules = 0u64;
    let mut distinct = HashSet::new();
    loop {
        let out = run_once(
            cfg,
            Chooser::Dfs {
                path,
                cursor: 0,
                bound: cfg.preemption_bound,
            },
            Arc::clone(&f),
        );
        schedules += 1;
        if out.failure.is_some() {
            let failure = failure_from(&out, None);
            return Exploration {
                schedules,
                distinct_states: distinct.len(),
                failure,
                complete: false,
            };
        }
        if let Some(d) = out.digest {
            distinct.insert(d);
        }
        let Chooser::Dfs { path: p, .. } = out.chooser else {
            unreachable!("DFS runs return DFS choosers")
        };
        path = p;
        // Backtrack to the next unexplored branch; empty path = done.
        loop {
            match path.last_mut() {
                None => {
                    return Exploration {
                        schedules,
                        distinct_states: distinct.len(),
                        failure: None,
                        complete: true,
                    }
                }
                Some(n) => {
                    n.idx += 1;
                    if n.idx < n.n_options {
                        break;
                    }
                    path.pop();
                }
            }
        }
        if schedules >= cfg.max_schedules {
            return Exploration {
                schedules,
                distinct_states: distinct.len(),
                failure: None,
                complete: false,
            };
        }
    }
}

/// Seeded-random schedules: runs up to [`Config::max_schedules`] schedules,
/// each driven by a fresh seed derived from `base_seed`. A failure records
/// the *specific* schedule's seed, so `replay_seed(cfg, failure.seed, f)`
/// reproduces it exactly.
pub fn explore_random<F>(cfg: &Config, base_seed: u64, f: F) -> Exploration
where
    F: Fn() -> u64 + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut sm = SplitMix64(base_seed);
    let mut distinct = HashSet::new();
    for k in 0..cfg.max_schedules {
        let seed = sm.next();
        let out = run_once(cfg, Chooser::Random(SplitMix64(seed)), Arc::clone(&f));
        if out.failure.is_some() {
            let failure = failure_from(&out, Some(seed));
            return Exploration {
                schedules: k + 1,
                distinct_states: distinct.len(),
                failure,
                complete: false,
            };
        }
        if let Some(d) = out.digest {
            distinct.insert(d);
        }
    }
    Exploration {
        schedules: cfg.max_schedules,
        distinct_states: distinct.len(),
        failure: None,
        complete: false,
    }
}

/// Replays the single schedule a seed denotes (the schedule
/// [`explore_random`] ran with that seed).
pub fn replay_seed<F>(cfg: &Config, seed: u64, f: F) -> Report
where
    F: Fn() -> u64 + Send + Sync + 'static,
{
    let out = run_once(cfg, Chooser::Random(SplitMix64(seed)), Arc::new(f));
    Report {
        failure: failure_from(&out, Some(seed)),
        digest: out.digest,
        preemptions: out.preemptions,
        trace: out.trace,
    }
}

/// Replays a recorded decision list ([`Failure::choices`]). Invalid or
/// missing choices fall back to the default policy, so shrunken lists stay
/// replayable.
pub fn replay_choices<F>(cfg: &Config, choices: &[usize], f: F) -> Report
where
    F: Fn() -> u64 + Send + Sync + 'static,
{
    let out = run_once(
        cfg,
        Chooser::Fixed {
            choices: choices.to_vec(),
            cursor: 0,
        },
        Arc::new(f),
    );
    Report {
        failure: failure_from(&out, None),
        digest: out.digest,
        preemptions: out.preemptions,
        trace: out.trace,
    }
}

/// Convenience assertion wrapper: exhaustively explores `f` under the
/// default config and panics with the rendered schedule trace when any
/// schedule fails.
///
/// # Panics
///
/// Panics when a failing schedule is found.
pub fn check<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let ex = explore(&Config::default(), move || {
        f();
        0
    });
    if let Some(failure) = ex.failure {
        panic!(
            "syscheck found a failing schedule ({}): {}\nschedule trace:\n{}",
            failure.kind,
            failure.message,
            failure.trace.render()
        );
    }
}
