//! Shrinking failing schedules to minimal preemption traces.
//!
//! A failing schedule found by DFS or random search is a full decision list —
//! hundreds of entries, almost all of which are the default policy anyway.
//! The signal is the *deviations*: the few steps where the scheduler switched
//! away from the thread the default policy would have run. This module
//! encodes each deviation as a `sysfault` fault site named
//! `preempt.<step>.<thread>` and drives [`sysfault::shrink::minimize`] over
//! the resulting [`FaultPlan`], re-running the model under
//! deviation-replay for every candidate plan. What survives is the minimal
//! set of preemptions that still reproduces the failure — usually one or two
//! — rendered with the full schedule trace of the shrunken reproduction.

use crate::rt::Chooser;
use crate::{run_once, Config, Report};
use std::collections::BTreeMap;
use std::sync::Arc;
use sysfault::{FaultPlan, Schedule};

/// A failing schedule reduced to its essential preemptions.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The surviving deviations as `(step, thread)` pairs: at decision
    /// `step`, run `thread` instead of the default policy's pick.
    pub deviations: Vec<(u64, usize)>,
    /// Replay of the minimal schedule (its failure, trace, preemptions).
    pub report: Report,
    /// The minimized plan in `sysfault` form, one `preempt.<step>.<thread>`
    /// site per surviving deviation.
    pub plan: FaultPlan,
}

/// Encodes a decision list's deviations from the default policy as a
/// fault plan: site `preempt.<step>.<thread>`, firing every time.
fn plan_from_choices<F>(cfg: &Config, choices: &[usize], f: &Arc<F>) -> FaultPlan
where
    F: Fn() -> u64 + Send + Sync + 'static,
{
    // Re-run under Fixed replay to recover the per-step defaults (the
    // original failure only recorded the chosen thread ids).
    let out = run_once(
        cfg,
        Chooser::Fixed {
            choices: choices.to_vec(),
            cursor: 0,
        },
        Arc::clone(f),
    );
    let mut plan = FaultPlan::new(0);
    for (step, d) in out.decisions.iter().enumerate() {
        if d.chosen != d.default {
            plan = plan.with_site(
                format!("preempt.{step}.{}", d.chosen),
                Schedule::EveryNth(1),
            );
        }
    }
    plan
}

/// Decodes a plan back into a deviation map. A site is active when its
/// schedule fires on the first (and, for deviation sites, only)
/// consultation — `EveryNth(1)` as written, or `OneShotAt(1)` after the
/// minimizer pins it.
fn deviations_from(plan: &FaultPlan) -> BTreeMap<u64, usize> {
    let mut devs = BTreeMap::new();
    for (name, sched) in plan.sites() {
        let active = matches!(sched, Schedule::EveryNth(1) | Schedule::OneShotAt(1));
        if !active {
            continue;
        }
        let mut parts = name.split('.');
        let (Some("preempt"), Some(step), Some(thread)) =
            (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if let (Ok(step), Ok(thread)) = (step.parse::<u64>(), thread.parse::<usize>()) {
            devs.insert(step, thread);
        }
    }
    devs
}

/// Shrinks a failing schedule (its recorded [`crate::Failure::choices`]) to
/// a minimal preemption trace.
///
/// The model must be the same closure the failure came from. Returns the
/// deviations that still reproduce a failure of the same kind, plus a
/// replay report of the minimal schedule. If the recorded choices no longer
/// reproduce (a nondeterministic model), the result degenerates to the
/// original deviation set.
pub fn shrink_failure<F>(cfg: &Config, failure: &crate::Failure, f: F) -> Shrunk
where
    F: Fn() -> u64 + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let kind = failure.kind;
    let full = plan_from_choices(cfg, &failure.choices, &f);

    let fails = |candidate: &FaultPlan| {
        let devs = deviations_from(candidate);
        let out = run_once(cfg, Chooser::Deviate(devs), Arc::clone(&f));
        matches!(&out.failure, Some((k, _)) if *k == kind)
    };
    let minimal = sysfault::shrink::minimize(&full, fails);

    let devs = deviations_from(&minimal);
    let out = run_once(cfg, Chooser::Deviate(devs.clone()), Arc::clone(&f));
    let report = Report {
        failure: crate::failure_from(&out, None),
        digest: out.digest,
        preemptions: out.preemptions,
        trace: out.trace,
    };
    Shrunk {
        deviations: devs.into_iter().collect(),
        report,
        plan: minimal,
    }
}
