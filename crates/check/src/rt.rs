//! The cooperative scheduler behind the checker.
//!
//! Each model thread is backed by a real OS thread, but only one ever runs:
//! every shim operation funnels into a [`Runtime`] entry point that records
//! a trace event, asks the execution's [`Chooser`] which thread runs next,
//! and hands the single run token over a process-wide condvar. Blocking
//! operations (contended lock acquisition, condvar waits, joins) mark the
//! thread blocked, so "no runnable thread" is a *detected* deadlock rather
//! than a hung test — which is exactly how lost wakeups surface.
//!
//! Determinism contract: given the same model closure and the same chooser
//! decisions, an execution takes the same schedule, produces the same trace
//! digest, and reaches the same terminal state. Models must therefore be
//! deterministic up to scheduling (no wall-clock branching, no ambient
//! randomness) and must create their shared objects inside the closure.

use crate::trace::Trace;
use crate::{Config, FailureKind};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{PoisonError, TryLockError};

/// Shared slot a spawned model thread writes its (possibly panicked) result
/// into; the matching `JoinHandle` takes it out after the model-time join.
pub(crate) type ResultSlot<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

/// Panic payload used to unwind parked model threads when an execution
/// aborts (failure recorded or budget exhausted). Never escapes the checker:
/// thread wrappers catch it and finish quietly.
pub(crate) struct SchedAbort;

/// SplitMix64 — the same tiny PRNG `sysfault` seeds its per-site streams
/// with; one instance drives each random schedule.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// What a blocked model thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiting {
    Lock(u64),
    Cond(u64),
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    /// Voluntarily stepped aside (`yield_now` / spin hint): schedulable only
    /// when no plain-runnable thread exists, and restored to `Runnable` at
    /// the next decision. This is what makes spin loops explorable — the
    /// spinner cannot starve the thread it is waiting on, so bounded DFS
    /// terminates even on test-and-set loops.
    Yielded,
    Blocked(Waiting),
    Finished,
}

struct ThreadSlot {
    state: TState,
    /// Parked in a timed condvar wait: eligible for a timeout firing.
    timed: bool,
    /// Set when the scheduler fired this thread's timeout; consumed by the
    /// shim `wait_timeout` to report `timed_out()`.
    timeout_fired: bool,
    /// Monotonic block sequence number: timeouts fire on the longest-waiting
    /// timed waiter first, deterministically.
    block_seq: u64,
}

/// One scheduling decision, recorded for replay and shrinking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Decision {
    /// Thread granted the run token.
    pub chosen: usize,
    /// Thread the default policy (stay on the current thread when runnable,
    /// else the lowest-id candidate) would have picked. Deviations from it
    /// are the preemptions shrinking minimizes.
    pub default: usize,
}

/// One node of the DFS schedule tree: how many options the decision had and
/// which branch the current iteration takes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DfsNode {
    pub n_options: usize,
    pub idx: usize,
}

/// Scheduling policy for one execution.
pub(crate) enum Chooser {
    /// Bounded-exhaustive DFS over the schedule tree with a preemption bound.
    Dfs {
        path: Vec<DfsNode>,
        cursor: usize,
        bound: u32,
    },
    /// Seeded-random schedule (one seed = one schedule).
    Random(SplitMix64),
    /// Replay of a recorded choice list (thread ids, one per decision);
    /// falls back to the default policy past the end or on invalid choices.
    Fixed { choices: Vec<usize>, cursor: usize },
    /// Default policy everywhere except at the given steps, where the mapped
    /// thread is chosen if runnable. The shrinker's schedule encoding.
    Deviate(BTreeMap<u64, usize>),
}

impl Chooser {
    /// Picks an index into `allowed` (ordered default-first, non-empty).
    fn choose(&mut self, step: u64, allowed: &[usize]) -> usize {
        match self {
            Chooser::Dfs { path, cursor, .. } => {
                if *cursor == path.len() {
                    path.push(DfsNode {
                        n_options: allowed.len(),
                        idx: 0,
                    });
                }
                let idx = path[*cursor].idx.min(allowed.len() - 1);
                *cursor += 1;
                idx
            }
            Chooser::Random(rng) => {
                usize::try_from(rng.next() % allowed.len() as u64).expect("index fits usize")
            }
            Chooser::Fixed { choices, cursor } => {
                let want = choices.get(*cursor).copied();
                *cursor += 1;
                want.and_then(|w| allowed.iter().position(|&t| t == w))
                    .unwrap_or(0)
            }
            Chooser::Deviate(devs) => devs
                .get(&step)
                .and_then(|w| allowed.iter().position(|&t| t == *w))
                .unwrap_or(0),
        }
    }

    fn preemption_bound(&self) -> u32 {
        match self {
            Chooser::Dfs { bound, .. } => *bound,
            _ => u32::MAX,
        }
    }
}

/// Everything one execution tracks, behind the runtime mutex.
pub(crate) struct ExecState {
    threads: Vec<ThreadSlot>,
    active: usize,
    live: usize,
    steps: u64,
    preemptions: u32,
    next_block_seq: u64,
    chooser: Chooser,
    decisions: Vec<Decision>,
    trace: Trace,
    /// Current holder of each shim lock, by object id.
    lock_owner: HashMap<u64, usize>,
    /// FIFO wait queue of each shim condvar, by object id.
    cond_queue: HashMap<u64, VecDeque<usize>>,
    /// Address -> per-execution object id. Ids are assigned in first-touch
    /// order (deterministic across executions); entries are removed when the
    /// shim object drops so address reuse cannot alias a dead object.
    obj_ids: HashMap<usize, u64>,
    next_obj_id: u64,
    failure: Option<(FailureKind, String)>,
    aborting: bool,
    done: bool,
    max_steps: u64,
    max_threads: usize,
}

/// Outcome of a decision attempt.
enum Decide {
    Chosen(usize),
    Deadlock(String),
    Budget,
}

/// Harvested results of a finished execution.
pub(crate) struct Harvest {
    pub chooser: Chooser,
    pub decisions: Vec<Decision>,
    pub trace: Trace,
    pub failure: Option<(FailureKind, String)>,
    pub preemptions: u32,
}

struct Inner {
    st: StdMutex<ExecState>,
    cv: StdCondvar,
}

/// Count of live runtimes in the process: the shim's fast path is a single
/// relaxed load of this when no checker is active anywhere.
static ACTIVE_RUNTIMES: AtomicUsize = AtomicUsize::new(0);

impl Drop for Inner {
    fn drop(&mut self) {
        ACTIVE_RUNTIMES.fetch_sub(1, Ordering::Relaxed);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(Runtime, usize)>> = const { RefCell::new(None) };
}

/// The runtime controlling the calling thread, with its model-thread id.
/// `None` on every thread the checker did not spawn — there the shim falls
/// through to `std`.
pub(crate) fn current() -> Option<(Runtime, usize)> {
    if ACTIVE_RUNTIMES.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// Handle on one execution's scheduler.
#[derive(Clone)]
pub(crate) struct Runtime(Arc<Inner>);

impl Runtime {
    pub(crate) fn new(cfg: &Config, chooser: Chooser) -> Self {
        ACTIVE_RUNTIMES.fetch_add(1, Ordering::Relaxed);
        Runtime(Arc::new(Inner {
            st: StdMutex::new(ExecState {
                threads: Vec::new(),
                active: 0,
                live: 0,
                steps: 0,
                preemptions: 0,
                next_block_seq: 0,
                chooser,
                decisions: Vec::new(),
                trace: Trace::default(),
                lock_owner: HashMap::new(),
                cond_queue: HashMap::new(),
                obj_ids: HashMap::new(),
                next_obj_id: 0,
                failure: None,
                aborting: false,
                done: false,
                max_steps: cfg.max_steps,
                max_threads: cfg.max_threads,
            }),
            cv: StdCondvar::new(),
        }))
    }

    fn lock(&self) -> StdMutexGuard<'_, ExecState> {
        // The runtime never panics while holding this lock, but a model
        // thread aborted at exactly the wrong moment must not wedge the
        // teardown path behind a poison error.
        self.0.st.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Per-execution id for a shim object at `addr`, assigned in first-touch
    /// order.
    pub(crate) fn object_id(&self, addr: usize) -> u64 {
        let mut g = self.lock();
        if let Some(&id) = g.obj_ids.get(&addr) {
            return id;
        }
        let id = g.next_obj_id;
        g.next_obj_id += 1;
        g.obj_ids.insert(addr, id);
        id
    }

    /// Forgets a dropped shim object so address reuse gets a fresh id.
    pub(crate) fn forget_object(&self, addr: usize) {
        let mut g = self.lock();
        g.obj_ids.remove(&addr);
    }

    // ---- core scheduling ------------------------------------------------

    /// Makes one scheduling decision. The caller (thread `me`) must hold the
    /// state lock and be the active thread (it may have just blocked or
    /// finished itself). On success the chosen thread is active.
    fn decide(g: &mut ExecState, me: usize) -> Decide {
        loop {
            let runnable: Vec<usize> = g
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.state == TState::Runnable)
                .map(|(i, _)| i)
                .collect();
            let pool: Vec<usize> = if runnable.is_empty() {
                g.threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.state == TState::Yielded)
                    .map(|(i, _)| i)
                    .collect()
            } else {
                runnable
            };
            if pool.is_empty() {
                // Everyone is blocked or finished. A timed waiter models the
                // passage of time: when nothing else can happen, the
                // longest-waiting timeout fires and we retry. Otherwise this
                // is a real deadlock.
                if let Some(t) = Self::earliest_timed_waiter(g) {
                    Self::fire_timeout(g, t);
                    continue;
                }
                if g.live == 0 {
                    // Unreachable from an active thread; finish handles it.
                    return Decide::Chosen(me);
                }
                return Decide::Deadlock(Self::describe_deadlock(g));
            }
            // Default-first ordering: the current thread when it can run,
            // then the others by ascending id. `allowed[0]` is what the
            // default (preemption-free) policy picks — DFS explores it
            // first, and the shrinker measures deviations against it.
            let cur_in_pool = pool.contains(&me);
            let mut allowed: Vec<usize> = Vec::with_capacity(pool.len());
            if cur_in_pool {
                allowed.push(me);
            }
            allowed.extend(pool.into_iter().filter(|&t| t != me));
            let cur_preemptible = cur_in_pool && g.threads[me].state == TState::Runnable;
            if cur_preemptible && g.preemptions >= g.chooser.preemption_bound() {
                // Bound spent: a runnable current thread keeps the token.
                allowed.truncate(1);
            }
            let step = g.steps;
            let idx = g.chooser.choose(step, &allowed);
            let next = allowed[idx];
            if cur_preemptible && next != me {
                g.preemptions += 1;
            }
            g.decisions.push(Decision {
                chosen: next,
                default: allowed[0],
            });
            g.steps += 1;
            // Yield hints are one-shot: everyone is runnable again at the
            // next decision.
            for slot in &mut g.threads {
                if slot.state == TState::Yielded {
                    slot.state = TState::Runnable;
                }
            }
            if g.steps > g.max_steps {
                return Decide::Budget;
            }
            if next != me {
                g.trace.push(step, next, "switch", me as u64);
            }
            g.active = next;
            return Decide::Chosen(next);
        }
    }

    fn earliest_timed_waiter(g: &ExecState) -> Option<usize> {
        g.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.timed && matches!(t.state, TState::Blocked(Waiting::Cond(_))))
            .min_by_key(|(_, t)| t.block_seq)
            .map(|(i, _)| i)
    }

    fn fire_timeout(g: &mut ExecState, t: usize) {
        let TState::Blocked(Waiting::Cond(cond_id)) = g.threads[t].state else {
            return;
        };
        if let Some(q) = g.cond_queue.get_mut(&cond_id) {
            q.retain(|&w| w != t);
        }
        let steps = g.steps;
        g.trace.push(steps, t, "cond.timeout", cond_id);
        let slot = &mut g.threads[t];
        slot.state = TState::Runnable;
        slot.timed = false;
        slot.timeout_fired = true;
    }

    fn describe_deadlock(g: &ExecState) -> String {
        let mut parts = Vec::new();
        for (i, t) in g.threads.iter().enumerate() {
            if let TState::Blocked(w) = t.state {
                parts.push(match w {
                    Waiting::Lock(id) => format!("t{i} waits on lock#{id}"),
                    Waiting::Cond(id) => format!("t{i} waits on cond#{id}"),
                    Waiting::Join(t2) => format!("t{i} waits to join t{t2}"),
                });
            }
        }
        format!("deadlock: {}", parts.join(", "))
    }

    fn fail_locked(&self, g: &mut ExecState, kind: FailureKind, message: String) {
        if g.failure.is_none() {
            let steps = g.steps;
            let active = g.active;
            g.trace.push(steps, active, "fail", 0);
            g.failure = Some((kind, message));
        }
        g.aborting = true;
        self.0.cv.notify_all();
    }

    /// Parks until `me` is active again. Panics with [`SchedAbort`] (after
    /// releasing the lock) if the execution is aborting.
    fn wait_active<'a>(
        &'a self,
        mut g: StdMutexGuard<'a, ExecState>,
        me: usize,
    ) -> StdMutexGuard<'a, ExecState> {
        loop {
            if g.aborting {
                drop(g);
                std::panic::panic_any(SchedAbort);
            }
            if g.active == me {
                return g;
            }
            g = self.0.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// One decision plus handoff: returns with `me` active again (possibly
    /// immediately), or unwinds on abort/deadlock/budget.
    fn advance<'a>(
        &'a self,
        mut g: StdMutexGuard<'a, ExecState>,
        me: usize,
    ) -> StdMutexGuard<'a, ExecState> {
        match Self::decide(&mut g, me) {
            Decide::Chosen(next) => {
                if next != me {
                    self.0.cv.notify_all();
                    g = self.wait_active(g, me);
                }
                g
            }
            Decide::Deadlock(msg) => {
                self.fail_locked(&mut g, FailureKind::Deadlock, msg);
                drop(g);
                std::panic::panic_any(SchedAbort)
            }
            Decide::Budget => {
                let msg = format!("step budget exceeded ({} decisions)", g.steps);
                self.fail_locked(&mut g, FailureKind::StepBudget, msg);
                drop(g);
                std::panic::panic_any(SchedAbort)
            }
        }
    }

    /// Guard at every runtime entry: aborting executions unwind immediately.
    fn entry<'a>(
        &'a self,
        me: usize,
        label: &'static str,
        arg: u64,
    ) -> StdMutexGuard<'a, ExecState> {
        let mut g = self.lock();
        if g.aborting {
            drop(g);
            std::panic::panic_any(SchedAbort);
        }
        debug_assert_eq!(g.active, me, "only the active thread reaches the runtime");
        let steps = g.steps;
        g.trace.push(steps, me, label, arg);
        g
    }

    // ---- shim entry points ----------------------------------------------

    /// A plain decision point: record the operation, maybe switch threads.
    pub(crate) fn yield_point(&self, me: usize, label: &'static str, arg: u64) {
        if std::thread::panicking() {
            return;
        }
        let g = self.entry(me, label, arg);
        drop(self.advance(g, me));
    }

    /// `yield_now` / spin-hint: step aside so anyone else runs first.
    pub(crate) fn yield_hint(&self, me: usize, label: &'static str) {
        if std::thread::panicking() {
            return;
        }
        let mut g = self.entry(me, label, 0);
        g.threads[me].state = TState::Yielded;
        drop(self.advance(g, me));
    }

    /// Acquires shim lock `id` for `me`, blocking (in model time) while held
    /// elsewhere. Barging semantics: a woken waiter races any newcomer.
    pub(crate) fn lock_acquire(&self, me: usize, id: u64) {
        if std::thread::panicking() {
            // Teardown unwind: the execution is aborting and every other
            // thread is parked, so ownership bookkeeping no longer matters.
            return;
        }
        let g = self.entry(me, "lock.acquire", id);
        let mut g = self.advance(g, me);
        loop {
            if let std::collections::hash_map::Entry::Vacant(e) = g.lock_owner.entry(id) {
                e.insert(me);
                return;
            }
            let seq = g.next_block_seq;
            g.next_block_seq += 1;
            let slot = &mut g.threads[me];
            slot.state = TState::Blocked(Waiting::Lock(id));
            slot.block_seq = seq;
            g = self.advance(g, me);
        }
    }

    /// Tries to acquire shim lock `id`; never blocks.
    pub(crate) fn lock_try_acquire(&self, me: usize, id: u64) -> bool {
        if std::thread::panicking() {
            return true;
        }
        let g = self.entry(me, "lock.try", id);
        let mut g = self.advance(g, me);
        if let std::collections::hash_map::Entry::Vacant(e) = g.lock_owner.entry(id) {
            e.insert(me);
            true
        } else {
            false
        }
    }

    /// Releases shim lock `id`. Quiet by design: releasing is not a decision
    /// point (the releasing thread's next shim operation is), and it must be
    /// panic-free so guards can drop during unwinding.
    pub(crate) fn lock_release(&self, me: usize, id: u64) {
        let mut g = self.lock();
        // Once the execution aborts, every parked thread unwinds
        // concurrently — their guard-drop releases interleave in real time,
        // so recording them would make the trace digest racy. Teardown is
        // not part of the schedule; keep it out of the trace.
        if !g.aborting {
            let steps = g.steps;
            g.trace.push(steps, me, "lock.release", id);
        }
        if g.lock_owner.get(&id) == Some(&me) {
            g.lock_owner.remove(&id);
        }
        for slot in &mut g.threads {
            if slot.state == TState::Blocked(Waiting::Lock(id)) {
                slot.state = TState::Runnable;
            }
        }
    }

    /// Releases `lock_id`, parks on `cond_id` (as a timed waiter when
    /// `timed`), and reacquires the lock before returning. The release and
    /// the enqueue are atomic in model time — a *correct* condvar has no
    /// lost-wakeup window; models that want one must build it themselves.
    /// Returns true when the wake was a timeout firing.
    pub(crate) fn cond_wait(&self, me: usize, cond_id: u64, lock_id: u64, timed: bool) -> bool {
        if std::thread::panicking() {
            return false;
        }
        let label = if timed {
            "cond.wait_timed"
        } else {
            "cond.wait"
        };
        let mut g = self.entry(me, label, cond_id);
        if g.lock_owner.get(&lock_id) == Some(&me) {
            g.lock_owner.remove(&lock_id);
        }
        for slot in &mut g.threads {
            if slot.state == TState::Blocked(Waiting::Lock(lock_id)) {
                slot.state = TState::Runnable;
            }
        }
        g.cond_queue.entry(cond_id).or_default().push_back(me);
        let seq = g.next_block_seq;
        g.next_block_seq += 1;
        {
            let slot = &mut g.threads[me];
            slot.state = TState::Blocked(Waiting::Cond(cond_id));
            slot.timed = timed;
            slot.timeout_fired = false;
            slot.block_seq = seq;
        }
        g = self.advance(g, me);
        let fired = {
            let slot = &mut g.threads[me];
            slot.timed = false;
            std::mem::take(&mut slot.timeout_fired)
        };
        drop(g);
        self.lock_acquire(me, lock_id);
        fired
    }

    /// Notifies one (FIFO) or all waiters of shim condvar `cond_id`.
    pub(crate) fn cond_notify(&self, me: usize, cond_id: u64, all: bool) {
        if std::thread::panicking() {
            return;
        }
        let label = if all {
            "cond.notify_all"
        } else {
            "cond.notify"
        };
        let mut g = self.entry(me, label, cond_id);
        let queue = g.cond_queue.entry(cond_id).or_default();
        let woken: Vec<usize> = if all {
            queue.drain(..).collect()
        } else {
            queue.pop_front().into_iter().collect()
        };
        for t in woken {
            let steps = g.steps;
            g.trace.push(steps, t, "cond.wake", cond_id);
            let slot = &mut g.threads[t];
            slot.state = TState::Runnable;
            slot.timed = false;
        }
        drop(self.advance(g, me));
    }

    /// Blocks until model thread `target` finishes.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        if std::thread::panicking() {
            return;
        }
        let mut g = self.entry(me, "join", target as u64);
        if g.threads[target].state != TState::Finished {
            let seq = g.next_block_seq;
            g.next_block_seq += 1;
            let slot = &mut g.threads[me];
            slot.state = TState::Blocked(Waiting::Join(target));
            slot.block_seq = seq;
        }
        drop(self.advance(g, me));
    }

    // ---- thread lifecycle -----------------------------------------------

    /// Registers and starts a model thread running `f`. `parent` is `None`
    /// only for the root thread (spawned by the explorer, which is not a
    /// model thread). Returns the model thread id, the result slot, and the
    /// backing OS thread's handle.
    pub(crate) fn spawn_thread<T, F>(
        &self,
        parent: Option<usize>,
        f: F,
    ) -> (usize, ResultSlot<T>, std::thread::JoinHandle<()>)
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let id = {
            let mut g = self.lock();
            if parent.is_some() && g.aborting {
                drop(g);
                std::panic::panic_any(SchedAbort);
            }
            let id = g.threads.len();
            assert!(
                id < g.max_threads,
                "syscheck: model exceeded max_threads ({})",
                g.max_threads
            );
            g.threads.push(ThreadSlot {
                state: TState::Runnable,
                timed: false,
                timeout_fired: false,
                block_seq: 0,
            });
            g.live += 1;
            id
        };
        let slot = Arc::new(StdMutex::new(None));
        let slot2 = Arc::clone(&slot);
        let rt = self.clone();
        let os = std::thread::Builder::new()
            .name(format!("syscheck-t{id}"))
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((rt.clone(), id)));
                let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    rt.first_wait(id);
                    f()
                }));
                let panic_msg = match &res {
                    Ok(_) => None,
                    Err(e) if e.is::<SchedAbort>() => None,
                    Err(e) => Some(payload_message(e.as_ref())),
                };
                *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(res);
                rt.finish_thread(id, panic_msg);
                CURRENT.with(|c| *c.borrow_mut() = None);
            })
            .expect("spawn model thread");
        // Spawning is itself a decision point: the child may run first.
        if let Some(me) = parent {
            self.yield_point(me, "spawn", id as u64);
        }
        (id, slot, os)
    }

    /// Parks a freshly spawned thread until it is first scheduled.
    fn first_wait(&self, me: usize) {
        let g = self.lock();
        drop(self.wait_active(g, me));
    }

    /// Marks `me` finished, wakes joiners, and hands the token on (or ends
    /// the execution when `me` was the last live thread).
    fn finish_thread(&self, me: usize, panic_msg: Option<String>) {
        let mut g = self.lock();
        if let Some(msg) = panic_msg {
            if !g.aborting {
                let steps = g.steps;
                g.trace.push(steps, me, "panic", 0);
            }
            if g.failure.is_none() {
                g.failure = Some((FailureKind::Panic, msg));
            }
            g.aborting = true;
        }
        // Same reasoning as in `lock_release`: threads exiting during an
        // abort race each other in real time, so their exits are untraced.
        if !g.aborting {
            let steps = g.steps;
            g.trace.push(steps, me, "finish", 0);
        }
        g.threads[me].state = TState::Finished;
        g.live -= 1;
        for slot in &mut g.threads {
            if slot.state == TState::Blocked(Waiting::Join(me)) {
                slot.state = TState::Runnable;
            }
        }
        if g.live == 0 {
            g.done = true;
            self.0.cv.notify_all();
            return;
        }
        if g.aborting {
            // Parked threads wake, observe `aborting`, and unwind themselves;
            // the last one out sets `done`.
            self.0.cv.notify_all();
            return;
        }
        match Self::decide(&mut g, me) {
            Decide::Chosen(_) => self.0.cv.notify_all(),
            Decide::Deadlock(msg) => self.fail_locked(&mut g, FailureKind::Deadlock, msg),
            Decide::Budget => {
                let msg = format!("step budget exceeded ({} decisions)", g.steps);
                self.fail_locked(&mut g, FailureKind::StepBudget, msg);
            }
        }
    }

    /// Blocks the explorer until the execution finishes (all threads done).
    pub(crate) fn wait_done(&self) {
        let mut g = self.lock();
        while !g.done {
            g = self.0.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Extracts the execution's results. Call after [`Runtime::wait_done`].
    pub(crate) fn harvest(&self) -> Harvest {
        let mut g = self.lock();
        Harvest {
            chooser: std::mem::replace(&mut g.chooser, Chooser::Random(SplitMix64(0))),
            decisions: std::mem::take(&mut g.decisions),
            trace: std::mem::take(&mut g.trace),
            failure: g.failure.take(),
            preemptions: g.preemptions,
        }
    }
}

/// Best-effort rendering of a panic payload.
fn payload_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "model panicked with a non-string payload".to_string()
    }
}

/// Maps a std `TryLockError` guard through, preserving poison state.
pub(crate) fn relock<T: ?Sized>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Non-blocking std lock that tolerates poison (checked mode only; the
/// runtime's ownership protocol guarantees the lock is actually free).
pub(crate) fn try_relock<T: ?Sized>(m: &StdMutex<T>) -> Option<StdMutexGuard<'_, T>> {
    match m.try_lock() {
        Ok(g) => Some(g),
        Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
        Err(TryLockError::WouldBlock) => None,
    }
}
