//! Schedule traces: the event log of one explored execution.
//!
//! Every scheduler-visible operation (atomic access, lock acquire/release,
//! condvar wait/notify, spawn/join/finish, yield hints) appends one event.
//! The rendered form deliberately mimics the `sysobs` flight-recorder dump —
//! fixed-width columns, one event per line — so a failing schedule reads
//! like any other trace in this repo, and [`Trace::digest`] gives the same
//! replay-equality guarantee `sysfault::FaultLog::digest` gives fault
//! campaigns: two executions with equal digests took the same schedule.

/// One scheduler-visible event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Scheduling step at which the event happened (decisions so far).
    pub step: u64,
    /// Model thread that performed (or was the subject of) the event.
    pub thread: usize,
    /// Operation label, e.g. `"lock.acquire"` or `"cond.wait"`.
    pub label: &'static str,
    /// Operation argument: an object id, a thread id, or 0.
    pub arg: u64,
}

/// The event log of one execution, in program order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Appends an event.
    pub(crate) fn push(&mut self, step: u64, thread: usize, label: &'static str, arg: u64) {
        self.events.push(Event {
            step,
            thread,
            label,
            arg,
        });
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates the events in program order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// FNV-1a digest over the event stream. Equal digests mean the replayed
    /// execution took the same schedule as the original — the assertion the
    /// seed-replay tests pin.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut buf = Vec::with_capacity(self.events.len() * 24);
        for e in &self.events {
            buf.extend_from_slice(&e.step.to_le_bytes());
            buf.extend_from_slice(&(e.thread as u64).to_le_bytes());
            buf.extend_from_slice(e.label.as_bytes());
            buf.extend_from_slice(&e.arg.to_le_bytes());
        }
        sysobs::fnv1a(&buf)
    }

    /// Renders the trace as an obs-style event log, one line per event.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.events.len() * 32);
        let _ = writeln!(out, "{:>6}  {:<4}  {:<16}  arg", "step", "thr", "event");
        for e in &self.events {
            let _ = writeln!(
                out,
                "{:>6}  t{:<3}  {:<16}  {}",
                e.step, e.thread, e.label, e.arg
            );
        }
        out
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}
