//! Drop-in `std::sync` / `std::thread` replacements.
//!
//! On any thread the checker did not spawn, every type and function here
//! falls straight through to `std` — the only cost is one relaxed load of a
//! process-wide counter (zero live runtimes means nothing is checked
//! anywhere). On a model thread, every atomic access, lock operation,
//! condvar operation, spawn, join, and yield becomes a scheduling decision
//! point routed through the cooperative scheduler.
//!
//! Porting rules for code that wants to be checkable:
//!
//! * swap `std::sync::{Mutex, Condvar}` and `std::sync::atomic::Atomic*`
//!   imports for the shim versions (the APIs match what this repo uses);
//! * swap `std::thread::{spawn, yield_now}`, `std::hint::spin_loop`, and
//!   `std::thread::sleep` for the shim versions;
//! * inside a model, *only* threads created through [`spawn`] may touch
//!   shimmed state, and the model must join every thread it spawns.
//!
//! Timed waits deserve a note: under the checker, [`Condvar::wait_timeout`]
//! ignores the duration. A timeout fires only when the model would otherwise
//! deadlock (then the longest-waiting timed waiter wakes) — "time passes
//! when nothing else can happen", which keeps schedules finite and makes
//! timeout paths deterministically explorable.

use crate::rt;
use std::sync::atomic::Ordering;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};
use std::time::Duration;

#[inline]
fn sync_point(label: &'static str) {
    if let Some((rt, me)) = rt::current() {
        rt.yield_point(me, label, 0);
    }
}

// ---- atomics ------------------------------------------------------------

macro_rules! shim_atomic_common {
    ($name:ident, $std:ty, $prim:ty) => {
        impl $name {
            /// Creates the atomic (const, like `std`).
            #[must_use]
            pub const fn new(v: $prim) -> Self {
                $name(<$std>::new(v))
            }

            /// Shimmed `load`: a decision point under the checker.
            #[inline]
            pub fn load(&self, order: Ordering) -> $prim {
                sync_point("atomic.load");
                self.0.load(order)
            }

            /// Shimmed `store`: a decision point under the checker.
            #[inline]
            pub fn store(&self, v: $prim, order: Ordering) {
                sync_point("atomic.store");
                self.0.store(v, order);
            }

            /// Shimmed `swap`.
            #[inline]
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                sync_point("atomic.rmw");
                self.0.swap(v, order)
            }

            /// Shimmed `compare_exchange`.
            ///
            /// # Errors
            ///
            /// Returns the observed value when it differs from `current`.
            #[inline]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                sync_point("atomic.rmw");
                self.0.compare_exchange(current, new, success, failure)
            }

            /// Shimmed `compare_exchange_weak`.
            ///
            /// # Errors
            ///
            /// Returns the observed value when it differs from `current` (or
            /// on a spurious failure, as in `std`).
            #[inline]
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                sync_point("atomic.rmw");
                self.0.compare_exchange_weak(current, new, success, failure)
            }

            /// Unshimmed exclusive access (no other thread can observe it).
            #[inline]
            pub fn get_mut(&mut self) -> &mut $prim {
                self.0.get_mut()
            }

            /// Consumes the atomic, returning the value.
            #[must_use]
            pub fn into_inner(self) -> $prim {
                self.0.into_inner()
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> Self {
                Self::new(v)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                std::fmt::Debug::fmt(&self.0, f)
            }
        }
    };
}

macro_rules! shim_atomic_int {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Shimmed integer atomic: `std` semantics, checker decision points.
        #[derive(Default)]
        pub struct $name($std);

        shim_atomic_common!($name, $std, $prim);

        impl $name {
            /// Shimmed `fetch_add`.
            #[inline]
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                sync_point("atomic.rmw");
                self.0.fetch_add(v, order)
            }

            /// Shimmed `fetch_sub`.
            #[inline]
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                sync_point("atomic.rmw");
                self.0.fetch_sub(v, order)
            }

            /// Shimmed `fetch_max`.
            #[inline]
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                sync_point("atomic.rmw");
                self.0.fetch_max(v, order)
            }

            /// Shimmed `fetch_min`.
            #[inline]
            pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                sync_point("atomic.rmw");
                self.0.fetch_min(v, order)
            }

            /// Shimmed `fetch_or`.
            #[inline]
            pub fn fetch_or(&self, v: $prim, order: Ordering) -> $prim {
                sync_point("atomic.rmw");
                self.0.fetch_or(v, order)
            }

            /// Shimmed `fetch_and`.
            #[inline]
            pub fn fetch_and(&self, v: $prim, order: Ordering) -> $prim {
                sync_point("atomic.rmw");
                self.0.fetch_and(v, order)
            }
        }
    };
}

shim_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
shim_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
shim_atomic_int!(AtomicI64, std::sync::atomic::AtomicI64, i64);
shim_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Shimmed `AtomicBool`: `std` semantics, checker decision points.
#[derive(Default)]
pub struct AtomicBool(std::sync::atomic::AtomicBool);

shim_atomic_common!(AtomicBool, std::sync::atomic::AtomicBool, bool);

impl AtomicBool {
    /// Shimmed `fetch_or`.
    #[inline]
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        sync_point("atomic.rmw");
        self.0.fetch_or(v, order)
    }

    /// Shimmed `fetch_and`.
    #[inline]
    pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
        sync_point("atomic.rmw");
        self.0.fetch_and(v, order)
    }
}

/// Shimmed `AtomicPtr`: `std` semantics, checker decision points. The macro
/// the integer atomics come from is typed on primitives, so the generic
/// pointee is written out by hand — same shape, same sync points.
pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

impl<T> AtomicPtr<T> {
    /// Creates the atomic (const, like `std`).
    #[must_use]
    pub const fn new(p: *mut T) -> Self {
        AtomicPtr(std::sync::atomic::AtomicPtr::new(p))
    }

    /// Shimmed `load`: a decision point under the checker.
    #[inline]
    pub fn load(&self, order: Ordering) -> *mut T {
        sync_point("atomic.load");
        self.0.load(order)
    }

    /// Shimmed `store`: a decision point under the checker.
    #[inline]
    pub fn store(&self, p: *mut T, order: Ordering) {
        sync_point("atomic.store");
        self.0.store(p, order);
    }

    /// Shimmed `swap`.
    #[inline]
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        sync_point("atomic.rmw");
        self.0.swap(p, order)
    }

    /// Shimmed `compare_exchange`.
    ///
    /// # Errors
    ///
    /// Returns the observed pointer when it differs from `current`.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        sync_point("atomic.rmw");
        self.0.compare_exchange(current, new, success, failure)
    }

    /// Unshimmed exclusive access (no other thread can observe it).
    #[inline]
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.0.get_mut()
    }

    /// Consumes the atomic, returning the pointer.
    #[must_use]
    pub fn into_inner(self) -> *mut T {
        self.0.into_inner()
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        AtomicPtr::new(std::ptr::null_mut())
    }
}

impl<T> From<*mut T> for AtomicPtr<T> {
    fn from(p: *mut T) -> Self {
        AtomicPtr::new(p)
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.0, f)
    }
}

// ---- mutex --------------------------------------------------------------

/// Shimmed mutex: `std::sync::Mutex` on ordinary threads; under the checker
/// the acquisition is a scheduling decision and contention is model-time
/// blocking the scheduler can see (and call a deadlock).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard for [`Mutex`]. Releasing is deliberately *not* a decision point —
/// the next shim operation of the releasing thread is — which keeps guard
/// drops panic-free during unwinding.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    ctl: Option<(rt::Runtime, usize, u64)>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn id_under(&self, rt: &rt::Runtime) -> u64 {
        rt.object_id(std::ptr::from_ref(self).cast::<()>() as usize)
    }

    /// Acquires the mutex (see [`Mutex`] for checked-mode semantics).
    ///
    /// # Errors
    ///
    /// Propagates `std` poisoning on ordinary threads; under the checker a
    /// poisoned execution is already aborting, so poison is swallowed.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::current() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    ctl: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    ctl: None,
                })),
            },
            Some((rt, me)) => {
                let id = self.id_under(&rt);
                rt.lock_acquire(me, id);
                // The runtime's ownership protocol means the std lock is
                // free (teardown unwinds are serialized too: every other
                // thread is parked).
                let g = rt::relock(&self.inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    ctl: Some((rt, me, id)),
                })
            }
        }
    }

    /// Tries to acquire the mutex without blocking.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when held elsewhere; poisoning as in [`Mutex::lock`].
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        match rt::current() {
            None => match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    ctl: None,
                }),
                Err(TryLockError::Poisoned(p)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        lock: self,
                        inner: Some(p.into_inner()),
                        ctl: None,
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            },
            Some((rt, me)) => {
                let id = self.id_under(&rt);
                if !rt.lock_try_acquire(me, id) {
                    return Err(TryLockError::WouldBlock);
                }
                let g = rt::try_relock(&self.inner).expect("runtime owns the lock");
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    ctl: Some((rt, me, id)),
                })
            }
        }
    }
}

impl<T: ?Sized> Drop for Mutex<T> {
    fn drop(&mut self) {
        if let Some((rt, _)) = rt::current() {
            rt.forget_object(std::ptr::from_ref(self).cast::<()>() as usize);
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.inner, f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock first, then the model-level ownership.
        self.inner.take();
        if let Some((rt, me, id)) = self.ctl.take() {
            rt.lock_release(me, id);
        }
    }
}

// ---- condvar ------------------------------------------------------------

/// Result of a shimmed timed wait; mirrors `std::sync::WaitTimeoutResult`
/// (which has no public constructor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout fired.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Shimmed condition variable. Under the checker, waiters queue FIFO,
/// `notify_one` wakes the head, and the release-and-enqueue of a wait is
/// atomic in model time — lost-wakeup bugs must live in the *calling* code,
/// which is exactly where the checker then finds them.
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates the condvar.
    #[must_use]
    pub fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    fn id_under(&self, rt: &rt::Runtime) -> u64 {
        rt.object_id(std::ptr::from_ref(self).cast::<()>() as usize)
    }

    /// Waits on this condvar, releasing and reacquiring the guard's mutex.
    ///
    /// # Errors
    ///
    /// Propagates `std` poisoning on ordinary threads.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        let ctl = guard.ctl.take();
        let std_g = guard.inner.take().expect("guard holds the lock");
        std::mem::forget(guard);
        match ctl {
            None => match self.inner.wait(std_g) {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    ctl: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: Some(p.into_inner()),
                    ctl: None,
                })),
            },
            Some((rt, me, lock_id)) => {
                drop(std_g);
                let cond_id = self.id_under(&rt);
                let _ = rt.cond_wait(me, cond_id, lock_id, false);
                let g = rt::relock(&lock.inner);
                Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    ctl: Some((rt, me, lock_id)),
                })
            }
        }
    }

    /// Timed wait. Under the checker the duration is ignored: the timeout
    /// fires only when the model would otherwise deadlock (see the module
    /// docs), making timeout paths deterministic.
    ///
    /// # Errors
    ///
    /// Propagates `std` poisoning on ordinary threads.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let lock = guard.lock;
        let ctl = guard.ctl.take();
        let std_g = guard.inner.take().expect("guard holds the lock");
        std::mem::forget(guard);
        match ctl {
            None => match self.inner.wait_timeout(std_g, dur) {
                Ok((g, t)) => Ok((
                    MutexGuard {
                        lock,
                        inner: Some(g),
                        ctl: None,
                    },
                    WaitTimeoutResult(t.timed_out()),
                )),
                Err(p) => {
                    let (g, t) = p.into_inner();
                    Err(PoisonError::new((
                        MutexGuard {
                            lock,
                            inner: Some(g),
                            ctl: None,
                        },
                        WaitTimeoutResult(t.timed_out()),
                    )))
                }
            },
            Some((rt, me, lock_id)) => {
                drop(std_g);
                let cond_id = self.id_under(&rt);
                let fired = rt.cond_wait(me, cond_id, lock_id, true);
                let g = rt::relock(&lock.inner);
                Ok((
                    MutexGuard {
                        lock,
                        inner: Some(g),
                        ctl: Some((rt, me, lock_id)),
                    },
                    WaitTimeoutResult(fired),
                ))
            }
        }
    }

    /// Wakes one waiter (the longest-waiting one, under the checker).
    pub fn notify_one(&self) {
        match rt::current() {
            None => self.inner.notify_one(),
            Some((rt, me)) => {
                let id = self.id_under(&rt);
                rt.cond_notify(me, id, false);
            }
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        match rt::current() {
            None => self.inner.notify_all(),
            Some((rt, me)) => {
                let id = self.id_under(&rt);
                rt.cond_notify(me, id, true);
            }
        }
    }
}

impl Drop for Condvar {
    fn drop(&mut self) {
        if let Some((rt, _)) = rt::current() {
            rt.forget_object(std::ptr::from_ref(self).cast::<()>() as usize);
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---- threads ------------------------------------------------------------

enum HandleRepr<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        rt: rt::Runtime,
        id: usize,
        slot: rt::ResultSlot<T>,
        os: Option<std::thread::JoinHandle<()>>,
    },
}

/// Shimmed join handle; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T>(HandleRepr<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload, as `std` does.
    ///
    /// # Panics
    ///
    /// Panics when called on a model-thread handle from a thread the checker
    /// does not control, or when the execution is aborting mid-join.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            HandleRepr::Std(h) => h.join(),
            HandleRepr::Model { rt, id, slot, os } => {
                let (_, me) = rt::current().expect("join model threads from model threads");
                rt.join_thread(me, id);
                if let Some(os) = os {
                    let _ = os.join();
                }
                rt::relock(&slot)
                    .take()
                    .expect("finished model thread leaves a result")
            }
        }
    }

    /// True when the thread has finished running.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        match &self.0 {
            HandleRepr::Std(h) => h.is_finished(),
            HandleRepr::Model { slot, .. } => rt::relock(slot).is_some(),
        }
    }
}

/// Shimmed `thread::spawn`: a real thread normally; a model thread (and a
/// scheduling decision) under the checker.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle(HandleRepr::Std(std::thread::spawn(f))),
        Some((rt, me)) => {
            let (id, slot, os) = rt.spawn_thread(Some(me), f);
            JoinHandle(HandleRepr::Model {
                rt,
                id,
                slot,
                os: Some(os),
            })
        }
    }
}

/// Like [`spawn`], naming the OS thread in normal builds (model threads are
/// named `syscheck-t<N>` by the runtime).
///
/// # Panics
///
/// Panics if the OS refuses to spawn the thread.
pub fn spawn_named<F, T>(name: &str, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle(HandleRepr::Std(
            std::thread::Builder::new()
                .name(name.to_owned())
                .spawn(f)
                .expect("spawn named thread"),
        )),
        Some((rt, me)) => {
            let (id, slot, os) = rt.spawn_thread(Some(me), f);
            JoinHandle(HandleRepr::Model {
                rt,
                id,
                slot,
                os: Some(os),
            })
        }
    }
}

/// Shimmed `thread::yield_now`: under the checker the thread steps aside so
/// any other runnable thread is scheduled first.
pub fn yield_now() {
    match rt::current() {
        None => std::thread::yield_now(),
        Some((rt, me)) => rt.yield_hint(me, "yield"),
    }
}

/// Shimmed `hint::spin_loop`: same scheduling semantics as [`yield_now`]
/// under the checker (a spinner must let the thread it waits on run), a CPU
/// relax hint otherwise.
pub fn spin_loop() {
    match rt::current() {
        None => std::hint::spin_loop(),
        Some((rt, me)) => rt.yield_hint(me, "spin"),
    }
}

/// Shimmed `thread::sleep`: model time has no duration, so under the
/// checker this is a plain yield hint.
pub fn sleep(dur: Duration) {
    match rt::current() {
        None => std::thread::sleep(dur),
        Some((rt, me)) => {
            let _ = dur;
            rt.yield_hint(me, "sleep");
        }
    }
}
