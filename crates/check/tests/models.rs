//! Self-tests for the syscheck scheduler, using only its own shim layer:
//! known-racy models must fail, known-correct models must pass exhaustively,
//! and every failure must replay and shrink deterministically.

use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::Arc;
use syscheck::shim::{spawn, yield_now, AtomicU64, Condvar, Mutex};
use syscheck::{explore, explore_random, replay_choices, replay_seed, shrink, Config, FailureKind};

fn small(bound: u32) -> Config {
    Config {
        preemption_bound: bound,
        max_schedules: 10_000,
        ..Config::default()
    }
}

/// Two threads doing non-atomic read-modify-write through separate load and
/// store shim calls: the classic lost-update race. DFS must find it.
fn racy_counter_model() -> u64 {
    let n = Arc::new(AtomicU64::new(0));
    let mut hs = Vec::new();
    for _ in 0..2 {
        let n = Arc::clone(&n);
        hs.push(spawn(move || {
            let v = n.load(Relaxed);
            n.store(v + 1, Relaxed);
        }));
    }
    for h in hs {
        h.join().unwrap();
    }
    let v = n.load(Relaxed);
    assert_eq!(v, 2, "lost update: counter is {v}");
    v
}

#[test]
fn dfs_finds_lost_update_race() {
    let ex = explore(&small(2), racy_counter_model);
    let failure = ex.failure.expect("DFS must expose the lost update");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("lost update"),
        "{}",
        failure.message
    );
    assert!(!failure.trace.is_empty());
}

#[test]
fn lost_update_shrinks_to_essential_preemptions() {
    let cfg = small(2);
    let ex = explore(&cfg, racy_counter_model);
    let failure = ex.failure.expect("race found");
    let shrunk = shrink::shrink_failure(&cfg, &failure, racy_counter_model);
    let rep_failure = shrunk
        .report
        .failure
        .expect("shrunken schedule still fails");
    assert_eq!(rep_failure.kind, FailureKind::Panic);
    // The race needs exactly one preemption: interleave between one
    // thread's load and store.
    assert_eq!(
        shrunk.deviations.len(),
        1,
        "deviations: {:?}",
        shrunk.deviations
    );
    assert_eq!(shrunk.plan.len(), shrunk.deviations.len());
}

/// The same counter guarded by a shim mutex: must pass every schedule and
/// always reach the same terminal state.
#[test]
fn mutexed_counter_is_clean_and_deterministic() {
    let ex = explore(&small(3), || {
        let n = Arc::new(Mutex::new(0u64));
        let mut hs = Vec::new();
        for _ in 0..2 {
            let n = Arc::clone(&n);
            hs.push(spawn(move || {
                let mut g = n.lock().unwrap();
                *g += 1;
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        let v = *n.lock().unwrap();
        assert_eq!(v, 2);
        v
    });
    assert!(ex.failure.is_none(), "{:?}", ex.failure);
    assert!(ex.complete, "small model must be exhaustively explored");
    assert_eq!(ex.distinct_states, 1);
    assert!(ex.schedules > 1, "multiple interleavings must exist");
}

/// Atomic RMW (fetch_add) has no window: clean under any schedule.
#[test]
fn atomic_rmw_counter_is_clean() {
    let ex = explore(&small(3), || {
        let n = Arc::new(AtomicU64::new(0));
        let mut hs = Vec::new();
        for _ in 0..2 {
            let n = Arc::clone(&n);
            hs.push(spawn(move || {
                n.fetch_add(1, SeqCst);
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        let v = n.load(SeqCst);
        assert_eq!(v, 2);
        v
    });
    assert!(ex.failure.is_none(), "{:?}", ex.failure);
    assert!(ex.complete);
    assert_eq!(ex.distinct_states, 1);
}

/// Opposite-order double locking: DFS must drive the schedule into the
/// classic ABBA deadlock, and the recorded choices must replay to the same
/// trace digest.
#[test]
fn dfs_finds_abba_deadlock_and_replays() {
    let model = || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let h = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            spawn(move || {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            })
        };
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        h.join().unwrap();
        0
    };
    let cfg = small(2);
    let ex = explore(&cfg, model);
    let failure = ex.failure.expect("ABBA deadlock must be found");
    assert_eq!(failure.kind, FailureKind::Deadlock);

    let replay = replay_choices(&cfg, &failure.choices, model);
    let rf = replay.failure.expect("replay reproduces the deadlock");
    assert_eq!(rf.kind, FailureKind::Deadlock);
    assert_eq!(
        rf.trace.digest(),
        failure.trace.digest(),
        "replay must take the same schedule"
    );
}

/// A condvar consumer with a producer that really notifies: no deadlock in
/// any schedule, and the wait is never reported as timed out.
#[test]
fn condvar_handoff_is_clean() {
    let ex = explore(&small(2), || {
        let slot = Arc::new((Mutex::new(None::<u64>), Condvar::new()));
        let h = {
            let slot = Arc::clone(&slot);
            spawn(move || {
                let (m, cv) = &*slot;
                *m.lock().unwrap() = Some(7);
                cv.notify_one();
            })
        };
        let (m, cv) = &*slot;
        let mut g = m.lock().unwrap();
        while g.is_none() {
            g = cv.wait(g).unwrap();
        }
        let v = g.unwrap();
        drop(g);
        h.join().unwrap();
        assert_eq!(v, 7);
        v
    });
    assert!(ex.failure.is_none(), "{:?}", ex.failure);
    assert!(ex.complete);
    assert_eq!(ex.distinct_states, 1);
}

/// A timed wait with no producer: under the checker, durations are not
/// simulated — the timeout fires exactly when the execution would otherwise
/// deadlock, so the model completes with `timed_out() == true`.
#[test]
fn timed_wait_fires_at_would_be_deadlock() {
    let ex = explore(&small(2), || {
        let slot = Arc::new((Mutex::new(None::<u64>), Condvar::new()));
        let (m, cv) = &*slot;
        let g = m.lock().unwrap();
        let (g, res) = cv
            .wait_timeout(g, std::time::Duration::from_millis(1))
            .unwrap();
        assert!(
            res.timed_out(),
            "no producer exists; the wait must time out"
        );
        assert!(g.is_none());
        drop(g);
        0
    });
    assert!(ex.failure.is_none(), "{:?}", ex.failure);
    assert!(ex.complete);
}

/// An untimed wait with no producer is a real lost-wakeup-style deadlock and
/// must be reported as one.
#[test]
fn untimed_orphan_wait_is_a_deadlock() {
    let ex = explore(&small(2), || {
        let slot = Arc::new((Mutex::new(None::<u64>), Condvar::new()));
        let (m, cv) = &*slot;
        let g = m.lock().unwrap();
        let _g = cv.wait(g).unwrap();
        0
    });
    let failure = ex.failure.expect("orphan wait must deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.message.contains("deadlock"), "{}", failure.message);
}

/// Spin-waiting on a flag with `yield_now` in the loop body must terminate
/// under DFS: yielded threads are deprioritized so the flag-setter runs.
#[test]
fn spin_loop_with_yield_terminates() {
    let ex = explore(&small(1), || {
        let flag = Arc::new(AtomicU64::new(0));
        let h = {
            let flag = Arc::clone(&flag);
            spawn(move || flag.store(1, Release))
        };
        while flag.load(Acquire) == 0 {
            yield_now();
        }
        h.join().unwrap();
        1
    });
    assert!(ex.failure.is_none(), "{:?}", ex.failure);
    assert!(ex.complete);
    assert_eq!(ex.distinct_states, 1);
}

/// Random exploration finds the lost-update race, records the failing seed,
/// and replaying that one seed reproduces the identical schedule.
#[test]
fn random_schedules_find_and_replay_by_seed() {
    let cfg = Config {
        max_schedules: 10_000,
        ..Config::default()
    };
    let ex = explore_random(&cfg, 0xC0FFEE, racy_counter_model);
    let failure = ex
        .failure
        .expect("random schedules must find the lost update within budget");
    let seed = failure.seed.expect("random failures carry their seed");

    let replay = replay_seed(&cfg, seed, racy_counter_model);
    let rf = replay.failure.expect("seed replay reproduces the failure");
    assert_eq!(rf.kind, failure.kind);
    assert_eq!(rf.trace.digest(), failure.trace.digest());

    // And the digest is stable across a second replay.
    let replay2 = replay_seed(&cfg, seed, racy_counter_model);
    assert_eq!(
        replay2.failure.expect("still fails").trace.digest(),
        rf.trace.digest()
    );
}

/// The whole exploration is deterministic: two identical DFS runs visit the
/// same number of schedules and end in failures with identical digests.
#[test]
fn exploration_is_deterministic() {
    let cfg = small(2);
    let a = explore(&cfg, racy_counter_model);
    let b = explore(&cfg, racy_counter_model);
    assert_eq!(a.schedules, b.schedules);
    let (fa, fb) = (a.failure.unwrap(), b.failure.unwrap());
    assert_eq!(fa.choices, fb.choices);
    assert_eq!(fa.trace.digest(), fb.trace.digest());
}

/// Shim types outside any exploration behave exactly like `std`: this test
/// intentionally runs on a plain test thread.
#[test]
fn shim_passthrough_without_checker() {
    let n = Arc::new(AtomicU64::new(0));
    let m = Arc::new(Mutex::new(0u64));
    let hs: Vec<_> = (0..4)
        .map(|_| {
            let n = Arc::clone(&n);
            let m = Arc::clone(&m);
            spawn(move || {
                n.fetch_add(1, SeqCst);
                *m.lock().unwrap() += 1;
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    assert_eq!(n.load(SeqCst), 4);
    assert_eq!(*m.lock().unwrap(), 4);
}

/// Failure traces render as an obs-style event log with header and
/// per-thread rows.
#[test]
fn failure_trace_renders_like_an_event_log() {
    let ex = explore(&small(2), racy_counter_model);
    let failure = ex.failure.unwrap();
    let rendered = failure.trace.render();
    assert!(rendered.contains("step"), "{rendered}");
    assert!(rendered.contains("t0"), "{rendered}");
    assert!(
        rendered.contains("atomic.load") || rendered.contains("switch"),
        "{rendered}"
    );
}
