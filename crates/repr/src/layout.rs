//! Runtime layout descriptors: declare a structure's fields with exact bit
//! widths and get a checked, zero-copy view over raw bytes.
//!
//! This reifies the representation control BitC builds into its type system
//! (`bitfield` types): the *programmer* decides where every bit goes, and the
//! system checks accesses against the declaration instead of trusting casts.
//!
//! ```
//! use sysrepr::layout::LayoutBuilder;
//!
//! // A hardware-ish page-table entry.
//! let pte = LayoutBuilder::new("pte")
//!     .field("present", 1)
//!     .field("writable", 1)
//!     .field("user", 1)
//!     .pad(9)
//!     .field("frame", 52)
//!     .build()
//!     .unwrap();
//! assert_eq!(pte.size_bits(), 64);
//!
//! let mut raw = [0u8; 8];
//! let mut v = pte.view_mut(&mut raw).unwrap();
//! v.set("present", 1).unwrap();
//! v.set("frame", 0xCAFE).unwrap();
//! assert_eq!(pte.view(&raw).unwrap().get("frame").unwrap(), 0xCAFE);
//! ```

use crate::bits;
use crate::ReprError;
use std::collections::HashMap;
use std::fmt;

/// One declared field of a [`Layout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Absolute bit offset from the start of the structure.
    pub bit_offset: usize,
    /// Width in bits (1–64).
    pub width: usize,
}

/// Errors raised while declaring a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// Two fields share a name.
    DuplicateField(String),
    /// A field width was 0 or above 64.
    BadWidth {
        /// Field name.
        field: String,
        /// Offending width.
        width: usize,
    },
    /// The named field does not exist.
    UnknownField(String),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::DuplicateField(n) => write!(f, "duplicate field {n}"),
            LayoutError::BadWidth { field, width } => {
                write!(f, "field {field} has invalid width {width}")
            }
            LayoutError::UnknownField(n) => write!(f, "unknown field {n}"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Builder for [`Layout`]. Fields are placed consecutively in declaration
/// order; [`LayoutBuilder::pad`] inserts anonymous padding and
/// [`LayoutBuilder::align_to`] pads to the next multiple of `bits`.
#[derive(Debug, Clone)]
pub struct LayoutBuilder {
    name: String,
    fields: Vec<Field>,
    cursor: usize,
}

impl LayoutBuilder {
    /// Starts a layout named `name`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        LayoutBuilder {
            name: name.to_owned(),
            fields: Vec::new(),
            cursor: 0,
        }
    }

    /// Appends a field of `width` bits.
    #[must_use]
    pub fn field(mut self, name: &str, width: usize) -> Self {
        self.fields.push(Field {
            name: name.to_owned(),
            bit_offset: self.cursor,
            width,
        });
        self.cursor += width;
        self
    }

    /// Appends `width` bits of anonymous padding.
    #[must_use]
    pub fn pad(mut self, width: usize) -> Self {
        self.cursor += width;
        self
    }

    /// Pads so the next field starts at a multiple of `bits`.
    #[must_use]
    pub fn align_to(mut self, bits: usize) -> Self {
        if bits > 0 && !self.cursor.is_multiple_of(bits) {
            self.cursor += bits - self.cursor % bits;
        }
        self
    }

    /// Validates and freezes the layout.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::DuplicateField`] or [`LayoutError::BadWidth`].
    pub fn build(self) -> Result<Layout, LayoutError> {
        let mut by_name = HashMap::new();
        for (i, f) in self.fields.iter().enumerate() {
            if f.width == 0 || f.width > 64 {
                return Err(LayoutError::BadWidth {
                    field: f.name.clone(),
                    width: f.width,
                });
            }
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(LayoutError::DuplicateField(f.name.clone()));
            }
        }
        Ok(Layout {
            name: self.name,
            fields: self.fields,
            by_name,
            size_bits: self.cursor,
        })
    }
}

/// A frozen bit-precise structure description.
#[derive(Debug, Clone)]
pub struct Layout {
    name: String,
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
    size_bits: usize,
}

impl Layout {
    /// The layout's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total size in bits, including padding.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.size_bits
    }

    /// Total size in whole bytes (rounded up).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.size_bits.div_ceil(8)
    }

    /// Size this structure would occupy if every field were boxed into its
    /// own 64-bit word — the "managed representation" the paper's Fallacy 2
    /// argues cannot be optimised away. Used by E8's bloat column.
    #[must_use]
    pub fn boxed_size_bytes(&self) -> usize {
        self.fields.len() * 8
    }

    /// Looks up a field descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::UnknownField`].
    pub fn field(&self, name: &str) -> Result<&Field, LayoutError> {
        self.by_name
            .get(name)
            .map(|&i| &self.fields[i])
            .ok_or_else(|| LayoutError::UnknownField(name.to_owned()))
    }

    /// All fields in declaration order.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Creates a read-only view over `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::Truncated`] if `buf` is smaller than the layout.
    pub fn view<'a>(&'a self, buf: &'a [u8]) -> Result<View<'a>, ReprError> {
        if buf.len() < self.size_bytes() {
            return Err(ReprError::Truncated {
                needed: self.size_bytes(),
                got: buf.len(),
            });
        }
        Ok(View { layout: self, buf })
    }

    /// Creates a mutable view over `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::Truncated`] if `buf` is smaller than the layout.
    pub fn view_mut<'a>(&'a self, buf: &'a mut [u8]) -> Result<ViewMut<'a>, ReprError> {
        if buf.len() < self.size_bytes() {
            return Err(ReprError::Truncated {
                needed: self.size_bytes(),
                got: buf.len(),
            });
        }
        Ok(ViewMut { layout: self, buf })
    }
}

/// A read-only, zero-copy view of bytes through a [`Layout`].
#[derive(Debug, Clone)]
pub struct View<'a> {
    layout: &'a Layout,
    buf: &'a [u8],
}

impl View<'_> {
    /// Reads the named field.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::InvalidField`] for unknown field names.
    pub fn get(&self, name: &str) -> Result<u64, ReprError> {
        let f = self
            .layout
            .field(name)
            .map_err(|_| ReprError::InvalidField {
                field: "unknown",
                value: 0,
            })?;
        bits::get_bits(self.buf, f.bit_offset, f.width)
    }
}

/// A mutable, zero-copy view of bytes through a [`Layout`].
#[derive(Debug)]
pub struct ViewMut<'a> {
    layout: &'a Layout,
    buf: &'a mut [u8],
}

impl ViewMut<'_> {
    /// Reads the named field.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::InvalidField`] for unknown field names.
    pub fn get(&self, name: &str) -> Result<u64, ReprError> {
        let f = self
            .layout
            .field(name)
            .map_err(|_| ReprError::InvalidField {
                field: "unknown",
                value: 0,
            })?;
        bits::get_bits(self.buf, f.bit_offset, f.width)
    }

    /// Writes the named field.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::InvalidField`] for unknown names or values that
    /// do not fit the declared width.
    pub fn set(&mut self, name: &str, value: u64) -> Result<(), ReprError> {
        let f = self
            .layout
            .field(name)
            .map_err(|_| ReprError::InvalidField {
                field: "unknown",
                value,
            })?;
        bits::set_bits(self.buf, f.bit_offset, f.width, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pte() -> Layout {
        LayoutBuilder::new("pte")
            .field("present", 1)
            .field("writable", 1)
            .field("user", 1)
            .pad(9)
            .field("frame", 52)
            .build()
            .unwrap()
    }

    #[test]
    fn offsets_accumulate_in_declaration_order() {
        let l = pte();
        assert_eq!(l.field("present").unwrap().bit_offset, 0);
        assert_eq!(l.field("writable").unwrap().bit_offset, 1);
        assert_eq!(l.field("frame").unwrap().bit_offset, 12);
        assert_eq!(l.size_bits(), 64);
        assert_eq!(l.size_bytes(), 8);
    }

    #[test]
    fn boxed_size_shows_representation_bloat() {
        let l = pte();
        // 4 named fields boxed to words = 32 bytes vs 8 packed.
        assert_eq!(l.boxed_size_bytes(), 32);
        assert!(l.boxed_size_bytes() > l.size_bytes());
    }

    #[test]
    fn duplicate_fields_are_rejected() {
        let err = LayoutBuilder::new("x")
            .field("a", 4)
            .field("a", 4)
            .build()
            .unwrap_err();
        assert_eq!(err, LayoutError::DuplicateField("a".into()));
    }

    #[test]
    fn zero_and_oversized_widths_are_rejected() {
        assert!(matches!(
            LayoutBuilder::new("x").field("a", 0).build(),
            Err(LayoutError::BadWidth { .. })
        ));
        assert!(matches!(
            LayoutBuilder::new("x").field("a", 65).build(),
            Err(LayoutError::BadWidth { .. })
        ));
    }

    #[test]
    fn align_to_pads_cursor() {
        let l = LayoutBuilder::new("x")
            .field("a", 3)
            .align_to(16)
            .field("b", 8)
            .build()
            .unwrap();
        assert_eq!(l.field("b").unwrap().bit_offset, 16);
    }

    #[test]
    fn view_rejects_short_buffers() {
        let l = pte();
        let buf = [0u8; 4];
        assert!(matches!(l.view(&buf), Err(ReprError::Truncated { .. })));
    }

    #[test]
    fn set_get_through_views() {
        let l = pte();
        let mut raw = [0u8; 8];
        let mut v = l.view_mut(&mut raw).unwrap();
        v.set("present", 1).unwrap();
        v.set("user", 1).unwrap();
        v.set("frame", 0xABCDE).unwrap();
        assert_eq!(v.get("present").unwrap(), 1);
        assert_eq!(v.get("writable").unwrap(), 0);
        let rv = l.view(&raw).unwrap();
        assert_eq!(rv.get("frame").unwrap(), 0xABCDE);
    }

    #[test]
    fn value_wider_than_field_is_rejected() {
        let l = pte();
        let mut raw = [0u8; 8];
        let mut v = l.view_mut(&mut raw).unwrap();
        assert!(v.set("present", 2).is_err());
    }

    #[test]
    fn unknown_field_is_an_error_everywhere() {
        let l = pte();
        assert!(l.field("nope").is_err());
        let raw = [0u8; 8];
        assert!(l.view(&raw).unwrap().get("nope").is_err());
    }

    proptest! {
        /// Fields written through a view read back exactly, independent of
        /// neighbouring field contents.
        #[test]
        fn independent_field_roundtrip(a in 0u64..2, b in 0u64..512, c: u32) {
            let l = LayoutBuilder::new("t")
                .field("a", 1)
                .field("b", 9)
                .field("c", 32)
                .build()
                .unwrap();
            let mut raw = vec![0u8; l.size_bytes()];
            let mut v = l.view_mut(&mut raw).unwrap();
            v.set("a", a).unwrap();
            v.set("b", b).unwrap();
            v.set("c", u64::from(c)).unwrap();
            prop_assert_eq!(v.get("a").unwrap(), a);
            prop_assert_eq!(v.get("b").unwrap(), b);
            prop_assert_eq!(v.get("c").unwrap(), u64::from(c));
        }
    }
}
