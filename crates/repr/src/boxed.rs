//! The allocating, "managed-representation" baseline parser.
//!
//! Every header is copied into an owned struct and every variable-length
//! field into a fresh `Vec` — the representation a boxing functional-language
//! runtime would naturally produce. Semantically identical to the zero-copy
//! views in [`crate::packet`] (the tests check field-for-field agreement);
//! experiment E8 measures what the representation alone costs, which is the
//! paper's Fallacy 2 made concrete.

use crate::packet::{EthernetView, Ipv4View, TcpView, UdpView, IPPROTO_TCP, IPPROTO_UDP};
use crate::ReprError;

/// An owned Ethernet header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoxedEthernet {
    /// Destination MAC.
    pub dst_mac: Box<[u8; 6]>,
    /// Source MAC.
    pub src_mac: Box<[u8; 6]>,
    /// EtherType.
    pub ethertype: Box<u16>,
}

/// An owned IPv4 header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoxedIpv4 {
    /// Time to live.
    pub ttl: Box<u8>,
    /// Protocol number.
    pub protocol: Box<u8>,
    /// Header checksum.
    pub checksum: Box<u16>,
    /// Source address.
    pub src: Box<[u8; 4]>,
    /// Destination address.
    pub dst: Box<[u8; 4]>,
    /// Options bytes.
    pub options: Vec<u8>,
}

/// An owned transport header plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoxedTransport {
    /// UDP datagram.
    Udp {
        /// Source port.
        src_port: Box<u16>,
        /// Destination port.
        dst_port: Box<u16>,
        /// Payload copy.
        payload: Vec<u8>,
    },
    /// TCP segment.
    Tcp {
        /// Source port.
        src_port: Box<u16>,
        /// Destination port.
        dst_port: Box<u16>,
        /// Sequence number.
        seq: Box<u32>,
        /// Acknowledgment number.
        ack: Box<u32>,
        /// Payload copy.
        payload: Vec<u8>,
    },
    /// Unknown protocol: payload kept raw.
    Other {
        /// Protocol number.
        protocol: u8,
        /// Payload copy.
        payload: Vec<u8>,
    },
}

/// A fully parsed, fully owned packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoxedPacket {
    /// Link layer.
    pub eth: BoxedEthernet,
    /// Network layer.
    pub ip: BoxedIpv4,
    /// Transport layer.
    pub transport: BoxedTransport,
}

impl BoxedPacket {
    /// Parses a frame into owned structures, allocating as it goes.
    ///
    /// # Errors
    ///
    /// Same validation errors as the zero-copy path.
    pub fn parse(bytes: &[u8]) -> Result<Self, ReprError> {
        let eth_view = EthernetView::parse(bytes)?;
        let ip_view: Ipv4View<'_> = eth_view.ipv4()?;
        let eth = BoxedEthernet {
            dst_mac: Box::new(eth_view.dst_mac()),
            src_mac: Box::new(eth_view.src_mac()),
            ethertype: Box::new(eth_view.ethertype()),
        };
        let ip = BoxedIpv4 {
            ttl: Box::new(ip_view.ttl()),
            protocol: Box::new(ip_view.protocol()),
            checksum: Box::new(ip_view.checksum()),
            src: Box::new(ip_view.src()),
            dst: Box::new(ip_view.dst()),
            options: ip_view.options().to_vec(),
        };
        let transport = match ip_view.protocol() {
            IPPROTO_UDP => {
                let u: UdpView<'_> = ip_view.udp()?;
                BoxedTransport::Udp {
                    src_port: Box::new(u.src_port()),
                    dst_port: Box::new(u.dst_port()),
                    payload: u.payload().to_vec(),
                }
            }
            IPPROTO_TCP => {
                let t: TcpView<'_> = ip_view.tcp()?;
                BoxedTransport::Tcp {
                    src_port: Box::new(t.src_port()),
                    dst_port: Box::new(t.dst_port()),
                    seq: Box::new(t.seq()),
                    ack: Box::new(t.ack()),
                    payload: t.payload().to_vec(),
                }
            }
            other => BoxedTransport::Other {
                protocol: other,
                payload: ip_view.payload().to_vec(),
            },
        };
        Ok(BoxedPacket { eth, ip, transport })
    }

    /// Destination port, if the packet has a transport header.
    #[must_use]
    pub fn dst_port(&self) -> Option<u16> {
        match &self.transport {
            BoxedTransport::Udp { dst_port, .. } | BoxedTransport::Tcp { dst_port, .. } => {
                Some(**dst_port)
            }
            BoxedTransport::Other { .. } => None,
        }
    }

    /// Payload bytes.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        match &self.transport {
            BoxedTransport::Udp { payload, .. }
            | BoxedTransport::Tcp { payload, .. }
            | BoxedTransport::Other { payload, .. } => payload,
        }
    }

    /// Number of separate heap allocations this representation required —
    /// the boxing overhead E8 tabulates against the zero-copy path's zero.
    #[must_use]
    pub fn allocation_count(&self) -> usize {
        // eth: 3 boxes; ip: 5 boxes + options vec; transport: 3-4 boxes + payload vec.
        let transport = match &self.transport {
            BoxedTransport::Udp { .. } => 3,
            BoxedTransport::Tcp { .. } => 5,
            BoxedTransport::Other { .. } => 1,
        };
        3 + 6 + transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;
    use proptest::prelude::*;

    #[test]
    fn boxed_and_zero_copy_agree_on_udp() {
        let bytes = PacketBuilder::udp()
            .src_ip([1, 2, 3, 4])
            .dst_ip([5, 6, 7, 8])
            .src_port(10)
            .dst_port(20)
            .payload(b"abc")
            .build();
        let boxed = BoxedPacket::parse(&bytes).unwrap();
        let view = EthernetView::parse(&bytes).unwrap().ipv4().unwrap();
        assert_eq!(*boxed.ip.src, view.src());
        assert_eq!(*boxed.ip.dst, view.dst());
        assert_eq!(boxed.dst_port(), Some(20));
        assert_eq!(boxed.payload(), view.udp().unwrap().payload());
    }

    #[test]
    fn boxed_and_zero_copy_agree_on_tcp() {
        let bytes = PacketBuilder::tcp()
            .src_port(99)
            .dst_port(443)
            .payload(b"hi")
            .build();
        let boxed = BoxedPacket::parse(&bytes).unwrap();
        match &boxed.transport {
            BoxedTransport::Tcp {
                src_port, dst_port, ..
            } => {
                assert_eq!(**src_port, 99);
                assert_eq!(**dst_port, 443);
            }
            other => panic!("expected TCP, got {other:?}"),
        }
    }

    #[test]
    fn boxed_rejects_what_views_reject() {
        let bytes = PacketBuilder::udp().build();
        assert!(BoxedPacket::parse(&bytes[..10]).is_err());
    }

    #[test]
    fn allocation_count_is_nonzero() {
        let bytes = PacketBuilder::udp().payload(b"x").build();
        let boxed = BoxedPacket::parse(&bytes).unwrap();
        assert!(
            boxed.allocation_count() >= 12,
            "boxing must visibly allocate"
        );
    }

    proptest! {
        /// Both parsers accept and reject exactly the same inputs.
        #[test]
        fn accept_reject_equivalence(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
            let view_ok = EthernetView::parse(&bytes)
                .and_then(|e| e.ipv4())
                .and_then(|ip| match ip.protocol() {
                    IPPROTO_UDP => ip.udp().map(|_| ()),
                    IPPROTO_TCP => ip.tcp().map(|_| ()),
                    _ => Ok(()),
                })
                .is_ok();
            prop_assert_eq!(BoxedPacket::parse(&bytes).is_ok(), view_ok);
        }
    }
}
