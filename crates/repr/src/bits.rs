//! Bit-precise reads and writes at arbitrary bit offsets and widths.
//!
//! Bits are numbered MSB-first within each byte (bit 0 of a buffer is the
//! most significant bit of byte 0), matching how RFCs and hardware manuals
//! draw their field diagrams — an IPv4 header's 4-bit `version` field is
//! exactly `get_bits(buf, 0, 4)`.

use crate::ReprError;

/// Reads `width` bits (1–64) starting at absolute bit offset `bit_offset`.
///
/// # Errors
///
/// Returns [`ReprError::OutOfRange`] if the range exceeds the buffer or
/// `width` is 0 or greater than 64.
pub fn get_bits(buf: &[u8], bit_offset: usize, width: usize) -> Result<u64, ReprError> {
    check_range(buf, bit_offset, width)?;
    let mut acc: u64 = 0;
    for i in 0..width {
        let bit = bit_offset + i;
        let byte = buf[bit / 8];
        let shift = 7 - (bit % 8);
        acc = (acc << 1) | u64::from((byte >> shift) & 1);
    }
    Ok(acc)
}

/// Writes the low `width` bits of `value` starting at bit offset `bit_offset`.
///
/// # Errors
///
/// Returns [`ReprError::OutOfRange`] for a bad range, or
/// [`ReprError::InvalidField`] if `value` does not fit in `width` bits.
pub fn set_bits(
    buf: &mut [u8],
    bit_offset: usize,
    width: usize,
    value: u64,
) -> Result<(), ReprError> {
    check_range(buf, bit_offset, width)?;
    if width < 64 && value >> width != 0 {
        return Err(ReprError::InvalidField {
            field: "value",
            value,
        });
    }
    for i in 0..width {
        let bit = bit_offset + i;
        let shift = 7 - (bit % 8);
        let v = (value >> (width - 1 - i)) & 1;
        let byte = &mut buf[bit / 8];
        *byte = (*byte & !(1 << shift)) | (u8::try_from(v).expect("single bit") << shift);
    }
    Ok(())
}

fn check_range(buf: &[u8], bit_offset: usize, width: usize) -> Result<(), ReprError> {
    let buffer_bits = buf.len() * 8;
    if width == 0
        || width > 64
        || bit_offset
            .checked_add(width)
            .is_none_or(|end| end > buffer_bits)
    {
        return Err(ReprError::OutOfRange {
            bit_offset,
            width,
            buffer_bits,
        });
    }
    Ok(())
}

/// A cursor for reading consecutive bit fields, as a parser would.
///
/// ```
/// use sysrepr::bits::BitReader;
///
/// let buf = [0b0100_0101u8, 0xff]; // IPv4 version=4, IHL=5
/// let mut r = BitReader::new(&buf);
/// assert_eq!(r.read(4).unwrap(), 4);
/// assert_eq!(r.read(4).unwrap(), 5);
/// assert_eq!(r.position(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at bit 0.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Reads the next `width` bits and advances.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::OutOfRange`] past end of buffer.
    pub fn read(&mut self, width: usize) -> Result<u64, ReprError> {
        let v = get_bits(self.buf, self.pos, width)?;
        self.pos += width;
        Ok(v)
    }

    /// Skips `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::OutOfRange`] past end of buffer.
    pub fn skip(&mut self, width: usize) -> Result<(), ReprError> {
        check_range(self.buf, self.pos, width.min(64)).and_then(|()| {
            if self.pos + width > self.buf.len() * 8 {
                return Err(ReprError::OutOfRange {
                    bit_offset: self.pos,
                    width,
                    buffer_bits: self.buf.len() * 8,
                });
            }
            self.pos += width;
            Ok(())
        })
    }

    /// Current absolute bit position.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }
}

/// A cursor for writing consecutive bit fields.
#[derive(Debug)]
pub struct BitWriter<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> BitWriter<'a> {
    /// Creates a writer positioned at bit 0.
    pub fn new(buf: &'a mut [u8]) -> Self {
        BitWriter { buf, pos: 0 }
    }

    /// Writes the low `width` bits of `value` and advances.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::OutOfRange`] past end of buffer, or
    /// [`ReprError::InvalidField`] if the value does not fit.
    pub fn write(&mut self, width: usize, value: u64) -> Result<(), ReprError> {
        set_bits(self.buf, self.pos, width, value)?;
        self.pos += width;
        Ok(())
    }

    /// Current absolute bit position.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_bit_extraction() {
        let buf = [0b1000_0000u8];
        assert_eq!(get_bits(&buf, 0, 1).unwrap(), 1);
        assert_eq!(get_bits(&buf, 1, 1).unwrap(), 0);
    }

    #[test]
    fn byte_aligned_reads_match_bytes() {
        let buf = [0xAB, 0xCD, 0xEF];
        assert_eq!(get_bits(&buf, 0, 8).unwrap(), 0xAB);
        assert_eq!(get_bits(&buf, 8, 16).unwrap(), 0xCDEF);
        assert_eq!(get_bits(&buf, 0, 24).unwrap(), 0xABCDEF);
    }

    #[test]
    fn unaligned_cross_byte_read() {
        // bits: 1010 1011 1100 1101
        let buf = [0xAB, 0xCD];
        // bits 4..12 = 1011 1100 = 0xBC
        assert_eq!(get_bits(&buf, 4, 8).unwrap(), 0xBC);
        // bits 3..6 = 0 10 1 -> offset3 width3 = 010...
        assert_eq!(get_bits(&buf, 3, 3).unwrap(), 0b010);
    }

    #[test]
    fn full_64_bit_read() {
        let buf = [0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF];
        assert_eq!(get_bits(&buf, 0, 64).unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let buf = [0u8; 2];
        assert!(matches!(
            get_bits(&buf, 10, 8),
            Err(ReprError::OutOfRange { .. })
        ));
        assert!(matches!(
            get_bits(&buf, 0, 0),
            Err(ReprError::OutOfRange { .. })
        ));
        assert!(matches!(
            get_bits(&buf, 0, 65),
            Err(ReprError::OutOfRange { .. })
        ));
    }

    #[test]
    fn set_bits_writes_only_the_field() {
        let mut buf = [0xFFu8; 2];
        set_bits(&mut buf, 4, 8, 0).unwrap();
        assert_eq!(buf, [0xF0, 0x0F]);
    }

    #[test]
    fn set_bits_rejects_oversized_value() {
        let mut buf = [0u8; 2];
        assert!(matches!(
            set_bits(&mut buf, 0, 4, 16),
            Err(ReprError::InvalidField { .. })
        ));
    }

    #[test]
    fn reader_walks_ipv4_first_word() {
        // version=4 ihl=5 dscp=0 ecn=0 total_len=0x0054
        let buf = [0x45, 0x00, 0x00, 0x54];
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read(4).unwrap(), 4);
        assert_eq!(r.read(4).unwrap(), 5);
        assert_eq!(r.read(6).unwrap(), 0);
        assert_eq!(r.read(2).unwrap(), 0);
        assert_eq!(r.read(16).unwrap(), 0x54);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn writer_then_reader_roundtrip_fixed() {
        let mut buf = [0u8; 4];
        let mut w = BitWriter::new(&mut buf);
        w.write(3, 0b101).unwrap();
        w.write(13, 0x1ABC & 0x1FFF).unwrap();
        w.write(16, 0xBEEF).unwrap();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read(3).unwrap(), 0b101);
        assert_eq!(r.read(13).unwrap(), 0x1ABC & 0x1FFF);
        assert_eq!(r.read(16).unwrap(), 0xBEEF);
    }

    #[test]
    fn skip_advances_and_checks_bounds() {
        let buf = [0u8; 2];
        let mut r = BitReader::new(&buf);
        r.skip(12).unwrap();
        assert_eq!(r.position(), 12);
        assert!(r.skip(5).is_err());
    }

    proptest! {
        /// set_bits followed by get_bits returns the value, for any in-range
        /// offset/width/value combination.
        #[test]
        fn set_get_roundtrip(
            offset in 0usize..64,
            width in 1usize..=64,
            value: u64,
            fill: u8,
        ) {
            let mut buf = vec![fill; 16];
            let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
            set_bits(&mut buf, offset, width, masked).unwrap();
            prop_assert_eq!(get_bits(&buf, offset, width).unwrap(), masked);
        }

        /// Writes never disturb bits outside the target range.
        #[test]
        fn set_bits_is_local(offset in 0usize..32, width in 1usize..=32, value: u64) {
            let mut buf = vec![0xA5u8; 8];
            let before = buf.clone();
            let masked = value & ((1u64 << width) - 1);
            set_bits(&mut buf, offset, width, masked).unwrap();
            for bit in 0..buf.len() * 8 {
                if bit < offset || bit >= offset + width {
                    prop_assert_eq!(
                        get_bits(&buf, bit, 1).unwrap(),
                        get_bits(&before, bit, 1).unwrap(),
                        "bit {} disturbed", bit
                    );
                }
            }
        }
    }
}
