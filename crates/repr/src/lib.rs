//! # sysrepr — control over data representation
//!
//! Substrate for the paper's Challenge 3: "control over data representation".
//! Systems code must describe *exact* bit-level layouts — hardware registers,
//! page-table entries, network headers — and a viable C replacement must make
//! those layouts expressible without boxing, padding surprises, or copies.
//!
//! The crate provides four layers:
//!
//! * [`bits`] — bit-precise reads/writes at arbitrary bit offsets and widths
//!   (MSB-first, as network protocols and most hardware documents count bits),
//! * [`endian`] — explicit byte-order conversion,
//! * [`layout`] — a runtime layout-descriptor DSL in the spirit of BitC's
//!   `bitfield` types: declare fields with bit widths, get offsets, bounds
//!   checking, and a typed [`layout::View`] over raw bytes,
//! * [`packet`] — zero-copy views over Ethernet/IPv4/UDP/TCP packets, with
//!   [`boxed`] as the allocating "managed-language" baseline that experiment
//!   E8 compares against, and [`langsec`] as a total, non-backtracking
//!   combinator parser in the LangSec style.
//!
//! ```
//! use sysrepr::packet::{EthernetView, PacketBuilder};
//!
//! let bytes = PacketBuilder::udp()
//!     .src_ip([10, 0, 0, 1])
//!     .dst_ip([10, 0, 0, 2])
//!     .src_port(5004)
//!     .dst_port(5005)
//!     .payload(b"hello")
//!     .build();
//! let eth = EthernetView::parse(&bytes).unwrap();
//! let ip = eth.ipv4().unwrap();
//! assert_eq!(ip.dst(), [10, 0, 0, 2]);
//! assert_eq!(ip.udp().unwrap().payload(), b"hello");
//! ```

pub mod bits;
pub mod boxed;
pub mod dns;
pub mod endian;
pub mod langsec;
pub mod layout;
pub mod packet;

use std::fmt;

/// Errors produced when decoding raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReprError {
    /// The buffer is shorter than the structure requires.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A field value violates the format's constraints.
    InvalidField {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: u64,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Expected checksum.
        expected: u16,
        /// Computed checksum.
        computed: u16,
    },
    /// A bit-level access was out of range.
    OutOfRange {
        /// Starting bit offset.
        bit_offset: usize,
        /// Width in bits.
        width: usize,
        /// Buffer length in bits.
        buffer_bits: usize,
    },
}

impl fmt::Display for ReprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReprError::Truncated { needed, got } => {
                write!(f, "truncated input: need {needed} bytes, got {got}")
            }
            ReprError::InvalidField { field, value } => {
                write!(f, "invalid value {value} for field {field}")
            }
            ReprError::BadChecksum { expected, computed } => {
                write!(
                    f,
                    "bad checksum: header says {expected:#06x}, computed {computed:#06x}"
                )
            }
            ReprError::OutOfRange {
                bit_offset,
                width,
                buffer_bits,
            } => {
                write!(
                    f,
                    "bit access [{bit_offset}, {bit_offset}+{width}) exceeds buffer of {buffer_bits} bits"
                )
            }
        }
    }
}

impl std::error::Error for ReprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_name_the_problem() {
        let e = ReprError::Truncated { needed: 20, got: 3 };
        assert_eq!(e.to_string(), "truncated input: need 20 bytes, got 3");
        let e = ReprError::BadChecksum {
            expected: 0x1234,
            computed: 0x5678,
        };
        assert!(e.to_string().contains("0x1234"));
    }
}
