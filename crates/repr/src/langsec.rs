//! Total, non-backtracking parser combinators in the LangSec style.
//!
//! The LangSec thesis (Bratus et al.) — echoed by the course material that
//! carried the paper — is that input handling should be a *recognizer for a
//! decidable language*, written so that no field is acted on before the whole
//! input region is validated. These combinators make that style cheap:
//! parsers consume a cursor, never rewind past a committed point, and fail
//! with a position-stamped error instead of panicking.
//!
//! ```
//! use sysrepr::langsec::{Input, be_u16, take};
//!
//! let data = [0x12, 0x34, 0xAA, 0xBB];
//! let i = Input::new(&data);
//! let (len, i) = be_u16(i).unwrap();
//! assert_eq!(len, 0x1234);
//! let (body, _) = take(2)(i).unwrap();
//! assert_eq!(body, &[0xAA, 0xBB]);
//! ```

use std::fmt;

/// A parse cursor over an immutable byte buffer.
#[derive(Debug, Clone, Copy)]
pub struct Input<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Input<'a> {
    /// Positions a cursor at the start of `data`.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Input { data, pos: 0 }
    }

    /// Bytes remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Absolute byte position.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The unconsumed suffix.
    #[must_use]
    pub fn rest(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }
}

/// A position-stamped parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position of the failure.
    pub position: usize,
    /// What the parser expected.
    pub expected: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at byte {}: expected {}",
            self.position, self.expected
        )
    }
}

impl std::error::Error for ParseError {}

/// The result of applying a parser: the value and the advanced cursor.
pub type PResult<'a, T> = Result<(T, Input<'a>), ParseError>;

/// Consumes one byte.
///
/// # Errors
///
/// Fails at end of input.
pub fn u8(i: Input<'_>) -> PResult<'_, u8> {
    match i.rest().first() {
        Some(&b) => Ok((
            b,
            Input {
                data: i.data,
                pos: i.pos + 1,
            },
        )),
        None => Err(ParseError {
            position: i.pos,
            expected: "one byte",
        }),
    }
}

/// Consumes a big-endian `u16`.
///
/// # Errors
///
/// Fails with fewer than two bytes remaining.
pub fn be_u16(i: Input<'_>) -> PResult<'_, u16> {
    match i.rest() {
        [a, b, ..] => Ok((
            u16::from_be_bytes([*a, *b]),
            Input {
                data: i.data,
                pos: i.pos + 2,
            },
        )),
        _ => Err(ParseError {
            position: i.pos,
            expected: "big-endian u16",
        }),
    }
}

/// Consumes a big-endian `u32`.
///
/// # Errors
///
/// Fails with fewer than four bytes remaining.
pub fn be_u32(i: Input<'_>) -> PResult<'_, u32> {
    match i.rest() {
        [a, b, c, d, ..] => Ok((
            u32::from_be_bytes([*a, *b, *c, *d]),
            Input {
                data: i.data,
                pos: i.pos + 4,
            },
        )),
        _ => Err(ParseError {
            position: i.pos,
            expected: "big-endian u32",
        }),
    }
}

/// Returns a parser that consumes exactly `n` bytes.
pub fn take(n: usize) -> impl Fn(Input<'_>) -> PResult<'_, &[u8]> {
    move |i| {
        if i.remaining() < n {
            Err(ParseError {
                position: i.pos,
                expected: "more bytes",
            })
        } else {
            Ok((
                &i.data[i.pos..i.pos + n],
                Input {
                    data: i.data,
                    pos: i.pos + n,
                },
            ))
        }
    }
}

/// Returns a parser that requires the exact byte sequence `t`.
pub fn tag<'t>(t: &'t [u8]) -> impl Fn(Input<'_>) -> PResult<'_, ()> + 't {
    move |i| {
        if i.rest().starts_with(t) {
            Ok((
                (),
                Input {
                    data: i.data,
                    pos: i.pos + t.len(),
                },
            ))
        } else {
            Err(ParseError {
                position: i.pos,
                expected: "tag bytes",
            })
        }
    }
}

/// Wraps a parser with a post-condition; the cursor does not advance on
/// failure, so the caller can report the exact offending field.
pub fn verify<'a, T, P, F>(
    parser: P,
    expected: &'static str,
    pred: F,
) -> impl Fn(Input<'a>) -> PResult<'a, T>
where
    P: Fn(Input<'a>) -> PResult<'a, T>,
    F: Fn(&T) -> bool,
{
    move |i| {
        let at = i.pos;
        let (v, rest) = parser(i)?;
        if pred(&v) {
            Ok((v, rest))
        } else {
            Err(ParseError {
                position: at,
                expected,
            })
        }
    }
}

/// Applies `parser` exactly `n` times, collecting results.
pub fn count<'a, T, P>(parser: P, n: usize) -> impl Fn(Input<'a>) -> PResult<'a, Vec<T>>
where
    P: Fn(Input<'a>) -> PResult<'a, T>,
{
    move |mut i| {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let (v, rest) = parser(i)?;
            out.push(v);
            i = rest;
        }
        Ok((out, i))
    }
}

/// A DNS-style header parsed with the combinators — a second, independently
/// written recognizer used by tests to cross-check the hand-rolled views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Header length in bytes.
    pub header_len: usize,
    /// Total packet length.
    pub total_len: u16,
    /// Time to live.
    pub ttl: u8,
    /// Protocol.
    pub protocol: u8,
    /// Source address.
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
}

/// Parses an IPv4 header using only the combinators.
///
/// # Errors
///
/// Fails with a positioned [`ParseError`] on any malformed field.
pub fn ipv4_header(i: Input<'_>) -> PResult<'_, Ipv4Header> {
    let start_remaining = i.remaining();
    let (vi, i) = verify(u8, "version 4, IHL >= 5", |b| b >> 4 == 4 && b & 0x0F >= 5)(i)?;
    let header_len = usize::from(vi & 0x0F) * 4;
    let (_dscp_ecn, i) = u8(i)?;
    let (total_len, i) = verify(be_u16, "total_len >= header_len", move |&t| {
        usize::from(t) >= header_len
    })(i)?;
    if usize::from(total_len) > start_remaining {
        return Err(ParseError {
            position: i.position(),
            expected: "total_len within buffer",
        });
    }
    let (_id, i) = be_u16(i)?;
    let (_flags_frag, i) = be_u16(i)?;
    let (ttl, i) = u8(i)?;
    let (protocol, i) = u8(i)?;
    let (_checksum, i) = be_u16(i)?;
    let (src, i) = take(4)(i)?;
    let (dst, i) = take(4)(i)?;
    let (_options, i) = take(header_len - 20)(i)?;
    Ok((
        Ipv4Header {
            header_len,
            total_len,
            ttl,
            protocol,
            src: src.try_into().expect("length 4"),
            dst: dst.try_into().expect("length 4"),
        },
        i,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{EthernetView, PacketBuilder};
    use proptest::prelude::*;

    #[test]
    fn primitives_advance_the_cursor() {
        let data = [1, 2, 3, 4, 5, 6, 7];
        let i = Input::new(&data);
        let (a, i) = u8(i).unwrap();
        let (b, i) = be_u16(i).unwrap();
        let (c, i) = be_u32(i).unwrap();
        assert_eq!((a, b, c), (1, 0x0203, 0x0405_0607));
        assert_eq!(i.remaining(), 0);
    }

    #[test]
    fn errors_carry_positions() {
        let data = [1];
        let i = Input::new(&data);
        let (_, i) = u8(i).unwrap();
        let err = be_u16(i).unwrap_err();
        assert_eq!(err.position, 1);
        assert!(err.to_string().contains("at byte 1"));
    }

    #[test]
    fn tag_matches_exactly() {
        let data = b"HTTP/1.1";
        let i = Input::new(data);
        let ((), i) = tag(b"HTTP/")(i).unwrap();
        assert_eq!(i.rest(), b"1.1");
        assert!(tag(b"FTP")(i).is_err());
    }

    #[test]
    fn verify_reports_position_of_field_start() {
        let data = [0x99, 0x00];
        let err = verify(u8, "must be small", |&b| b < 0x10)(Input::new(&data)).unwrap_err();
        assert_eq!(err.position, 0);
        assert_eq!(err.expected, "must be small");
    }

    #[test]
    fn count_collects_fixed_repetitions() {
        let data = [1, 2, 3, 4];
        let (v, i) = count(u8, 3)(Input::new(&data)).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(i.remaining(), 1);
        assert!(count(u8, 5)(Input::new(&data)).is_err());
    }

    #[test]
    fn combinator_ipv4_agrees_with_view() {
        let bytes = PacketBuilder::udp()
            .src_ip([10, 1, 1, 1])
            .dst_ip([10, 2, 2, 2])
            .ttl(17)
            .payload(b"xyz")
            .build();
        let view = EthernetView::parse(&bytes).unwrap().ipv4().unwrap();
        let (hdr, _) = ipv4_header(Input::new(&bytes[14..])).unwrap();
        assert_eq!(hdr.src, view.src());
        assert_eq!(hdr.dst, view.dst());
        assert_eq!(hdr.ttl, view.ttl());
        assert_eq!(hdr.protocol, view.protocol());
        assert_eq!(usize::from(hdr.total_len), view.total_len());
        assert_eq!(hdr.header_len, view.header_len());
    }

    proptest! {
        /// The combinator recognizer accepts exactly what the hand-rolled
        /// view accepts (two independent implementations, one language).
        #[test]
        fn recognizer_equivalence(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let view_ok = crate::packet::Ipv4View::parse(&bytes).is_ok();
            let comb_ok = ipv4_header(Input::new(&bytes)).is_ok();
            prop_assert_eq!(comb_ok, view_ok);
        }

        /// Combinators never panic or loop on arbitrary input.
        #[test]
        fn totality(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = ipv4_header(Input::new(&bytes));
        }
    }
}
