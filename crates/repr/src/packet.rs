//! Zero-copy packet views: Ethernet II, IPv4, UDP, and TCP.
//!
//! A view validates once at construction and then reads fields straight out
//! of the original buffer — no allocation, no copying, exact representation.
//! This is the style of code the paper says systems programmers cannot give
//! up (Challenge 3); [`crate::boxed`] implements the same protocols in the
//! allocating "managed" style for experiment E8's comparison.

use crate::endian::{
    checksum_fixup16, checksum_fixup32, internet_checksum, read_u16_be, read_u32_be,
    transport_checksum_v4, write_u16_be, write_u32_be,
};
use crate::ReprError;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// TCP FIN flag bit.
pub const TCP_FIN: u8 = 0x01;
/// TCP SYN flag bit.
pub const TCP_SYN: u8 = 0x02;
/// TCP RST flag bit.
pub const TCP_RST: u8 = 0x04;
/// TCP ACK flag bit.
pub const TCP_ACK: u8 = 0x10;

const ETH_HEADER: usize = 14;
const IPV4_MIN_HEADER: usize = 20;
const UDP_HEADER: usize = 8;
const TCP_MIN_HEADER: usize = 20;

/// Zero-copy view of an Ethernet II frame.
#[derive(Debug, Clone, Copy)]
pub struct EthernetView<'a> {
    buf: &'a [u8],
}

impl<'a> EthernetView<'a> {
    /// Validates the fixed header and wraps the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::Truncated`] for frames under 14 bytes.
    pub fn parse(buf: &'a [u8]) -> Result<Self, ReprError> {
        if buf.len() < ETH_HEADER {
            return Err(ReprError::Truncated {
                needed: ETH_HEADER,
                got: buf.len(),
            });
        }
        Ok(EthernetView { buf })
    }

    /// Destination MAC address.
    #[must_use]
    pub fn dst_mac(&self) -> [u8; 6] {
        self.buf[0..6].try_into().expect("validated length")
    }

    /// Source MAC address.
    #[must_use]
    pub fn src_mac(&self) -> [u8; 6] {
        self.buf[6..12].try_into().expect("validated length")
    }

    /// EtherType field.
    #[must_use]
    pub fn ethertype(&self) -> u16 {
        read_u16_be(self.buf, 12).expect("validated length")
    }

    /// Frame payload after the Ethernet header.
    #[must_use]
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[ETH_HEADER..]
    }

    /// Interprets the payload as IPv4.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::InvalidField`] if the EtherType is not IPv4, or
    /// any IPv4 validation error.
    pub fn ipv4(&self) -> Result<Ipv4View<'a>, ReprError> {
        if self.ethertype() != ETHERTYPE_IPV4 {
            return Err(ReprError::InvalidField {
                field: "ethertype",
                value: u64::from(self.ethertype()),
            });
        }
        Ipv4View::parse(self.payload())
    }
}

/// Zero-copy view of an IPv4 packet.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4View<'a> {
    buf: &'a [u8],
    header_len: usize,
    total_len: usize,
}

impl<'a> Ipv4View<'a> {
    /// Validates version, header length, and total length, then wraps.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::Truncated`] or [`ReprError::InvalidField`] on
    /// malformed headers — total parsing, LangSec style: no field is exposed
    /// until the whole header is known to be in bounds.
    pub fn parse(buf: &'a [u8]) -> Result<Self, ReprError> {
        if buf.len() < IPV4_MIN_HEADER {
            return Err(ReprError::Truncated {
                needed: IPV4_MIN_HEADER,
                got: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(ReprError::InvalidField {
                field: "version",
                value: u64::from(version),
            });
        }
        let ihl = usize::from(buf[0] & 0x0F);
        let header_len = ihl * 4;
        if ihl < 5 {
            return Err(ReprError::InvalidField {
                field: "ihl",
                value: ihl as u64,
            });
        }
        if buf.len() < header_len {
            return Err(ReprError::Truncated {
                needed: header_len,
                got: buf.len(),
            });
        }
        let total_len = usize::from(read_u16_be(buf, 2).expect("validated length"));
        if total_len < header_len {
            return Err(ReprError::InvalidField {
                field: "total_len",
                value: total_len as u64,
            });
        }
        if buf.len() < total_len {
            return Err(ReprError::Truncated {
                needed: total_len,
                got: buf.len(),
            });
        }
        Ok(Ipv4View {
            buf,
            header_len,
            total_len,
        })
    }

    /// The C-style parse this crate exists to replace, kept as a **seeded
    /// bug** for the fuzzing harness (the representation analogue of
    /// `sysmem::epoch`'s `new_with_premature_reclaim_bug`): it checks the
    /// version and the 20-byte minimum but then *trusts* the IHL and
    /// total-length fields without bounding them against the buffer —
    /// exactly the shortcut a hand-rolled header cast makes. Accessors on
    /// the returned view ([`Self::options`], [`Self::payload`],
    /// [`Self::verify_checksum`]) overread or panic when a truncated
    /// packet claims options or payload it does not carry.
    ///
    /// **Never call this on a production path.** It exists so the
    /// population fuzzer can demonstrate rediscovery of a known parser
    /// flaw within a bounded budget; [`Self::parse`] is the total parser
    /// every data-plane path uses.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::Truncated`] only for buffers under 20 bytes and
    /// [`ReprError::InvalidField`] for a bad version or IHL < 5 — the
    /// length-vs-buffer checks [`Self::parse`] performs are deliberately
    /// missing.
    pub fn parse_trusting_lengths(buf: &'a [u8]) -> Result<Self, ReprError> {
        if buf.len() < IPV4_MIN_HEADER {
            return Err(ReprError::Truncated {
                needed: IPV4_MIN_HEADER,
                got: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(ReprError::InvalidField {
                field: "version",
                value: u64::from(version),
            });
        }
        let ihl = usize::from(buf[0] & 0x0F);
        if ihl < 5 {
            return Err(ReprError::InvalidField {
                field: "ihl",
                value: ihl as u64,
            });
        }
        let total_len = usize::from(read_u16_be(buf, 2).expect("min header checked"));
        Ok(Ipv4View {
            buf,
            header_len: ihl * 4,
            total_len: total_len.max(ihl * 4),
        })
    }

    /// Header length in bytes.
    #[must_use]
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// Total packet length in bytes (header + payload).
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// Differentiated services code point.
    #[must_use]
    pub fn dscp(&self) -> u8 {
        self.buf[1] >> 2
    }

    /// Identification field.
    #[must_use]
    pub fn identification(&self) -> u16 {
        read_u16_be(self.buf, 4).expect("validated length")
    }

    /// Don't-fragment flag.
    #[must_use]
    pub fn dont_fragment(&self) -> bool {
        self.buf[6] & 0x40 != 0
    }

    /// More-fragments flag.
    #[must_use]
    pub fn more_fragments(&self) -> bool {
        self.buf[6] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    #[must_use]
    pub fn fragment_offset(&self) -> u16 {
        read_u16_be(self.buf, 6).expect("validated length") & 0x1FFF
    }

    /// Time to live.
    #[must_use]
    pub fn ttl(&self) -> u8 {
        self.buf[8]
    }

    /// Protocol number of the payload.
    #[must_use]
    pub fn protocol(&self) -> u8 {
        self.buf[9]
    }

    /// Header checksum field.
    #[must_use]
    pub fn checksum(&self) -> u16 {
        read_u16_be(self.buf, 10).expect("validated length")
    }

    /// Source address.
    #[must_use]
    pub fn src(&self) -> [u8; 4] {
        self.buf[12..16].try_into().expect("validated length")
    }

    /// Destination address.
    #[must_use]
    pub fn dst(&self) -> [u8; 4] {
        self.buf[16..20].try_into().expect("validated length")
    }

    /// Destination address as a `u32` (for routing-table lookups).
    #[must_use]
    pub fn dst_u32(&self) -> u32 {
        read_u32_be(self.buf, 16).expect("validated length")
    }

    /// Options bytes (empty when IHL = 5).
    #[must_use]
    pub fn options(&self) -> &'a [u8] {
        &self.buf[IPV4_MIN_HEADER..self.header_len]
    }

    /// Payload after the header, bounded by `total_len`.
    #[must_use]
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[self.header_len..self.total_len]
    }

    /// Verifies the header checksum.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::BadChecksum`] on mismatch.
    pub fn verify_checksum(&self) -> Result<(), ReprError> {
        let computed = internet_checksum(&self.buf[..self.header_len]);
        if computed == 0 {
            Ok(())
        } else {
            Err(ReprError::BadChecksum {
                expected: self.checksum(),
                computed,
            })
        }
    }

    /// Interprets the payload as UDP.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::InvalidField`] if the protocol is not UDP, or a
    /// UDP validation error.
    pub fn udp(&self) -> Result<UdpView<'a>, ReprError> {
        if self.protocol() != IPPROTO_UDP {
            return Err(ReprError::InvalidField {
                field: "protocol",
                value: u64::from(self.protocol()),
            });
        }
        UdpView::parse(self.payload())
    }

    /// Interprets the payload as TCP.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::InvalidField`] if the protocol is not TCP, or a
    /// TCP validation error.
    pub fn tcp(&self) -> Result<TcpView<'a>, ReprError> {
        if self.protocol() != IPPROTO_TCP {
            return Err(ReprError::InvalidField {
                field: "protocol",
                value: u64::from(self.protocol()),
            });
        }
        TcpView::parse(self.payload())
    }
}

/// Zero-copy view of a UDP datagram.
#[derive(Debug, Clone, Copy)]
pub struct UdpView<'a> {
    buf: &'a [u8],
    length: usize,
}

impl<'a> UdpView<'a> {
    /// Validates the header and length field.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::Truncated`] or [`ReprError::InvalidField`].
    pub fn parse(buf: &'a [u8]) -> Result<Self, ReprError> {
        if buf.len() < UDP_HEADER {
            return Err(ReprError::Truncated {
                needed: UDP_HEADER,
                got: buf.len(),
            });
        }
        let length = usize::from(read_u16_be(buf, 4).expect("validated length"));
        if length < UDP_HEADER {
            return Err(ReprError::InvalidField {
                field: "length",
                value: length as u64,
            });
        }
        if buf.len() < length {
            return Err(ReprError::Truncated {
                needed: length,
                got: buf.len(),
            });
        }
        Ok(UdpView { buf, length })
    }

    /// Source port.
    #[must_use]
    pub fn src_port(&self) -> u16 {
        read_u16_be(self.buf, 0).expect("validated length")
    }

    /// Destination port.
    #[must_use]
    pub fn dst_port(&self) -> u16 {
        read_u16_be(self.buf, 2).expect("validated length")
    }

    /// Datagram length (header + payload).
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// UDP checksum field (0 means "not computed").
    #[must_use]
    pub fn checksum(&self) -> u16 {
        read_u16_be(self.buf, 6).expect("validated length")
    }

    /// Payload bytes.
    #[must_use]
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[UDP_HEADER..self.length]
    }
}

/// Zero-copy view of a TCP segment.
#[derive(Debug, Clone, Copy)]
pub struct TcpView<'a> {
    buf: &'a [u8],
    data_offset: usize,
}

impl<'a> TcpView<'a> {
    /// Validates the header and data offset.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::Truncated`] or [`ReprError::InvalidField`].
    pub fn parse(buf: &'a [u8]) -> Result<Self, ReprError> {
        if buf.len() < TCP_MIN_HEADER {
            return Err(ReprError::Truncated {
                needed: TCP_MIN_HEADER,
                got: buf.len(),
            });
        }
        let data_offset = usize::from(buf[12] >> 4) * 4;
        if data_offset < TCP_MIN_HEADER {
            return Err(ReprError::InvalidField {
                field: "data_offset",
                value: data_offset as u64,
            });
        }
        if buf.len() < data_offset {
            return Err(ReprError::Truncated {
                needed: data_offset,
                got: buf.len(),
            });
        }
        Ok(TcpView { buf, data_offset })
    }

    /// Source port.
    #[must_use]
    pub fn src_port(&self) -> u16 {
        read_u16_be(self.buf, 0).expect("validated length")
    }

    /// Destination port.
    #[must_use]
    pub fn dst_port(&self) -> u16 {
        read_u16_be(self.buf, 2).expect("validated length")
    }

    /// Sequence number.
    #[must_use]
    pub fn seq(&self) -> u32 {
        read_u32_be(self.buf, 4).expect("validated length")
    }

    /// Acknowledgment number.
    #[must_use]
    pub fn ack(&self) -> u32 {
        read_u32_be(self.buf, 8).expect("validated length")
    }

    /// True if the SYN flag is set.
    #[must_use]
    pub fn syn(&self) -> bool {
        self.buf[13] & 0x02 != 0
    }

    /// True if the ACK flag is set.
    #[must_use]
    pub fn ack_flag(&self) -> bool {
        self.buf[13] & 0x10 != 0
    }

    /// True if the FIN flag is set.
    #[must_use]
    pub fn fin(&self) -> bool {
        self.buf[13] & 0x01 != 0
    }

    /// True if the RST flag is set.
    #[must_use]
    pub fn rst(&self) -> bool {
        self.buf[13] & 0x04 != 0
    }

    /// Receive window.
    #[must_use]
    pub fn window(&self) -> u16 {
        read_u16_be(self.buf, 14).expect("validated length")
    }

    /// Payload after the header (and options).
    #[must_use]
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[self.data_offset..]
    }
}

/// Mutable view of an Ethernet II frame — entry point for in-place rewrite.
///
/// Validation mirrors [`EthernetView`]; the mutable views exist so NAT and
/// TTL handling can edit headers in the original buffer with incremental
/// (RFC 1624) checksum fixup — zero-copy on the write path too.
#[derive(Debug)]
pub struct EthernetViewMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> EthernetViewMut<'a> {
    /// Validates the fixed header and wraps the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::Truncated`] for frames under 14 bytes.
    pub fn parse(buf: &'a mut [u8]) -> Result<Self, ReprError> {
        EthernetView::parse(&*buf)?;
        Ok(EthernetViewMut { buf })
    }

    /// Interprets the payload as IPv4, consuming the frame view so the
    /// inner view owns the borrow for its full lifetime.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::InvalidField`] if the EtherType is not IPv4, or
    /// any IPv4 validation error.
    pub fn ipv4_mut(self) -> Result<Ipv4ViewMut<'a>, ReprError> {
        let ethertype = read_u16_be(self.buf, 12).expect("validated length");
        if ethertype != ETHERTYPE_IPV4 {
            return Err(ReprError::InvalidField {
                field: "ethertype",
                value: u64::from(ethertype),
            });
        }
        Ipv4ViewMut::parse(&mut self.buf[ETH_HEADER..])
    }
}

/// Mutable view of an IPv4 packet.
///
/// Every mutator keeps the header checksum — and, for address rewrites, the
/// transport pseudo-header checksum — consistent via RFC 1624 incremental
/// fixup, so `verify_checksum` holds after any sequence of edits.
#[derive(Debug)]
pub struct Ipv4ViewMut<'a> {
    buf: &'a mut [u8],
    header_len: usize,
    total_len: usize,
}

impl<'a> Ipv4ViewMut<'a> {
    /// Validates exactly like [`Ipv4View::parse`], then wraps mutably.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::Truncated`] or [`ReprError::InvalidField`] on
    /// malformed headers.
    pub fn parse(buf: &'a mut [u8]) -> Result<Self, ReprError> {
        let (header_len, total_len) = {
            let v = Ipv4View::parse(&*buf)?;
            (v.header_len(), v.total_len())
        };
        Ok(Ipv4ViewMut {
            buf,
            header_len,
            total_len,
        })
    }

    /// Read-only view over the same bytes (for field access mid-edit).
    #[must_use]
    pub fn as_view(&self) -> Ipv4View<'_> {
        Ipv4View {
            buf: &*self.buf,
            header_len: self.header_len,
            total_len: self.total_len,
        }
    }

    /// Time to live.
    #[must_use]
    pub fn ttl(&self) -> u8 {
        self.buf[8]
    }

    /// Protocol number of the payload.
    #[must_use]
    pub fn protocol(&self) -> u8 {
        self.buf[9]
    }

    /// Decrements TTL in place, patching the header checksum incrementally.
    ///
    /// Returns the new TTL. The TTL and protocol bytes share a 16-bit
    /// checksum word, so the fixup covers `(ttl << 8) | proto`.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::InvalidField`] if the TTL is already 0 — the
    /// packet should have been dropped, never decremented past expiry.
    pub fn decrement_ttl(&mut self) -> Result<u8, ReprError> {
        let ttl = self.buf[8];
        if ttl == 0 {
            return Err(ReprError::InvalidField {
                field: "ttl",
                value: 0,
            });
        }
        let old_word = read_u16_be(self.buf, 8).expect("validated length");
        self.buf[8] = ttl - 1;
        let new_word = read_u16_be(self.buf, 8).expect("validated length");
        let ck = read_u16_be(self.buf, 10).expect("validated length");
        write_u16_be(self.buf, 10, checksum_fixup16(ck, old_word, new_word))
            .expect("validated length");
        Ok(ttl - 1)
    }

    /// Rewrites the source address, fixing both the IPv4 header checksum and
    /// the transport pseudo-header checksum (TCP always; UDP unless its
    /// checksum is 0, i.e. "not computed").
    pub fn set_src(&mut self, ip: [u8; 4]) {
        self.set_addr(12, ip);
    }

    /// Rewrites the destination address; checksum handling as [`Self::set_src`].
    pub fn set_dst(&mut self, ip: [u8; 4]) {
        self.set_addr(16, ip);
    }

    fn set_addr(&mut self, offset: usize, ip: [u8; 4]) {
        let old = read_u32_be(self.buf, offset).expect("validated length");
        let new = u32::from_be_bytes(ip);
        if old == new {
            return;
        }
        self.buf[offset..offset + 4].copy_from_slice(&ip);
        let ck = read_u16_be(self.buf, 10).expect("validated length");
        write_u16_be(self.buf, 10, checksum_fixup32(ck, old, new)).expect("validated length");
        self.fixup_transport_for_addr(old, new);
    }

    /// Applies the pseudo-header delta of an address rewrite to the
    /// transport checksum. UDP zero-checksum datagrams are skipped, and a
    /// computed UDP checksum that folds to zero is stored as `0xFFFF` —
    /// `0x0000` on the wire would claim "no checksum".
    fn fixup_transport_for_addr(&mut self, old: u32, new: u32) {
        let (offset, is_udp) = match self.buf[9] {
            IPPROTO_TCP => (self.header_len + 16, false),
            IPPROTO_UDP => (self.header_len + 6, true),
            _ => return,
        };
        if offset + 2 > self.total_len {
            return;
        }
        let ck = read_u16_be(self.buf, offset).expect("bounds checked");
        if is_udp && ck == 0 {
            return;
        }
        let mut fixed = checksum_fixup32(ck, old, new);
        if is_udp && fixed == 0 {
            fixed = 0xFFFF;
        }
        write_u16_be(self.buf, offset, fixed).expect("bounds checked");
    }

    /// Destination NAT in one pass: rewrites the destination address and the
    /// transport destination port together. Semantically equivalent to
    /// [`Self::set_dst`] followed by `set_dst_port` on the transport view,
    /// but the transport header is located once and each checksum (IPv4
    /// header, transport pseudo-header) absorbs the combined address+port
    /// delta in a single read-modify-write — the form a NAT fast path wants,
    /// with no per-packet transport re-validation. The UDP zero-checksum
    /// convention is honored exactly as in the two-step form.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::InvalidField`] if the protocol is neither TCP
    /// nor UDP, or [`ReprError::Truncated`] if the port and checksum words
    /// fall outside `total_len`.
    pub fn dnat(&mut self, ip: [u8; 4], port: u16) -> Result<(), ReprError> {
        self.nat_rewrite(16, 2, ip, port)
    }

    /// Source NAT in one pass: rewrites the source address and the transport
    /// source port; checksum handling as [`Self::dnat`].
    ///
    /// # Errors
    ///
    /// As [`Self::dnat`].
    pub fn snat(&mut self, ip: [u8; 4], port: u16) -> Result<(), ReprError> {
        self.nat_rewrite(12, 0, ip, port)
    }

    fn nat_rewrite(
        &mut self,
        addr_off: usize,
        port_off: usize,
        ip: [u8; 4],
        port: u16,
    ) -> Result<(), ReprError> {
        let (ck_off, is_udp, need) = match self.buf[9] {
            IPPROTO_TCP => (16, false, 18),
            IPPROTO_UDP => (6, true, 8),
            other => {
                return Err(ReprError::InvalidField {
                    field: "protocol",
                    value: u64::from(other),
                })
            }
        };
        let tp = self.header_len;
        if tp + need > self.total_len {
            return Err(ReprError::Truncated {
                needed: tp + need,
                got: self.total_len,
            });
        }
        let old_addr = read_u32_be(self.buf, addr_off).expect("validated length");
        let new_addr = u32::from_be_bytes(ip);
        let old_port = read_u16_be(self.buf, tp + port_off).expect("bounds checked");
        self.buf[addr_off..addr_off + 4].copy_from_slice(&ip);
        write_u16_be(self.buf, tp + port_off, port).expect("bounds checked");
        if old_addr != new_addr {
            let ck = read_u16_be(self.buf, 10).expect("validated length");
            write_u16_be(self.buf, 10, checksum_fixup32(ck, old_addr, new_addr))
                .expect("validated length");
        }
        let ck = read_u16_be(self.buf, tp + ck_off).expect("bounds checked");
        if is_udp && ck == 0 {
            return Ok(());
        }
        let mut fixed = checksum_fixup16(checksum_fixup32(ck, old_addr, new_addr), old_port, port);
        if is_udp && fixed == 0 {
            fixed = 0xFFFF;
        }
        write_u16_be(self.buf, tp + ck_off, fixed).expect("bounds checked");
        Ok(())
    }

    /// Mutable view of the payload as UDP.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::InvalidField`] if the protocol is not UDP, or a
    /// UDP validation error.
    pub fn udp_mut(&mut self) -> Result<UdpViewMut<'_>, ReprError> {
        if self.buf[9] != IPPROTO_UDP {
            return Err(ReprError::InvalidField {
                field: "protocol",
                value: u64::from(self.buf[9]),
            });
        }
        UdpViewMut::parse(&mut self.buf[self.header_len..self.total_len])
    }

    /// Mutable view of the payload as TCP.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::InvalidField`] if the protocol is not TCP, or a
    /// TCP validation error.
    pub fn tcp_mut(&mut self) -> Result<TcpViewMut<'_>, ReprError> {
        if self.buf[9] != IPPROTO_TCP {
            return Err(ReprError::InvalidField {
                field: "protocol",
                value: u64::from(self.buf[9]),
            });
        }
        TcpViewMut::parse(&mut self.buf[self.header_len..self.total_len])
    }
}

/// Mutable view of a UDP datagram.
///
/// Port rewrites honor the UDP zero-checksum convention: a stored checksum
/// of 0 means "not computed" and is left untouched; a fixup that lands on 0
/// is emitted as `0xFFFF` (equal in one's-complement arithmetic, but not a
/// "no checksum" claim).
#[derive(Debug)]
pub struct UdpViewMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> UdpViewMut<'a> {
    /// Validates exactly like [`UdpView::parse`], then wraps mutably.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::Truncated`] or [`ReprError::InvalidField`].
    pub fn parse(buf: &'a mut [u8]) -> Result<Self, ReprError> {
        UdpView::parse(&*buf)?;
        Ok(UdpViewMut { buf })
    }

    /// Source port.
    #[must_use]
    pub fn src_port(&self) -> u16 {
        read_u16_be(self.buf, 0).expect("validated length")
    }

    /// Destination port.
    #[must_use]
    pub fn dst_port(&self) -> u16 {
        read_u16_be(self.buf, 2).expect("validated length")
    }

    /// UDP checksum field (0 means "not computed").
    #[must_use]
    pub fn checksum(&self) -> u16 {
        read_u16_be(self.buf, 6).expect("validated length")
    }

    /// Rewrites the source port with incremental checksum fixup.
    pub fn set_src_port(&mut self, port: u16) {
        self.set_port(0, port);
    }

    /// Rewrites the destination port with incremental checksum fixup.
    pub fn set_dst_port(&mut self, port: u16) {
        self.set_port(2, port);
    }

    fn set_port(&mut self, offset: usize, port: u16) {
        let old = read_u16_be(self.buf, offset).expect("validated length");
        if old == port {
            return;
        }
        write_u16_be(self.buf, offset, port).expect("validated length");
        let ck = read_u16_be(self.buf, 6).expect("validated length");
        if ck == 0 {
            return;
        }
        let mut fixed = checksum_fixup16(ck, old, port);
        if fixed == 0 {
            fixed = 0xFFFF;
        }
        write_u16_be(self.buf, 6, fixed).expect("validated length");
    }
}

/// Mutable view of a TCP segment. Port rewrites keep the checksum (offset
/// 16) consistent via incremental fixup; TCP has no zero-checksum escape.
#[derive(Debug)]
pub struct TcpViewMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> TcpViewMut<'a> {
    /// Validates exactly like [`TcpView::parse`], then wraps mutably.
    ///
    /// # Errors
    ///
    /// Returns [`ReprError::Truncated`] or [`ReprError::InvalidField`].
    pub fn parse(buf: &'a mut [u8]) -> Result<Self, ReprError> {
        TcpView::parse(&*buf)?;
        Ok(TcpViewMut { buf })
    }

    /// Source port.
    #[must_use]
    pub fn src_port(&self) -> u16 {
        read_u16_be(self.buf, 0).expect("validated length")
    }

    /// Destination port.
    #[must_use]
    pub fn dst_port(&self) -> u16 {
        read_u16_be(self.buf, 2).expect("validated length")
    }

    /// TCP checksum field.
    #[must_use]
    pub fn checksum(&self) -> u16 {
        read_u16_be(self.buf, 16).expect("validated length")
    }

    /// Rewrites the source port with incremental checksum fixup.
    pub fn set_src_port(&mut self, port: u16) {
        self.set_port(0, port);
    }

    /// Rewrites the destination port with incremental checksum fixup.
    pub fn set_dst_port(&mut self, port: u16) {
        self.set_port(2, port);
    }

    fn set_port(&mut self, offset: usize, port: u16) {
        let old = read_u16_be(self.buf, offset).expect("validated length");
        if old == port {
            return;
        }
        write_u16_be(self.buf, offset, port).expect("validated length");
        let ck = read_u16_be(self.buf, 16).expect("validated length");
        write_u16_be(self.buf, 16, checksum_fixup16(ck, old, port)).expect("validated length");
    }
}

/// Builds well-formed Ethernet/IPv4/{UDP,TCP} packets for tests, examples,
/// and workload generators; lengths and the IPv4 checksum are computed.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    protocol: u8,
    src_mac: [u8; 6],
    dst_mac: [u8; 6],
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    ttl: u8,
    tcp_flags: u8,
    seq: u32,
    ack_no: u32,
    payload: Vec<u8>,
    corrupt_checksum: bool,
    transport_checksum: bool,
}

impl PacketBuilder {
    /// Starts a UDP packet with loopback-ish defaults.
    #[must_use]
    pub fn udp() -> Self {
        Self::with_protocol(IPPROTO_UDP)
    }

    /// Starts a TCP packet with loopback-ish defaults.
    #[must_use]
    pub fn tcp() -> Self {
        Self::with_protocol(IPPROTO_TCP)
    }

    fn with_protocol(protocol: u8) -> Self {
        PacketBuilder {
            protocol,
            src_mac: [2, 0, 0, 0, 0, 1],
            dst_mac: [2, 0, 0, 0, 0, 2],
            src_ip: [127, 0, 0, 1],
            dst_ip: [127, 0, 0, 1],
            src_port: 10_000,
            dst_port: 10_001,
            ttl: 64,
            tcp_flags: TCP_ACK,
            seq: 0,
            ack_no: 0,
            payload: Vec::new(),
            corrupt_checksum: false,
            transport_checksum: false,
        }
    }

    /// Sets the source IP address.
    #[must_use]
    pub fn src_ip(mut self, ip: [u8; 4]) -> Self {
        self.src_ip = ip;
        self
    }

    /// Sets the destination IP address.
    #[must_use]
    pub fn dst_ip(mut self, ip: [u8; 4]) -> Self {
        self.dst_ip = ip;
        self
    }

    /// Sets the source port.
    #[must_use]
    pub fn src_port(mut self, p: u16) -> Self {
        self.src_port = p;
        self
    }

    /// Sets the destination port.
    #[must_use]
    pub fn dst_port(mut self, p: u16) -> Self {
        self.dst_port = p;
        self
    }

    /// Sets the IPv4 TTL.
    #[must_use]
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the TCP flag byte (combine the `TCP_*` flag constants; ignored
    /// for UDP). The default is a bare ACK.
    #[must_use]
    pub fn tcp_flags(mut self, flags: u8) -> Self {
        self.tcp_flags = flags;
        self
    }

    /// Sets the TCP sequence number (ignored for UDP).
    #[must_use]
    pub fn seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the TCP acknowledgment number (ignored for UDP).
    #[must_use]
    pub fn ack_no(mut self, ack: u32) -> Self {
        self.ack_no = ack;
        self
    }

    /// Sets the transport payload.
    #[must_use]
    pub fn payload(mut self, p: &[u8]) -> Self {
        self.payload = p.to_vec();
        self
    }

    /// Deliberately corrupts the IPv4 checksum (for failure-injection tests).
    #[must_use]
    pub fn corrupt_checksum(mut self) -> Self {
        self.corrupt_checksum = true;
        self
    }

    /// Also computes the UDP/TCP transport checksum (off by default so
    /// existing byte streams are unchanged; UDP's "not computed" zero is the
    /// default wire form). A computed UDP checksum of 0 is emitted as
    /// `0xFFFF` per RFC 768.
    #[must_use]
    pub fn compute_transport_checksum(mut self) -> Self {
        self.transport_checksum = true;
        self
    }

    /// Produces the raw frame bytes.
    ///
    /// # Panics
    ///
    /// Panics if the payload is too large for a 16-bit IPv4 total length.
    #[must_use]
    pub fn build(&self) -> Vec<u8> {
        let transport_header = if self.protocol == IPPROTO_UDP {
            UDP_HEADER
        } else {
            TCP_MIN_HEADER
        };
        let ip_total = IPV4_MIN_HEADER + transport_header + self.payload.len();
        assert!(
            ip_total <= usize::from(u16::MAX),
            "payload too large for IPv4"
        );
        let mut frame = vec![0u8; ETH_HEADER + ip_total];
        // Ethernet.
        frame[0..6].copy_from_slice(&self.dst_mac);
        frame[6..12].copy_from_slice(&self.src_mac);
        write_u16_be(&mut frame, 12, ETHERTYPE_IPV4).expect("in bounds");
        // IPv4 header.
        let ip = ETH_HEADER;
        frame[ip] = 0x45;
        write_u16_be(
            &mut frame,
            ip + 2,
            u16::try_from(ip_total).expect("checked"),
        )
        .expect("in bounds");
        frame[ip + 8] = self.ttl;
        frame[ip + 9] = self.protocol;
        frame[ip + 12..ip + 16].copy_from_slice(&self.src_ip);
        frame[ip + 16..ip + 20].copy_from_slice(&self.dst_ip);
        let mut ck = internet_checksum(&frame[ip..ip + IPV4_MIN_HEADER]);
        if self.corrupt_checksum {
            ck ^= 0xFFFF;
        }
        write_u16_be(&mut frame, ip + 10, ck).expect("in bounds");
        // Transport header.
        let tp = ip + IPV4_MIN_HEADER;
        if self.protocol == IPPROTO_UDP {
            write_u16_be(&mut frame, tp, self.src_port).expect("in bounds");
            write_u16_be(&mut frame, tp + 2, self.dst_port).expect("in bounds");
            let udp_len = u16::try_from(UDP_HEADER + self.payload.len()).expect("checked");
            write_u16_be(&mut frame, tp + 4, udp_len).expect("in bounds");
        } else {
            write_u16_be(&mut frame, tp, self.src_port).expect("in bounds");
            write_u16_be(&mut frame, tp + 2, self.dst_port).expect("in bounds");
            write_u32_be(&mut frame, tp + 4, self.seq).expect("in bounds");
            write_u32_be(&mut frame, tp + 8, self.ack_no).expect("in bounds");
            frame[tp + 12] = 0x50; // data offset = 5 words
            frame[tp + 13] = self.tcp_flags;
            write_u16_be(&mut frame, tp + 14, 0xFFFF).expect("in bounds");
        }
        frame[tp + transport_header..].copy_from_slice(&self.payload);
        if self.transport_checksum {
            let src = u32::from_be_bytes(self.src_ip);
            let dst = u32::from_be_bytes(self.dst_ip);
            let mut tck = transport_checksum_v4(src, dst, self.protocol, &frame[tp..]);
            if self.protocol == IPPROTO_UDP && tck == 0 {
                tck = 0xFFFF;
            }
            let off = tp + if self.protocol == IPPROTO_UDP { 6 } else { 16 };
            write_u16_be(&mut frame, off, tck).expect("in bounds");
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_udp() -> Vec<u8> {
        PacketBuilder::udp()
            .src_ip([192, 168, 1, 10])
            .dst_ip([192, 168, 1, 20])
            .src_port(1234)
            .dst_port(5678)
            .payload(b"payload!")
            .build()
    }

    #[test]
    fn ethernet_fields_decode() {
        let bytes = sample_udp();
        let eth = EthernetView::parse(&bytes).unwrap();
        assert_eq!(eth.ethertype(), ETHERTYPE_IPV4);
        assert_eq!(eth.src_mac(), [2, 0, 0, 0, 0, 1]);
        assert_eq!(eth.dst_mac(), [2, 0, 0, 0, 0, 2]);
    }

    #[test]
    fn ipv4_fields_decode() {
        let bytes = sample_udp();
        let ip = EthernetView::parse(&bytes).unwrap().ipv4().unwrap();
        assert_eq!(ip.src(), [192, 168, 1, 10]);
        assert_eq!(ip.dst(), [192, 168, 1, 20]);
        assert_eq!(ip.ttl(), 64);
        assert_eq!(ip.protocol(), IPPROTO_UDP);
        assert_eq!(ip.total_len(), 20 + 8 + 8);
        ip.verify_checksum().unwrap();
    }

    #[test]
    fn udp_fields_and_payload_decode() {
        let bytes = sample_udp();
        let udp = EthernetView::parse(&bytes)
            .unwrap()
            .ipv4()
            .unwrap()
            .udp()
            .unwrap();
        assert_eq!(udp.src_port(), 1234);
        assert_eq!(udp.dst_port(), 5678);
        assert_eq!(udp.payload(), b"payload!");
    }

    #[test]
    fn tcp_builder_and_view_agree() {
        let bytes = PacketBuilder::tcp()
            .src_port(80)
            .dst_port(443)
            .payload(b"GET /")
            .build();
        let tcp = EthernetView::parse(&bytes)
            .unwrap()
            .ipv4()
            .unwrap()
            .tcp()
            .unwrap();
        assert_eq!(tcp.src_port(), 80);
        assert_eq!(tcp.dst_port(), 443);
        assert!(tcp.ack_flag());
        assert!(!tcp.syn());
        assert_eq!(tcp.payload(), b"GET /");
    }

    #[test]
    fn corrupted_checksum_is_detected() {
        let bytes = PacketBuilder::udp().corrupt_checksum().build();
        let ip = EthernetView::parse(&bytes).unwrap().ipv4().unwrap();
        assert!(matches!(
            ip.verify_checksum(),
            Err(ReprError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncated_frames_are_rejected_at_every_layer() {
        let bytes = sample_udp();
        assert!(EthernetView::parse(&bytes[..10]).is_err());
        assert!(Ipv4View::parse(&bytes[14..30]).is_err());
        assert!(UdpView::parse(&bytes[34..38]).is_err());
    }

    #[test]
    fn wrong_ip_version_is_rejected() {
        let mut bytes = sample_udp();
        bytes[14] = 0x65; // version 6
        assert!(matches!(
            EthernetView::parse(&bytes).unwrap().ipv4(),
            Err(ReprError::InvalidField {
                field: "version",
                ..
            })
        ));
    }

    #[test]
    fn bad_ihl_is_rejected() {
        let mut bytes = sample_udp();
        bytes[14] = 0x42; // IHL 2 < 5
        assert!(Ipv4View::parse(&bytes[14..]).is_err());
    }

    #[test]
    fn total_len_bounds_payload() {
        let bytes = sample_udp();
        let mut long = bytes.clone();
        long.extend_from_slice(&[0xEE; 16]); // trailing junk beyond total_len
        let ip = EthernetView::parse(&long).unwrap().ipv4().unwrap();
        assert_eq!(ip.payload().len(), 16, "payload must stop at total_len");
    }

    #[test]
    fn lying_total_len_is_rejected() {
        let mut bytes = sample_udp();
        // Claim a total length past the end of the buffer.
        bytes[16] = 0xFF;
        bytes[17] = 0xFF;
        assert!(matches!(
            Ipv4View::parse(&bytes[14..]),
            Err(ReprError::Truncated { .. })
        ));
    }

    #[test]
    fn udp_on_tcp_packet_is_a_type_error() {
        let bytes = PacketBuilder::tcp().build();
        let ip = EthernetView::parse(&bytes).unwrap().ipv4().unwrap();
        assert!(matches!(
            ip.udp(),
            Err(ReprError::InvalidField {
                field: "protocol",
                ..
            })
        ));
    }

    fn transport_checksum_ok(bytes: &[u8]) -> bool {
        // Recompute the transport checksum from scratch; a stored checksum
        // verifies iff the pseudo-header sum over the unmodified segment
        // (checksum field included) folds to zero — same trick as IPv4.
        let ip = EthernetView::parse(bytes).unwrap().ipv4().unwrap();
        let src = u32::from_be_bytes(ip.src());
        let dst = u32::from_be_bytes(ip.dst());
        transport_checksum_v4(src, dst, ip.protocol(), ip.payload()) == 0
    }

    #[test]
    fn dnat_matches_the_two_step_rewrite() {
        // The fused fast path must be byte-identical to set_dst + set_dst_port.
        let build = || {
            PacketBuilder::tcp()
                .src_ip([10, 9, 1, 2])
                .dst_ip([10, 200, 0, 1])
                .src_port(40_000)
                .dst_port(80)
                .payload(b"GET /")
                .compute_transport_checksum()
                .build()
        };
        let mut fused = build();
        let mut stepped = build();
        let mut ip = EthernetViewMut::parse(&mut fused)
            .unwrap()
            .ipv4_mut()
            .unwrap();
        ip.dnat([10, 50, 0, 12], 8080).unwrap();
        let mut ip = EthernetViewMut::parse(&mut stepped)
            .unwrap()
            .ipv4_mut()
            .unwrap();
        ip.set_dst([10, 50, 0, 12]);
        ip.tcp_mut().unwrap().set_dst_port(8080);
        assert_eq!(fused, stepped);
        let ip = EthernetView::parse(&fused).unwrap().ipv4().unwrap();
        ip.verify_checksum().unwrap();
        assert!(transport_checksum_ok(&fused));
    }

    #[test]
    fn snat_matches_the_two_step_rewrite_over_udp() {
        let build = || {
            PacketBuilder::udp()
                .src_ip([10, 50, 0, 11])
                .dst_ip([10, 9, 3, 4])
                .src_port(8080)
                .dst_port(51_000)
                .payload(b"reply")
                .compute_transport_checksum()
                .build()
        };
        let mut fused = build();
        let mut stepped = build();
        let mut ip = EthernetViewMut::parse(&mut fused)
            .unwrap()
            .ipv4_mut()
            .unwrap();
        ip.snat([10, 200, 0, 1], 80).unwrap();
        let mut ip = EthernetViewMut::parse(&mut stepped)
            .unwrap()
            .ipv4_mut()
            .unwrap();
        ip.set_src([10, 200, 0, 1]);
        ip.udp_mut().unwrap().set_src_port(80);
        assert_eq!(fused, stepped);
        assert!(transport_checksum_ok(&fused));
    }

    #[test]
    fn dnat_leaves_udp_zero_checksum_alone() {
        let mut bytes = PacketBuilder::udp()
            .src_ip([10, 9, 1, 2])
            .dst_ip([10, 200, 0, 1])
            .build(); // builder default: UDP checksum not computed (0)
        let mut ip = EthernetViewMut::parse(&mut bytes)
            .unwrap()
            .ipv4_mut()
            .unwrap();
        ip.dnat([10, 50, 0, 10], 8080).unwrap();
        let ip = EthernetView::parse(&bytes).unwrap().ipv4().unwrap();
        ip.verify_checksum().unwrap();
        let udp = ip.udp().unwrap();
        assert_eq!(udp.dst_port(), 8080);
        assert_eq!(udp.checksum(), 0, "zero stays \"not computed\"");
    }

    #[test]
    fn dnat_refuses_non_transport_protocols() {
        let mut bytes = PacketBuilder::with_protocol(1).build(); // ICMP
        let mut ip = EthernetViewMut::parse(&mut bytes)
            .unwrap()
            .ipv4_mut()
            .unwrap();
        assert!(matches!(
            ip.dnat([10, 50, 0, 10], 8080),
            Err(ReprError::InvalidField {
                field: "protocol",
                ..
            })
        ));
    }

    proptest! {
        #[test]
        fn nat_rewrites_keep_both_checksums_verifiable(
            src in any::<u32>(),
            dst in any::<u32>(),
            sport: u16,
            dport: u16,
            new_addr in any::<u32>(),
            new_port: u16,
            to_backend: bool,
            tcp: bool,
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut bytes = if tcp { PacketBuilder::tcp() } else { PacketBuilder::udp() }
                .src_ip(src.to_be_bytes())
                .dst_ip(dst.to_be_bytes())
                .src_port(sport)
                .dst_port(dport)
                .payload(&payload)
                .compute_transport_checksum()
                .build();
            let mut ip = EthernetViewMut::parse(&mut bytes).unwrap().ipv4_mut().unwrap();
            if to_backend {
                ip.dnat(new_addr.to_be_bytes(), new_port).unwrap();
            } else {
                ip.snat(new_addr.to_be_bytes(), new_port).unwrap();
            }
            // Differential check: the rewritten frame re-parses, carries the
            // new endpoint, and both checksums verify from scratch.
            let ip = EthernetView::parse(&bytes).unwrap().ipv4().unwrap();
            ip.verify_checksum().unwrap();
            let (addr, port) = if to_backend {
                let p = if tcp { ip.tcp().unwrap().dst_port() } else { ip.udp().unwrap().dst_port() };
                (ip.dst(), p)
            } else {
                let p = if tcp { ip.tcp().unwrap().src_port() } else { ip.udp().unwrap().src_port() };
                (ip.src(), p)
            };
            prop_assert_eq!(addr, new_addr.to_be_bytes());
            prop_assert_eq!(port, new_port);
            prop_assert!(transport_checksum_ok(&bytes));
        }
    }

    #[test]
    fn decrement_ttl_preserves_checksum() {
        let mut bytes = sample_udp();
        let mut ip = EthernetViewMut::parse(&mut bytes)
            .unwrap()
            .ipv4_mut()
            .unwrap();
        assert_eq!(ip.decrement_ttl().unwrap(), 63);
        let ip = EthernetView::parse(&bytes).unwrap().ipv4().unwrap();
        assert_eq!(ip.ttl(), 63);
        ip.verify_checksum().unwrap();
    }

    #[test]
    fn decrement_ttl_refuses_expired() {
        let mut bytes = PacketBuilder::udp().ttl(0).build();
        let mut ip = EthernetViewMut::parse(&mut bytes)
            .unwrap()
            .ipv4_mut()
            .unwrap();
        assert!(matches!(
            ip.decrement_ttl(),
            Err(ReprError::InvalidField { field: "ttl", .. })
        ));
    }

    #[test]
    fn address_rewrite_fixes_both_checksums() {
        let mut bytes = PacketBuilder::tcp()
            .src_ip([10, 0, 0, 1])
            .dst_ip([192, 0, 2, 80])
            .compute_transport_checksum()
            .build();
        assert!(transport_checksum_ok(&bytes));
        let mut ip = EthernetViewMut::parse(&mut bytes)
            .unwrap()
            .ipv4_mut()
            .unwrap();
        ip.set_dst([203, 0, 113, 7]);
        ip.tcp_mut().unwrap().set_dst_port(8080);
        let ip = EthernetView::parse(&bytes).unwrap().ipv4().unwrap();
        assert_eq!(ip.dst(), [203, 0, 113, 7]);
        assert_eq!(ip.tcp().unwrap().dst_port(), 8080);
        ip.verify_checksum().unwrap();
        assert!(transport_checksum_ok(&bytes));
    }

    #[test]
    fn udp_zero_checksum_is_left_alone_by_rewrite() {
        // Builder default leaves the UDP checksum at 0 ("not computed").
        let mut bytes = sample_udp();
        let mut ip = EthernetViewMut::parse(&mut bytes)
            .unwrap()
            .ipv4_mut()
            .unwrap();
        ip.set_dst([203, 0, 113, 7]);
        ip.udp_mut().unwrap().set_dst_port(4242);
        let udp = EthernetView::parse(&bytes)
            .unwrap()
            .ipv4()
            .unwrap()
            .udp()
            .unwrap();
        assert_eq!(udp.checksum(), 0, "zero checksum must survive rewrite");
        assert_eq!(udp.dst_port(), 4242);
    }

    proptest! {
        /// Any payload round-trips through build + parse.
        #[test]
        fn udp_payload_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
            let bytes = PacketBuilder::udp().payload(&payload).build();
            let udp = EthernetView::parse(&bytes).unwrap().ipv4().unwrap().udp().unwrap();
            prop_assert_eq!(udp.payload(), &payload[..]);
        }

        /// Built packets always carry a valid IPv4 checksum.
        #[test]
        fn built_checksums_verify(src: [u8; 4], dst: [u8; 4], ttl: u8) {
            let bytes = PacketBuilder::udp().src_ip(src).dst_ip(dst).ttl(ttl).build();
            let ip = EthernetView::parse(&bytes).unwrap().ipv4().unwrap();
            prop_assert!(ip.verify_checksum().is_ok());
        }

        /// The parser never panics on arbitrary bytes (total parsing).
        #[test]
        fn parser_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            if let Ok(eth) = EthernetView::parse(&bytes) {
                if let Ok(ip) = eth.ipv4() {
                    let _ = ip.verify_checksum();
                    let _ = ip.udp();
                    let _ = ip.tcp();
                    let _ = ip.payload();
                }
            }
        }
    }
}
