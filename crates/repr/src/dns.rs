//! DNS message parsing — the LangSec stress test.
//!
//! DNS is the canonical example in the LangSec literature (Bratus et al.,
//! "The Bugs We Have to Kill") of a format whose naive parsers are
//! exploitable: domain-name *compression pointers* turn the name field into
//! a little control-flow graph, and unbounded or cyclic pointer chases have
//! caused real-world infinite loops and overreads. This parser is total:
//! pointer chases are bounded, may only point *backwards*, and every length
//! is validated before use.

use crate::endian::read_u16_be;
use crate::ReprError;

/// Maximum length of a decoded domain name (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;
/// Maximum compression-pointer hops we will follow.
pub const MAX_POINTER_HOPS: usize = 32;

/// A parsed DNS header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsHeader {
    /// Transaction id.
    pub id: u16,
    /// True for responses.
    pub is_response: bool,
    /// Opcode (0 = standard query).
    pub opcode: u8,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Response code.
    pub rcode: u8,
    /// Question count.
    pub qdcount: u16,
    /// Answer count.
    pub ancount: u16,
    /// Authority count.
    pub nscount: u16,
    /// Additional count.
    pub arcount: u16,
}

/// One parsed question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuestion {
    /// Decoded, dot-joined name (lowercase preserved as transmitted).
    pub name: String,
    /// Query type (1 = A, 28 = AAAA, ...).
    pub qtype: u16,
    /// Query class (1 = IN).
    pub qclass: u16,
}

/// One parsed resource record (header only; rdata kept raw).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRecord {
    /// Decoded owner name.
    pub name: String,
    /// Record type.
    pub rtype: u16,
    /// Record class.
    pub rclass: u16,
    /// Time to live.
    pub ttl: u32,
    /// Raw rdata bytes.
    pub rdata: Vec<u8>,
}

/// A parsed DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// The header.
    pub header: DnsHeader,
    /// Questions.
    pub questions: Vec<DnsQuestion>,
    /// Answer records.
    pub answers: Vec<DnsRecord>,
}

fn truncated(needed: usize, got: usize) -> ReprError {
    ReprError::Truncated { needed, got }
}

/// Decodes a (possibly compressed) domain name starting at `pos`.
/// Returns the name and the offset just past the name's *inline* portion.
///
/// # Errors
///
/// Rejects forward or cyclic pointers, over-long names, and truncation —
/// every classic DNS parser CVE shape.
pub fn decode_name(buf: &[u8], pos: usize) -> Result<(String, usize), ReprError> {
    let mut name = String::new();
    let mut cursor = pos;
    let mut inline_end: Option<usize> = None;
    let mut hops = 0;
    loop {
        let &len_byte = buf
            .get(cursor)
            .ok_or_else(|| truncated(cursor + 1, buf.len()))?;
        match len_byte {
            0 => {
                let end = inline_end.unwrap_or(cursor + 1);
                return Ok((name, end));
            }
            l if l & 0xC0 == 0xC0 => {
                // Compression pointer: 14-bit offset, must point backwards.
                let ptr = read_u16_be(buf, cursor)? & 0x3FFF;
                let target = usize::from(ptr);
                if target >= cursor {
                    return Err(ReprError::InvalidField {
                        field: "compression pointer (forward or self)",
                        value: u64::from(ptr),
                    });
                }
                hops += 1;
                if hops > MAX_POINTER_HOPS {
                    return Err(ReprError::InvalidField {
                        field: "compression pointer chain",
                        value: hops as u64,
                    });
                }
                if inline_end.is_none() {
                    inline_end = Some(cursor + 2);
                }
                cursor = target;
            }
            l if l & 0xC0 != 0 => {
                return Err(ReprError::InvalidField {
                    field: "label length (reserved bits)",
                    value: u64::from(l),
                })
            }
            l => {
                let l = usize::from(l);
                let start = cursor + 1;
                let end = start + l;
                let label = buf
                    .get(start..end)
                    .ok_or_else(|| truncated(end, buf.len()))?;
                if !name.is_empty() {
                    name.push('.');
                }
                // Labels are bytes; keep printable ASCII, escape the rest.
                for &b in label {
                    if b.is_ascii_graphic() && b != b'.' {
                        name.push(char::from(b));
                    } else {
                        name.push_str(&format!("\\{b:03}"));
                    }
                }
                if name.len() > MAX_NAME_LEN {
                    return Err(ReprError::InvalidField {
                        field: "name length",
                        value: name.len() as u64,
                    });
                }
                cursor = end;
            }
        }
    }
}

/// Parses a DNS message.
///
/// # Errors
///
/// Total: any malformation yields a typed [`ReprError`]; no input can cause
/// a panic, loop, or overread (the property tests drive arbitrary bytes).
pub fn parse_message(buf: &[u8]) -> Result<DnsMessage, ReprError> {
    if buf.len() < 12 {
        return Err(truncated(12, buf.len()));
    }
    let flags = read_u16_be(buf, 2)?;
    let header = DnsHeader {
        id: read_u16_be(buf, 0)?,
        is_response: flags & 0x8000 != 0,
        opcode: u8::try_from((flags >> 11) & 0xF).expect("4 bits"),
        recursion_desired: flags & 0x0100 != 0,
        rcode: u8::try_from(flags & 0xF).expect("4 bits"),
        qdcount: read_u16_be(buf, 4)?,
        ancount: read_u16_be(buf, 6)?,
        nscount: read_u16_be(buf, 8)?,
        arcount: read_u16_be(buf, 10)?,
    };
    // Refuse absurd counts early (amplification guard): a 12-byte header
    // cannot be followed by more entries than bytes.
    let claimed = usize::from(header.qdcount) + usize::from(header.ancount);
    if claimed > buf.len() {
        return Err(ReprError::InvalidField {
            field: "entry counts",
            value: claimed as u64,
        });
    }
    let mut pos = 12;
    let mut questions = Vec::with_capacity(usize::from(header.qdcount).min(64));
    for _ in 0..header.qdcount {
        let (name, next) = decode_name(buf, pos)?;
        let qtype = read_u16_be(buf, next)?;
        let qclass = read_u16_be(buf, next + 2)?;
        questions.push(DnsQuestion {
            name,
            qtype,
            qclass,
        });
        pos = next + 4;
    }
    let mut answers = Vec::with_capacity(usize::from(header.ancount).min(64));
    for _ in 0..header.ancount {
        let (name, next) = decode_name(buf, pos)?;
        let rtype = read_u16_be(buf, next)?;
        let rclass = read_u16_be(buf, next + 2)?;
        let ttl_hi = read_u16_be(buf, next + 4)?;
        let ttl_lo = read_u16_be(buf, next + 6)?;
        let rdlength = usize::from(read_u16_be(buf, next + 8)?);
        let rdata_start = next + 10;
        let rdata_end = rdata_start + rdlength;
        let rdata = buf
            .get(rdata_start..rdata_end)
            .ok_or_else(|| truncated(rdata_end, buf.len()))?
            .to_vec();
        answers.push(DnsRecord {
            name,
            rtype,
            rclass,
            ttl: (u32::from(ttl_hi) << 16) | u32::from(ttl_lo),
            rdata,
        });
        pos = rdata_end;
    }
    Ok(DnsMessage {
        header,
        questions,
        answers,
    })
}

/// Builds a simple query message (for tests and examples).
#[must_use]
pub fn build_query(id: u16, name: &str, qtype: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + name.len() + 6);
    out.extend_from_slice(&id.to_be_bytes());
    out.extend_from_slice(&0x0100u16.to_be_bytes()); // RD set
    out.extend_from_slice(&1u16.to_be_bytes()); // qdcount
    out.extend_from_slice(&[0; 6]); // an/ns/ar
    for label in name.split('.').filter(|l| !l.is_empty()) {
        out.push(u8::try_from(label.len()).expect("label fits"));
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
    out.extend_from_slice(&qtype.to_be_bytes());
    out.extend_from_slice(&1u16.to_be_bytes()); // IN
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn query_roundtrip() {
        let bytes = build_query(0x1234, "example.com", 1);
        let msg = parse_message(&bytes).unwrap();
        assert_eq!(msg.header.id, 0x1234);
        assert!(!msg.header.is_response);
        assert!(msg.header.recursion_desired);
        assert_eq!(msg.header.qdcount, 1);
        assert_eq!(msg.questions[0].name, "example.com");
        assert_eq!(msg.questions[0].qtype, 1);
        assert_eq!(msg.questions[0].qclass, 1);
    }

    /// A response with a compressed answer name pointing back at the
    /// question name (the normal, legitimate use of compression).
    fn response_with_compression() -> Vec<u8> {
        let mut b = build_query(7, "a.io", 1);
        // Mark as response with one answer.
        b[2] = 0x81; // QR + RD
        b[7] = 1; // ancount = 1
                  // Answer: pointer to offset 12 (question name), A record, rdata 4B.
        b.extend_from_slice(&[0xC0, 12]); // name = pointer
        b.extend_from_slice(&1u16.to_be_bytes()); // type A
        b.extend_from_slice(&1u16.to_be_bytes()); // class IN
        b.extend_from_slice(&300u32.to_be_bytes()); // ttl
        b.extend_from_slice(&4u16.to_be_bytes()); // rdlength
        b.extend_from_slice(&[93, 184, 216, 34]);
        b
    }

    #[test]
    fn compressed_answer_names_decode() {
        let msg = parse_message(&response_with_compression()).unwrap();
        assert_eq!(msg.answers.len(), 1);
        assert_eq!(msg.answers[0].name, "a.io");
        assert_eq!(msg.answers[0].ttl, 300);
        assert_eq!(msg.answers[0].rdata, vec![93, 184, 216, 34]);
    }

    #[test]
    fn forward_pointers_are_rejected() {
        let mut b = build_query(7, "a.io", 1);
        // Replace the name with a pointer to itself (offset 12 at pos 12).
        b[12] = 0xC0;
        b[13] = 12;
        // Now the name at 12 points to 12: self-pointer, must be rejected
        // (this exact shape caused real-world infinite loops).
        let err = parse_message(&b[..]).unwrap_err();
        assert!(matches!(err, ReprError::InvalidField { .. }), "{err}");
    }

    #[test]
    fn pointer_loops_via_backward_chain_terminate() {
        // p1 at 14 -> 12, p0 at 12 is a label "x" then pointer to... build a
        // two-step backward chain that is legal and terminates.
        let mut b = build_query(7, "xy.z", 1);
        b[7] = 0; // ancount 0; just reparse the question
        let msg = parse_message(&b).unwrap();
        assert_eq!(msg.questions[0].name, "xy.z");
    }

    #[test]
    fn overlong_names_are_rejected() {
        // 50 labels of 10 chars = 550 chars > 255.
        let name = vec!["abcdefghij"; 50].join(".");
        let b = build_query(1, &name, 1);
        let err = parse_message(&b).unwrap_err();
        assert!(
            matches!(
                err,
                ReprError::InvalidField {
                    field: "name length",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn truncated_messages_are_rejected_at_every_stage() {
        let b = response_with_compression();
        for cut in [0, 5, 11, 13, 20, b.len() - 1] {
            assert!(parse_message(&b[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        let mut b = build_query(1, "a.b", 1);
        b[4] = 0xFF; // qdcount = 0xFF01
        b[5] = 0x01;
        assert!(matches!(
            parse_message(&b),
            Err(ReprError::InvalidField {
                field: "entry counts",
                ..
            })
        ));
    }

    #[test]
    fn reserved_label_bits_are_rejected() {
        let mut b = build_query(1, "ok", 1);
        b[12] = 0x80; // 10xxxxxx reserved
        assert!(parse_message(&b).is_err());
    }

    #[test]
    fn non_ascii_labels_are_escaped_not_trusted() {
        let mut b = build_query(1, "x", 1);
        b[13] = 0x07; // label byte becomes control char... rebuild properly:
        let mut raw = vec![];
        raw.extend_from_slice(&1u16.to_be_bytes());
        raw.extend_from_slice(&0u16.to_be_bytes());
        raw.extend_from_slice(&1u16.to_be_bytes());
        raw.extend_from_slice(&[0; 6]);
        raw.extend_from_slice(&[2, 0x07, b'a', 0]); // label = {BEL, 'a'}
        raw.extend_from_slice(&1u16.to_be_bytes());
        raw.extend_from_slice(&1u16.to_be_bytes());
        let msg = parse_message(&raw).unwrap();
        assert_eq!(msg.questions[0].name, "\\007a");
    }

    proptest! {
        /// Totality: arbitrary bytes never panic, loop, or overread.
        #[test]
        fn parser_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = parse_message(&bytes);
        }

        /// Any name built from valid labels round-trips.
        #[test]
        fn name_roundtrip(labels in proptest::collection::vec("[a-z]{1,10}", 1..6)) {
            let name = labels.join(".");
            let b = build_query(9, &name, 28);
            let msg = parse_message(&b).unwrap();
            prop_assert_eq!(&msg.questions[0].name, &name);
            prop_assert_eq!(msg.questions[0].qtype, 28);
        }

        /// Mutating one byte of a valid message never panics and, if it
        /// still parses, the parse is internally consistent.
        #[test]
        fn single_byte_corruption_is_handled(idx in 0usize..40, val: u8) {
            let mut b = response_with_compression();
            if idx < b.len() {
                b[idx] = val;
            }
            if let Ok(msg) = parse_message(&b) {
                prop_assert!(msg.questions.len() == usize::from(msg.header.qdcount));
            }
        }
    }
}
