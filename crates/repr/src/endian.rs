//! Explicit byte-order conversion helpers.
//!
//! C leaves byte order to convention (`ntohs` sprinkled by hand); a systems
//! language should make the order part of the access. These helpers are the
//! primitive layer used by [`crate::packet`] and [`crate::layout`].

use crate::ReprError;

macro_rules! read_write {
    ($read_be:ident, $write_be:ident, $read_le:ident, $write_le:ident, $t:ty) => {
        /// Reads a big-endian value at `off`.
        ///
        /// # Errors
        ///
        /// Returns [`ReprError::Truncated`] if the buffer is too short.
        pub fn $read_be(buf: &[u8], off: usize) -> Result<$t, ReprError> {
            let n = std::mem::size_of::<$t>();
            let end = off.checked_add(n).ok_or(ReprError::Truncated {
                needed: usize::MAX,
                got: buf.len(),
            })?;
            let slice = buf.get(off..end).ok_or(ReprError::Truncated {
                needed: end,
                got: buf.len(),
            })?;
            Ok(<$t>::from_be_bytes(
                slice.try_into().expect("length checked"),
            ))
        }

        /// Writes a big-endian value at `off`.
        ///
        /// # Errors
        ///
        /// Returns [`ReprError::Truncated`] if the buffer is too short.
        pub fn $write_be(buf: &mut [u8], off: usize, v: $t) -> Result<(), ReprError> {
            let n = std::mem::size_of::<$t>();
            let end = off.checked_add(n).ok_or(ReprError::Truncated {
                needed: usize::MAX,
                got: buf.len(),
            })?;
            let len = buf.len();
            let slice = buf.get_mut(off..end).ok_or(ReprError::Truncated {
                needed: end,
                got: len,
            })?;
            slice.copy_from_slice(&v.to_be_bytes());
            Ok(())
        }

        /// Reads a little-endian value at `off`.
        ///
        /// # Errors
        ///
        /// Returns [`ReprError::Truncated`] if the buffer is too short.
        pub fn $read_le(buf: &[u8], off: usize) -> Result<$t, ReprError> {
            let n = std::mem::size_of::<$t>();
            let end = off.checked_add(n).ok_or(ReprError::Truncated {
                needed: usize::MAX,
                got: buf.len(),
            })?;
            let slice = buf.get(off..end).ok_or(ReprError::Truncated {
                needed: end,
                got: buf.len(),
            })?;
            Ok(<$t>::from_le_bytes(
                slice.try_into().expect("length checked"),
            ))
        }

        /// Writes a little-endian value at `off`.
        ///
        /// # Errors
        ///
        /// Returns [`ReprError::Truncated`] if the buffer is too short.
        pub fn $write_le(buf: &mut [u8], off: usize, v: $t) -> Result<(), ReprError> {
            let n = std::mem::size_of::<$t>();
            let end = off.checked_add(n).ok_or(ReprError::Truncated {
                needed: usize::MAX,
                got: buf.len(),
            })?;
            let len = buf.len();
            let slice = buf.get_mut(off..end).ok_or(ReprError::Truncated {
                needed: end,
                got: len,
            })?;
            slice.copy_from_slice(&v.to_le_bytes());
            Ok(())
        }
    };
}

read_write!(read_u16_be, write_u16_be, read_u16_le, write_u16_le, u16);
read_write!(read_u32_be, write_u32_be, read_u32_le, write_u32_le, u32);
read_write!(read_u64_be, write_u64_be, read_u64_le, write_u64_le, u64);

/// Computes the Internet checksum (RFC 1071) over `data`.
///
/// Used by IPv4 headers and UDP/TCP pseudo-header checksums.
#[must_use]
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !u16::try_from(sum).expect("folded to 16 bits")
}

/// Incrementally updates an Internet checksum after one 16-bit word of the
/// covered data changed from `old` to `new` (RFC 1624, eqn. 3):
/// `HC' = ~(~HC + ~m + m')`.
///
/// `check` is the checksum as stored in the header (already complemented).
/// The returned value is likewise ready to store. Folding is done in a
/// `u32` accumulator so a chain of fixups never loses carries.
#[must_use]
pub fn checksum_fixup16(check: u16, old: u16, new: u16) -> u16 {
    let mut sum = u32::from(!check) + u32::from(!old) + u32::from(new);
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !u16::try_from(sum).expect("folded to 16 bits")
}

/// Incrementally updates an Internet checksum after a 32-bit field (e.g. an
/// IPv4 address) changed from `old` to `new`, by applying
/// [`checksum_fixup16`] to each 16-bit half.
#[must_use]
pub fn checksum_fixup32(check: u16, old: u32, new: u32) -> u16 {
    let check = checksum_fixup16(check, (old >> 16) as u16, (new >> 16) as u16);
    checksum_fixup16(check, old as u16, new as u16)
}

/// Computes a full IPv4 transport checksum (RFC 768 / RFC 793): the
/// pseudo-header of `src`/`dst`/`proto`/segment-length, followed by the
/// transport `segment` itself (header + payload, checksum field zeroed by
/// the caller).
///
/// Used by tests and builders as the from-scratch reference the incremental
/// fixups are checked against.
#[must_use]
pub fn transport_checksum_v4(src: u32, dst: u32, proto: u8, segment: &[u8]) -> u16 {
    let mut pseudo = Vec::with_capacity(12 + segment.len());
    pseudo.extend_from_slice(&src.to_be_bytes());
    pseudo.extend_from_slice(&dst.to_be_bytes());
    pseudo.push(0);
    pseudo.push(proto);
    let len = u16::try_from(segment.len()).expect("segment fits u16");
    pseudo.extend_from_slice(&len.to_be_bytes());
    pseudo.extend_from_slice(segment);
    internet_checksum(&pseudo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn be_and_le_reads_disagree_as_expected() {
        let buf = [0x12, 0x34];
        assert_eq!(read_u16_be(&buf, 0).unwrap(), 0x1234);
        assert_eq!(read_u16_le(&buf, 0).unwrap(), 0x3412);
    }

    #[test]
    fn truncated_reads_are_rejected() {
        let buf = [0u8; 3];
        assert!(matches!(
            read_u32_be(&buf, 0),
            Err(ReprError::Truncated { .. })
        ));
        assert!(matches!(
            read_u16_be(&buf, 2),
            Err(ReprError::Truncated { .. })
        ));
    }

    #[test]
    fn write_then_read_u64() {
        let mut buf = [0u8; 10];
        write_u64_be(&mut buf, 1, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(read_u64_be(&buf, 1).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn offset_overflow_is_rejected() {
        let mut buf = [0u8; 4];
        assert!(read_u16_be(&buf, usize::MAX).is_err());
        assert!(write_u16_be(&mut buf, usize::MAX, 0).is_err());
    }

    #[test]
    fn rfc1071_example_checksum() {
        // Classic example from RFC 1071 §3.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_of_odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00);
    }

    #[test]
    fn checksum_verifies_to_zero_when_embedded() {
        // A buffer whose checksum field is filled in verifies to 0.
        let mut h = vec![
            0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00, 0x40, 0x11, 0x00, 0x00,
        ];
        h.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let ck = internet_checksum(&h);
        h[10] = (ck >> 8) as u8;
        h[11] = (ck & 0xff) as u8;
        assert_eq!(internet_checksum(&h), 0);
    }

    #[test]
    fn fixup16_matches_recompute() {
        // Recompute-from-scratch vs incremental fixup on a header edit.
        let mut h = vec![
            0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00, 0x40, 0x11, 0x00, 0x00, 10, 0, 0, 1,
            10, 0, 0, 2,
        ];
        let ck = internet_checksum(&h);
        h[10] = (ck >> 8) as u8;
        h[11] = (ck & 0xff) as u8;
        // Change TTL/proto word 0x4011 -> 0x3f11.
        let fixed = checksum_fixup16(ck, 0x4011, 0x3f11);
        h[8] = 0x3f;
        h[10] = 0;
        h[11] = 0;
        assert_eq!(fixed, internet_checksum(&h));
    }

    proptest! {
        #[test]
        fn fixup16_agrees_with_full_recompute(words in proptest::collection::vec(any::<u16>(), 2..16), idx in 0usize..16, new: u16) {
            let idx = idx % words.len();
            let flat = |ws: &[u16]| ws.iter().flat_map(|w| w.to_be_bytes()).collect::<Vec<u8>>();
            let ck = internet_checksum(&flat(&words));
            let mut edited = words.clone();
            edited[idx] = new;
            let fixed = checksum_fixup16(ck, words[idx], new);
            prop_assert_eq!(fixed, internet_checksum(&flat(&edited)));
        }

        #[test]
        fn fixup32_agrees_with_full_recompute(a: u32, b: u32, new: u32) {
            let flat = |x: u32, y: u32| {
                let mut v = x.to_be_bytes().to_vec();
                v.extend_from_slice(&y.to_be_bytes());
                v
            };
            let ck = internet_checksum(&flat(a, b));
            let fixed = checksum_fixup32(ck, b, new);
            prop_assert_eq!(fixed, internet_checksum(&flat(a, new)));
        }

        #[test]
        fn u32_roundtrip_be(v: u32, off in 0usize..8) {
            let mut buf = [0u8; 12];
            write_u32_be(&mut buf, off, v).unwrap();
            prop_assert_eq!(read_u32_be(&buf, off).unwrap(), v);
        }

        #[test]
        fn u16_roundtrip_le(v: u16, off in 0usize..8) {
            let mut buf = [0u8; 10];
            write_u16_le(&mut buf, off, v).unwrap();
            prop_assert_eq!(read_u16_le(&buf, off).unwrap(), v);
        }
    }
}
