//! Adversarial property tests for the TCP view: the conntrack layer's
//! parse surface under attacker-controlled bytes.
//!
//! The flow table promotes segments to state-machine events straight off
//! [`TcpView`], so a SYN flood is also a parser flood: every byte of the
//! TCP header is attacker-chosen. The LangSec contract here is total
//! parsing — for *any* input, `parse` either yields a view whose every
//! accessor is in-bounds or returns a typed [`ReprError`]. No panic, no
//! out-of-range slice, no accessor that works on one valid view but not
//! another.

use proptest::prelude::*;
use sysrepr::packet::{EthernetView, PacketBuilder, TcpView, TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN};

/// Exercises every accessor of a successfully parsed view. Each call
/// indexes into the buffer; any latent off-by-one panics here, inside
/// the proptest harness, with the failing bytes minimized.
fn drain_accessors(v: &TcpView<'_>, buf_len: usize) {
    let _ = v.src_port();
    let _ = v.dst_port();
    let _ = v.seq();
    let _ = v.ack();
    let _ = (v.syn(), v.ack_flag(), v.fin(), v.rst());
    let _ = v.window();
    // The payload is everything after the (validated) data offset, so the
    // two lengths must tile the segment exactly.
    assert!(v.payload().len() <= buf_len);
}

proptest! {
    /// Raw fuzz: arbitrary byte strings, including lengths straddling the
    /// 20-byte minimum header and data offsets pointing past the buffer.
    #[test]
    fn parse_is_total_on_arbitrary_bytes(buf in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Typed rejection is the other half of the contract; only a panic
        // or a hang can fail this property.
        if let Ok(v) = TcpView::parse(&buf) {
            drain_accessors(&v, buf.len());
        }
    }

    /// Structured fuzz biased at the interesting boundary: a plausible
    /// header whose data-offset nibble is fully adversarial. Offsets < 5
    /// words must be rejected as InvalidField, offsets past the buffer as
    /// Truncated; everything else must parse.
    #[test]
    fn data_offset_boundary_is_enforced(
        mut header in proptest::collection::vec(any::<u8>(), 20..80),
        offset_words in 0u8..=15,
    ) {
        header[12] = (header[12] & 0x0F) | (offset_words << 4);
        let data_offset = usize::from(offset_words) * 4;
        match TcpView::parse(&header) {
            Ok(v) => {
                prop_assert!(data_offset >= 20 && data_offset <= header.len());
                prop_assert_eq!(v.payload().len(), header.len() - data_offset);
            }
            Err(e) => {
                prop_assert!(
                    data_offset < 20 || data_offset > header.len(),
                    "rejected a valid offset {} (len {}): {}",
                    data_offset, header.len(), e
                );
            }
        }
    }

    /// Truncation sweep over well-formed segments: a builder-produced TCP
    /// frame cut at every length and bit-flipped at one position must
    /// never panic anywhere in the Ethernet → IPv4 → TCP view stack.
    #[test]
    fn mutated_real_frames_never_panic(
        cut in 0usize..96,
        flip_at in 0usize..96,
        flip_bits in 1u8..=255,
        flags in prop_oneof![
            Just(TCP_SYN), Just(TCP_SYN | TCP_ACK), Just(TCP_ACK),
            Just(TCP_FIN | TCP_ACK), Just(TCP_RST), any::<u8>(),
        ],
        seq in any::<u32>(),
        ack_no in any::<u32>(),
    ) {
        let mut frame = PacketBuilder::tcp()
            .src_ip([172, 16, 0, 9])
            .dst_ip([10, 0, 0, 1])
            .src_port(49152)
            .dst_port(443)
            .tcp_flags(flags)
            .seq(seq)
            .ack_no(ack_no)
            .payload(&[0xC5; 16])
            .build();
        frame.truncate(cut.min(frame.len()));
        if flip_at < frame.len() {
            frame[flip_at] ^= flip_bits;
        }
        // Every layer either parses or returns; `?`-style chaining is what
        // the pipeline's validate step does per packet.
        if let Ok(eth) = EthernetView::parse(&frame) {
            if let Ok(ip) = eth.ipv4() {
                let _ = ip.verify_checksum();
                if let Ok(tcp) = ip.tcp() {
                    drain_accessors(&tcp, ip.payload().len());
                }
            }
        }
    }

    /// Round-trip: builder fields survive the view unharmed, for all flag
    /// combinations and sequence-space corners.
    #[test]
    fn builder_fields_round_trip_through_the_view(
        flags in any::<u8>(),
        seq in any::<u32>(),
        ack_no in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload_len in 0usize..64,
    ) {
        let payload = vec![0xA7u8; payload_len];
        let frame = PacketBuilder::tcp()
            .src_ip([192, 168, 1, 2])
            .dst_ip([10, 1, 2, 3])
            .src_port(sport)
            .dst_port(dport)
            .tcp_flags(flags)
            .seq(seq)
            .ack_no(ack_no)
            .payload(&payload)
            .build();
        let tcp = EthernetView::parse(&frame)
            .and_then(|e| e.ipv4())
            .and_then(|ip| ip.tcp())
            .expect("builder output must parse");
        prop_assert_eq!(tcp.src_port(), sport);
        prop_assert_eq!(tcp.dst_port(), dport);
        prop_assert_eq!(tcp.seq(), seq);
        prop_assert_eq!(tcp.ack(), ack_no);
        prop_assert_eq!(tcp.syn(), flags & TCP_SYN != 0);
        prop_assert_eq!(tcp.ack_flag(), flags & TCP_ACK != 0);
        prop_assert_eq!(tcp.fin(), flags & TCP_FIN != 0);
        prop_assert_eq!(tcp.rst(), flags & TCP_RST != 0);
        prop_assert_eq!(tcp.payload(), &payload[..]);
    }
}
