//! Adversarial tests for NAT rewrite checksum handling — the UDP
//! zero-checksum corner in particular.
//!
//! RFC 768 gives UDP a two-faced checksum field: a transmitted 0 means "no
//! checksum was computed", and a *computed* checksum that folds to zero must
//! be sent as `0xFFFF` (the other one's-complement representation of zero).
//! A NAT that forgets either rule silently converts "valid checksum" into
//! "no checksum" — or corrupts datagrams that legitimately opted out. These
//! tests drive the mutable views through both traps.

use sysrepr::endian::{checksum_fixup16, checksum_fixup32, transport_checksum_v4};
use sysrepr::packet::{EthernetView, EthernetViewMut, PacketBuilder, IPPROTO_UDP};

/// Recomputes the transport checksum from scratch over the rewritten bytes;
/// a stored checksum is valid iff the pseudo-header sum (checksum field
/// included) folds to zero.
fn udp_checksum_verifies(bytes: &[u8]) -> bool {
    let ip = EthernetView::parse(bytes).unwrap().ipv4().unwrap();
    let src = u32::from_be_bytes(ip.src());
    let dst = u32::from_be_bytes(ip.dst());
    transport_checksum_v4(src, dst, IPPROTO_UDP, ip.payload()) == 0
}

fn stored_udp_checksum(bytes: &[u8]) -> u16 {
    EthernetView::parse(bytes)
        .unwrap()
        .ipv4()
        .unwrap()
        .udp()
        .unwrap()
        .checksum()
}

#[test]
fn zero_checksum_datagram_is_never_fixed_up() {
    // Builder default: UDP checksum left at 0 ("not computed").
    let mut bytes = PacketBuilder::udp()
        .src_ip([10, 0, 0, 9])
        .dst_ip([192, 0, 2, 80])
        .src_port(40_000)
        .dst_port(53)
        .payload(b"query")
        .build();
    let mut ip = EthernetViewMut::parse(&mut bytes)
        .unwrap()
        .ipv4_mut()
        .unwrap();
    ip.set_src([198, 51, 100, 1]);
    ip.set_dst([203, 0, 113, 7]);
    ip.udp_mut().unwrap().set_src_port(1);
    ip.udp_mut().unwrap().set_dst_port(65_535);
    assert_eq!(
        stored_udp_checksum(&bytes),
        0,
        "a 'not computed' checksum must stay 0 — any fixup fabricates a \
         checksum the sender never offered"
    );
    // The IPv4 header checksum, by contrast, must track every rewrite.
    EthernetView::parse(&bytes)
        .unwrap()
        .ipv4()
        .unwrap()
        .verify_checksum()
        .unwrap();
}

#[test]
fn port_fixup_landing_on_zero_emits_ffff() {
    let mut bytes = PacketBuilder::udp()
        .src_ip([10, 0, 0, 9])
        .dst_ip([192, 0, 2, 80])
        .dst_port(53)
        .payload(b"x")
        .compute_transport_checksum()
        .build();
    let old_ck = stored_udp_checksum(&bytes);
    assert_ne!(old_ck, 0);
    // Hunt for a destination port whose incremental fixup folds to exactly
    // zero — the case the wire format forbids transmitting as 0x0000.
    let trap = (0u16..=u16::MAX)
        .find(|&p| p != 53 && checksum_fixup16(old_ck, 53, p) == 0)
        .expect("some port folds the checksum to zero");
    let mut ip = EthernetViewMut::parse(&mut bytes)
        .unwrap()
        .ipv4_mut()
        .unwrap();
    ip.udp_mut().unwrap().set_dst_port(trap);
    assert_eq!(
        stored_udp_checksum(&bytes),
        0xFFFF,
        "computed-zero must be transmitted as 0xFFFF, never 0x0000"
    );
    // 0xFFFF is zero in one's-complement arithmetic: verification still holds.
    assert!(udp_checksum_verifies(&bytes));
}

#[test]
fn address_fixup_landing_on_zero_emits_ffff() {
    let mut bytes = PacketBuilder::udp()
        .src_ip([10, 0, 0, 9])
        .dst_ip([192, 0, 2, 80])
        .payload(b"yo")
        .compute_transport_checksum()
        .build();
    let old_ck = stored_udp_checksum(&bytes);
    let old_dst = u32::from_be_bytes([192, 0, 2, 80]);
    // Same trap via a 32-bit address rewrite: search the low half-word.
    let trap = (0u32..=0xFFFF)
        .map(|lo| (old_dst & 0xFFFF_0000) | lo)
        .find(|&ip| ip != old_dst && checksum_fixup32(old_ck, old_dst, ip) == 0)
        .expect("some address folds the checksum to zero");
    let mut ip = EthernetViewMut::parse(&mut bytes)
        .unwrap()
        .ipv4_mut()
        .unwrap();
    ip.set_dst(trap.to_be_bytes());
    assert_eq!(stored_udp_checksum(&bytes), 0xFFFF);
    assert!(udp_checksum_verifies(&bytes));
    EthernetView::parse(&bytes)
        .unwrap()
        .ipv4()
        .unwrap()
        .verify_checksum()
        .unwrap();
}

#[test]
fn ffff_checksum_survives_identity_and_real_rewrites() {
    // 0xFFFF (computed zero) is a legitimate stored value; rewrites must
    // keep treating it as a real checksum, not as "absent".
    let mut bytes = PacketBuilder::udp()
        .src_ip([10, 0, 0, 9])
        .dst_ip([192, 0, 2, 80])
        .dst_port(53)
        .payload(b"x")
        .compute_transport_checksum()
        .build();
    let old_ck = stored_udp_checksum(&bytes);
    let trap = (0u16..=u16::MAX)
        .find(|&p| p != 53 && checksum_fixup16(old_ck, 53, p) == 0)
        .expect("some port folds the checksum to zero");
    {
        let mut ip = EthernetViewMut::parse(&mut bytes)
            .unwrap()
            .ipv4_mut()
            .unwrap();
        ip.udp_mut().unwrap().set_dst_port(trap);
    }
    assert_eq!(stored_udp_checksum(&bytes), 0xFFFF);
    // Now rewrite again: the 0xFFFF must be fixed up, not skipped.
    let mut ip = EthernetViewMut::parse(&mut bytes)
        .unwrap()
        .ipv4_mut()
        .unwrap();
    ip.udp_mut().unwrap().set_dst_port(4242);
    assert_ne!(stored_udp_checksum(&bytes), 0, "never downgraded to absent");
    assert!(udp_checksum_verifies(&bytes));
}

#[test]
fn rewrites_on_computed_checksums_always_verify_and_never_emit_zero() {
    // Exhaustive-ish sweep: many (src, dst, ports) rewrites over datagrams
    // with computed checksums; the invariant is global, not anecdotal.
    let mut failures = 0u32;
    for seed in 0u32..200 {
        let mut bytes = PacketBuilder::udp()
            .src_ip((0x0A00_0000u32 | seed).to_be_bytes())
            .dst_ip([192, 0, 2, (seed % 251) as u8])
            .src_port(1024 + (seed * 7 % 60_000) as u16)
            .dst_port(53)
            .payload(&seed.to_be_bytes())
            .compute_transport_checksum()
            .build();
        let mut ip = EthernetViewMut::parse(&mut bytes)
            .unwrap()
            .ipv4_mut()
            .unwrap();
        ip.set_dst([203, 0, 113, (seed % 97) as u8 + 1]);
        ip.udp_mut()
            .unwrap()
            .set_dst_port(8000 + (seed * 31 % 5_000) as u16);
        if stored_udp_checksum(&bytes) == 0 || !udp_checksum_verifies(&bytes) {
            failures += 1;
        }
    }
    assert_eq!(failures, 0);
}
