//! The unified metrics registry: named counters, gauges, and log-bucketed
//! histograms, snapshotted into one [`Snapshot`] type.
//!
//! Two usage patterns share the machinery:
//!
//! * **ambient** — hot paths bump process-wide metrics through
//!   [`obs_count!`](crate::obs_count) / [`obs_hist!`](crate::obs_hist);
//!   each macro site caches a `&'static` handle in a [`CounterCell`] /
//!   [`HistCell`], so the steady-state cost is one relaxed mode check plus
//!   one relaxed atomic RMW — the registry's name table is only locked on
//!   the first hit per site and on snapshot;
//! * **scoped** — subsystems that own their counters (the router's
//!   per-worker atomics, the kernel's `FaultStats`, a heap's `MemStats`)
//!   render them *into* a [`Snapshot`] value, so every layer reports through
//!   the same type even where a global registry would conflate instances.
//!
//! Handles are leaked `&'static` references: a metric, once named, lives for
//! the process — which is what makes lock-free increments safe to hand out.

use crate::hist::LogHistogram;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// The counter's registered name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (relaxed; totals are exact, ordering is not implied).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a settable signed level (queue depths, live bytes).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    /// The gauge's registered name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may go negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A thread-safe log-bucketed histogram (the registry-resident, atomic twin
/// of [`LogHistogram`]).
#[derive(Debug)]
pub struct AtomicHistogram {
    name: &'static str,
    buckets: [AtomicU64; crate::hist::BUCKETS],
    count: AtomicU64,
    max: AtomicU64,
    total: AtomicU64,
}

impl AtomicHistogram {
    fn new(name: &'static str) -> Self {
        AtomicHistogram {
            name,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// The histogram's registered name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample (relaxed atomics throughout; concurrent recorders
    /// never lose counts, and `max` converges via compare-exchange).
    pub fn record(&self, v: u64) {
        self.buckets[LogHistogram::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(v, Ordering::Relaxed);
        let mut seen = self.max.load(Ordering::Relaxed);
        while v > seen {
            match self
                .max
                .compare_exchange_weak(seen, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
    }

    /// Copies the current state into a plain [`LogHistogram`] (racy between
    /// fields under concurrent writers — a monitoring snapshot, not a
    /// barrier).
    #[must_use]
    pub fn snapshot(&self) -> LogHistogram {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        LogHistogram::from_raw(
            buckets,
            self.count.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
            self.total.load(Ordering::Relaxed),
        )
    }

    /// Count of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// The process-wide registry behind the ambient macros.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<HashMap<&'static str, &'static Counter>>,
    gauges: Mutex<HashMap<&'static str, &'static Gauge>>,
    hists: Mutex<HashMap<&'static str, &'static AtomicHistogram>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = lock(&self.counters);
        map.entry(name).or_insert_with(|| {
            Box::leak(Box::new(Counter {
                name,
                value: AtomicU64::new(0),
            }))
        })
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = lock(&self.gauges);
        map.entry(name).or_insert_with(|| {
            Box::leak(Box::new(Gauge {
                name,
                value: AtomicI64::new(0),
            }))
        })
    }

    /// Returns (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> &'static AtomicHistogram {
        let mut map = lock(&self.hists);
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(AtomicHistogram::new(name))))
    }

    /// Snapshots every registered metric into one [`Snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        for c in lock(&self.counters).values() {
            snap.set_counter(c.name, c.get());
        }
        for g in lock(&self.gauges).values() {
            snap.set_gauge(g.name, g.get());
        }
        for h in lock(&self.hists).values() {
            snap.set_hist(h.name, h.snapshot());
        }
        snap
    }

    /// Zeroes every registered metric (handles stay valid). For experiment
    /// harnesses that measure deltas between modes; production code never
    /// needs it.
    pub fn reset(&self) {
        for c in lock(&self.counters).values() {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in lock(&self.gauges).values() {
            g.value.store(0, Ordering::Relaxed);
        }
        for h in lock(&self.hists).values() {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.max.store(0, Ordering::Relaxed);
            h.total.store(0, Ordering::Relaxed);
        }
    }
}

/// The process-wide registry instance.
#[must_use]
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Per-macro-site cache of a counter handle: the name lookup happens once,
/// every later hit is a relaxed increment.
pub struct CounterCell(OnceLock<&'static Counter>);

impl CounterCell {
    /// An empty cell (used in `static` position by [`obs_count!`](crate::obs_count)).
    #[must_use]
    pub const fn new() -> Self {
        CounterCell(OnceLock::new())
    }

    /// The cached handle, registering `name` on first use.
    pub fn get(&self, name: &'static str) -> &'static Counter {
        self.0.get_or_init(|| registry().counter(name))
    }
}

impl Default for CounterCell {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-macro-site cache of a histogram handle.
pub struct HistCell(OnceLock<&'static AtomicHistogram>);

impl HistCell {
    /// An empty cell (used in `static` position by [`obs_hist!`](crate::obs_hist)).
    #[must_use]
    pub const fn new() -> Self {
        HistCell(OnceLock::new())
    }

    /// The cached handle, registering `name` on first use.
    pub fn get(&self, name: &'static str) -> &'static AtomicHistogram {
        self.0.get_or_init(|| registry().histogram(name))
    }
}

impl Default for HistCell {
    fn default() -> Self {
        Self::new()
    }
}

/// One coherent, ordered view of a set of metrics — the type every layer's
/// accounting now reports through, whether it came from the global registry
/// or from a subsystem's private counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, LogHistogram>,
}

impl Snapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Sets counter `name` to `v`.
    pub fn set_counter(&mut self, name: impl Into<String>, v: u64) {
        self.counters.insert(name.into(), v);
    }

    /// Adds `v` to counter `name` (creating it at zero).
    pub fn add_counter(&mut self, name: impl Into<String>, v: u64) {
        *self.counters.entry(name.into()).or_insert(0) += v;
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: impl Into<String>, v: i64) {
        self.gauges.insert(name.into(), v);
    }

    /// Stores histogram `name` (merging if already present).
    pub fn set_hist(&mut self, name: impl Into<String>, h: LogHistogram) {
        self.hists
            .entry(name.into())
            .and_modify(|e| e.merge(&h))
            .or_insert(h);
    }

    /// Counter value (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value (0 if absent).
    #[must_use]
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sum of every counter whose name starts with `prefix` — the form
    /// conservation checks take ("all `net.drop.` reasons").
    #[must_use]
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Merges another snapshot: counters add, gauges take the other's value,
    /// histograms merge.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.hists {
            self.hists
                .entry(k.clone())
                .and_modify(|e| e.merge(h))
                .or_insert_with(|| h.clone());
        }
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter {name} = {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "gauge   {name} = {v}")?;
        }
        for (name, h) in &self.hists {
            writeln!(f, "hist    {name} = {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_one_handle_per_name() {
        let a = registry().counter("test.metrics.one");
        let b = registry().counter("test.metrics.one");
        assert!(std::ptr::eq(a, b));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), b.get());
        assert!(a.get() >= 3, "shared handle must accumulate");
    }

    #[test]
    fn gauges_go_up_and_down() {
        let g = registry().gauge("test.metrics.gauge");
        g.set(10);
        g.add(-25);
        assert_eq!(g.get(), -15);
    }

    #[test]
    fn atomic_histogram_snapshot_preserves_count_max_total() {
        let h = registry().histogram("test.metrics.hist");
        h.record(100);
        h.record(3_000);
        h.record(70_000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        // Bucket reconstruction: p99 within 2x of the true max.
        assert!(snap.percentile(0.99) >= 65_536);
        assert!(snap.percentile(0.5) >= 64);
    }

    #[test]
    fn concurrent_counter_adds_are_exact() {
        let c = registry().counter("test.metrics.concurrent");
        let before = c.get();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get() - before, 40_000);
    }

    #[test]
    fn snapshot_orders_names_and_sums_prefixes() {
        let mut s = Snapshot::new();
        s.set_counter("net.drop.bad", 3);
        s.set_counter("net.drop.awful", 4);
        s.set_counter("net.forwarded", 93);
        s.set_counter("net.dropped_other", 1); // not under the dotted prefix
        assert_eq!(s.counter_sum("net.drop."), 7);
        let names: Vec<&str> = s.counters().map(|(k, _)| k).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "counters iterate in name order");
        assert_eq!(s.counter("net.forwarded"), 93);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_merges_hists() {
        let mut a = Snapshot::new();
        let mut b = Snapshot::new();
        a.set_counter("x", 1);
        b.set_counter("x", 2);
        let mut h1 = LogHistogram::new();
        h1.record(10);
        let mut h2 = LogHistogram::new();
        h2.record(1_000_000);
        a.set_hist("lat", h1);
        b.set_hist("lat", h2);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.hist("lat").unwrap().count(), 2);
        assert_eq!(a.hist("lat").unwrap().max(), 1_000_000);
    }

    #[test]
    fn display_renders_every_kind() {
        let mut s = Snapshot::new();
        s.set_counter("c", 1);
        s.set_gauge("g", -2);
        let mut h = LogHistogram::new();
        h.record(5);
        s.set_hist("h", h);
        let text = s.to_string();
        assert!(text.contains("counter c = 1"), "{text}");
        assert!(text.contains("gauge   g = -2"), "{text}");
        assert!(text.contains("hist    h = n=1"), "{text}");
    }
}
