//! The trigger engine: declarative watchers over the metrics registry that
//! turn a live anomaly into a frozen flight-recorder ring and a black-box
//! postmortem, instead of a counter nobody was looking at.
//!
//! A [`Watch`] names an anomaly and a [`Condition`] over a registry
//! [`Snapshot`](crate::Snapshot): a counter (or prefix-sum) jumping by more
//! than a threshold between polls, a counter crossing an absolute line, or
//! a gauge rising to a level. Conditions are **edge-triggered**: a watch
//! fires once when its condition becomes true and re-arms only after the
//! condition has gone quiet (delta conditions re-arm on the next quiet
//! poll; level conditions when the value falls back below the line). That
//! is what makes "exactly one postmortem per incident" a property the E16
//! campaign can assert rather than hope for.
//!
//! On fire, the [`TriggerEngine`] freezes the recorder rings, captures a
//! [`Postmortem`] (ring tail + metrics snapshot + cause + the active
//! `sysfault` digest, if the fault layer published one), and unfreezes.
//! Polling is pull-based — a few microseconds of snapshotting per call —
//! so the engine can run from a watchdog tick, a bench loop, or a test,
//! without a thread of its own.

use crate::metrics::Snapshot;
use crate::postmortem::Postmortem;
use crate::recorder;

/// A predicate over successive registry snapshots.
#[derive(Debug, Clone)]
pub enum Condition {
    /// Fires when the sum of counters under `prefix` grows by at least
    /// `min_delta` between two consecutive polls (rate spike detection:
    /// drop storms, reap bursts, stall runs).
    CounterDelta {
        /// Counter name prefix (exact names work too — prefix sum of one).
        prefix: &'static str,
        /// Minimum growth between polls to count as a spike.
        min_delta: u64,
    },
    /// Fires when the sum of counters under `prefix` first reaches `min`.
    CounterAtLeast {
        /// Counter name prefix.
        prefix: &'static str,
        /// Absolute line to cross.
        min: u64,
    },
    /// Fires when gauge `name` rises to at least `min` (engagement
    /// signals: cookie-mode shard counts, queue depths).
    GaugeAtLeast {
        /// Gauge name.
        name: &'static str,
        /// Level that counts as engaged.
        min: i64,
    },
}

/// One named watcher: a [`Condition`] plus its edge-tracking state.
#[derive(Debug, Clone)]
pub struct Watch {
    /// The trigger's name — lands in the postmortem artifact verbatim.
    pub name: &'static str,
    cond: Condition,
    /// Last observed value (counter sum or gauge as u64-bits).
    last: Option<u64>,
    /// True while the condition holds (suppresses refires until quiet).
    latched: bool,
}

impl Watch {
    /// A watch over `cond` named `name`.
    #[must_use]
    pub fn new(name: &'static str, cond: Condition) -> Watch {
        Watch {
            name,
            cond,
            last: None,
            latched: false,
        }
    }

    /// Shorthand: fire when counters under `prefix` jump by `min_delta`
    /// within one poll interval.
    #[must_use]
    pub fn counter_delta(name: &'static str, prefix: &'static str, min_delta: u64) -> Watch {
        Watch::new(name, Condition::CounterDelta { prefix, min_delta })
    }

    /// Shorthand: fire when counters under `prefix` first reach `min`.
    #[must_use]
    pub fn counter_at_least(name: &'static str, prefix: &'static str, min: u64) -> Watch {
        Watch::new(name, Condition::CounterAtLeast { prefix, min })
    }

    /// Shorthand: fire when gauge `gauge` rises to `min`.
    #[must_use]
    pub fn gauge_at_least(name: &'static str, gauge: &'static str, min: i64) -> Watch {
        Watch::new(name, Condition::GaugeAtLeast { name: gauge, min })
    }

    /// Evaluates against one snapshot; `Some(cause)` exactly when the
    /// watch fires on this poll.
    fn eval(&mut self, snap: &Snapshot) -> Option<String> {
        match self.cond {
            Condition::CounterDelta { prefix, min_delta } => {
                let now = snap.counter_sum(prefix);
                let prev = self.last.replace(now);
                let delta = prev.map(|p| now.saturating_sub(p));
                match delta {
                    // First poll is the baseline: never fire, never latch.
                    None => None,
                    Some(d) if d >= min_delta => {
                        if self.latched {
                            None // still inside the same incident
                        } else {
                            self.latched = true;
                            Some(format!(
                                "counter sum `{prefix}` jumped by {d} (>= {min_delta}) in one poll \
                                 interval, now {now}"
                            ))
                        }
                    }
                    Some(_) => {
                        self.latched = false; // quiet poll re-arms
                        None
                    }
                }
            }
            Condition::CounterAtLeast { prefix, min } => {
                let now = snap.counter_sum(prefix);
                let over = now >= min;
                let fire = over && !self.latched;
                self.latched = over;
                fire.then(|| format!("counter sum `{prefix}` reached {now} (>= {min})"))
            }
            Condition::GaugeAtLeast { name, min } => {
                let now = snap.gauge(name);
                let over = now >= min;
                let fire = over && !self.latched;
                self.latched = over;
                fire.then(|| format!("gauge `{name}` rose to {now} (>= {min})"))
            }
        }
    }
}

/// The poll loop: a set of watches, each producing at most one
/// [`Postmortem`] per incident.
#[derive(Debug, Default)]
pub struct TriggerEngine {
    watches: Vec<Watch>,
    fired: u64,
}

impl TriggerEngine {
    /// An engine with no watches.
    #[must_use]
    pub fn new() -> TriggerEngine {
        TriggerEngine::default()
    }

    /// Adds a watch (builder-style).
    #[must_use]
    pub fn with(mut self, watch: Watch) -> TriggerEngine {
        self.watches.push(watch);
        self
    }

    /// Adds a watch.
    pub fn add(&mut self, watch: Watch) {
        self.watches.push(watch);
    }

    /// The standard production watch set over this repo's stack: drop-rate
    /// spike, SYN-cookie engagement, backpressure stall, watchdog firing,
    /// epoch-advancement lag, and balancer backend death. Thresholds are
    /// per poll interval; callers with faster/slower poll cadences build
    /// their own.
    #[must_use]
    pub fn standard() -> TriggerEngine {
        TriggerEngine::new()
            .with(Watch::counter_delta("drop-rate-spike", "net.drop.", 64))
            .with(Watch::counter_delta(
                "syn-cookie-engaged",
                "net.ct.cookie_mode_entries",
                1,
            ))
            .with(Watch::counter_delta(
                "backpressure-stall",
                "net.dispatch.requeues",
                32,
            ))
            .with(Watch::counter_delta(
                "watchdog-fired",
                "kernel.watchdog_reaps",
                1,
            ))
            .with(Watch::counter_delta(
                "epoch-advance-lag",
                "mem.epoch.advance_stalls",
                16,
            ))
            .with(Watch::counter_delta("backend-death", "net.lb.ejections", 1))
    }

    /// Total postmortems emitted over the engine's lifetime.
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Polls every watch against the current registry snapshot. Each watch
    /// that fires freezes the rings, captures a postmortem (tagging it
    /// with `fault_digest` — pass the active `sysfault` log digest when a
    /// campaign is running), and unfreezes.
    pub fn poll(&mut self, fault_digest: Option<u64>) -> Vec<Postmortem> {
        let snap = crate::registry().snapshot();
        let mut out = Vec::new();
        for w in &mut self.watches {
            if let Some(cause) = w.eval(&snap) {
                recorder::freeze();
                let pm = Postmortem::capture(w.name, &cause, &snap, fault_digest);
                recorder::unfreeze();
                self.fired += 1;
                out.push(pm);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> Snapshot {
        let mut s = Snapshot::new();
        for (k, v) in pairs {
            s.set_counter(*k, *v);
        }
        s
    }

    #[test]
    fn delta_watch_fires_once_per_incident_and_rearms() {
        let mut w = Watch::counter_delta("spike", "t.drop.", 10);
        assert!(w.eval(&snap(&[("t.drop.a", 0)])).is_none(), "baseline poll");
        assert!(
            w.eval(&snap(&[("t.drop.a", 50)])).is_some(),
            "jump of 50 fires"
        );
        assert!(
            w.eval(&snap(&[("t.drop.a", 120)])).is_none(),
            "still spiking: same incident, no refire"
        );
        assert!(w.eval(&snap(&[("t.drop.a", 121)])).is_none(), "quiet poll");
        assert!(
            w.eval(&snap(&[("t.drop.a", 500)])).is_some(),
            "second incident fires again"
        );
    }

    #[test]
    fn at_least_watch_needs_the_line_crossed() {
        let mut w = Watch::counter_at_least("line", "t.line", 100);
        assert!(w.eval(&snap(&[("t.line", 99)])).is_none());
        let cause = w.eval(&snap(&[("t.line", 100)])).expect("crossing fires");
        assert!(cause.contains("100"), "{cause}");
        assert!(
            w.eval(&snap(&[("t.line", 200)])).is_none(),
            "monotonic counter stays latched"
        );
    }

    #[test]
    fn gauge_watch_fires_on_rising_edge() {
        let mut w = Watch::gauge_at_least("engaged", "t.gauge", 5);
        let mut s = Snapshot::new();
        s.set_gauge("t.gauge", 3);
        assert!(w.eval(&s).is_none());
        s.set_gauge("t.gauge", 7);
        assert!(w.eval(&s).is_some());
        assert!(w.eval(&s).is_none(), "held level does not refire");
        s.set_gauge("t.gauge", 0);
        assert!(w.eval(&s).is_none(), "falling edge re-arms");
        s.set_gauge("t.gauge", 9);
        assert!(w.eval(&s).is_some(), "next rise fires again");
    }

    #[test]
    fn engine_polls_registry_and_freeze_is_lifted_after_capture() {
        // Drive a private counter through the real registry.
        let c = crate::registry().counter("test.trigger.engine.spike");
        let mut eng = TriggerEngine::new().with(Watch::counter_delta(
            "test-spike",
            "test.trigger.engine.spike",
            5,
        ));
        assert!(eng.poll(None).is_empty(), "baseline");
        c.add(50);
        let pms = eng.poll(Some(0xFEED));
        assert_eq!(pms.len(), 1);
        assert_eq!(pms[0].trigger, "test-spike");
        assert_eq!(pms[0].fault_digest, Some(0xFEED));
        assert!(!recorder::is_frozen(), "engine unfreezes after capture");
        assert_eq!(eng.fired(), 1);
        assert!(eng.poll(None).is_empty(), "quiet poll after incident");
    }

    #[test]
    fn standard_set_names_the_six_anomalies() {
        let eng = TriggerEngine::standard();
        let names: Vec<&str> = eng.watches.iter().map(|w| w.name).collect();
        for expect in [
            "drop-rate-spike",
            "syn-cookie-engaged",
            "backpressure-stall",
            "watchdog-fired",
            "epoch-advance-lag",
            "backend-death",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }
}
