//! Adaptive per-site trace sampling: the piece that lets the flight
//! recorder stay on in production.
//!
//! Full tracing ([`crate::Mode::Tracing`]) records every span and costs what
//! E11 measures (+60% on an IPC round trip). [`crate::Mode::Sampled`] keeps
//! the same instrumentation sites live but admits only 1-in-N span
//! recordings per site, with N a power of two so admission is one
//! `fetch_add` plus a mask test. N is not static: a feedback loop retunes
//! each site's shift against a configurable overhead budget, so hot sites
//! (the IPC syscall path, the router batch loop) sample sparsely while cold
//! sites (watchdog reaps, fault firings) record every occurrence.
//!
//! Mechanics:
//!
//! * every span macro expansion owns a `static` [`SampleSite`] — a call
//!   counter, an admitted counter, and the current shift (`N = 1 << shift`);
//! * admission is deterministic — call numbers `0, N, 2N, ...` are admitted
//!   — so the observed rate is exactly `ceil(calls / N)` per site, which is
//!   what the convergence property test pins;
//! * sites self-register with the global [`Sampler`] on first use; the
//!   controller walks them at most once per [`TICK_NS`] (amortized onto an
//!   already-admitted, already-ring-writing call, never the fast path);
//! * the controller divides the overhead budget (a percentage of one core,
//!   at an estimated ring-write cost per event) evenly across the sites
//!   active in the last window and sets each site's shift to the smallest
//!   power of two that brings its admitted rate under its share;
//! * the budget prices **recorded events**, not admitted draws: with head
//!   sampling one admitted root records its whole downstream trace, so the
//!   controller measures the window's fan-out (ring events written per
//!   admitted call, from the recorder's heads) and scales each site's
//!   effective rate by it before choosing the shift. Without this the loop
//!   under-counts its own spend by the average trace size.
//!
//! Two escape hatches keep traces useful: full tracing bypasses sampling
//! entirely, and a site is always admitted while a causal trace context
//! ([`crate::context`]) is active on the thread — once a packet wins the
//! 1-in-N draw at the trace root, every downstream span it touches records,
//! so sampled traces are complete traces (head sampling).

use std::sync::atomic::{AtomicI32, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Controller window: retune at most once per this many nanoseconds.
pub const TICK_NS: u64 = 10_000_000; // 10 ms

/// Largest supported shift (1-in-65536).
pub const MAX_SHIFT: u32 = 16;

/// Shift a fresh site starts at before the controller has seen it
/// (1-in-64: sparse enough that an unexpectedly hot new site cannot blow
/// the budget in its first window).
pub const DEFAULT_SHIFT: u32 = 6;

/// Default overhead budget: sampled tracing may spend this percentage of
/// one core on ring writes.
pub const DEFAULT_BUDGET_PCT: f64 = 1.0;

/// Default estimated cost of one flight-recorder event (clock read + four
/// slot stores), used to convert the budget into an events/sec target.
pub const DEFAULT_EVENT_COST_NS: u64 = 80;

/// Per-callsite sampling state. Lives in a `static` inside each span macro
/// expansion; all fields are monotonic counters or the current shift.
#[derive(Debug)]
pub struct SampleSite {
    calls: AtomicU64,
    admitted: AtomicU64,
    /// Call count at the start of the controller's current window.
    window_calls: AtomicU64,
    shift: AtomicU32,
}

impl SampleSite {
    /// An unregistered site at [`DEFAULT_SHIFT`] (used in `static`
    /// position by the span macros).
    #[must_use]
    pub const fn new() -> SampleSite {
        SampleSite {
            calls: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            window_calls: AtomicU64::new(0),
            shift: AtomicU32::new(DEFAULT_SHIFT),
        }
    }

    /// Total calls observed.
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Calls admitted for recording.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Current shift (`N = 1 << shift`).
    #[must_use]
    pub fn shift(&self) -> u32 {
        self.shift.load(Ordering::Relaxed)
    }

    /// The deterministic 1-in-N draw: call numbers `0, N, 2N, ...` win.
    #[inline]
    fn draw(&'static self, name: &'static str) -> bool {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if n == 0 {
            sampler().register(name, self);
        }
        let mask = (1u64 << self.shift.load(Ordering::Relaxed).min(MAX_SHIFT)) - 1;
        let hit = n & mask == 0;
        if hit {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            sampler().maybe_retune();
        }
        hit
    }
}

impl Default for SampleSite {
    fn default() -> Self {
        SampleSite::new()
    }
}

/// Should this site record right now? The single entry point the span
/// macros call once the mode check says the trace path is live.
///
/// Admission order: full tracing records everything; a live causal context
/// means the trace already won its draw at the root, so every span it
/// touches records; otherwise the site runs its own 1-in-N draw.
#[inline]
#[must_use]
pub fn admit(site: &'static SampleSite, name: &'static str) -> bool {
    if crate::tracing_on() || crate::context::active() {
        return true;
    }
    site.draw(name)
}

/// One site's row in a [`Sampler::stats`] report.
#[derive(Debug, Clone)]
pub struct SiteStats {
    /// The site's span name.
    pub name: &'static str,
    /// Total calls observed.
    pub calls: u64,
    /// Calls admitted for recording.
    pub admitted: u64,
    /// Current shift (`N = 1 << shift`).
    pub shift: u32,
}

/// The global controller: the registered-site list and the feedback loop.
pub struct Sampler {
    sites: Mutex<Vec<(&'static str, &'static SampleSite)>>,
    /// Budget in hundredths of a percent (so 1.00% stores as 100).
    budget_centi_pct: AtomicU32,
    event_cost_ns: AtomicU64,
    last_tick_ns: AtomicU64,
    /// Recorder event total at the start of the current window (for the
    /// fan-out measurement).
    window_events: AtomicU64,
    /// Total admitted draws at the start of the current window.
    window_admitted: AtomicU64,
    /// `-1` = adaptive; `>= 0` = every site pinned to this shift.
    fixed_shift: AtomicI32,
    /// Wall-clock ticking enabled (tests driving synthetic windows turn
    /// it off so a slow host can't split their windows mid-drive).
    auto_tick: std::sync::atomic::AtomicBool,
    retunes: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The process-wide sampler.
#[must_use]
pub fn sampler() -> &'static Sampler {
    static SAMPLER: OnceLock<Sampler> = OnceLock::new();
    SAMPLER.get_or_init(|| Sampler {
        sites: Mutex::new(Vec::new()),
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        budget_centi_pct: AtomicU32::new((DEFAULT_BUDGET_PCT * 100.0) as u32),
        event_cost_ns: AtomicU64::new(DEFAULT_EVENT_COST_NS),
        last_tick_ns: AtomicU64::new(0),
        window_events: AtomicU64::new(0),
        window_admitted: AtomicU64::new(0),
        fixed_shift: AtomicI32::new(-1),
        auto_tick: std::sync::atomic::AtomicBool::new(true),
        retunes: AtomicU64::new(0),
    })
}

impl Sampler {
    fn register(&self, name: &'static str, site: &'static SampleSite) {
        let mut sites = lock(&self.sites);
        if sites.iter().any(|(_, s)| std::ptr::eq(*s, site)) {
            return;
        }
        let fixed = self.fixed_shift.load(Ordering::Relaxed);
        if fixed >= 0 {
            #[allow(clippy::cast_sign_loss)]
            site.shift
                .store((fixed as u32).min(MAX_SHIFT), Ordering::Relaxed);
        }
        sites.push((name, site));
    }

    /// Sets the overhead budget (percent of one core sampled tracing may
    /// spend on ring writes). Takes effect at the next retune.
    pub fn set_budget_pct(&self, pct: f64) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        self.budget_centi_pct
            .store((pct.clamp(0.01, 100.0) * 100.0) as u32, Ordering::Relaxed);
    }

    /// Current overhead budget in percent.
    #[must_use]
    pub fn budget_pct(&self) -> f64 {
        f64::from(self.budget_centi_pct.load(Ordering::Relaxed)) / 100.0
    }

    /// Overrides the estimated per-event recording cost the budget is
    /// converted with.
    pub fn set_event_cost_ns(&self, ns: u64) {
        self.event_cost_ns.store(ns.max(1), Ordering::Relaxed);
    }

    /// Pins every site (current and future) to `shift`, or returns to
    /// adaptive control with `None`. Benches use this to measure fixed
    /// points on the overhead curve; tests use it for determinism.
    pub fn set_fixed_shift(&self, shift: Option<u32>) {
        match shift {
            Some(s) => {
                let s = s.min(MAX_SHIFT);
                #[allow(clippy::cast_possible_wrap)]
                self.fixed_shift.store(s as i32, Ordering::Relaxed);
                for (_, site) in lock(&self.sites).iter() {
                    site.shift.store(s, Ordering::Relaxed);
                }
            }
            None => self.fixed_shift.store(-1, Ordering::Relaxed),
        }
    }

    /// Enables or disables the wall-clock tick. Tests that drive the
    /// controller with synthetic [`Sampler::retune`] windows disable it so
    /// a slow host can't fire a real-clock retune mid-window and consume
    /// the call deltas the synthetic window is about to measure.
    #[doc(hidden)]
    pub fn set_auto_tick(&self, on: bool) {
        self.auto_tick.store(on, Ordering::Relaxed);
    }

    /// Times the feedback loop: retunes at most once per [`TICK_NS`],
    /// amortized onto admitted (already expensive) calls.
    fn maybe_retune(&self) {
        if !self.auto_tick.load(Ordering::Relaxed) {
            return;
        }
        let now = crate::now_ns();
        let last = self.last_tick_ns.load(Ordering::Relaxed);
        if last == 0 {
            // First admitted event starts the window; nothing to measure yet.
            let _ = self.last_tick_ns.compare_exchange(
                0,
                now.max(1),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            return;
        }
        let elapsed = now.saturating_sub(last);
        if elapsed < TICK_NS {
            return;
        }
        if self
            .last_tick_ns
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.retune(elapsed);
        }
    }

    /// One controller step over a window of `elapsed_ns`: split the budget
    /// evenly across active sites and set each shift to the smallest power
    /// of two that brings the site's *recorded-event* rate under its share
    /// — a site admitted at 1-in-N records `fanout` events per admitted
    /// call (the head-sampled trace it roots), and the fan-out is measured
    /// from the window just ended. Public (doc-hidden) so tests can drive
    /// the loop with a synthetic window instead of waiting out real ticks.
    #[doc(hidden)]
    pub fn retune(&self, elapsed_ns: u64) {
        if self.fixed_shift.load(Ordering::Relaxed) >= 0 {
            return;
        }
        let budget_frac = f64::from(self.budget_centi_pct.load(Ordering::Relaxed)) / 10_000.0;
        #[allow(clippy::cast_precision_loss)]
        let cost_ns = self.event_cost_ns.load(Ordering::Relaxed) as f64;
        let target_events_per_sec = budget_frac * 1e9 / cost_ns;

        let sites = lock(&self.sites);
        let mut deltas = Vec::with_capacity(sites.len());
        let mut admitted_delta = 0u64;
        for (_, site) in sites.iter() {
            let calls = site.calls.load(Ordering::Relaxed);
            let prev = site.window_calls.swap(calls, Ordering::Relaxed);
            deltas.push(calls.saturating_sub(prev));
            admitted_delta += site.admitted.load(Ordering::Relaxed);
        }
        let admitted_prev = self.window_admitted.swap(admitted_delta, Ordering::Relaxed);
        let admitted_delta = admitted_delta.saturating_sub(admitted_prev);
        // The window's head-sampling fan-out: ring events written per
        // admitted draw. Full-tracing windows never reach here (no draws),
        // and windows with draws but no recording (mode flips, synthetic
        // drivers) measure 1.
        let events = crate::recorder::events_written();
        let events_delta =
            events.saturating_sub(self.window_events.swap(events, Ordering::Relaxed));
        #[allow(clippy::cast_precision_loss)]
        let fanout = if admitted_delta == 0 {
            1.0
        } else {
            (events_delta as f64 / admitted_delta as f64).max(1.0)
        };

        let active = deltas.iter().filter(|&&d| d > 0).count().max(1);
        #[allow(clippy::cast_precision_loss)]
        let share = (target_events_per_sec / active as f64).max(1e-9);

        for ((_, site), delta) in sites.iter().zip(deltas) {
            if delta == 0 {
                continue; // idle site: keep its shift, no evidence to move it
            }
            #[allow(clippy::cast_precision_loss)]
            let rate = delta as f64 * 1e9 / elapsed_ns.max(1) as f64 * fanout;
            let shift = if rate <= share {
                0
            } else {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let s = (rate / share).log2().ceil() as u32;
                s.min(MAX_SHIFT)
            };
            site.shift.store(shift, Ordering::Relaxed);
        }
        drop(sites);
        self.retunes.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of controller steps taken.
    #[must_use]
    pub fn retunes(&self) -> u64 {
        self.retunes.load(Ordering::Relaxed)
    }

    /// Per-site counters, in registration order.
    #[must_use]
    pub fn stats(&self) -> Vec<SiteStats> {
        lock(&self.sites)
            .iter()
            .map(|(name, s)| SiteStats {
                name,
                calls: s.calls(),
                admitted: s.admitted(),
                shift: s.shift(),
            })
            .collect()
    }

    /// Zeroes every site's counters and restores the default (or fixed)
    /// shift — benches call this between arms so each measurement starts
    /// from the same sampling state.
    pub fn reset_sites(&self) {
        let fixed = self.fixed_shift.load(Ordering::Relaxed);
        #[allow(clippy::cast_sign_loss)]
        let shift = if fixed >= 0 {
            (fixed as u32).min(MAX_SHIFT)
        } else {
            DEFAULT_SHIFT
        };
        for (_, site) in lock(&self.sites).iter() {
            site.calls.store(0, Ordering::Relaxed);
            site.admitted.store(0, Ordering::Relaxed);
            site.window_calls.store(0, Ordering::Relaxed);
            site.shift.store(shift, Ordering::Relaxed);
        }
        self.last_tick_ns.store(0, Ordering::Relaxed);
        self.window_admitted.store(0, Ordering::Relaxed);
        self.window_events
            .store(crate::recorder::events_written(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sampler (site list, fixed shift) is process-global; tests that
    // touch it serialize here so parallel test threads don't repin shifts
    // under each other.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn leaked_site() -> &'static SampleSite {
        Box::leak(Box::new(SampleSite::new()))
    }

    #[test]
    fn draw_is_exactly_one_in_n() {
        let _guard = lock(&TEST_LOCK);
        let site = leaked_site();
        site.shift.store(3, Ordering::Relaxed); // N = 8
        let mut admitted = 0u64;
        for _ in 0..100 {
            // Mask the shift back every call: registration may apply a
            // leftover fixed shift and a background retune may move it.
            site.shift.store(3, Ordering::Relaxed);
            if site.draw("test.sampler.one_in_n") {
                admitted += 1;
            }
        }
        // ceil(100 / 8) = 13: calls 0, 8, 16, ..., 96.
        assert_eq!(admitted, 13);
        assert_eq!(site.admitted(), 13);
        assert_eq!(site.calls(), 100);
    }

    #[test]
    fn shift_zero_admits_everything() {
        let _guard = lock(&TEST_LOCK);
        let site = leaked_site();
        let all = (0..50)
            .filter(|_| {
                site.shift.store(0, Ordering::Relaxed);
                site.draw("test.sampler.all")
            })
            .count();
        assert_eq!(all, 50);
    }

    #[test]
    fn retune_splits_budget_and_shifts_hot_sites_up() {
        let _guard = lock(&TEST_LOCK);
        sampler().set_fixed_shift(None);
        let hot = leaked_site();
        let cold = leaked_site();
        // Register, then install one synthetic window of traffic directly
        // in the counters (driving draw() a million times would tangle
        // with the real-clock tick path).
        let _ = hot.draw("test.sampler.hot");
        let _ = cold.draw("test.sampler.cold");
        hot.calls.store(1_000_000, Ordering::Relaxed);
        hot.window_calls.store(0, Ordering::Relaxed);
        // A synthetic admitted count that dwarfs whatever ring events
        // parallel tests write this window, so the measured fan-out stays
        // ≈1 and the expected shifts are the fanout-free fixed points.
        hot.admitted.store(1_000_000, Ordering::Relaxed);
        cold.calls.store(10, Ordering::Relaxed);
        cold.window_calls.store(0, Ordering::Relaxed);
        // Window = 0.1 s → hot ≈ 10M calls/s, cold ≈ 100/s. Budget 1% at
        // 80 ns/event → 125k events/s total; with the registered sites
        // sharing, the hot site must shift well up and the cold site to 0.
        sampler().set_budget_pct(DEFAULT_BUDGET_PCT);
        sampler().set_event_cost_ns(DEFAULT_EVENT_COST_NS);
        sampler().retune(100_000_000);
        assert!(
            hot.shift() >= 5,
            "hot site must be sampled sparsely, got shift {}",
            hot.shift()
        );
        assert_eq!(cold.shift(), 0, "cold site records every occurrence");
    }

    #[test]
    fn fixed_shift_pins_and_releases() {
        let _guard = lock(&TEST_LOCK);
        let site = leaked_site();
        let _ = site.draw("test.sampler.fixed"); // register
        sampler().set_fixed_shift(Some(2));
        assert_eq!(site.shift(), 2);
        sampler().retune(1_000_000_000);
        assert_eq!(site.shift(), 2, "retune must not move a pinned site");
        sampler().set_fixed_shift(None);
    }
}
