//! The log-bucketed histogram every percentile in this repo now runs on.
//!
//! One implementation, three hosts: `sysmem`'s GC pause histograms wrap it,
//! the router's per-packet latency distribution is one, and the metrics
//! registry snapshots its atomic histograms into it. Buckets are powers of
//! two from 1 ns to ~17 s (the same shape `sysmem::stats` used), so
//! recording is O(1), allocation-free, and mergeable — the properties that
//! let it live inside measured regions without distorting them.

use std::fmt;
use std::time::Duration;

/// Number of power-of-two buckets.
pub const BUCKETS: usize = 64;

/// A fixed-bucket log-scale histogram of `u64` samples (typically
/// nanoseconds).
///
/// A sample `v` lands in bucket `floor(log2 v)` (bucket 0 for `v <= 1`);
/// percentiles interpolate linearly inside the containing bucket, so the
/// answer is within one interpolation step (`bucket_width / bucket_count`)
/// of the exact rank statistic instead of snapping to the power-of-two
/// upper edge (which overestimated by up to 2x). Recording stays O(1) and
/// allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max: u64,
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            max: 0,
            total: 0,
        }
    }

    /// Index of the bucket a sample lands in.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (63 - u64::leading_zeros(v) as usize).min(BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of the same value in O(1) — the weighted form the
    /// router uses to attribute one batch-completion latency to every packet
    /// in the batch.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(v)] += n;
        self.count += n;
        self.max = self.max.max(v);
        self.total = self.total.saturating_add(v.saturating_mul(n));
    }

    /// Records a [`Duration`] as nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 if empty). The running total saturates, so the mean is
    /// a floor after ~2^64 total.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile (`0.0..=1.0`), linearly interpolated inside the
    /// containing power-of-two bucket and clamped to the observed maximum.
    /// Returns 0 when empty.
    ///
    /// The rank-`r` sample of the `n` samples in bucket `[L, U)` resolves to
    /// `L + (U - L) * r / n`: rank `n` lands on the upper edge (preserving
    /// the old monotone upper-bound behaviour at bucket boundaries), rank 1
    /// sits one step above the lower edge. Error vs the exact order
    /// statistic is at most one step, `(U - L) / n`, rather than the up-to-2x
    /// overshoot the plain upper-edge rule gave.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let clamped = p.clamp(0.0, 1.0);
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let target = ((clamped * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Bucket i spans [L, U): bucket 0 is [0, 2), the top bucket
                // runs to u64::MAX. Interpolate by rank within the bucket.
                let lower = if i == 0 { 0 } else { 1u64 << i };
                let upper = if i + 1 >= BUCKETS {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                let rank = target - (seen - n); // 1..=n
                let width = upper - lower;
                let step = (u128::from(width) * u128::from(rank) / u128::from(n)) as u64;
                return (lower + step).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.total = self.total.saturating_add(other.total);
    }

    /// Raw bucket counts (index = `floor(log2 value)`).
    #[must_use]
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Assembles a histogram from raw parts (the atomic registry twin
    /// snapshots through this so count/max/total stay exact even though the
    /// per-bucket sample values are only known to bucket resolution).
    pub(crate) fn from_raw(buckets: [u64; BUCKETS], count: u64, max: u64, total: u64) -> Self {
        LogHistogram {
            buckets,
            count,
            max,
            total,
        }
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} p999={} max={}",
            self.count,
            self.mean(),
            self.percentile(0.50),
            self.percentile(0.99),
            self.percentile(0.999),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_bounds_every_percentile() {
        let mut h = LogHistogram::new();
        h.record(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 1000);
        assert_eq!(h.max(), 1000);
        // Bucket edge for 1000 is 1024, clamped to max 1000.
        assert_eq!(h.percentile(0.0), 1000);
        assert_eq!(h.percentile(1.0), 1000);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded_by_max() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 17);
        }
        let p50 = h.percentile(0.50);
        let p90 = h.percentile(0.90);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= h.max().next_power_of_two());
    }

    #[test]
    fn weighted_record_equals_repeated_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(300, 5);
        for _ in 0..5 {
            b.record(300);
        }
        assert_eq!(a, b);
        a.record_n(77, 0); // zero weight is a no-op
        assert_eq!(a, b);
    }

    #[test]
    fn saturating_values_land_in_the_top_bucket() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.buckets()[BUCKETS - 1], 2);
        // The total saturates instead of wrapping; the mean stays a floor.
        assert!(h.mean() >= u64::MAX / 2);
        assert_eq!(h.percentile(0.99), u64::MAX);
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let mut h = LogHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 0);
        assert_eq!(h.buckets()[0], 1);
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn interpolated_quantiles_track_exact_order_statistics() {
        // Uniform 1..=1000: every value recorded once, so a bucket that the
        // samples fill end-to-end interpolates to within one step
        // (bucket_width / bucket_count) of the exact rank statistic.
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (p, exact) in [(0.25, 250u64), (0.50, 500u64)] {
            let got = h.percentile(p);
            let i = LogHistogram::bucket_index(exact);
            let width = 1u64 << i; // bucket [2^i, 2^{i+1})
            let step = (width / h.buckets()[i]).max(1);
            assert!(
                got.abs_diff(exact) <= step,
                "p{p}: got {got}, exact {exact}, step {step}"
            );
        }
    }

    #[test]
    fn quantiles_inside_one_bucket_no_longer_collapse_to_the_edge() {
        // The motivating bug: every router p50 read exactly 65536 because
        // all samples shared the [32768, 65536) bucket and percentile()
        // answered with the upper edge. Interpolation must spread them.
        let mut h = LogHistogram::new();
        for v in (32_768..65_536u64).step_by(32) {
            h.record(v);
        }
        let p50 = h.percentile(0.50);
        let p90 = h.percentile(0.90);
        let p99 = h.percentile(0.99);
        assert!(p50 < p90 && p90 < p99, "{p50} {p90} {p99}");
        assert!(p99 < 65_536, "p99 must stay inside the bucket: {p99}");
        // The bucket is filled uniformly, so p50 sits near the middle.
        assert!(p50.abs_diff(49_152) <= 64, "p50 {p50} vs midpoint 49152");
    }

    #[test]
    fn rank_n_still_reaches_the_bucket_edge_clamped_to_max() {
        // The highest rank in a bucket resolves to the upper edge, so the
        // old monotone-upper-bound behaviour survives at the boundary.
        let mut h = LogHistogram::new();
        h.record_n(700, 10);
        assert_eq!(h.percentile(1.0), 700); // edge 1024 clamped to max
        let mut g = LogHistogram::new();
        g.record_n(700, 10);
        g.record(2000);
        // target = ceil(0.5 * 11) = 6 → rank 6 of 10 in [512, 1024).
        assert_eq!(g.percentile(0.5), 512 + 512 * 6 / 10);
    }

    #[test]
    fn display_names_the_tail() {
        let mut h = LogHistogram::new();
        h.record(64);
        let s = h.to_string();
        assert!(s.contains("n=1"), "{s}");
        assert!(s.contains("p999=64"), "{s}");
        assert!(s.contains("max=64"), "{s}");
    }

    #[test]
    fn interpolated_p999_is_pinned_on_a_known_distribution() {
        // 999 samples at 100 ns and one at 60000 ns: both p99 and p999
        // interpolate inside the [64, 128) bucket — only p100 reaches the
        // outlier. Attack sweeps live exactly in this regime: a p999 of
        // ~128 with a max of 60000 is a different system than one whose
        // p999 is 60000, and the report must distinguish them.
        let mut h = LogHistogram::new();
        h.record_n(100, 999);
        h.record(60_000);
        // target = ceil(0.99 * 1000) = 990 → rank 990 of 999 in [64, 128):
        // 64 + 64 * 990 / 999 = 127.
        assert_eq!(h.percentile(0.99), 127);
        // Rank ceil(0.999 * 1000) = 999 of 999 in [64, 128) → the bucket's
        // upper edge, exactly 128 — still two decades under the outlier.
        assert_eq!(h.percentile(0.999), 128);
        assert_eq!(h.percentile(1.0), 60_000);
        // A tail-free distribution keeps p999 tight to p99.
        let mut g = LogHistogram::new();
        g.record_n(100, 1000);
        assert_eq!(g.percentile(0.999), g.percentile(0.99));
    }
}
