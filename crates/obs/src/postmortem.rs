//! Black-box postmortems: the structured artifact a fired trigger leaves
//! behind — the flight-recorder tail, the metrics snapshot, the trigger
//! cause, and the active fault-schedule digest, serialized as one JSON
//! document a human (or the CI smoke test) can read after the incident.
//!
//! The causal half: span events recorded under a [`crate::context`] carry
//! `(trace, parent, span)` payloads, so the postmortem can group its event
//! tail into [`CausalTrace`]s — per-trace summaries listing which threads
//! participated and the named path the packet took. The E16 acceptance
//! check ("every injected incident yields one postmortem containing a
//! cross-worker causal trace") is a query over exactly this structure.
//!
//! JSON is hand-rolled like `BENCH_*.json` (the container has no serde);
//! names are escaped, the schema is flat, and `to_json` output always
//! parses with balanced brackets — there's a test for that.

use crate::context::payload_trace_id;
use crate::metrics::Snapshot;
use crate::recorder::{collect_events, Event, EventKind};
use std::fmt::Write as _;

/// One causal trace reconstructed from the event tail: every span event
/// sharing a trace id, summarized.
#[derive(Debug, Clone)]
pub struct CausalTrace {
    /// The trace id all member events share.
    pub trace_id: u32,
    /// Distinct recording threads, ascending (≥ 2 = crossed a boundary).
    pub tids: Vec<usize>,
    /// Member event names in wall-clock order, `SpanEnd`s skipped (the
    /// path reads `dispatch → parse → route → egress`, not doubled).
    pub path: Vec<String>,
}

impl CausalTrace {
    /// True when the trace spans more than one recording thread.
    #[must_use]
    pub fn crosses_threads(&self) -> bool {
        self.tids.len() >= 2
    }
}

/// Groups span-kind events by trace id, time-ordered within each trace.
/// Instant and counter events are excluded: their payloads are site values,
/// not contexts.
#[must_use]
pub fn causal_traces(events: &[Event]) -> Vec<CausalTrace> {
    let mut spans: Vec<&Event> = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::SpanBegin | EventKind::SpanEnd | EventKind::Span
            ) && payload_trace_id(e.value).is_some()
        })
        .collect();
    spans.sort_by_key(|e| (payload_trace_id(e.value), e.t_ns, e.tid, e.seq));
    let mut out: Vec<CausalTrace> = Vec::new();
    for e in spans {
        let trace_id = payload_trace_id(e.value).expect("filtered to Some");
        if out.last().map(|t| t.trace_id) != Some(trace_id) {
            out.push(CausalTrace {
                trace_id,
                tids: Vec::new(),
                path: Vec::new(),
            });
        }
        let t = out.last_mut().expect("just pushed");
        if let Err(i) = t.tids.binary_search(&e.tid) {
            t.tids.insert(i, e.tid);
        }
        if e.kind != EventKind::SpanEnd {
            t.path.push(e.name.clone());
        }
    }
    out
}

/// The black-box artifact one fired trigger produces.
#[derive(Debug, Clone)]
pub struct Postmortem {
    /// Name of the watch that fired.
    pub trigger: String,
    /// Human-readable cause (which metric moved, by how much).
    pub cause: String,
    /// Capture time ([`crate::now_ns`], process-relative).
    pub t_ns: u64,
    /// The frozen flight-recorder tail at capture.
    pub events: Vec<Event>,
    /// The registry snapshot the trigger evaluated.
    pub metrics: Snapshot,
    /// The active `sysfault` log digest, when a campaign published one —
    /// the link that makes an incident replayable from its plan.
    pub fault_digest: Option<u64>,
}

impl Postmortem {
    /// Captures the current recorder tail under `trigger`/`cause`.
    /// Callers freeze the rings first (the [`crate::trigger::TriggerEngine`]
    /// does) so the tail is the incident's, not the capture loop's.
    #[must_use]
    pub fn capture(
        trigger: &str,
        cause: &str,
        metrics: &Snapshot,
        fault_digest: Option<u64>,
    ) -> Postmortem {
        Postmortem {
            trigger: trigger.to_string(),
            cause: cause.to_string(),
            t_ns: crate::now_ns(),
            events: collect_events(),
            metrics: metrics.clone(),
            fault_digest,
        }
    }

    /// The causal traces reconstructable from this postmortem's tail.
    #[must_use]
    pub fn causal_traces(&self) -> Vec<CausalTrace> {
        causal_traces(&self.events)
    }

    /// Serializes the artifact. Schema:
    ///
    /// ```json
    /// { "postmortem": 1, "trigger": ..., "cause": ..., "t_ns": ...,
    ///   "fault_digest": "0x..."|null, "event_count": N,
    ///   "causal_traces": [{"trace_id":..,"tids":[..],"path":[..]}],
    ///   "events": [{"tid":..,"seq":..,"t_ns":..,"kind":..,"name":..,"value":..}],
    ///   "metrics": {"counters": {..}, "gauges": {..}, "hist_counts": {..}} }
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"postmortem\": 1,");
        let _ = writeln!(s, "  \"trigger\": \"{}\",", escape(&self.trigger));
        let _ = writeln!(s, "  \"cause\": \"{}\",", escape(&self.cause));
        let _ = writeln!(s, "  \"t_ns\": {},", self.t_ns);
        match self.fault_digest {
            Some(d) => {
                let _ = writeln!(s, "  \"fault_digest\": \"{d:#018x}\",");
            }
            None => {
                let _ = writeln!(s, "  \"fault_digest\": null,");
            }
        }
        let _ = writeln!(s, "  \"event_count\": {},", self.events.len());

        let traces = self.causal_traces();
        let _ = writeln!(s, "  \"causal_traces\": [");
        for (i, t) in traces.iter().enumerate() {
            let comma = if i + 1 == traces.len() { "" } else { "," };
            let tids: Vec<String> = t.tids.iter().map(ToString::to_string).collect();
            let path: Vec<String> = t
                .path
                .iter()
                .map(|n| format!("\"{}\"", escape(n)))
                .collect();
            let _ = writeln!(
                s,
                "    {{\"trace_id\": {}, \"tids\": [{}], \"path\": [{}]}}{comma}",
                t.trace_id,
                tids.join(", "),
                path.join(", ")
            );
        }
        let _ = writeln!(s, "  ],");

        let _ = writeln!(s, "  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            let comma = if i + 1 == self.events.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"tid\": {}, \"seq\": {}, \"t_ns\": {}, \"kind\": \"{:?}\", \
                 \"name\": \"{}\", \"value\": {}}}{comma}",
                e.tid,
                e.seq,
                e.t_ns,
                e.kind,
                escape(&e.name),
                e.value
            );
        }
        let _ = writeln!(s, "  ],");

        let _ = writeln!(s, "  \"metrics\": {{");
        let counters: Vec<String> = self
            .metrics
            .counters()
            .map(|(k, v)| format!("\"{}\": {v}", escape(k)))
            .collect();
        let _ = writeln!(s, "    \"counters\": {{{}}},", counters.join(", "));
        let gauges: Vec<String> = self
            .metrics
            .gauges()
            .map(|(k, v)| format!("\"{}\": {v}", escape(k)))
            .collect();
        let _ = writeln!(s, "    \"gauges\": {{{}}},", gauges.join(", "));
        let hists: Vec<String> = self
            .metrics
            .hists()
            .map(|(k, h)| format!("\"{}\": {}", escape(k), h.count()))
            .collect();
        let _ = writeln!(s, "    \"hist_counts\": {{{}}}", hists.join(", "));
        let _ = writeln!(s, "  }}");
        s.push_str("}\n");
        s
    }
}

fn escape(raw: &str) -> String {
    raw.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: usize, seq: u64, t_ns: u64, kind: EventKind, name: &str, value: u64) -> Event {
        Event {
            tid,
            seq,
            t_ns,
            kind,
            name: name.to_string(),
            value,
        }
    }

    fn payload(trace: u32, parent: u16, span: u16) -> u64 {
        u64::from(trace) << 32 | u64::from(parent) << 16 | u64::from(span)
    }

    #[test]
    fn causal_traces_group_by_trace_and_order_by_time() {
        let events = vec![
            ev(
                0,
                0,
                10,
                EventKind::SpanBegin,
                "net.dispatch",
                payload(7, 0, 1),
            ),
            ev(
                0,
                1,
                15,
                EventKind::SpanEnd,
                "net.dispatch",
                payload(7, 0, 1),
            ),
            ev(
                2,
                0,
                20,
                EventKind::SpanBegin,
                "net.frame.parse",
                payload(7, 1, 2),
            ),
            ev(
                2,
                1,
                25,
                EventKind::Span,
                "net.frame.egress",
                payload(7, 2, 3),
            ),
            // Unrelated trace on one thread.
            ev(
                1,
                0,
                5,
                EventKind::Span,
                "kernel.ipc.send",
                payload(9, 0, 4),
            ),
            // Payload-less span and an instant: excluded from causality.
            ev(1, 1, 6, EventKind::Span, "kernel.syscall", 0),
            ev(
                1,
                2,
                7,
                EventKind::Instant,
                "kernel.watchdog.reap",
                7u64 << 32,
            ),
        ];
        let traces = causal_traces(&events);
        assert_eq!(traces.len(), 2);
        let t7 = traces.iter().find(|t| t.trace_id == 7).unwrap();
        assert_eq!(t7.tids, vec![0, 2]);
        assert!(t7.crosses_threads());
        assert_eq!(
            t7.path,
            vec!["net.dispatch", "net.frame.parse", "net.frame.egress"],
            "SpanEnds skipped, time order kept"
        );
        let t9 = traces.iter().find(|t| t.trace_id == 9).unwrap();
        assert!(!t9.crosses_threads());
    }

    #[test]
    fn json_is_balanced_escaped_and_names_the_trigger() {
        let mut snap = Snapshot::new();
        snap.set_counter("net.drop.no-route", 42);
        snap.set_gauge("net.ct.live", 3);
        let mut h = crate::LogHistogram::new();
        h.record(100);
        snap.set_hist("lat", h);
        let pm = Postmortem {
            trigger: "drop-rate-spike".into(),
            cause: "counter sum `net.drop.` jumped by 42".into(),
            t_ns: 123,
            events: vec![ev(
                0,
                0,
                10,
                EventKind::SpanBegin,
                "net.\"quoted\"",
                payload(3, 0, 1),
            )],
            metrics: snap,
            fault_digest: Some(0xABCD),
        };
        let json = pm.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"trigger\": \"drop-rate-spike\""), "{json}");
        assert!(json.contains("net.\\\"quoted\\\""), "escaped name: {json}");
        assert!(json.contains("\"fault_digest\": \"0x000000000000abcd\""));
        assert!(json.contains("\"net.drop.no-route\": 42"));
        assert!(json.contains("\"net.ct.live\": 3"));
        assert!(json.contains("\"lat\": 1"));
        assert!(json.contains("\"causal_traces\""));
    }

    #[test]
    fn capture_takes_the_live_tail() {
        let pm = Postmortem::capture("t", "c", &Snapshot::new(), None);
        assert_eq!(pm.trigger, "t");
        assert!(pm.fault_digest.is_none());
        let json = pm.to_json();
        assert!(json.contains("\"fault_digest\": null"));
    }
}
