//! Causal trace context: the trace id + parent span carried across worker
//! channel boundaries and kernel IPC messages, so one sampled packet
//! reconstructs as a single parse→dispatch→route→egress trace even though
//! its stages ran on different threads.
//!
//! A context is two numbers — a process-unique **trace id** (`u32`) and the
//! **current span id** (`u16`, the parent of anything opened next) — packed
//! into one `u64` so it can ride in a batch header field or an IPC message
//! word without allocation:
//!
//! ```text
//! carrier (batch header / Message.ctx):  trace_id << 32 | span_id << 16
//! event payload (ring slot value):       trace_id << 32 | parent << 16 | span
//! ```
//!
//! The thread-local *current* context is consulted by [`crate::recorder::SpanGuard`]:
//! while a context is active, every span records its payload as
//! `(trace, parent, span)` with a freshly allocated span id, and nested
//! spans chain parents. Zero means "no context" everywhere, so untraced
//! code records payload 0 exactly as before.
//!
//! Id allocation is a pair of global counters reset by [`crate::clear`] —
//! that keeps trace shapes deterministic under replay (the E9/E16 campaigns
//! re-run a fault plan and compare digests, which would break if ids came
//! from a clock or RNG).

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};

/// A causal trace context: which trace this thread is contributing to and
/// which span is the current parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Process-unique trace id (never 0 for a live trace).
    pub trace_id: u32,
    /// The span id new child spans will claim as parent (0 = the root).
    pub span_id: u16,
}

impl TraceCtx {
    /// Packs into the carrier form (`trace << 32 | span << 16`).
    #[must_use]
    pub fn packed(self) -> u64 {
        u64::from(self.trace_id) << 32 | u64::from(self.span_id) << 16
    }

    /// Unpacks a carrier word; `None` for 0 (no context).
    #[must_use]
    pub fn from_packed(p: u64) -> Option<TraceCtx> {
        if p == 0 {
            return None;
        }
        #[allow(clippy::cast_possible_truncation)]
        Some(TraceCtx {
            trace_id: (p >> 32) as u32,
            span_id: (p >> 16) as u16,
        })
    }
}

/// The trace id an event payload carries, or `None` for payload 0. Only
/// meaningful for span-kind events — instant and counter payloads are
/// site-defined values, not contexts.
#[must_use]
pub fn payload_trace_id(payload: u64) -> Option<u32> {
    if payload == 0 {
        return None;
    }
    #[allow(clippy::cast_possible_truncation)]
    Some((payload >> 32) as u32)
}

static NEXT_TRACE: AtomicU32 = AtomicU32::new(1);
static NEXT_SPAN: AtomicU32 = AtomicU32::new(1);

thread_local! {
    /// Current context in carrier form; 0 = none.
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// True when a causal context is active on this thread (one thread-local
/// read — the span macros check it on the sampling path).
#[inline]
#[must_use]
pub fn active() -> bool {
    CURRENT.with(|c| c.get() != 0)
}

/// The current context in carrier form (0 if none) — what a dispatcher
/// stamps into a batch header or a kernel attaches to an IPC message.
#[inline]
#[must_use]
pub fn current_packed() -> u64 {
    CURRENT.with(Cell::get)
}

/// The current context, if any.
#[must_use]
pub fn current() -> Option<TraceCtx> {
    TraceCtx::from_packed(current_packed())
}

/// Restores the previous context when dropped.
#[derive(Debug)]
pub struct CtxGuard {
    prev: u64,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Starts a fresh trace rooted on this thread and makes it current for the
/// guard's lifetime. Callers decide *whether* to root (that's the
/// sampler's 1-in-N draw); this only allocates the identity.
#[must_use]
pub fn start_trace() -> CtxGuard {
    let trace_id = {
        // Skip 0: it means "no trace" in every packed form.
        let mut id = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        if id == 0 {
            id = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        }
        id
    };
    enter_packed(
        TraceCtx {
            trace_id,
            span_id: 0,
        }
        .packed(),
    )
}

/// Adopts a context received from another thread (a batch header, an IPC
/// message) for the guard's lifetime. A packed value of 0 is a no-op guard.
#[must_use]
pub fn enter_packed(packed: u64) -> CtxGuard {
    CURRENT.with(|c| {
        let prev = c.get();
        if packed != 0 {
            c.set(packed);
        }
        CtxGuard { prev }
    })
}

fn alloc_span_id() -> u16 {
    // u16 ids wrap; within one short-lived trace they stay unique in
    // practice, and collisions only blur parent edges, never trace
    // membership (the trace id is the grouping key).
    #[allow(clippy::cast_possible_truncation)]
    let mut id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed) as u16;
    if id == 0 {
        #[allow(clippy::cast_possible_truncation)]
        {
            id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed) as u16;
        }
    }
    id
}

/// Opens a child span under the current context: returns the event payload
/// `(trace, parent, child)` and the previous carrier word to restore on
/// close. With no context active, returns `(0, current)` and changes
/// nothing.
#[must_use]
pub fn begin_span() -> (u64, u64) {
    CURRENT.with(|c| {
        let cur = c.get();
        match TraceCtx::from_packed(cur) {
            None => (0, cur),
            Some(ctx) => {
                let child = alloc_span_id();
                let payload =
                    u64::from(ctx.trace_id) << 32 | u64::from(ctx.span_id) << 16 | u64::from(child);
                c.set(
                    TraceCtx {
                        trace_id: ctx.trace_id,
                        span_id: child,
                    }
                    .packed(),
                );
                (payload, cur)
            }
        }
    })
}

/// Closes the span opened by the matching [`begin_span`].
pub fn end_span(prev: u64) {
    CURRENT.with(|c| c.set(prev));
}

/// Payload for a single-event marker span ([`crate::obs_span_hot!`]) under
/// the current context: a fresh child id that does *not* become current.
/// 0 when no context is active.
#[must_use]
pub fn mark_payload() -> u64 {
    CURRENT.with(|c| match TraceCtx::from_packed(c.get()) {
        None => 0,
        Some(ctx) => {
            u64::from(ctx.trace_id) << 32
                | u64::from(ctx.span_id) << 16
                | u64::from(alloc_span_id())
        }
    })
}

/// Resets the trace/span id counters (called from [`crate::clear`]): replayed
/// campaigns must allocate identical ids so trace shapes digest identically.
pub(crate) fn reset_ids() {
    NEXT_TRACE.store(1, Ordering::Relaxed);
    NEXT_SPAN.store(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        let ctx = TraceCtx {
            trace_id: 0xDEAD_BEEF,
            span_id: 0x1234,
        };
        assert_eq!(TraceCtx::from_packed(ctx.packed()), Some(ctx));
        assert_eq!(TraceCtx::from_packed(0), None);
        assert_eq!(payload_trace_id(ctx.packed()), Some(0xDEAD_BEEF));
        assert_eq!(payload_trace_id(0), None);
    }

    #[test]
    fn start_trace_activates_and_guard_restores() {
        assert!(!active());
        {
            let _g = start_trace();
            assert!(active());
            let ctx = current().unwrap();
            assert_ne!(ctx.trace_id, 0);
            assert_eq!(ctx.span_id, 0, "root parent is span 0");
        }
        assert!(!active(), "guard must restore the previous (empty) context");
    }

    #[test]
    fn begin_span_chains_parents() {
        let _g = start_trace();
        let trace = current().unwrap().trace_id;
        let (p1, prev1) = begin_span();
        let outer = current().unwrap().span_id;
        assert_eq!(payload_trace_id(p1), Some(trace));
        assert_eq!((p1 >> 16) & 0xFFFF, 0, "outer span's parent is the root");
        let (p2, prev2) = begin_span();
        assert_eq!(
            (p2 >> 16) & 0xFFFF,
            u64::from(outer),
            "inner span's parent is the outer span"
        );
        end_span(prev2);
        assert_eq!(current().unwrap().span_id, outer);
        end_span(prev1);
        assert_eq!(current().unwrap().span_id, 0);
    }

    #[test]
    fn no_context_means_zero_payloads() {
        assert_eq!(current_packed(), 0);
        let (p, prev) = begin_span();
        assert_eq!(p, 0);
        end_span(prev);
        assert_eq!(mark_payload(), 0);
        let g = enter_packed(0);
        assert!(!active(), "entering packed 0 is a no-op");
        drop(g);
    }

    #[test]
    fn cross_thread_adoption_shares_the_trace_id() {
        let _g = start_trace();
        let carrier = current_packed();
        let trace = current().unwrap().trace_id;
        let remote = std::thread::spawn(move || {
            let _g = enter_packed(carrier);
            let (payload, prev) = begin_span();
            end_span(prev);
            payload
        })
        .join()
        .unwrap();
        assert_eq!(payload_trace_id(remote), Some(trace));
    }
}
