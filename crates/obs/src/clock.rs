//! A cheap process-relative monotonic clock.
//!
//! Every trace event carries a timestamp. `Instant` is monotonic but not
//! serializable; this module pins one `Instant` at first use and reports
//! nanoseconds since that origin as a plain `u64`, which packs into a ring
//! slot and renders directly as the Chrome `trace_event` `ts` field.

use std::sync::OnceLock;
use std::time::Instant;

static ORIGIN: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process's trace origin (the first call wins the
/// race to define time zero). Monotonic; saturates at `u64::MAX` after
/// ~584 years of uptime.
#[must_use]
pub fn now_ns() -> u64 {
    let origin = ORIGIN.get_or_init(Instant::now);
    u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn clock_advances_across_a_sleep() {
        let a = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = now_ns();
        assert!(b - a >= 1_000_000, "2 ms sleep advanced only {} ns", b - a);
    }
}
