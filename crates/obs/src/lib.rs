//! `sysobs` — flight-recorder tracing and unified metrics for the PLOS06
//! reproduction stack.
//!
//! The paper's systems programmers keep C partly because observability in
//! managed runtimes costs them the performance they are measuring. This
//! crate is the counter-demonstration: one observability layer shared by
//! the kernel, memory, concurrency, and network crates whose *disabled*
//! cost is a single relaxed atomic load per instrumentation site — cheap
//! enough to leave compiled into the hot paths — with the overhead of every
//! mode measured by experiment E11 rather than asserted.
//!
//! Three pieces:
//!
//! - **Flight recorder** ([`recorder`]): lock-free per-thread ring buffers
//!   of typed events (span begin/end, instants, counter samples) with
//!   per-thread sequence numbers and a process-relative monotonic clock.
//!   Dumpable any time — including from the installed panic hook — as
//!   Chrome `trace_event` JSON or plain text, and digestible into a
//!   timestamp-free *shape* for replay comparison against `sysfault`
//!   fault-schedule digests.
//! - **Metrics** ([`metrics`]): a registry of named counters, gauges, and
//!   log-bucketed [`LogHistogram`]s, all snapshotting into one
//!   deterministic [`Snapshot`] value so kernel fault stats, GC pause
//!   histograms, channel/STM retry counters, and router drop counters
//!   finally share a type.
//! - **Macros** ([`obs_span!`], [`obs_count!`], [`obs_instant!`],
//!   [`obs_hist!`]): per-callsite cached instrumentation that compiles to a
//!   mode check plus a `OnceLock` read when enabled, and to just the mode
//!   check when disabled.
//!
//! # Modes
//!
//! [`Mode::Disabled`] — macros check one atomic and do nothing else.
//! [`Mode::Counters`] — counters/gauges/histograms update; no ring writes.
//! [`Mode::Sampled`] — counters plus 1-in-N flight-recorder events per
//! site, with N tuned by the [`sampler`] feedback loop — the always-on
//! production setting.
//! [`Mode::Tracing`] — counters *and* every flight-recorder event.
//!
//! On top of the recorder sit the always-on pieces: [`context`] carries a
//! trace id + parent span across threads and IPC so sampled packets
//! reconstruct causally, [`trigger`] watches the metrics registry for
//! anomalies, and [`postmortem`] freezes the rings and writes the
//! black-box JSON artifact when one fires.

pub mod clock;
pub mod context;
pub mod hist;
pub mod metrics;
pub mod postmortem;
pub mod recorder;
pub mod sampler;
pub mod trigger;

pub use clock::now_ns;
pub use context::{CtxGuard, TraceCtx};
pub use hist::{LogHistogram, BUCKETS};
pub use metrics::{
    registry, AtomicHistogram, Counter, CounterCell, Gauge, HistCell, Registry, Snapshot,
};
pub use postmortem::{CausalTrace, Postmortem};
pub use recorder::{
    clear, collect_events, dump_chrome_json, dump_text, freeze, instant_dynamic, intern, is_frozen,
    shape_digest, unfreeze, Event, EventKind, SpanGuard, RING_CAP,
};
pub use trigger::{Condition, TriggerEngine, Watch};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, Once, PoisonError};

/// How much the instrumentation sites do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Sites compile to a single relaxed atomic load.
    Disabled = 0,
    /// Metrics (counters/gauges/histograms) update; no trace events.
    Counters = 1,
    /// Metrics plus sampled flight-recorder events: each span site admits
    /// 1-in-N recordings (see [`sampler`]), except that instants always
    /// record and a live causal context admits everything it touches.
    Sampled = 2,
    /// Metrics plus every flight-recorder event.
    Tracing = 3,
}

static MODE: AtomicU8 = AtomicU8::new(Mode::Disabled as u8);

/// Sets the global observability mode.
pub fn set_mode(mode: Mode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// Current observability mode.
#[must_use]
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        0 => Mode::Disabled,
        1 => Mode::Counters,
        2 => Mode::Sampled,
        _ => Mode::Tracing,
    }
}

/// True when metrics should update (any mode but Disabled). This is the
/// single relaxed load every disabled site pays.
#[inline]
#[must_use]
pub fn metrics_on() -> bool {
    MODE.load(Ordering::Relaxed) != Mode::Disabled as u8
}

/// True when every flight-recorder event should be written (full tracing
/// only — sampled sites go through [`sampler::admit`]).
#[inline]
#[must_use]
pub fn tracing_on() -> bool {
    MODE.load(Ordering::Relaxed) == Mode::Tracing as u8
}

/// True when the flight-recorder path is live at all (Sampled or Tracing):
/// the mode check span sites make before consulting the sampler.
#[inline]
#[must_use]
pub fn trace_path_on() -> bool {
    MODE.load(Ordering::Relaxed) >= Mode::Sampled as u8
}

/// FNV-1a over a byte slice — the one hash shared by `sysfault` digests,
/// `sysnet` flow hashing, sysobs name interning checks, and the trace shape
/// digest. Deduplicated here so the constants exist exactly once.
#[inline]
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The text dump the last panic captured, if any (see
/// [`install_panic_dump`]). The regression suite reads this to prove a
/// crashing run actually leaves its flight data behind; a production
/// harness could ship it instead of stderr.
static LAST_PANIC_DUMP: Mutex<Option<String>> = Mutex::new(None);

/// The flight-recorder dump captured by the most recent panic, if the
/// panic hook was installed and observability was on.
#[must_use]
pub fn last_panic_dump() -> Option<String> {
    LAST_PANIC_DUMP
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Installs a panic hook that captures the flight recorder's text dump
/// (ring tail + metrics snapshot) and writes it to stderr before the
/// default hook runs, so a crashing run leaves its last [`RING_CAP`]
/// events per thread behind. The captured dump is also retrievable via
/// [`last_panic_dump`]. Idempotent; chains the previous hook.
pub fn install_panic_dump() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if metrics_on() {
                let dump = dump_text();
                eprintln!("--- sysobs flight recorder (panic dump) ---");
                eprint!("{dump}");
                eprintln!("--- end flight recorder ---");
                *LAST_PANIC_DUMP
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(dump);
            }
            prev(info);
        }));
    });
}

/// Opens a named span for the rest of the enclosing scope when the trace
/// path is live. Under [`Mode::Tracing`] every hit records; under
/// [`Mode::Sampled`] the site's 1-in-N draw (or a live causal context)
/// decides. Expands to one relaxed atomic load when disabled.
///
/// ```
/// # use sysobs::obs_span;
/// fn schedule() {
///     obs_span!("kernel.schedule");
///     // ... span closes when the scope ends
/// }
/// ```
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {
        let _obs_span_guard = if $crate::trace_path_on() {
            static ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            static SITE: $crate::sampler::SampleSite = $crate::sampler::SampleSite::new();
            if $crate::sampler::admit(&SITE, $name) {
                Some($crate::SpanGuard::enter(
                    *ID.get_or_init(|| $crate::intern($name)),
                ))
            } else {
                None
            }
        } else {
            None
        };
    };
}

/// Roots a sampled causal trace at a boundary site (a dispatcher batching
/// frames, an IPC client starting a round-trip) and evaluates to an
/// `Option<CtxGuard>` — bind it to keep the context live for the scope.
/// The site's 1-in-N draw decides whether this hit becomes a trace; when it
/// does, every downstream [`obs_span!`] records under the context (head
/// sampling: sampled traces are *complete* traces). A no-op `None` when the
/// trace path is off or a context is already active (the packet was rooted
/// upstream).
///
/// ```
/// # use sysobs::obs_trace_root;
/// fn dispatch_batch() {
///     let _root = obs_trace_root!("net.dispatch");
///     // ctx (if rooted) is live until _root drops
/// }
/// ```
#[macro_export]
macro_rules! obs_trace_root {
    ($name:expr) => {{
        if $crate::trace_path_on() && !$crate::context::active() {
            static SITE: $crate::sampler::SampleSite = $crate::sampler::SampleSite::new();
            if $crate::sampler::admit(&SITE, $name) {
                Some($crate::context::start_trace())
            } else {
                None
            }
        } else {
            None
        }
    }};
}

/// Marks a named span on a sub-microsecond path when tracing is on: one
/// ring write with one clock read, instead of the begin/end pair (two of
/// each) that [`obs_span!`] costs. The span collapses to a single
/// [`EventKind::Span`] marker — ordering and trace shape survive; the
/// duration (which would be clock noise at this scale) does not. Expands to
/// one relaxed atomic load when disabled.
///
/// ```
/// # use sysobs::obs_span_hot;
/// fn syscall_entry() {
///     obs_span_hot!("kernel.syscall");
/// }
/// ```
#[macro_export]
macro_rules! obs_span_hot {
    ($name:expr) => {
        if $crate::trace_path_on() {
            static ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            static SITE: $crate::sampler::SampleSite = $crate::sampler::SampleSite::new();
            if $crate::sampler::admit(&SITE, $name) {
                $crate::recorder::record(
                    $crate::EventKind::Span,
                    *ID.get_or_init(|| $crate::intern($name)),
                    $crate::context::mark_payload(),
                );
            }
        }
    };
    // Marker carrying an explicit causal payload received from elsewhere
    // (an IPC message's ctx word): records whenever the trace path is live
    // and the payload names a trace — the packet already won its draw at
    // the root, so no local sampling decision applies.
    ($name:expr, ctx = $ctx:expr) => {
        if $crate::trace_path_on() {
            let ctx: u64 = $ctx;
            if ctx != 0 {
                static ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
                $crate::recorder::record(
                    $crate::EventKind::Span,
                    *ID.get_or_init(|| $crate::intern($name)),
                    ctx,
                );
            }
        }
    };
}

/// Adds to a named registry counter (and samples it into the trace when
/// full tracing is on). One relaxed load when disabled.
///
/// ```
/// # use sysobs::obs_count;
/// obs_count!("chan.sends", 1);
/// ```
#[macro_export]
macro_rules! obs_count {
    ($name:expr, $delta:expr) => {
        if $crate::metrics_on() {
            static CELL: $crate::CounterCell = $crate::CounterCell::new();
            let delta: u64 = $delta;
            CELL.get($name).add(delta);
            if $crate::tracing_on() {
                static ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
                $crate::recorder::record(
                    $crate::EventKind::CounterSample,
                    *ID.get_or_init(|| $crate::intern($name)),
                    delta,
                );
            }
        }
    };
}

/// Records an instant event with a payload value when the trace path is
/// live. Instants are *not* sampled — they mark rare anomalies (faults,
/// reaps, sheds), which are exactly what a sampled production trace must
/// never miss.
///
/// ```
/// # use sysobs::obs_instant;
/// obs_instant!("kernel.watchdog.reap", 42u64);
/// ```
#[macro_export]
macro_rules! obs_instant {
    ($name:expr, $value:expr) => {
        if $crate::trace_path_on() {
            static ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::recorder::record(
                $crate::EventKind::Instant,
                *ID.get_or_init(|| $crate::intern($name)),
                $value,
            );
        }
    };
}

/// Records a sample into a named registry histogram. One relaxed load when
/// disabled.
///
/// ```
/// # use sysobs::obs_hist;
/// obs_hist!("stm.attempts", 3u64);
/// ```
#[macro_export]
macro_rules! obs_hist {
    ($name:expr, $value:expr) => {
        if $crate::metrics_on() {
            static CELL: $crate::HistCell = $crate::HistCell::new();
            CELL.get($name).record($value);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn mode_round_trips() {
        // Serialized against other mode-flipping tests only by virtue of
        // touching distinct metric names; mode itself is restored.
        let prev = mode();
        set_mode(Mode::Counters);
        assert!(metrics_on());
        assert!(!tracing_on());
        assert!(!trace_path_on());
        set_mode(Mode::Sampled);
        assert_eq!(mode(), Mode::Sampled);
        assert!(metrics_on());
        assert!(!tracing_on(), "sampled is not full tracing");
        assert!(trace_path_on());
        set_mode(Mode::Tracing);
        assert!(metrics_on());
        assert!(tracing_on());
        assert!(trace_path_on());
        set_mode(Mode::Disabled);
        assert!(!metrics_on());
        assert!(!trace_path_on());
        set_mode(prev);
    }

    #[test]
    fn macros_are_inert_when_disabled() {
        let prev = mode();
        set_mode(Mode::Disabled);
        obs_count!("test.lib.inert", 5);
        obs_hist!("test.lib.inert.hist", 9);
        obs_instant!("test.lib.inert.instant", 1u64);
        {
            obs_span!("test.lib.inert.span");
        }
        set_mode(prev);
        let snap = registry().snapshot();
        assert_eq!(snap.counter("test.lib.inert"), 0);
        assert!(snap.hist("test.lib.inert.hist").is_none());
    }

    #[test]
    fn count_macro_updates_registry_when_enabled() {
        let prev = mode();
        set_mode(Mode::Counters);
        obs_count!("test.lib.counted", 3);
        obs_count!("test.lib.counted", 4);
        obs_hist!("test.lib.counted.hist", 128u64);
        set_mode(prev);
        let snap = registry().snapshot();
        assert_eq!(snap.counter("test.lib.counted"), 7);
        assert_eq!(
            snap.hist("test.lib.counted.hist").map(sysobs_hist_count),
            Some(1)
        );
    }

    fn sysobs_hist_count(h: &LogHistogram) -> u64 {
        h.count()
    }

    #[test]
    fn install_panic_dump_is_idempotent() {
        install_panic_dump();
        install_panic_dump();
    }
}
