//! `sysobs` — flight-recorder tracing and unified metrics for the PLOS06
//! reproduction stack.
//!
//! The paper's systems programmers keep C partly because observability in
//! managed runtimes costs them the performance they are measuring. This
//! crate is the counter-demonstration: one observability layer shared by
//! the kernel, memory, concurrency, and network crates whose *disabled*
//! cost is a single relaxed atomic load per instrumentation site — cheap
//! enough to leave compiled into the hot paths — with the overhead of every
//! mode measured by experiment E11 rather than asserted.
//!
//! Three pieces:
//!
//! - **Flight recorder** ([`recorder`]): lock-free per-thread ring buffers
//!   of typed events (span begin/end, instants, counter samples) with
//!   per-thread sequence numbers and a process-relative monotonic clock.
//!   Dumpable any time — including from the installed panic hook — as
//!   Chrome `trace_event` JSON or plain text, and digestible into a
//!   timestamp-free *shape* for replay comparison against `sysfault`
//!   fault-schedule digests.
//! - **Metrics** ([`metrics`]): a registry of named counters, gauges, and
//!   log-bucketed [`LogHistogram`]s, all snapshotting into one
//!   deterministic [`Snapshot`] value so kernel fault stats, GC pause
//!   histograms, channel/STM retry counters, and router drop counters
//!   finally share a type.
//! - **Macros** ([`obs_span!`], [`obs_count!`], [`obs_instant!`],
//!   [`obs_hist!`]): per-callsite cached instrumentation that compiles to a
//!   mode check plus a `OnceLock` read when enabled, and to just the mode
//!   check when disabled.
//!
//! # Modes
//!
//! [`Mode::Disabled`] — macros check one atomic and do nothing else.
//! [`Mode::Counters`] — counters/gauges/histograms update; no ring writes.
//! [`Mode::Tracing`] — counters *and* flight-recorder events.

pub mod clock;
pub mod hist;
pub mod metrics;
pub mod recorder;

pub use clock::now_ns;
pub use hist::{LogHistogram, BUCKETS};
pub use metrics::{
    registry, AtomicHistogram, Counter, CounterCell, Gauge, HistCell, Registry, Snapshot,
};
pub use recorder::{
    clear, collect_events, dump_chrome_json, dump_text, instant_dynamic, intern, shape_digest,
    Event, EventKind, SpanGuard, RING_CAP,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// How much the instrumentation sites do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Sites compile to a single relaxed atomic load.
    Disabled = 0,
    /// Metrics (counters/gauges/histograms) update; no trace events.
    Counters = 1,
    /// Metrics plus flight-recorder events.
    Tracing = 2,
}

static MODE: AtomicU8 = AtomicU8::new(Mode::Disabled as u8);

/// Sets the global observability mode.
pub fn set_mode(mode: Mode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// Current observability mode.
#[must_use]
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        0 => Mode::Disabled,
        1 => Mode::Counters,
        _ => Mode::Tracing,
    }
}

/// True when metrics should update (Counters or Tracing). This is the single
/// relaxed load every disabled site pays.
#[inline]
#[must_use]
pub fn metrics_on() -> bool {
    MODE.load(Ordering::Relaxed) != Mode::Disabled as u8
}

/// True when flight-recorder events should be written.
#[inline]
#[must_use]
pub fn tracing_on() -> bool {
    MODE.load(Ordering::Relaxed) == Mode::Tracing as u8
}

/// FNV-1a over a byte slice — the one hash shared by `sysfault` digests,
/// `sysnet` flow hashing, sysobs name interning checks, and the trace shape
/// digest. Deduplicated here so the constants exist exactly once.
#[inline]
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Installs a panic hook that writes the flight recorder's text dump to
/// stderr before the default hook runs, so a crashing run leaves its last
/// [`RING_CAP`] events per thread behind. Idempotent; chains the previous
/// hook.
pub fn install_panic_dump() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if tracing_on() {
                eprintln!("--- sysobs flight recorder (panic dump) ---");
                eprint!("{}", dump_text());
                eprintln!("--- end flight recorder ---");
            }
            prev(info);
        }));
    });
}

/// Opens a named span for the rest of the enclosing scope when tracing is
/// on. Expands to one relaxed atomic load when disabled.
///
/// ```
/// # use sysobs::obs_span;
/// fn schedule() {
///     obs_span!("kernel.schedule");
///     // ... span closes when the scope ends
/// }
/// ```
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {
        let _obs_span_guard = if $crate::tracing_on() {
            static ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            Some($crate::SpanGuard::enter(
                *ID.get_or_init(|| $crate::intern($name)),
            ))
        } else {
            None
        };
    };
}

/// Marks a named span on a sub-microsecond path when tracing is on: one
/// ring write with one clock read, instead of the begin/end pair (two of
/// each) that [`obs_span!`] costs. The span collapses to a single
/// [`EventKind::Span`] marker — ordering and trace shape survive; the
/// duration (which would be clock noise at this scale) does not. Expands to
/// one relaxed atomic load when disabled.
///
/// ```
/// # use sysobs::obs_span_hot;
/// fn syscall_entry() {
///     obs_span_hot!("kernel.syscall");
/// }
/// ```
#[macro_export]
macro_rules! obs_span_hot {
    ($name:expr) => {
        if $crate::tracing_on() {
            static ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::recorder::record(
                $crate::EventKind::Span,
                *ID.get_or_init(|| $crate::intern($name)),
                0,
            );
        }
    };
}

/// Adds to a named registry counter (and samples it into the trace when
/// full tracing is on). One relaxed load when disabled.
///
/// ```
/// # use sysobs::obs_count;
/// obs_count!("chan.sends", 1);
/// ```
#[macro_export]
macro_rules! obs_count {
    ($name:expr, $delta:expr) => {
        if $crate::metrics_on() {
            static CELL: $crate::CounterCell = $crate::CounterCell::new();
            let delta: u64 = $delta;
            CELL.get($name).add(delta);
            if $crate::tracing_on() {
                static ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
                $crate::recorder::record(
                    $crate::EventKind::CounterSample,
                    *ID.get_or_init(|| $crate::intern($name)),
                    delta,
                );
            }
        }
    };
}

/// Records an instant event with a payload value when full tracing is on.
///
/// ```
/// # use sysobs::obs_instant;
/// obs_instant!("kernel.watchdog.reap", 42u64);
/// ```
#[macro_export]
macro_rules! obs_instant {
    ($name:expr, $value:expr) => {
        if $crate::tracing_on() {
            static ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::recorder::record(
                $crate::EventKind::Instant,
                *ID.get_or_init(|| $crate::intern($name)),
                $value,
            );
        }
    };
}

/// Records a sample into a named registry histogram. One relaxed load when
/// disabled.
///
/// ```
/// # use sysobs::obs_hist;
/// obs_hist!("stm.attempts", 3u64);
/// ```
#[macro_export]
macro_rules! obs_hist {
    ($name:expr, $value:expr) => {
        if $crate::metrics_on() {
            static CELL: $crate::HistCell = $crate::HistCell::new();
            CELL.get($name).record($value);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn mode_round_trips() {
        // Serialized against other mode-flipping tests only by virtue of
        // touching distinct metric names; mode itself is restored.
        let prev = mode();
        set_mode(Mode::Counters);
        assert!(metrics_on());
        assert!(!tracing_on());
        set_mode(Mode::Tracing);
        assert!(metrics_on());
        assert!(tracing_on());
        set_mode(Mode::Disabled);
        assert!(!metrics_on());
        set_mode(prev);
    }

    #[test]
    fn macros_are_inert_when_disabled() {
        let prev = mode();
        set_mode(Mode::Disabled);
        obs_count!("test.lib.inert", 5);
        obs_hist!("test.lib.inert.hist", 9);
        obs_instant!("test.lib.inert.instant", 1u64);
        {
            obs_span!("test.lib.inert.span");
        }
        set_mode(prev);
        let snap = registry().snapshot();
        assert_eq!(snap.counter("test.lib.inert"), 0);
        assert!(snap.hist("test.lib.inert.hist").is_none());
    }

    #[test]
    fn count_macro_updates_registry_when_enabled() {
        let prev = mode();
        set_mode(Mode::Counters);
        obs_count!("test.lib.counted", 3);
        obs_count!("test.lib.counted", 4);
        obs_hist!("test.lib.counted.hist", 128u64);
        set_mode(prev);
        let snap = registry().snapshot();
        assert_eq!(snap.counter("test.lib.counted"), 7);
        assert_eq!(
            snap.hist("test.lib.counted.hist").map(sysobs_hist_count),
            Some(1)
        );
    }

    fn sysobs_hist_count(h: &LogHistogram) -> u64 {
        h.count()
    }

    #[test]
    fn install_panic_dump_is_idempotent() {
        install_panic_dump();
        install_panic_dump();
    }
}
