//! The flight recorder: a lock-free, per-thread ring buffer of typed trace
//! events, dumpable on demand (or from a panic hook) as Chrome
//! `trace_event` JSON or a plain-text snapshot.
//!
//! Design constraints, in order:
//!
//! 1. **The hot path never blocks.** Each thread owns its ring; recording is
//!    a handful of relaxed/release stores into pre-allocated slots guarded
//!    by a per-slot sequence word (a seqlock). No allocation, no lock, no
//!    CAS on the write side.
//! 2. **Dumps are best-effort and non-quiescent.** A dumper walks every
//!    registered ring and keeps only slots whose sequence word read the
//!    same (and even) before and after the payload — torn writes are simply
//!    skipped. The registry of rings is behind a mutex, but it is touched
//!    only at thread registration and dump time, never per event.
//! 3. **Bounded memory.** [`RING_CAP`] events per thread, newest wins: a
//!    flight recorder keeps the *last* moments before the incident, which
//!    is the part worth keeping.
//!
//! Event names are interned `u32` ids so a slot is four words; per-site
//! caching (see [`crate::obs_span!`]) makes interning a one-time cost.

use crate::clock::now_ns;
use crate::fnv1a;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Events retained per thread (newest-wins wraparound).
pub const RING_CAP: usize = 4096;

/// What a trace event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A span opened (matching [`EventKind::SpanEnd`] closes it).
    SpanBegin = 0,
    /// A span closed.
    SpanEnd = 1,
    /// A point-in-time marker (faults, reaps, sheds).
    Instant = 2,
    /// A counter increment sampled into the trace (full-tracing mode only).
    CounterSample = 3,
    /// A complete span collapsed into a single marker event — the hot-path
    /// form [`crate::obs_span_hot!`] emits: one ring write and one clock
    /// read instead of a begin/end pair. Sub-microsecond sites use this;
    /// their duration would be clock noise anyway, and the marker preserves
    /// ordering and shape.
    Span = 4,
}

impl EventKind {
    fn from_u8(v: u8) -> EventKind {
        match v {
            0 => EventKind::SpanBegin,
            1 => EventKind::SpanEnd,
            2 => EventKind::Instant,
            4 => EventKind::Span,
            _ => EventKind::CounterSample,
        }
    }

    /// Chrome `trace_event` phase letter.
    #[must_use]
    pub fn phase(self) -> char {
        match self {
            EventKind::SpanBegin => 'B',
            EventKind::SpanEnd => 'E',
            EventKind::Instant => 'i',
            EventKind::CounterSample => 'C',
            EventKind::Span => 'X',
        }
    }
}

/// One decoded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Ring id of the recording thread (registration order).
    pub tid: usize,
    /// Per-thread sequence number (monotonic; gaps mean overwritten slots).
    pub seq: u64,
    /// Nanoseconds since the trace origin ([`crate::clock::now_ns`]).
    pub t_ns: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Resolved event name.
    pub name: String,
    /// Payload value (counter delta, fault call number, pid — site-defined).
    pub value: u64,
}

/// A slot is a seqlock: `seq` is 0 when empty, odd while a write is in
/// flight, and `(ring_seq + 1) << 1` once published.
struct Slot {
    seq: AtomicU64,
    t_ns: AtomicU64,
    kind_name: AtomicU64,
    value: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            kind_name: AtomicU64::new(0),
            value: AtomicU64::new(0),
        }
    }
}

/// One thread's ring. The owning thread is the only writer; dumpers read
/// concurrently through the per-slot seqlocks.
struct Ring {
    tid: usize,
    /// Next per-thread sequence number (written only by the owner; atomic so
    /// dumpers may load it for diagnostics).
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl Ring {
    fn record(&self, kind: EventKind, name_id: u32, value: u64) {
        let seq = self.head.load(Ordering::Relaxed);
        self.head.store(seq + 1, Ordering::Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        let slot = &self.slots[(seq % RING_CAP as u64) as usize];
        let published = (seq + 1) << 1;
        // Mark the slot in-flight (odd), publish payload, then publish the
        // even sequence word. Release on the final store pairs with the
        // dumper's acquire loads.
        slot.seq.store(published | 1, Ordering::Relaxed);
        slot.t_ns.store(now_ns(), Ordering::Relaxed);
        slot.kind_name.store(
            u64::from(kind as u8) << 32 | u64::from(name_id),
            Ordering::Relaxed,
        );
        slot.value.store(value, Ordering::Relaxed);
        slot.seq.store(published, Ordering::Release);
    }

    fn drain_valid(&self, out: &mut Vec<Event>, names: &Interner) {
        for slot in &self.slots {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue;
            }
            let t_ns = slot.t_ns.load(Ordering::Acquire);
            let kind_name = slot.kind_name.load(Ordering::Acquire);
            let value = slot.value.load(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 != s2 {
                continue; // torn: a writer lapped us mid-read
            }
            #[allow(clippy::cast_possible_truncation)]
            let kind = EventKind::from_u8((kind_name >> 32) as u8);
            #[allow(clippy::cast_possible_truncation)]
            let name_id = kind_name as u32;
            out.push(Event {
                tid: self.tid,
                seq: (s1 >> 1) - 1,
                t_ns,
                kind,
                name: names.resolve(name_id),
                value,
            });
        }
    }

    fn clear(&self) {
        for slot in &self.slots {
            slot.seq.store(0, Ordering::Release);
        }
    }
}

/// Name interner: ids are dense, names live for the process.
#[derive(Default)]
struct Interner {
    by_name: Mutex<HashMap<String, u32>>,
    names: Mutex<Vec<String>>,
}

impl Interner {
    fn intern(&self, name: &str) -> u32 {
        let mut map = self.by_name.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = map.get(name) {
            return id;
        }
        let mut names = self.names.lock().unwrap_or_else(PoisonError::into_inner);
        let id = u32::try_from(names.len()).expect("fewer than 2^32 distinct event names");
        names.push(name.to_string());
        map.insert(name.to_string(), id);
        id
    }

    fn resolve(&self, id: u32) -> String {
        self.names
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("?{id}"))
    }
}

struct Recorder {
    rings: Mutex<Vec<Arc<Ring>>>,
    next_tid: AtomicUsize,
    names: Interner,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        rings: Mutex::new(Vec::new()),
        next_tid: AtomicUsize::new(0),
        names: Interner::default(),
    })
}

thread_local! {
    static RING: Arc<Ring> = {
        let rec = recorder();
        let tid = rec.next_tid.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(Ring {
            tid,
            head: AtomicU64::new(0),
            slots: (0..RING_CAP).map(|_| Slot::empty()).collect(),
        });
        rec.rings.lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&ring));
        ring
    };
}

/// Interns `name` and returns its id. Macro sites cache the result in a
/// `OnceLock` so the interner's mutex is touched once per site.
#[must_use]
pub fn intern(name: &str) -> u32 {
    recorder().names.intern(name)
}

/// Freeze flag: while set, every ring ignores writes, so a dumper reading
/// an incident's tail races nothing. One relaxed load per record — paid
/// only on the (already ring-writing) trace path.
static FROZEN: AtomicBool = AtomicBool::new(false);

/// Freezes every ring: subsequent [`record`] calls drop silently until
/// [`unfreeze`]. The trigger engine calls this the moment a watch fires so
/// the postmortem captures the events *leading up to* the anomaly instead
/// of whatever churns past while the capture runs.
pub fn freeze() {
    FROZEN.store(true, Ordering::Release);
}

/// Resumes recording after a [`freeze`].
pub fn unfreeze() {
    FROZEN.store(false, Ordering::Release);
}

/// True while the rings are frozen.
#[must_use]
pub fn is_frozen() -> bool {
    FROZEN.load(Ordering::Relaxed)
}

/// Records a raw event into the calling thread's ring. Callers must have
/// checked [`crate::tracing_on`] already (the macros do). Dropped while
/// the rings are [frozen](freeze).
pub fn record(kind: EventKind, name_id: u32, value: u64) {
    if FROZEN.load(Ordering::Relaxed) {
        return;
    }
    RING.with(|r| r.record(kind, name_id, value));
}

/// Records an instant event under a runtime-built name (fault sites are
/// runtime strings). No-op unless the trace path is live (instants are not
/// sampled — fault firings are precisely what a sampled trace must keep);
/// interning cost is paid per call, which is fine for rare events.
pub fn instant_dynamic(name: &str, value: u64) {
    if crate::trace_path_on() {
        record(EventKind::Instant, intern(name), value);
    }
}

/// An RAII span: records `SpanBegin` on construction and `SpanEnd` on drop.
/// While a causal [`crate::context`] is active on the thread, both events
/// carry the packed `(trace, parent, span)` payload and nested spans chain
/// parents; otherwise the payload is 0, as before.
#[derive(Debug)]
pub struct SpanGuard {
    name_id: u32,
    payload: u64,
    ctx_prev: u64,
}

impl SpanGuard {
    /// Opens a span (callers must have checked [`crate::tracing_on`]).
    #[must_use]
    pub fn enter(name_id: u32) -> SpanGuard {
        let (payload, ctx_prev) = crate::context::begin_span();
        record(EventKind::SpanBegin, name_id, payload);
        SpanGuard {
            name_id,
            payload,
            ctx_prev,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        record(EventKind::SpanEnd, self.name_id, self.payload);
        crate::context::end_span(self.ctx_prev);
    }
}

/// Total events ever written across every thread's ring (the sum of ring
/// heads — monotonic, surviving [`clear`]). The sampler's feedback loop
/// reads this each window to price recorded events rather than admitted
/// draws: with head sampling, one admitted draw fans out into a whole
/// trace of ring writes.
#[must_use]
pub fn events_written() -> u64 {
    recorder()
        .rings
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|r| r.head.load(Ordering::Relaxed))
        .sum()
}

/// Decodes every valid event from every thread's ring, ordered by
/// `(tid, seq)` — per-thread program order, threads grouped.
#[must_use]
pub fn collect_events() -> Vec<Event> {
    let rec = recorder();
    let rings: Vec<Arc<Ring>> = rec
        .rings
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut out = Vec::new();
    for ring in rings {
        ring.drain_valid(&mut out, &rec.names);
    }
    out.sort_by_key(|e| (e.tid, e.seq));
    out
}

/// Empties every ring (events only; interned names and sequence counters
/// survive, so shape digests stay comparable across clears). Also resets
/// the trace/span id allocators so a replayed campaign assigns identical
/// causal ids, and lifts any leftover freeze.
pub fn clear() {
    let rec = recorder();
    for ring in rec
        .rings
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        ring.clear();
    }
    crate::context::reset_ids();
    unfreeze();
}

/// Order-sensitive digest of the trace *shape*: per-thread sequences of
/// `(kind, name, value)` with timestamps excluded. Two runs of the same
/// deterministic workload under the same fault plan digest identically even
/// though every timestamp differs — this is the hook the replay regression
/// test checks.
#[must_use]
pub fn shape_digest() -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in collect_events() {
        h ^= u64::from(e.kind as u8);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= fnv1a(e.name.as_bytes());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= e.value;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders the current rings as Chrome `trace_event` JSON (load in
/// `chrome://tracing` or Perfetto).
#[must_use]
pub fn dump_chrome_json() -> String {
    let events = collect_events();
    let mut s = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        let comma = if i + 1 == events.len() { "" } else { "," };
        #[allow(clippy::cast_precision_loss)]
        let ts_us = e.t_ns as f64 / 1e3;
        let name = e.name.replace('\\', "\\\\").replace('"', "\\\"");
        // Complete ('X') events need a duration; hot-span markers carry none,
        // so they render as zero-width slices.
        let dur = if e.kind == EventKind::Span {
            "\"dur\":0,"
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "{{\"name\":\"{name}\",\"cat\":\"sysobs\",\"ph\":\"{}\",\"ts\":{ts_us:.3},{dur}\
             \"pid\":1,\"tid\":{},\"args\":{{\"value\":{},\"seq\":{}}}}}{comma}",
            e.kind.phase(),
            e.tid,
            e.value,
            e.seq
        );
    }
    s.push_str("]}\n");
    s
}

/// Renders the current rings as a human-readable snapshot, one event per
/// line in per-thread order, followed by the metrics registry snapshot.
#[must_use]
pub fn dump_text() -> String {
    let events = collect_events();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# flight recorder: {} events, shape digest {:#018x}",
        events.len(),
        shape_digest()
    );
    for e in &events {
        let _ = writeln!(
            s,
            "t{:<3} #{:<6} {:>12} ns  {:<13} {:<32} {}",
            e.tid,
            e.seq,
            e.t_ns,
            format!("{:?}", e.kind),
            e.name,
            e.value
        );
    }
    let _ = writeln!(s, "# metrics");
    let _ = write!(s, "{}", crate::metrics::registry().snapshot());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use std::sync::Mutex as StdMutex;

    // Mode is process-global; tests that flip it serialize here.
    static MODE_LOCK: StdMutex<()> = StdMutex::new(());

    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        let _guard = MODE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let prev = crate::mode();
        crate::set_mode(Mode::Tracing);
        clear();
        let r = f();
        crate::set_mode(prev);
        r
    }

    #[test]
    fn events_round_trip_in_order() {
        with_tracing(|| {
            let a = intern("test.rec.alpha");
            let b = intern("test.rec.beta");
            record(EventKind::SpanBegin, a, 0);
            record(EventKind::Instant, b, 42);
            record(EventKind::SpanEnd, a, 0);
            let mine: Vec<Event> = collect_events()
                .into_iter()
                .filter(|e| e.name.starts_with("test.rec."))
                .collect();
            assert_eq!(mine.len(), 3);
            assert_eq!(mine[0].kind, EventKind::SpanBegin);
            assert_eq!(mine[1].value, 42);
            assert_eq!(mine[2].name, "test.rec.alpha");
            assert!(mine[0].seq < mine[1].seq && mine[1].seq < mine[2].seq);
            assert!(mine[0].t_ns <= mine[2].t_ns);
        });
    }

    #[test]
    fn ring_wraps_and_keeps_the_newest() {
        with_tracing(|| {
            let id = intern("test.rec.wrap");
            for i in 0..(RING_CAP as u64 + 100) {
                record(EventKind::Instant, id, i);
            }
            let mine: Vec<Event> = collect_events()
                .into_iter()
                .filter(|e| e.name == "test.rec.wrap")
                .collect();
            assert_eq!(mine.len(), RING_CAP);
            // The oldest 100 were overwritten; the newest survive.
            assert!(mine.iter().all(|e| e.value >= 100));
            assert_eq!(mine.last().unwrap().value, RING_CAP as u64 + 99);
        });
    }

    #[test]
    fn span_guard_emits_matched_begin_end() {
        with_tracing(|| {
            {
                let _g = SpanGuard::enter(intern("test.rec.span"));
                record(EventKind::Instant, intern("test.rec.inside"), 1);
            }
            let mine: Vec<Event> = collect_events()
                .into_iter()
                .filter(|e| e.name.starts_with("test.rec."))
                .collect();
            assert_eq!(mine.len(), 3);
            assert_eq!(mine[0].kind, EventKind::SpanBegin);
            assert_eq!(mine[2].kind, EventKind::SpanEnd);
            assert_eq!(mine[0].name, mine[2].name);
        });
    }

    #[test]
    fn hot_span_marker_is_one_event_and_renders_as_complete() {
        with_tracing(|| {
            crate::obs_span_hot!("test.rec.hotspan");
            let mine: Vec<Event> = collect_events()
                .into_iter()
                .filter(|e| e.name == "test.rec.hotspan")
                .collect();
            assert_eq!(mine.len(), 1, "one ring write per hot span");
            assert_eq!(mine[0].kind, EventKind::Span);
            let json = dump_chrome_json();
            assert!(json.contains("\"ph\":\"X\""), "{json}");
            assert!(json.contains("\"dur\":0,"), "{json}");
        });
    }

    #[test]
    fn shape_digest_ignores_time_but_sees_structure() {
        with_tracing(|| {
            let id = intern("test.rec.shape");
            record(EventKind::Instant, id, 7);
            let d1 = shape_digest();
            clear();
            std::thread::sleep(std::time::Duration::from_millis(2));
            record(EventKind::Instant, id, 7);
            let d2 = shape_digest();
            assert_eq!(d1, d2, "same shape, different wall clock");
            record(EventKind::Instant, id, 8);
            assert_ne!(shape_digest(), d2, "extra event changes the shape");
        });
    }

    #[test]
    fn dumps_are_well_formed() {
        with_tracing(|| {
            let _g = SpanGuard::enter(intern("test.rec.dump"));
            record(EventKind::Instant, intern("test.rec.dump.mark"), 5);
            let json = dump_chrome_json();
            assert_eq!(json.matches('{').count(), json.matches('}').count());
            assert_eq!(json.matches('[').count(), json.matches(']').count());
            assert!(json.contains("\"ph\":\"B\""), "{json}");
            assert!(json.contains("\"ph\":\"i\""), "{json}");
            let text = dump_text();
            assert!(text.contains("flight recorder"), "{text}");
            assert!(text.contains("test.rec.dump.mark"), "{text}");
        });
    }

    #[test]
    fn freeze_drops_writes_until_unfrozen() {
        with_tracing(|| {
            let id = intern("test.rec.freeze");
            record(EventKind::Instant, id, 1);
            freeze();
            assert!(is_frozen());
            record(EventKind::Instant, id, 2);
            let during: Vec<Event> = collect_events()
                .into_iter()
                .filter(|e| e.name == "test.rec.freeze")
                .collect();
            assert_eq!(during.len(), 1, "frozen ring must ignore writes");
            assert_eq!(during[0].value, 1);
            unfreeze();
            record(EventKind::Instant, id, 3);
            let after: Vec<Event> = collect_events()
                .into_iter()
                .filter(|e| e.name == "test.rec.freeze")
                .collect();
            assert_eq!(after.len(), 2);
            assert_eq!(after[1].value, 3);
        });
    }

    #[test]
    fn spans_carry_the_active_context_payload() {
        with_tracing(|| {
            let ctx = crate::context::start_trace();
            let trace = crate::context::current().unwrap().trace_id;
            {
                let _g = SpanGuard::enter(intern("test.rec.ctxspan"));
            }
            drop(ctx);
            let mine: Vec<Event> = collect_events()
                .into_iter()
                .filter(|e| e.name == "test.rec.ctxspan")
                .collect();
            assert_eq!(mine.len(), 2);
            for e in &mine {
                assert_eq!(
                    crate::context::payload_trace_id(e.value),
                    Some(trace),
                    "span events must carry the trace id"
                );
            }
            assert_eq!(mine[0].value, mine[1].value, "begin/end payloads match");
        });
    }

    #[test]
    fn threads_get_their_own_rings() {
        with_tracing(|| {
            let id = intern("test.rec.threads");
            record(EventKind::Instant, id, 0);
            std::thread::scope(|s| {
                s.spawn(|| record(EventKind::Instant, intern("test.rec.threads"), 1));
            });
            let mine: Vec<Event> = collect_events()
                .into_iter()
                .filter(|e| e.name == "test.rec.threads")
                .collect();
            assert_eq!(mine.len(), 2);
            assert_ne!(
                mine[0].tid, mine[1].tid,
                "each thread records into its own ring"
            );
        });
    }

    #[test]
    fn dump_while_another_thread_writes_never_tears() {
        with_tracing(|| {
            let stop = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let id = intern("test.rec.tear");
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        record(EventKind::Instant, id, i);
                        i += 1;
                    }
                });
                for _ in 0..50 {
                    // Every decoded event must be internally consistent.
                    for e in collect_events() {
                        if e.name == "test.rec.tear" {
                            assert_eq!(e.kind, EventKind::Instant);
                        }
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
    }
}
