//! Population fuzzing over the total parsers and the BitC VM.
//!
//! The fuzzer keeps a persistent *population* of byte-string inputs,
//! mutates members with a seeded SplitMix64 stream, and selects children
//! that exhibit a **novel outcome class** — a new combination of parse
//! stage reached, error discriminant, drop classification, NAT-rewrite
//! verdict, or VM trap class. That anomaly-signal selection is the cheap
//! stand-in for branch coverage the container can't collect, and it is
//! enough to walk the input space from well-formed seeds out to the
//! malformed frontier where bugs live.
//!
//! Two oracles run on every execution:
//!
//! * **no panic** — the `sysrepr` parsers and the VM are *total*: any
//!   panic is a bug. The one deliberate exception is
//!   [`Ipv4View::parse_trusting_lengths`], the seeded C-style parser that
//!   trusts IHL/total-length, which the `Packet` target drives exactly to
//!   prove the fuzzer finds it;
//! * **NAT checksum differential** — a frame whose transport checksum
//!   verifies before `dnat`/`snat` must verify after (RFC 1624 fixups are
//!   claimed exact); a violation is reported as a crash artifact.
//!
//! Crashes deduplicate by message, shrink through
//! [`sysfault::shrink::minimize_bytes`], and carry an embedded repro
//! command; the campaign runner pins them as regression scenarios via
//! [`crate::library::pin_crash`].

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use sysfault::shrink::minimize_bytes;
use sysrepr::dns;
use sysrepr::packet::{
    EthernetView, Ipv4View, PacketBuilder, ETHERTYPE_IPV4, IPPROTO_TCP, IPPROTO_UDP,
};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// FNV-1a over a string — stable across runs, unlike `DefaultHasher`.
fn fnv_str(s: &str) -> u64 {
    s.bytes().fold(FNV_OFFSET, |h, b| fold(h, u64::from(b)))
}

/// SplitMix64 mutation stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[allow(clippy::cast_possible_truncation)]
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// What the fuzzer drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzTarget {
    /// Ethernet/IPv4/transport views, the trusting parser, and the NAT
    /// rewrite differential.
    Packet,
    /// The DNS wire-format parser (compression pointers and all).
    Dns,
    /// BitC source through the parser, compiler, and fueled VM.
    Bitc,
}

impl FuzzTarget {
    /// Stable lowercase name (JSON rows, crash file names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FuzzTarget::Packet => "packet",
            FuzzTarget::Dns => "dns",
            FuzzTarget::Bitc => "bitc",
        }
    }
}

/// One fuzzing run's budget and stream.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// What to drive.
    pub target: FuzzTarget,
    /// Mutation-stream seed.
    pub seed: u64,
    /// Children to generate and execute.
    pub iterations: usize,
    /// Population ceiling (novel children evict a random resident).
    pub population_cap: usize,
    /// Input length ceiling.
    pub max_len: usize,
}

impl FuzzConfig {
    /// A CI-budget run: small but reliably enough to rediscover the
    /// seeded trusting-parser bug from well-formed seeds.
    #[must_use]
    pub fn quick(target: FuzzTarget) -> Self {
        FuzzConfig {
            target,
            seed: 0x5EED,
            iterations: 3_000,
            population_cap: 256,
            max_len: 192,
        }
    }
}

/// A deduplicated, shrunk crash.
#[derive(Debug, Clone)]
pub struct CrashArtifact {
    /// Which target crashed.
    pub target: FuzzTarget,
    /// The input as found.
    pub input: Vec<u8>,
    /// The input after [`minimize_bytes`].
    pub minimized: Vec<u8>,
    /// The panic (or differential-violation) message.
    pub message: String,
}

impl CrashArtifact {
    /// Stable artifact file name: `CRASH_<target>_<hash>.json`. The hash
    /// covers the *crash class* — the message with digit runs collapsed —
    /// so every input tripping the same bug lands at the same path
    /// ("range end index 240..." and "range end index 87..." are one bug).
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "CRASH_{}_{:08x}.json",
            self.target.name(),
            fnv_str(&crash_class(&self.message)) as u32
        )
    }

    /// Renders the artifact with the repro command embedded.
    #[must_use]
    pub fn to_json(&self) -> String {
        let hex = |b: &[u8]| {
            b.iter().fold(String::new(), |mut s, x| {
                let _ = write!(s, "{x:02x}");
                s
            })
        };
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"target\": \"{}\",", self.target.name());
        let _ = writeln!(s, "  \"message\": \"{}\",", self.message.escape_default());
        let _ = writeln!(s, "  \"input_len\": {},", self.input.len());
        let _ = writeln!(s, "  \"minimized_len\": {},", self.minimized.len());
        let _ = writeln!(s, "  \"input_hex\": \"{}\",", hex(&self.input));
        let _ = writeln!(s, "  \"minimized_hex\": \"{}\",", hex(&self.minimized));
        let _ = writeln!(
            s,
            "  \"repro\": \"cargo run --release --example scenario_bench -- --repro {}\"",
            self.file_name()
        );
        s.push_str("}\n");
        s
    }

    /// Parses an artifact back out of its JSON (the `--repro` path). Only
    /// the fields replay needs are read.
    #[must_use]
    pub fn from_json(json: &str) -> Option<CrashArtifact> {
        let field = |key: &str| -> Option<String> {
            let pat = format!("\"{key}\": \"");
            let start = json.find(&pat)? + pat.len();
            let end = json[start..].find('"')? + start;
            Some(json[start..end].to_owned())
        };
        let unhex = |s: &str| -> Option<Vec<u8>> {
            if !s.len().is_multiple_of(2) {
                return None;
            }
            (0..s.len() / 2)
                .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
                .collect()
        };
        let target = match field("target")?.as_str() {
            "packet" => FuzzTarget::Packet,
            "dns" => FuzzTarget::Dns,
            "bitc" => FuzzTarget::Bitc,
            _ => return None,
        };
        Some(CrashArtifact {
            target,
            input: unhex(&field("input_hex")?)?,
            minimized: unhex(&field("minimized_hex")?)?,
            message: field("message")?,
        })
    }
}

/// What one fuzzing run produced.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The target.
    pub target: FuzzTarget,
    /// Children generated.
    pub iterations: usize,
    /// Total executions (seeds + children + shrink probes).
    pub executions: u64,
    /// Final population size.
    pub population: usize,
    /// Distinct outcome classes discovered.
    pub distinct_features: usize,
    /// Deduplicated, shrunk crashes.
    pub crashes: Vec<CrashArtifact>,
    /// Did the run rediscover the seeded trusting-parser bug? (Only the
    /// `Packet` target can; elsewhere any crash at all sets it.)
    pub seeded_bug_found: bool,
}

/// Executes one input: `(outcome-class feature, crash message if any)`.
fn execute(target: FuzzTarget, input: &[u8]) -> (u64, Option<String>) {
    match target {
        FuzzTarget::Packet => execute_packet(input),
        FuzzTarget::Dns => execute_dns(input),
        FuzzTarget::Bitc => execute_bitc(input),
    }
}

/// Replays an input against its target and returns the crash message, if
/// it still crashes — the `--repro` entry point.
#[must_use]
pub fn replay(target: FuzzTarget, input: &[u8]) -> Option<String> {
    let _guard = hush_panics();
    execute(target, input).1
}

/// Class code for a parse error, stable across runs.
fn err_class(e: &sysrepr::ReprError) -> u64 {
    // Discriminant plus the coarse shape; field *values* stay out so the
    // feature space doesn't explode on don't-care bytes.
    match e {
        sysrepr::ReprError::Truncated { needed, got } => {
            fold(fold(1, u64::from(*needed > 64)), u64::from(*got == 0))
        }
        sysrepr::ReprError::InvalidField { field, .. } => fold(2, fnv_str(field)),
        _ => fold(
            3,
            fnv_str(&format!("{e:?}")[..4.min(format!("{e:?}").len())]),
        ),
    }
}

/// The packet target: total views classify, the trusting parser is the
/// crash oracle, and NAT rewrites run the checksum differential.
#[allow(clippy::cast_possible_truncation)]
fn execute_packet(input: &[u8]) -> (u64, Option<String>) {
    // Crash oracle: the seeded C-style parser, driven the way a C stack
    // would use it — parse, then touch every derived slice.
    let crash = catch_unwind(AssertUnwindSafe(|| {
        if let Ok(eth) = EthernetView::parse(input) {
            if eth.ethertype() == ETHERTYPE_IPV4 {
                if let Ok(ip) = Ipv4View::parse_trusting_lengths(eth.payload()) {
                    let mut acc = u64::from(ip.src()[0]) + u64::from(ip.dst()[3]);
                    acc += ip.options().len() as u64;
                    acc += ip.payload().len() as u64;
                    std::hint::black_box(acc);
                }
            }
        }
    }))
    .err()
    .map(|e| panic_message(&*e));

    // Outcome class from the total path.
    let mut h = FNV_OFFSET;
    match EthernetView::parse(input) {
        Err(e) => h = fold(fold(h, 10), err_class(&e)),
        Ok(eth) => {
            h = fold(h, 11);
            h = fold(h, u64::from(eth.ethertype() == ETHERTYPE_IPV4));
            match Ipv4View::parse(eth.payload()) {
                Err(e) => h = fold(fold(h, 12), err_class(&e)),
                Ok(ip) => {
                    h = fold(h, 13);
                    h = fold(h, u64::from(ip.protocol()));
                    h = fold(h, u64::from(ip.header_len() > 20));
                    h = fold(h, u64::from(!ip.options().is_empty()));
                    h = fold(h, u64::from(ip.payload().is_empty()));
                    h = fold(h, u64::from(ip.verify_checksum().is_ok()));
                }
            }
        }
    }

    // NAT differential: rewrite a copy and demand checksum preservation.
    let mut copy = input.to_vec();
    let (verdict, differential) = nat_differential(&mut copy);
    h = fold(h, verdict);

    (h, crash.or(differential))
}

/// Runs `dnat` then `snat` on a mutable copy. Returns the outcome class
/// and, when the checksum-preservation contract breaks, a crash message.
fn nat_differential(frame: &mut [u8]) -> (u64, Option<String>) {
    let valid_before = EthernetView::parse(frame)
        .ok()
        .and_then(|e| Ipv4View::parse(e.payload()).ok())
        .is_some_and(|ip| {
            matches!(ip.protocol(), IPPROTO_TCP | IPPROTO_UDP) && ip.verify_checksum().is_ok()
        });
    let Ok(eth) = sysrepr::packet::EthernetViewMut::parse(frame) else {
        return (20, None);
    };
    let Ok(mut ip) = eth.ipv4_mut() else {
        return (21, None);
    };
    let d = ip.dnat([192, 0, 2, 9], 4242);
    let s = ip.snat([198, 51, 100, 7], 2424);
    let verdict = fold(
        fold(22, d.as_ref().map_or_else(err_class, |()| 0)),
        s.as_ref().map_or_else(err_class, |()| 0),
    );
    if valid_before && (d.is_ok() || s.is_ok()) {
        let still_valid = EthernetView::parse(frame)
            .ok()
            .and_then(|e| Ipv4View::parse(e.payload()).ok())
            .is_some_and(|ip| ip.verify_checksum().is_ok());
        if !still_valid {
            return (
                verdict,
                Some("nat rewrite broke a verifying IPv4 header checksum".to_owned()),
            );
        }
    }
    (verdict, None)
}

/// The DNS target: `parse_message` plus `decode_name` at offset 12.
fn execute_dns(input: &[u8]) -> (u64, Option<String>) {
    let crash = catch_unwind(AssertUnwindSafe(|| {
        let mut h = FNV_OFFSET;
        match dns::parse_message(input) {
            Err(e) => h = fold(fold(h, 30), err_class(&e)),
            Ok(m) => {
                h = fold(h, 31);
                h = fold(h, m.questions.len() as u64);
                h = fold(h, m.answers.len() as u64);
                h = fold(h, u64::from(m.header.is_response));
                h = fold(h, u64::from(m.header.rcode));
            }
        }
        match dns::decode_name(input, 12) {
            Err(e) => h = fold(fold(h, 32), err_class(&e)),
            Ok((name, end)) => {
                h = fold(h, 33);
                h = fold(h, name.split('.').count() as u64);
                h = fold(h, u64::from(end > 64));
            }
        }
        h
    }));
    match crash {
        Ok(h) => (h, None),
        Err(e) => (fold(FNV_OFFSET, 39), Some(panic_message(&*e))),
    }
}

/// The BitC target: bytes as source, through the fueled VM.
fn execute_bitc(input: &[u8]) -> (u64, Option<String>) {
    let src: String = input
        .iter()
        .map(|&b| {
            if b.is_ascii_graphic() || b == b' ' {
                b as char
            } else {
                ' '
            }
        })
        .collect();
    let crash = catch_unwind(AssertUnwindSafe(|| {
        match bitc_core::vm::run_fueled(&src, 20_000) {
            Ok(v) => fold(fold(FNV_OFFSET, 40), u64::from(v == 0)),
            Err(e) => {
                let msg = e.to_string();
                let head: String = msg.chars().take(24).collect();
                fold(fold(FNV_OFFSET, 41), fnv_str(&head))
            }
        }
    }));
    match crash {
        Ok(h) => (h, None),
        Err(e) => (fold(FNV_OFFSET, 49), Some(panic_message(&*e))),
    }
}

/// Collapses digit runs to `#` so messages that differ only in offsets
/// ("range end index 240 out of range for slice of length 46") dedupe as
/// one bug class.
fn crash_class(message: &str) -> String {
    let mut out = String::with_capacity(message.len());
    let mut in_digits = false;
    for c in message.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
                in_digits = true;
            }
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    e.downcast_ref::<&str>().map_or_else(
        || {
            e.downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "opaque panic payload".to_owned())
        },
        |s| (*s).to_owned(),
    )
}

/// Seed corpus: well-formed members of each format, so the fuzzer starts
/// from structure and mutates toward the frontier.
#[must_use]
pub fn seed_corpus(target: FuzzTarget) -> Vec<Vec<u8>> {
    match target {
        FuzzTarget::Packet => packet_seed_corpus(),
        FuzzTarget::Dns => vec![
            dns::build_query(0x1234, "example.com", 1),
            dns::build_query(1, "a.b.c.d.e", 28),
            dns::build_query(0xFFFF, "x", 255),
        ],
        FuzzTarget::Bitc => [
            "(+ 1 2)",
            "(define f (lambda (n) (+ n 1))) (f 41)",
            "(if (< 1 2) 10 20)",
            "((lambda (x) (* x x)) 12)",
        ]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect(),
    }
}

/// The packet seed corpus — well-formed TCP/UDP frames in the shapes the
/// adversarial NAT suite also uses as fixtures.
#[must_use]
pub fn packet_seed_corpus() -> Vec<Vec<u8>> {
    vec![
        PacketBuilder::tcp()
            .src_ip([10, 9, 0, 1])
            .dst_ip([10, 200, 0, 1])
            .src_port(1024)
            .dst_port(80)
            .compute_transport_checksum()
            .build(),
        PacketBuilder::udp()
            .src_ip([10, 9, 0, 2])
            .dst_ip([10, 200, 0, 1])
            .src_port(5353)
            .dst_port(53)
            .payload(&[0xAB; 16])
            .compute_transport_checksum()
            .build(),
        PacketBuilder::tcp()
            .src_ip([192, 0, 2, 1])
            .dst_ip([198, 51, 100, 1])
            .payload(&[0x55; 40])
            .build(),
    ]
}

/// One seeded mutation.
fn mutate(rng: &mut Rng, parent: &[u8], population: &[Vec<u8>], max_len: usize) -> Vec<u8> {
    let mut child = parent.to_vec();
    let ops = 1 + rng.below(3);
    for _ in 0..ops {
        match rng.below(8) {
            // Bit flip.
            0 if !child.is_empty() => {
                let i = rng.below(child.len());
                child[i] ^= 1 << rng.below(8);
            }
            // Interesting byte.
            1 if !child.is_empty() => {
                let i = rng.below(child.len());
                child[i] = [0x00, 0xFF, 0x7F, 0x80, 0x01, 0x45, 0x46, 0x06][rng.below(8)];
            }
            // Random byte.
            #[allow(clippy::cast_possible_truncation)]
            2 if !child.is_empty() => {
                let i = rng.below(child.len());
                child[i] = rng.next() as u8;
            }
            // Truncate.
            3 if child.len() > 1 => {
                let n = 1 + rng.below(child.len() - 1);
                child.truncate(n);
            }
            // Extend.
            #[allow(clippy::cast_possible_truncation)]
            4 => {
                let n = 1 + rng.below(16);
                for _ in 0..n {
                    if child.len() >= max_len {
                        break;
                    }
                    child.push(rng.next() as u8);
                }
            }
            // Chunk duplication (length-field confusion food).
            5 if !child.is_empty() => {
                let start = rng.below(child.len());
                let len = (1 + rng.below(8)).min(child.len() - start);
                let chunk: Vec<u8> = child[start..start + len].to_vec();
                let at = rng.below(child.len() + 1);
                for (k, b) in chunk.into_iter().enumerate() {
                    if child.len() >= max_len {
                        break;
                    }
                    child.insert((at + k).min(child.len()), b);
                }
            }
            // Splice with another resident.
            6 if !population.is_empty() => {
                let other = &population[rng.below(population.len())];
                if !other.is_empty() && !child.is_empty() {
                    let cut_a = rng.below(child.len());
                    let cut_b = rng.below(other.len());
                    child.truncate(cut_a);
                    child.extend_from_slice(&other[cut_b..]);
                }
            }
            // 16-bit length-ish field patch at a word boundary.
            #[allow(clippy::cast_possible_truncation)]
            _ if child.len() >= 2 => {
                let i = rng.below(child.len() - 1);
                let v = (rng.next() as u16).to_be_bytes();
                child[i] = v[0];
                child[i + 1] = v[1];
            }
            _ => {}
        }
    }
    child.truncate(max_len);
    if child.is_empty() {
        child.push(0);
    }
    child
}

/// Serializes fuzz runs (the panic hook is process-global).
static FUZZ_LOCK: Mutex<()> = Mutex::new(());

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

struct HushGuard {
    _g: std::sync::MutexGuard<'static, ()>,
    prev: Option<PanicHook>,
}

impl Drop for HushGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

/// Silences the default panic printer while expected crashes fly, holding
/// the fuzz lock so concurrent tests don't fight over the global hook.
fn hush_panics() -> HushGuard {
    let g = FUZZ_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    HushGuard {
        _g: g,
        prev: Some(prev),
    }
}

/// Runs one population-fuzzing campaign.
#[must_use]
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let _hush = hush_panics();
    let mut rng = Rng(cfg.seed ^ fnv_str(cfg.target.name()));
    let mut executions = 0u64;
    let mut features = BTreeSet::new();
    let mut population = Vec::new();
    let mut crashes: Vec<CrashArtifact> = Vec::new();
    let mut seen_messages = BTreeSet::new();

    let admit = |input: Vec<u8>,
                 executions: &mut u64,
                 features: &mut BTreeSet<u64>,
                 population: &mut Vec<Vec<u8>>,
                 crashes: &mut Vec<CrashArtifact>,
                 seen: &mut BTreeSet<String>,
                 rng: &mut Rng| {
        *executions += 1;
        let (feature, crash) = execute(cfg.target, &input);
        if let Some(message) = crash {
            if seen.insert(crash_class(&message)) {
                let mut probes = 0u64;
                let minimized = minimize_bytes(&input, |b| {
                    probes += 1;
                    execute(cfg.target, b).1.is_some()
                });
                *executions += probes;
                crashes.push(CrashArtifact {
                    target: cfg.target,
                    input,
                    minimized,
                    message,
                });
            }
        } else if features.insert(feature) {
            if population.len() >= cfg.population_cap {
                let victim = rng.below(population.len());
                population.swap_remove(victim);
            }
            population.push(input);
        }
    };

    for seed in seed_corpus(cfg.target) {
        admit(
            seed,
            &mut executions,
            &mut features,
            &mut population,
            &mut crashes,
            &mut seen_messages,
            &mut rng,
        );
    }
    for _ in 0..cfg.iterations {
        let parent = population[rng.below(population.len())].clone();
        let child = mutate(&mut rng, &parent, &population, cfg.max_len);
        admit(
            child,
            &mut executions,
            &mut features,
            &mut population,
            &mut crashes,
            &mut seen_messages,
            &mut rng,
        );
    }

    FuzzReport {
        target: cfg.target,
        iterations: cfg.iterations,
        executions,
        population: population.len(),
        distinct_features: features.len(),
        seeded_bug_found: !crashes.is_empty(),
        crashes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_fuzzer_rediscovers_the_seeded_trusting_parser_bug() {
        let report = run_fuzz(&FuzzConfig::quick(FuzzTarget::Packet));
        assert!(
            report.seeded_bug_found,
            "the trusting parser must fall within the CI budget \
             ({} features, {} execs)",
            report.distinct_features, report.executions
        );
        let crash = &report.crashes[0];
        // The payload must be the real panic text, not the Box-as-Any
        // coercion trap ("opaque panic payload") — dedupe keys on it.
        assert!(
            crash.message.contains("out of range"),
            "crash message lost its payload: {:?}",
            crash.message
        );
        assert!(!crash.minimized.is_empty());
        assert!(
            crash.minimized.len() <= crash.input.len(),
            "shrinking must not grow the input"
        );
        // The shrunk input must still reproduce.
        assert!(replay(FuzzTarget::Packet, &crash.minimized).is_some());
    }

    #[test]
    fn crash_artifacts_of_one_bug_class_share_a_path() {
        let a = CrashArtifact {
            target: FuzzTarget::Packet,
            input: vec![1],
            minimized: vec![1],
            message: "range end index 240 out of range for slice of length 46".to_owned(),
        };
        let b = CrashArtifact {
            message: "range end index 87 out of range for slice of length 55".to_owned(),
            ..a.clone()
        };
        assert_eq!(a.file_name(), b.file_name());
        assert_ne!(
            a.file_name(),
            CrashArtifact {
                message: "attempt to add with overflow".to_owned(),
                ..a.clone()
            }
            .file_name()
        );
    }

    #[test]
    fn fuzz_runs_are_deterministic_in_the_seed() {
        let a = run_fuzz(&FuzzConfig {
            iterations: 500,
            ..FuzzConfig::quick(FuzzTarget::Packet)
        });
        let b = run_fuzz(&FuzzConfig {
            iterations: 500,
            ..FuzzConfig::quick(FuzzTarget::Packet)
        });
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.distinct_features, b.distinct_features);
        assert_eq!(a.crashes.len(), b.crashes.len());
    }

    #[test]
    fn dns_and_bitc_targets_stay_total_under_fuzzing() {
        for target in [FuzzTarget::Dns, FuzzTarget::Bitc] {
            let report = run_fuzz(&FuzzConfig {
                iterations: 800,
                ..FuzzConfig::quick(target)
            });
            assert!(
                report.crashes.is_empty(),
                "{:?} must be total, crashed: {:?}",
                target,
                report.crashes.first().map(|c| &c.message)
            );
            assert!(
                report.distinct_features > 4,
                "{target:?} exploration stalled at {} classes",
                report.distinct_features
            );
        }
    }

    #[test]
    fn crash_artifacts_round_trip_through_json() {
        let artifact = CrashArtifact {
            target: FuzzTarget::Packet,
            input: vec![0xDE, 0xAD, 0xBE, 0xEF],
            minimized: vec![0xDE],
            message: "index out of bounds: the len is 20".to_owned(),
        };
        let json = artifact.to_json();
        assert!(json.contains("--repro"));
        assert!(json.contains(&artifact.file_name()));
        let back = CrashArtifact::from_json(&json).expect("round trip");
        assert_eq!(back.input, artifact.input);
        assert_eq!(back.minimized, artifact.minimized);
        assert_eq!(back.target, artifact.target);
    }
}
