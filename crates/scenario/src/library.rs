//! The standard scenario library and the pinned-regression campaign.
//!
//! [`standard`] is the acceptance campaign: five production shapes, each
//! replayable from the single printed seed. [`regressions`] pins every
//! previously-fixed headline bug as a scenario whose expectations fail the
//! campaign if the bug resurfaces:
//!
//! | scenario | bug it pins | oracle |
//! |---|---|---|
//! | `regress-ttl-loop` | missing TTL decrement (forwarding loops) | `DeliveredExactly(0)` + TTL-expired drops |
//! | `regress-noop-insert-cache-nuke` | value-preserving re-insert bumping the generation | `GenerationDeltaAtMost(0)` |
//! | `regress-premature-epoch-free` | pinned readers seeing reclaimed trie nodes | `StaleViewMismatchesZero` under churn |
//! | `regress-half-pair-nat` | forward NAT twin inserted without its reply twin | `AuditClean` under table-full pressure |
//! | `regress-parser-overread` | length-trusting parse (the seeded C idiom) | injected fixture drops as `Malformed` |

use crate::engine::SITE_WIRE_LOSS;
use crate::spec::{
    Arrival, ControlEvent, CtSpec, Expectation, PinHold, PlaneSpec, Scenario, ScheduledEvent,
    TrafficSpec,
};
use sysfault::Schedule;
use sysnet::pipeline::DropReason;

/// The 34-byte trusting-parser fixture: a well-framed Ethernet header
/// carrying an IPv4 header that claims IHL = 6 (24 header bytes) while
/// only 20 bytes follow. [`sysrepr::packet::Ipv4View::parse`] rejects it
/// (`Truncated`), so the production path drops it as `Malformed`; the
/// seeded [`sysrepr::packet::Ipv4View::parse_trusting_lengths`] accepts
/// it and panics the moment `options()` slices past the buffer — the
/// minimal crasher the population fuzzer converges to.
#[must_use]
pub fn parser_overread_fixture() -> Vec<u8> {
    let mut f = vec![0u8; 34];
    f[12] = 0x08; // EtherType IPv4
    f[13] = 0x00;
    f[14] = 0x46; // version 4, IHL 6: header claims 24 bytes of 20
    f[17] = 24; // total_len = claimed header, nothing else
    f
}

/// The five-scenario standard campaign.
#[must_use]
pub fn standard() -> Vec<Scenario> {
    vec![
        flash_crowd(),
        route_flap_storm(),
        cascading_backend_death(),
        slowloris_trickle(),
        mixed_attack_benign(),
    ]
}

/// The pinned-regression campaign (one scenario per fixed headline bug).
#[must_use]
pub fn regressions() -> Vec<Scenario> {
    vec![
        regress_ttl_loop(),
        regress_noop_insert_cache_nuke(),
        regress_premature_epoch_free(),
        regress_half_pair_nat(),
        regress_parser_overread(),
    ]
}

/// Wraps a fuzzer crash input as a pinned scenario: the input is injected
/// every tick and must *drop cleanly* — surviving the run without a panic
/// and leaving the conntrack auditable is the pass condition.
#[must_use]
pub fn pin_crash(name: &str, input: &[u8]) -> Scenario {
    let mut s = Scenario::named(name, 0xC4A5);
    s.ticks = 20;
    s.traffic = TrafficSpec {
        flows: 8,
        inject: vec![input.to_vec()],
        ..TrafficSpec::default()
    };
    s.expect = vec![Expectation::AuditClean, Expectation::TtlViolationsZero];
    s
}

/// A wall of concurrent handshakes: flows ramp in linearly over the first
/// 40 ticks, then steady data. Availability absorbs the handshake tax and
/// the pool must still come out lossless.
fn flash_crowd() -> Scenario {
    let mut s = Scenario::named("flash-crowd", 0xF1A5);
    s.ticks = 120;
    s.traffic = TrafficSpec {
        flows: 256,
        arrival: Arrival::FlashCrowd { ramp_ticks: 40 },
        ..TrafficSpec::default()
    };
    s.expect.extend([
        Expectation::MinAvailability(0.90),
        Expectation::FinalGoodputAtLeast(1.0),
        Expectation::NoBackendAtMost(0),
    ]);
    s
}

/// The backend route flaps in and out for twenty ticks while an
/// established population streams through a flow cache. Data must shed as
/// `NoRoute` during the holes and goodput must return to 1.0 after the
/// storm — and the cache's generation invalidation must keep decisions
/// exact through every flap.
fn route_flap_storm() -> Scenario {
    let mut s = Scenario::named("route-flap-storm", 0xF1AB);
    s.ticks = 100;
    s.cache_slots = 1024;
    s.traffic = TrafficSpec {
        flows: 128,
        arrival: Arrival::Trickle { stride: 1 },
        ..TrafficSpec::default()
    };
    let backend_net = [10u8, 50, 0, 0];
    // Drop the default route first: a real edge box doesn't blackhole-proof
    // its backend subnet with 0/0, and without this the flap holes would be
    // silently absorbed by the default instead of surfacing as NoRoute.
    s.events.push(ScheduledEvent {
        tick: 15,
        event: ControlEvent::RouteRemove {
            prefix: [0, 0, 0, 0],
            len: 0,
        },
    });
    s.events.push(ScheduledEvent {
        tick: 45,
        event: ControlEvent::RouteInsert {
            prefix: [0, 0, 0, 0],
            len: 0,
            port: 0,
        },
    });
    for k in 0..10u64 {
        s.events.push(ScheduledEvent {
            tick: 20 + 2 * k,
            event: ControlEvent::RouteRemove {
                prefix: backend_net,
                len: 16,
            },
        });
        s.events.push(ScheduledEvent {
            tick: 21 + 2 * k,
            event: ControlEvent::RouteInsert {
                prefix: backend_net,
                len: 16,
                port: 1,
            },
        });
    }
    s.expect.extend([
        Expectation::DropsAtLeast(DropReason::NoRoute, 1),
        Expectation::FinalGoodputAtLeast(1.0),
    ]);
    s
}

/// Drain one backend, then kill the heaviest: drained flows keep flowing,
/// the kill ejects its victims, and every orphan must re-handshake onto
/// the lone fully-live backend without a single no-backend shed.
fn cascading_backend_death() -> Scenario {
    let mut s = Scenario::named("cascading-backend-death", 0xDEAD);
    s.ticks = 120;
    s.traffic = TrafficSpec {
        flows: 192,
        arrival: Arrival::Trickle { stride: 1 },
        ..TrafficSpec::default()
    };
    s.events.extend([
        ScheduledEvent {
            tick: 20,
            event: ControlEvent::BackendDrain { idx: 0 },
        },
        ScheduledEvent {
            tick: 40,
            event: ControlEvent::BackendKill { idx: 2 },
        },
        ScheduledEvent {
            tick: 80,
            event: ControlEvent::BackendRevive { idx: 0 },
        },
    ]);
    s.expect.extend([
        Expectation::FlowsEjectedAtLeast(2),
        Expectation::NoBackendAtMost(0),
        Expectation::FinalGoodputAtLeast(1.0),
    ]);
    s
}

/// A large resident population trickling data on a 16-tick stride: the
/// NAT table must hold twin entries for every flow the whole run, and the
/// slow talkers must lose nothing.
fn slowloris_trickle() -> Scenario {
    let mut s = Scenario::named("slowloris-trickle", 0x510);
    s.ticks = 96;
    s.traffic = TrafficSpec {
        flows: 512,
        arrival: Arrival::Trickle { stride: 16 },
        ..TrafficSpec::default()
    };
    s.expect.extend([
        Expectation::PeakFlowsAtLeast(1024),
        Expectation::MinAvailability(0.999),
    ]);
    s
}

/// Half the offered load is a spoofed-source port scan against the VIP
/// host, with a sprinkle of wire loss on the benign side. The established
/// population must ride it out essentially untouched.
fn mixed_attack_benign() -> Scenario {
    let mut s = Scenario::named("mixed-attack-benign", 0xA77C);
    s.ticks = 100;
    s.traffic = TrafficSpec {
        flows: 128,
        arrival: Arrival::Trickle { stride: 1 },
        attack_mix: 0.5,
        ..TrafficSpec::default()
    };
    s.faults
        .push((SITE_WIRE_LOSS.to_owned(), Schedule::EveryNth(997)));
    s.expect.push(Expectation::MinAvailability(0.99));
    s
}

/// ISSUE pin: the missing-TTL-decrement forwarding loop. Offered TTL 1
/// must expire at the first hop: zero deliveries, every frame dropped
/// `TtlExpired`. If decrement ever goes missing again, frames start
/// delivering and `DeliveredExactly(0)` fails the campaign.
fn regress_ttl_loop() -> Scenario {
    let mut s = Scenario::named("regress-ttl-loop", 0x77 ^ 0x1);
    s.ticks = 50;
    s.traffic = TrafficSpec {
        flows: 64,
        ttl: 1,
        ..TrafficSpec::default()
    };
    s.expect.extend([
        Expectation::DeliveredExactly(0),
        Expectation::DropsAtLeast(DropReason::TtlExpired, 1_000),
    ]);
    s
}

/// ISSUE pin: the no-op-insert cache nuke. A control plane re-asserting
/// every route with unchanged values, every tick, must not advance the
/// table generation — and therefore must not cost the flow cache a single
/// invalidation miss.
fn regress_noop_insert_cache_nuke() -> Scenario {
    let mut s = Scenario::named("regress-noop-insert-cache-nuke", 0x40B);
    s.ticks = 60;
    s.cache_slots = 512;
    s.traffic = TrafficSpec {
        flows: 64,
        arrival: Arrival::Trickle { stride: 1 },
        ..TrafficSpec::default()
    };
    for tick in 5..55 {
        s.events.push(ScheduledEvent {
            tick,
            event: ControlEvent::RouteNoopReinsertAll,
        });
    }
    s.expect.extend([
        Expectation::GenerationDeltaAtMost(0),
        Expectation::InvalidationMissesAtMost(0),
        Expectation::MinAvailability(0.999),
    ]);
    s
}

/// ISSUE pin: the premature epoch free. A reader pins a route view at
/// tick 10 and holds it for 30 ticks of insert/remove churn; every probe
/// through the held pin must keep matching the pin-time snapshot. A
/// reclaimed-under-pin node diverges and fails the campaign.
fn regress_premature_epoch_free() -> Scenario {
    let mut s = Scenario::named("regress-premature-epoch-free", 0xEF0C);
    s.ticks = 60;
    s.plane = PlaneSpec::Cow {
        pin: Some(PinHold {
            pin_tick: 10,
            hold_ticks: 30,
            probes: 64,
        }),
    };
    s.traffic = TrafficSpec {
        flows: 64,
        arrival: Arrival::Trickle { stride: 1 },
        ..TrafficSpec::default()
    };
    for k in 0..14u64 {
        let third = u8::try_from(k % 7).expect("small");
        s.events.push(ScheduledEvent {
            tick: 11 + 2 * k,
            event: ControlEvent::RouteInsert {
                prefix: [10, 77, third, 0],
                len: 24,
                port: 0,
            },
        });
        s.events.push(ScheduledEvent {
            tick: 12 + 2 * k,
            event: ControlEvent::RouteRemove {
                prefix: [10, 77, third, 0],
                len: 24,
            },
        });
    }
    s.expect.push(Expectation::StaleViewMismatchesZero);
    s
}

/// ISSUE pin: the half-pair NAT insert. 200 flows hammer a 64-slot table
/// so twin inserts keep failing mid-pair. Overload defense sheds the
/// excess as `NoFlow` (cookie mode keeps `FlowTableFull` off the fast
/// path), so the oracle is saturation (`PeakFlowsAtLeast`) plus heavy
/// `NoFlow` shedding plus `AuditClean` — a surviving forward twin
/// without its reply twin fails the audit.
fn regress_half_pair_nat() -> Scenario {
    let mut s = Scenario::named("regress-half-pair-nat", 0x4A1F);
    s.ticks = 30;
    s.traffic = TrafficSpec {
        flows: 200,
        ..TrafficSpec::default()
    };
    s.ct = CtSpec {
        max_flows: 64,
        syn_backlog: 48,
    };
    s.expect.extend([
        Expectation::PeakFlowsAtLeast(64),
        Expectation::DropsAtLeast(DropReason::NoFlow, 1),
    ]);
    s
}

/// ISSUE pin: the trusting-parser overread, graduated from the fuzzer.
/// The minimal crasher is injected every tick; the production (total)
/// parse path must classify it `Malformed` and drop it cleanly, tick
/// after tick.
fn regress_parser_overread() -> Scenario {
    let mut s = pin_crash("regress-parser-overread", &parser_overread_fixture());
    s.expect
        .push(Expectation::DropsAtLeast(DropReason::Malformed, 20));
    s
}

/// Tick/flow scaledown for CI: same shapes, same seeds, same oracles,
/// smaller populations.
#[must_use]
pub fn quick_scale(mut scenarios: Vec<Scenario>) -> Vec<Scenario> {
    for s in &mut scenarios {
        s.traffic.flows = (s.traffic.flows / 4).max(16);
        // Count-based expectations that scale with population.
        for e in &mut s.expect {
            match e {
                Expectation::PeakFlowsAtLeast(n) => *n /= 4,
                Expectation::DropsAtLeast(DropReason::TtlExpired, n) => *n /= 4,
                _ => {}
            }
        }
    }
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_scenario;

    #[test]
    fn standard_campaign_has_the_five_named_shapes() {
        let names: Vec<String> = standard().into_iter().map(|s| s.name).collect();
        for expected in [
            "flash-crowd",
            "route-flap-storm",
            "cascading-backend-death",
            "slowloris-trickle",
            "mixed-attack-benign",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn every_standard_scenario_passes_its_own_expectations() {
        for s in quick_scale(standard()) {
            let o = run_scenario(&s);
            assert!(
                o.expectations_ok(),
                "scenario '{}' failed: {:?}",
                s.name,
                o.failures
            );
        }
    }

    #[test]
    fn every_regression_scenario_passes_while_the_bugs_stay_fixed() {
        for s in regressions() {
            let o = run_scenario(&s);
            assert!(
                o.expectations_ok(),
                "regression '{}' failed: {:?}",
                s.name,
                o.failures
            );
        }
    }

    #[test]
    fn the_overread_fixture_crashes_the_trusting_parser_only() {
        use sysrepr::packet::{EthernetView, Ipv4View};
        let fixture = parser_overread_fixture();
        let eth = EthernetView::parse(&fixture).expect("framed");
        assert!(
            Ipv4View::parse(eth.payload()).is_err(),
            "the total parser must reject the short header"
        );
        assert!(
            crate::fuzz::replay(crate::fuzz::FuzzTarget::Packet, &fixture).is_some(),
            "the trusting parser must panic on it"
        );
    }

    #[test]
    fn pinned_crashes_drop_cleanly_through_the_engine() {
        let o = run_scenario(&pin_crash("pinned", &parser_overread_fixture()));
        assert!(o.expectations_ok(), "{:?}", o.failures);
        assert_eq!(o.injected_sent, 20);
    }
}
