//! # sysscenario — replayable production campaigns + population fuzzing
//!
//! The repo had three separate seeded mechanisms — `sysfault` schedules,
//! `FrameForge` traffic, and scripted route/backend churn — that no single
//! test could compose (ROADMAP item 5). This crate is the composition
//! layer:
//!
//! * a [`Scenario`] is a *value*: one u64 seed plus a declarative spec of
//!   traffic shape, fault schedules, and control-plane events on a shared
//!   virtual clock. Running it twice produces bit-identical outcomes —
//!   the [`ScenarioOutcome::digest`] is the proof — so "the incident" and
//!   "the replay of the incident" are the same artifact;
//! * [`engine::run_scenario`] executes a scenario on the single-threaded
//!   LB data path (`route_frame_lb`) exactly the way `lbbench`'s failover
//!   harness does, with client handshake state machines, SYN-cookie
//!   echoes, scripted backend kills/drains, route flaps, and held epoch
//!   pins, and checks every forwarded frame's TTL decrement en passant;
//! * [`library::standard`] ships the campaign the acceptance bar names —
//!   flash crowd, route-flap storm, cascading backend death with drain
//!   coordination, slowloris trickle, mixed attack/benign — and
//!   [`library::regressions`] pins every previously-fixed headline bug
//!   (TTL forwarding loop, no-op-insert cache nuke, premature epoch free,
//!   half-pair NAT insert, parser overread) as a scenario that fails the
//!   campaign if the bug resurfaces;
//! * [`fuzz`] runs a persistent *population* of byte-string inputs
//!   against the `sysrepr` total parsers and the BitC VM, mutated and
//!   selected for outcome-class novelty (drop-reason diversity, parse
//!   error classes, VM trap classes). Crashes shrink through
//!   [`sysfault::shrink::minimize_bytes`] and graduate into pinned
//!   regression scenarios;
//! * [`report`] renders the campaign + fuzz record as
//!   `BENCH_scenario.json` (experiment E18).

pub mod engine;
pub mod fuzz;
pub mod library;
pub mod report;
pub mod spec;

pub use engine::{run_campaign, run_scenario, run_scenario_traced, CampaignEntry, ScenarioOutcome};
pub use fuzz::{run_fuzz, CrashArtifact, FuzzConfig, FuzzReport, FuzzTarget};
pub use spec::{
    Arrival, ControlEvent, CtSpec, Expectation, LbSpec, PinHold, PlaneSpec, Scenario,
    ScheduledEvent, TrafficSpec,
};
