//! The virtual-clock scenario engine.
//!
//! [`run_scenario`] executes a [`Scenario`] the way `lbbench`'s failover
//! harness drives the single-threaded LB path: client handshake state
//! machines dialing the VIP, SYN-cookie echoes, one packet per active flow
//! per tick, with the conntrack, backend-pool, and wire-loss fault
//! injectors all drawing from one [`FaultPlan`] seeded by the scenario.
//! Two oracles run *en passant* on every forwarded frame:
//!
//! * **TTL decrement** — every benign frame is re-parsed after routing and
//!   must carry exactly `offered_ttl - 1` (the forwarding-loop regression);
//! * **held-pin consistency** — on the COW plane a scenario may pin a
//!   [`RouteView`] and cross-check probe lookups against a pin-time
//!   snapshot while churn publishes over it (the premature-epoch-free
//!   regression).
//!
//! Everything deterministic folds into [`ScenarioOutcome::digest`];
//! wall-clock latency is reported but excluded, so the digest is a replay
//! proof: same spec + seed ⇒ same digest, across runs and across
//! observability modes ([`run_campaign`] verifies both).

use crate::spec::{Arrival, ControlEvent, Expectation, PinHold, PlaneSpec, Scenario};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use sysfault::{FaultInjector, FaultPlan};
use sysnet::conntrack::{Conntrack, ConntrackConfig, EvictCause, FlowKey};
use sysnet::ctbench::FrameForge;
use sysnet::lb::{route_frame_lb, BackendPool, LbConfig};
use sysnet::lbbench::{lb_backends, lb_table, LB_VIP, LB_VPORT};
use sysnet::pipeline::{DropReason, DROP_REASONS};
use sysnet::{CowRouteTable, FlowCache, RouteView, Routes, TrieTable};
use sysrepr::endian::{internet_checksum, write_u16_be};
use sysrepr::packet::{IPPROTO_TCP, TCP_ACK, TCP_SYN};

/// The engine's own fault site: benign client frames lost on the wire
/// before reaching the router (schedule it in [`Scenario::faults`]).
pub const SITE_WIRE_LOSS: &str = "scenario.wire_loss";

/// Ethernet header length (frames are untagged, as everywhere in `sysnet`).
const ETH: usize = 14;
/// TTL carried by attack frames (the `FrameForge` template default).
const ATTACK_TTL: u8 = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a style fold step for the outcome digest.
#[inline]
fn fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// SplitMix64 — the engine's only PRNG besides the fault streams, used for
/// held-pin probe addresses. Seeded from the scenario seed, so probes are
/// part of the replay.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A virtual client's handshake position (as in the failover harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CState {
    NeedSyn,
    NeedAck,
    Established,
}

/// Client flow `f`'s endpoint: unique `(ip, port)` under 10.9/16 — must
/// match the LB bench convention so the standard table routes it.
#[allow(clippy::cast_possible_truncation)]
fn client_endpoint(f: usize) -> ([u8; 4], u16) {
    let ip = [10, 9, (f >> 8) as u8, f as u8];
    let port = 1024 + ((f >> 16) as u16 & 0x3FFF);
    (ip, port)
}

/// Attack SYN `j`'s endpoint: unique spoofed source aimed at the VIP
/// host's non-service ports (unrewritten scans route to port 3).
#[allow(clippy::cast_possible_truncation)]
fn storm_endpoint(j: u64) -> ([u8; 4], u16, u16) {
    let src = [
        198,
        18 + ((j >> 30) as u8 & 1),
        (j >> 22) as u8,
        (j >> 14) as u8,
    ];
    let sport = 1024 + (j as u16 & 0x3FFF);
    let dport = 8000 + (j % 997) as u16;
    (src, sport, dport)
}

/// Stamps `ttl` into a frame's IP header and repairs the header checksum.
fn patch_ttl(buf: &mut [u8], ttl: u8) {
    buf[ETH + 8] = ttl;
    write_u16_be(buf, ETH + 10, 0).expect("forge frames carry full headers");
    let ck = internet_checksum(&buf[ETH..ETH + 20]);
    write_u16_be(buf, ETH + 10, ck).expect("forge frames carry full headers");
}

/// Reads the TTL back out of a routed frame (the oracle's half of
/// [`patch_ttl`]).
fn read_ttl(buf: &[u8]) -> Option<u8> {
    buf.get(ETH + 8).copied()
}

/// What one scenario run measured. Every integer field participates in
/// [`ScenarioOutcome::digest`]; `route_ns_per_packet` is wall clock and
/// deliberately excluded.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// The seed it ran under.
    pub seed: u64,
    /// Measured ticks.
    pub ticks: u64,
    /// Client flows.
    pub flows: usize,
    /// Benign packets offered during measured ticks.
    pub offered: u64,
    /// Established-flow data packets delivered.
    pub delivered: u64,
    /// Attack packets offered.
    pub attack_sent: u64,
    /// Attack packets forwarded (to the unrewritten VIP-host route).
    pub attack_forwarded: u64,
    /// Injected raw frames offered (fuzzer reproductions and fixtures).
    pub injected_sent: u64,
    /// Benign packets lost to the [`SITE_WIRE_LOSS`] fault site.
    pub wire_lost: u64,
    /// Drops by [`DropReason`], across the whole run.
    pub drops: [u64; DROP_REASONS],
    /// New flows the pool assigned a backend.
    pub assigned: u64,
    /// Conntrack entries freed by backend-death ejection.
    pub flows_ejected: u64,
    /// VIP flows shed with no backend up.
    pub no_backend: u64,
    /// Peak live conntrack entries (twin slots included).
    pub peak_flows: usize,
    /// Route-table generation advance (COW plane: publication count).
    pub generation_delta: u64,
    /// Flow-cache misses attributed to invalidation (0 if no cache).
    pub invalidation_misses: u64,
    /// Forwarded frames whose TTL was not exactly one less than offered.
    pub ttl_violations: u64,
    /// Held-pin probe lookups that diverged from the pin-time snapshot.
    pub stale_view_mismatches: u64,
    /// `Conntrack::check_invariants` verdict after the run.
    pub audit_ok: bool,
    /// Lowest per-tick delivered/offered over measured ticks.
    pub worst_tick_goodput: f64,
    /// Delivered/offered on the final tick (did the system recover?).
    pub final_tick_goodput: f64,
    /// Measured ticks where at least one offered packet failed to deliver.
    pub outage_ticks: u64,
    /// Unmeasured establishment ticks the arrival shape required.
    pub establish_ticks: u64,
    /// Combined digest of the conntrack, pool, and wire fault logs.
    pub fault_digest: u64,
    /// The replay digest: a fold over every deterministic observable.
    pub digest: u64,
    /// Wall-clock nanoseconds per routed packet (excluded from `digest`).
    pub route_ns_per_packet: f64,
    /// Failed [`Expectation`]s, rendered human-readable; empty = pass.
    pub failures: Vec<String>,
}

impl ScenarioOutcome {
    /// Delivered over offered across all measured ticks.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn availability(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }

    /// Did every expectation hold?
    #[must_use]
    pub fn expectations_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The mutable run state shared by both plane drivers.
struct World<'s> {
    s: &'s Scenario,
    ct: Conntrack,
    pool: BackendPool,
    cache: Option<FlowCache<u16>>,
    forge: FrameForge,
    wire: FaultInjector,
    states: Vec<CState>,
    acc: f64,
    attack_seq: u64,
    offered: u64,
    delivered: u64,
    attack_sent: u64,
    attack_forwarded: u64,
    injected_sent: u64,
    wire_lost: u64,
    drops: [u64; DROP_REASONS],
    ttl_violations: u64,
    peak_flows: usize,
    flows_ejected: u64,
    routed: u64,
    per_tick: Vec<(u64, u64)>,
}

impl<'s> World<'s> {
    fn new(s: &'s Scenario) -> Self {
        let plan = s
            .faults
            .iter()
            .fold(FaultPlan::new(s.seed), |p, (site, sched)| {
                p.with_site(site, *sched)
            });
        let capacity = s.ct_capacity();
        let ct = Conntrack::new(ConntrackConfig {
            max_flows: capacity,
            syn_backlog: s.ct.syn_backlog.clamp(1, capacity),
            ..ConntrackConfig::default()
        })
        .with_injector(FaultInjector::new(plan.clone()));
        let pool = BackendPool::new(LbConfig {
            vip: u32::from_be_bytes(LB_VIP),
            vport: LB_VPORT,
            backends: lb_backends(),
            probe_interval_ns: s.lb.probe_interval_ticks.max(1) * s.tick_ns,
            fall: s.lb.fall,
            rise: s.lb.rise,
        })
        .with_injector(FaultInjector::new(plan.clone()));
        World {
            s,
            ct,
            pool,
            cache: (s.cache_slots > 0).then(|| FlowCache::new(s.cache_slots)),
            forge: FrameForge::new(s.traffic.payload_len.min(256)),
            wire: FaultInjector::new(plan),
            states: vec![CState::NeedSyn; s.traffic.flows],
            acc: 0.0,
            attack_seq: 0,
            offered: 0,
            delivered: 0,
            attack_sent: 0,
            attack_forwarded: 0,
            injected_sent: 0,
            wire_lost: 0,
            drops: [0; DROP_REASONS],
            ttl_violations: 0,
            peak_flows: 0,
            flows_ejected: 0,
            routed: 0,
            per_tick: Vec::with_capacity(s.ticks as usize),
        }
    }

    fn key_of(&self, f: usize) -> FlowKey {
        let (src, sport) = client_endpoint(f);
        FlowKey::canonical(
            u32::from_be_bytes(src),
            u32::from_be_bytes(LB_VIP),
            sport,
            LB_VPORT,
            IPPROTO_TCP,
        )
    }

    /// Routes one frame, tallying drops and the routed-packet count.
    fn route_buf<R: Routes<u16>>(
        &mut self,
        table: &R,
        buf: &mut [u8],
        now: u64,
    ) -> Result<u16, DropReason> {
        self.routed += 1;
        let r = route_frame_lb(
            buf,
            table,
            self.cache.as_mut(),
            &mut self.ct,
            &mut self.pool,
            now,
        );
        if let Err(reason) = r {
            self.drops[reason as usize] += 1;
        }
        r
    }

    /// The TTL oracle: a forwarded frame must carry exactly one less than
    /// it was offered with.
    fn check_ttl(&mut self, buf: &[u8], offered_ttl: u8) {
        if read_ttl(buf) != Some(offered_ttl.wrapping_sub(1)) {
            self.ttl_violations += 1;
        }
    }

    /// Sends client `f`'s packet for its current handshake state.
    fn send_client<R: Routes<u16>>(
        &mut self,
        table: &R,
        f: usize,
        st: CState,
        now: u64,
    ) -> Result<u16, DropReason> {
        let (src, sport) = client_endpoint(f);
        let (flags, payload) = match st {
            CState::NeedSyn => (TCP_SYN, false),
            CState::NeedAck => (TCP_ACK, false),
            CState::Established => (TCP_ACK, true),
        };
        let ack_no = self.ct.cookie(&self.key_of(f)).wrapping_add(1);
        let mut buf = [0u8; 512];
        let n = {
            let frame = self
                .forge
                .shape(payload, src, LB_VIP, sport, LB_VPORT, flags, 1, ack_no);
            let n = frame.len().min(buf.len());
            buf[..n].copy_from_slice(&frame[..n]);
            n
        };
        patch_ttl(&mut buf[..n], self.s.traffic.ttl);
        let r = self.route_buf(table, &mut buf[..n], now);
        if r.is_ok() {
            self.check_ttl(&buf[..n], self.s.traffic.ttl);
        }
        r
    }

    /// Interleaves attack SYNs at the configured mix (error-accumulator
    /// pacing, as in the LB bench storm).
    fn maybe_attack<R: Routes<u16>>(&mut self, table: &R, now: u64) {
        let mix = self.s.traffic.attack_mix;
        let ratio = if mix >= 1.0 {
            1.0
        } else if mix > 0.0 {
            mix / (1.0 - mix)
        } else {
            return;
        };
        self.acc += ratio;
        while self.acc >= 1.0 {
            self.acc -= 1.0;
            let j = self.attack_seq;
            self.attack_seq += 1;
            let (src, sport, dport) = storm_endpoint(j);
            let mut buf = [0u8; 512];
            let n = {
                #[allow(clippy::cast_possible_truncation)]
                let frame = self
                    .forge
                    .shape(false, src, LB_VIP, sport, dport, TCP_SYN, j as u32, 0);
                let n = frame.len().min(buf.len());
                buf[..n].copy_from_slice(&frame[..n]);
                n
            };
            self.attack_sent += 1;
            if self.route_buf(table, &mut buf[..n], now).is_ok() {
                self.attack_forwarded += 1;
                self.check_ttl(&buf[..n], ATTACK_TTL);
            }
        }
    }

    /// Runs health probes and ejects any backend the probes took down.
    fn probe(&mut self, now: u64) {
        let downed = self.pool.maybe_probe(now).to_vec();
        for b in downed {
            self.eject(b);
        }
    }

    /// Frees a dead backend's flows and attributes them.
    fn eject(&mut self, b: u16) {
        let freed = self.ct.eject_backend(b, EvictCause::BackendDead);
        self.pool.note_flows_ejected(freed);
        self.flows_ejected += freed as u64;
        if sysobs::tracing_on() {
            sysobs::recorder::instant_dynamic("scenario.backend_death", u64::from(b));
        }
    }

    /// Applies the backend-side of a control event (route events are the
    /// plane driver's job).
    fn apply_backend_event(&mut self, ev: ControlEvent) {
        match ev {
            ControlEvent::BackendDrain { idx } => self.pool.drain(idx),
            ControlEvent::BackendKill { idx } => {
                let newly_down = self.pool.force_down(idx);
                if newly_down {
                    self.eject(idx);
                }
            }
            ControlEvent::BackendRevive { idx } => {
                self.pool.revive(idx);
            }
            _ => {}
        }
    }

    /// Pre-establishes the whole population (trickle arrivals measure a
    /// resident table, not a handshake wall). Returns the ticks it took.
    fn maybe_establish<R: Routes<u16>>(&mut self, table: &R, now: &mut u64) -> u64 {
        if !matches!(self.s.traffic.arrival, Arrival::Trickle { .. }) {
            return 0;
        }
        let mut ticks = 0u64;
        while self.states.iter().any(|&st| st != CState::Established) {
            *now += self.s.tick_ns;
            ticks += 1;
            assert!(
                ticks <= 100_000,
                "scenario '{}': establishment did not converge",
                self.s.name
            );
            self.probe(*now);
            for f in 0..self.s.traffic.flows {
                let st = self.states[f];
                if st == CState::Established {
                    continue;
                }
                if self.wire.should_fail(SITE_WIRE_LOSS) {
                    self.wire_lost += 1;
                    continue;
                }
                if self.send_client(table, f, st, *now).is_ok() {
                    self.states[f] = match st {
                        CState::NeedSyn => CState::NeedAck,
                        _ => CState::Established,
                    };
                }
            }
        }
        ticks
    }

    /// One measured tick of traffic. Returns `(delivered, offered)`.
    #[allow(clippy::cast_possible_truncation)]
    fn traffic_tick<R: Routes<u16>>(&mut self, table: &R, tick: u64, now: u64) -> (u64, u64) {
        let flows = self.s.traffic.flows;
        let active = match self.s.traffic.arrival {
            Arrival::Steady | Arrival::Trickle { .. } => flows,
            Arrival::FlashCrowd { ramp_ticks } => {
                if ramp_ticks == 0 || tick >= ramp_ticks {
                    flows
                } else {
                    ((flows as u64 * tick) / ramp_ticks) as usize
                }
            }
        };
        let stride = match self.s.traffic.arrival {
            Arrival::Trickle { stride } => stride.max(1),
            _ => 1,
        };
        let mut del = 0u64;
        let mut off = 0u64;
        for f in 0..active {
            let st = self.states[f];
            // Established trickle flows only talk on their stride turn;
            // re-handshakes (post-ejection) go immediately.
            if st == CState::Established && stride > 1 && f % stride != (tick as usize) % stride {
                continue;
            }
            off += 1;
            self.offered += 1;
            self.maybe_attack(table, now);
            if self.wire.should_fail(SITE_WIRE_LOSS) {
                self.wire_lost += 1;
                continue;
            }
            match (st, self.send_client(table, f, st, now)) {
                (CState::NeedSyn, Ok(_)) => self.states[f] = CState::NeedAck,
                (CState::NeedAck, Ok(_)) => self.states[f] = CState::Established,
                // Delivery means landing on the backend port; an Ok onto
                // any other port is a misroute and earns no goodput.
                (CState::Established, Ok(1)) => {
                    del += 1;
                    self.delivered += 1;
                }
                (CState::Established, Err(DropReason::NoFlow)) => {
                    self.states[f] = CState::NeedSyn;
                }
                _ => {}
            }
        }
        for i in 0..self.s.traffic.inject.len() {
            let mut frame = self.s.traffic.inject[i].clone();
            self.injected_sent += 1;
            let _ = self.route_buf(table, &mut frame, now);
        }
        self.peak_flows = self.peak_flows.max(self.ct.len());
        (del, off)
    }

    /// Seals the run into an outcome: audits, digests, and expectation
    /// checks.
    #[allow(clippy::cast_precision_loss)]
    fn finish(
        self,
        establish_ticks: u64,
        generation_delta: u64,
        stale_view_mismatches: u64,
        elapsed_ns: u64,
    ) -> ScenarioOutcome {
        let s = self.s;
        let audit_ok = self.ct.check_invariants().is_ok();
        let invalidation_misses = self
            .cache
            .as_ref()
            .map_or(0, FlowCache::invalidation_misses);
        let fault_digest = fold(
            fold(
                fold(FNV_OFFSET, self.ct.fault_digest()),
                self.pool.fault_digest(),
            ),
            self.wire.log().digest(),
        );
        let goodput = |&(d, o): &(u64, u64)| if o == 0 { 1.0 } else { d as f64 / o as f64 };
        let worst_tick_goodput = self.per_tick.iter().map(goodput).fold(1.0f64, f64::min);
        let final_tick_goodput = self.per_tick.last().map_or(1.0, goodput);
        let outage_ticks = self.per_tick.iter().filter(|&&(d, o)| d < o).count() as u64;

        let mut h = FNV_OFFSET;
        h = fold(h, s.seed);
        h = fold(h, s.ticks);
        h = fold(h, s.traffic.flows as u64);
        for &(d, o) in &self.per_tick {
            h = fold(h, d);
            h = fold(h, o);
        }
        for &d in &self.drops {
            h = fold(h, d);
        }
        let stats = self.pool.stats();
        for v in [
            self.offered,
            self.delivered,
            self.attack_sent,
            self.attack_forwarded,
            self.injected_sent,
            self.wire_lost,
            stats.assigned,
            stats.no_backend,
            self.flows_ejected,
            self.peak_flows as u64,
            generation_delta,
            invalidation_misses,
            self.ttl_violations,
            stale_view_mismatches,
            u64::from(audit_ok),
            establish_ticks,
            fault_digest,
        ] {
            h = fold(h, v);
        }

        let mut out = ScenarioOutcome {
            name: s.name.clone(),
            seed: s.seed,
            ticks: s.ticks,
            flows: s.traffic.flows,
            offered: self.offered,
            delivered: self.delivered,
            attack_sent: self.attack_sent,
            attack_forwarded: self.attack_forwarded,
            injected_sent: self.injected_sent,
            wire_lost: self.wire_lost,
            drops: self.drops,
            assigned: stats.assigned,
            flows_ejected: self.flows_ejected,
            no_backend: stats.no_backend,
            peak_flows: self.peak_flows,
            generation_delta,
            invalidation_misses,
            ttl_violations: self.ttl_violations,
            stale_view_mismatches,
            audit_ok,
            worst_tick_goodput,
            final_tick_goodput,
            outage_ticks,
            establish_ticks,
            fault_digest,
            digest: h,
            route_ns_per_packet: if self.routed == 0 {
                0.0
            } else {
                elapsed_ns as f64 / self.routed as f64
            },
            failures: Vec::new(),
        };
        out.failures = evaluate(s, &out);
        out
    }
}

/// Checks every [`Expectation`] against the finished outcome.
fn evaluate(s: &Scenario, o: &ScenarioOutcome) -> Vec<String> {
    let mut failures = Vec::new();
    let mut fail = |msg: String| failures.push(msg);
    for e in &s.expect {
        match *e {
            Expectation::MinAvailability(min) => {
                if o.availability() < min {
                    fail(format!(
                        "availability {:.4} < required {min:.4}",
                        o.availability()
                    ));
                }
            }
            Expectation::FinalGoodputAtLeast(min) => {
                if o.final_tick_goodput < min {
                    fail(format!(
                        "final-tick goodput {:.4} < required {min:.4} (no recovery)",
                        o.final_tick_goodput
                    ));
                }
            }
            Expectation::DeliveredExactly(n) => {
                if o.delivered != n {
                    fail(format!("delivered {} != required {n}", o.delivered));
                }
            }
            Expectation::DropsAtLeast(reason, n) => {
                let got = o.drops[reason as usize];
                if got < n {
                    fail(format!("drops[{reason:?}] {got} < required {n}"));
                }
            }
            Expectation::DropsAtMost(reason, n) => {
                let got = o.drops[reason as usize];
                if got > n {
                    fail(format!("drops[{reason:?}] {got} > allowed {n}"));
                }
            }
            Expectation::GenerationDeltaAtMost(n) => {
                if o.generation_delta > n {
                    fail(format!(
                        "generation delta {} > allowed {n} (no-op inserts bumped the table)",
                        o.generation_delta
                    ));
                }
            }
            Expectation::InvalidationMissesAtMost(n) => {
                if o.invalidation_misses > n {
                    fail(format!(
                        "invalidation misses {} > allowed {n} (cache nuked)",
                        o.invalidation_misses
                    ));
                }
            }
            Expectation::TtlViolationsZero => {
                if o.ttl_violations > 0 {
                    fail(format!(
                        "{} forwarded frames broke the TTL decrement",
                        o.ttl_violations
                    ));
                }
            }
            Expectation::StaleViewMismatchesZero => {
                if o.stale_view_mismatches > 0 {
                    fail(format!(
                        "{} held-pin probes diverged from the pin-time snapshot",
                        o.stale_view_mismatches
                    ));
                }
            }
            Expectation::AuditClean => {
                if !o.audit_ok {
                    fail("conntrack invariant audit failed".to_owned());
                }
            }
            Expectation::FlowsEjectedAtLeast(n) => {
                if o.flows_ejected < n {
                    fail(format!("flows ejected {} < required {n}", o.flows_ejected));
                }
            }
            Expectation::NoBackendAtMost(n) => {
                if o.no_backend > n {
                    fail(format!("no-backend sheds {} > allowed {n}", o.no_backend));
                }
            }
            Expectation::PeakFlowsAtLeast(n) => {
                if (o.peak_flows as u64) < n {
                    fail(format!("peak flows {} < required {n}", o.peak_flows));
                }
            }
        }
    }
    failures
}

/// Emits a trace skeleton marker for a control event (tracing mode only).
fn trace_event(ev: ControlEvent, tick: u64) {
    if sysobs::tracing_on() {
        let name = match ev {
            ControlEvent::RouteInsert { .. } => "scenario.route_insert",
            ControlEvent::RouteRemove { .. } => "scenario.route_remove",
            ControlEvent::RouteNoopReinsertAll => "scenario.route_noop_reinsert",
            ControlEvent::BackendDrain { .. } => "scenario.backend_drain",
            ControlEvent::BackendKill { .. } => "scenario.backend_kill",
            ControlEvent::BackendRevive { .. } => "scenario.backend_revive",
        };
        sysobs::recorder::instant_dynamic(name, tick);
    }
}

/// Applies a route event to the exclusive trie plane.
fn apply_route_event_trie(t: &mut TrieTable<u16>, ev: ControlEvent) {
    match ev {
        ControlEvent::RouteInsert { prefix, len, port } => {
            let _ = t.insert(u32::from_be_bytes(prefix), len, port);
        }
        ControlEvent::RouteRemove { prefix, len } => {
            let _ = t.remove(u32::from_be_bytes(prefix), len);
        }
        ControlEvent::RouteNoopReinsertAll => {
            for (p, l, v) in t.routes() {
                let _ = t.insert(p, l, v);
            }
        }
        _ => {}
    }
}

/// Applies a route event to the COW plane.
fn apply_route_event_cow(t: &CowRouteTable<u16>, ev: ControlEvent) {
    match ev {
        ControlEvent::RouteInsert { prefix, len, port } => {
            let _ = t.insert(u32::from_be_bytes(prefix), len, port);
        }
        ControlEvent::RouteRemove { prefix, len } => {
            let _ = t.remove(u32::from_be_bytes(prefix), len);
        }
        ControlEvent::RouteNoopReinsertAll => {
            for (p, l, v) in t.routes() {
                let _ = t.insert(p, l, v);
            }
        }
        _ => {}
    }
}

/// A held-pin probe address: biased toward the routed subnets so churn is
/// actually visible (uniform u32 would mostly hit the default route).
fn probe_addr(rng: &mut Rng) -> u32 {
    let r = rng.next();
    #[allow(clippy::cast_possible_truncation)]
    let low16 = (r >> 8) as u32 & 0xFFFF;
    match r % 4 {
        0 => (u32::from_be_bytes([10, 50, 0, 0])) | low16,
        1 => (u32::from_be_bytes([10, 9, 0, 0])) | low16,
        2 => (u32::from_be_bytes([10, 77, 0, 0])) | low16,
        #[allow(clippy::cast_possible_truncation)]
        _ => (r >> 16) as u32,
    }
}

#[allow(clippy::cast_possible_truncation)]
fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos() as u64
}

/// Runs one scenario on the exclusive-trie plane.
fn run_trie(s: &Scenario) -> ScenarioOutcome {
    let mut table = lb_table();
    let gen0 = table.generation();
    let mut w = World::new(s);
    let mut now = 0u64;
    let establish_ticks = w.maybe_establish(&table, &mut now);
    let t0 = Instant::now();
    for tick in 1..=s.ticks {
        now += s.tick_ns;
        for i in 0..s.events.len() {
            if s.events[i].tick == tick {
                let ev = s.events[i].event;
                trace_event(ev, tick);
                apply_route_event_trie(&mut table, ev);
                w.apply_backend_event(ev);
            }
        }
        w.probe(now);
        let (d, o) = w.traffic_tick(&table, tick, now);
        w.per_tick.push((d, o));
    }
    let ns = elapsed_ns(t0);
    let generation_delta = table.generation() - gen0;
    w.finish(establish_ticks, generation_delta, 0, ns)
}

/// Runs one scenario on the COW plane, optionally with the held-pin
/// oracle.
fn run_cow(s: &Scenario, pin: Option<PinHold>) -> ScenarioOutcome {
    let table = Arc::new(CowRouteTable::from_trie(&lb_table()));
    let pub0 = table.publications();
    let data_reader = table.reader();
    let hold_reader = table.reader();
    let mut w = World::new(s);
    let mut now = 0u64;
    let establish_ticks = {
        let v = data_reader.pin();
        w.maybe_establish(&v, &mut now)
    };
    let mut snapshot: Option<TrieTable<u16>> = None;
    let mut held: Option<RouteView<'_, u16>> = None;
    let mut stale = 0u64;
    let mut rng = Rng::new(s.seed ^ 0x9e37_79b9_7f4a_7c15);
    let t0 = Instant::now();
    for tick in 1..=s.ticks {
        now += s.tick_ns;
        for i in 0..s.events.len() {
            if s.events[i].tick == tick {
                let ev = s.events[i].event;
                trace_event(ev, tick);
                apply_route_event_cow(&table, ev);
                w.apply_backend_event(ev);
            }
        }
        if let Some(p) = pin {
            if tick == p.pin_tick {
                let mut snap = TrieTable::new();
                for (pr, l, v) in table.routes() {
                    snap.insert(pr, l, v).expect("snapshot of valid routes");
                }
                snapshot = Some(snap);
                held = Some(hold_reader.pin());
            }
            if tick == p.pin_tick.saturating_add(p.hold_ticks) {
                held = None;
                snapshot = None;
            }
            if let (Some(h), Some(snap)) = (held.as_ref(), snapshot.as_ref()) {
                for _ in 0..p.probes {
                    let addr = probe_addr(&mut rng);
                    if h.lookup(addr) != snap.lookup(addr) {
                        stale += 1;
                    }
                }
            }
        }
        w.probe(now);
        let v = data_reader.pin();
        let (d, o) = w.traffic_tick(&v, tick, now);
        w.per_tick.push((d, o));
    }
    let ns = elapsed_ns(t0);
    drop(held);
    let generation_delta = table.publications() - pub0;
    w.finish(establish_ticks, generation_delta, stale, ns)
}

/// Runs a scenario to completion. Deterministic in `(spec, seed)`: the
/// returned [`ScenarioOutcome::digest`] is bit-identical across runs.
#[must_use]
pub fn run_scenario(s: &Scenario) -> ScenarioOutcome {
    match s.plane {
        PlaneSpec::Trie => run_trie(s),
        PlaneSpec::Cow { pin } => run_cow(s, pin),
    }
}

/// Serializes traced runs: the recorder and mode are process-global.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Runs a scenario under full tracing and returns `(outcome,
/// trace_shape_digest, postmortems_fired)`. The outcome digest must equal
/// the untraced run's — observability must never perturb the data plane —
/// and [`run_campaign`] checks exactly that.
#[must_use]
pub fn run_scenario_traced(s: &Scenario) -> (ScenarioOutcome, u64, usize) {
    let _g = TRACE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let prev = sysobs::mode();
    sysobs::set_mode(sysobs::Mode::Tracing);
    sysobs::recorder::unfreeze();
    sysobs::recorder::clear();
    let mut triggers = sysobs::trigger::TriggerEngine::standard();
    // Baseline the delta watches against whatever the process did before.
    let _ = triggers.poll(None);
    let out = run_scenario(s);
    let shape = sysobs::recorder::shape_digest();
    let postmortems = triggers.poll(Some(out.fault_digest)).len();
    sysobs::recorder::unfreeze();
    sysobs::set_mode(prev);
    (out, shape, postmortems)
}

/// One campaign row: the outcome plus the replay and trace evidence.
#[derive(Debug, Clone)]
pub struct CampaignEntry {
    /// The first (recorded) run.
    pub outcome: ScenarioOutcome,
    /// The second run's digest (must equal `outcome.digest`).
    pub replay_digest: u64,
    /// Did both the replay and the traced run reproduce the digest?
    pub replay_verified: bool,
    /// Timestamp-insensitive digest of the traced run's event shape.
    pub shape_digest: u64,
    /// Postmortems the standard trigger engine fired on the traced run.
    pub postmortems: usize,
}

/// Runs every scenario three times — plain, replay, traced — and verifies
/// the digest survives all three.
#[must_use]
pub fn run_campaign(scenarios: &[Scenario]) -> Vec<CampaignEntry> {
    scenarios
        .iter()
        .map(|s| {
            let first = run_scenario(s);
            let replay = run_scenario(s);
            let (traced, shape_digest, postmortems) = run_scenario_traced(s);
            let replay_verified = first.digest == replay.digest && first.digest == traced.digest;
            CampaignEntry {
                outcome: first,
                replay_digest: replay.digest,
                replay_verified,
                shape_digest,
                postmortems,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CtSpec, ScheduledEvent, TrafficSpec};
    use sysfault::Schedule;

    fn small(name: &str, seed: u64) -> Scenario {
        Scenario {
            ticks: 40,
            traffic: TrafficSpec {
                flows: 32,
                ..TrafficSpec::default()
            },
            ..Scenario::named(name, seed)
        }
    }

    #[test]
    fn steady_scenario_reaches_full_goodput_and_audits_clean() {
        let o = run_scenario(&small("steady", 1));
        assert!(o.audit_ok);
        assert_eq!(o.ttl_violations, 0);
        assert!(o.availability() > 0.9, "got {}", o.availability());
        assert!((o.final_tick_goodput - 1.0).abs() < 1e-9);
        assert!(o.failures.is_empty(), "{:?}", o.failures);
    }

    #[test]
    fn same_seed_same_digest_different_seed_different_digest() {
        let a = run_scenario(&small("d", 7));
        let b = run_scenario(&small("d", 7));
        let c = run_scenario(&small("d", 8));
        assert_eq!(a.digest, b.digest, "replay must be exact");
        assert_ne!(a.digest, c.digest, "the seed must matter");
    }

    #[test]
    fn wire_loss_faults_dent_goodput_deterministically() {
        let mut s = small("lossy", 3);
        s.faults
            .push((SITE_WIRE_LOSS.to_owned(), Schedule::EveryNth(5)));
        let a = run_scenario(&s);
        let b = run_scenario(&s);
        assert!(a.wire_lost > 0, "the fault site must fire");
        assert!(a.availability() < 1.0);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.fault_digest, b.fault_digest);
    }

    #[test]
    fn backend_kill_ejects_flows_and_clients_recover() {
        let mut s = small("kill", 9);
        s.ticks = 80;
        s.traffic.arrival = Arrival::Trickle { stride: 1 };
        s.events.push(ScheduledEvent {
            tick: 10,
            event: ControlEvent::BackendKill { idx: 2 },
        });
        let o = run_scenario(&s);
        assert!(o.flows_ejected > 0, "weight-2 backend held flows");
        assert!(o.outage_ticks > 0, "the kill must cost ticks");
        assert!(
            (o.final_tick_goodput - 1.0).abs() < 1e-9,
            "clients re-handshake onto survivors: {o:?}"
        );
        assert!(o.audit_ok);
    }

    #[test]
    fn traced_run_reproduces_the_untraced_digest() {
        let s = small("traced", 5);
        let plain = run_scenario(&s);
        let (traced, shape, _pm) = run_scenario_traced(&s);
        assert_eq!(
            plain.digest, traced.digest,
            "observability must not perturb"
        );
        let (traced2, shape2, _pm2) = run_scenario_traced(&s);
        assert_eq!(traced.digest, traced2.digest);
        assert_eq!(shape, shape2, "trace shape must replay");
    }

    #[test]
    fn cow_plane_runs_with_held_pin_and_sees_no_stale_reads() {
        let mut s = small("cow", 11);
        s.plane = PlaneSpec::Cow {
            pin: Some(PinHold {
                pin_tick: 5,
                hold_ticks: 20,
                probes: 16,
            }),
        };
        for t in 6..20 {
            s.events.push(ScheduledEvent {
                tick: t,
                event: ControlEvent::RouteInsert {
                    prefix: [10, 77, (t % 8) as u8, 0],
                    len: 24,
                    port: 0,
                },
            });
            s.events.push(ScheduledEvent {
                tick: t,
                event: ControlEvent::RouteRemove {
                    prefix: [10, 77, (t % 8) as u8, 0],
                    len: 24,
                },
            });
        }
        let o = run_scenario(&s);
        assert_eq!(o.stale_view_mismatches, 0, "epoch pin must hold");
        assert!(o.generation_delta > 0, "churn must publish");
        assert!(o.failures.is_empty(), "{:?}", o.failures);
    }

    #[test]
    fn expectations_fail_loudly_when_violated() {
        let mut s = small("strict", 2);
        s.expect.push(Expectation::MinAvailability(2.0));
        let o = run_scenario(&s);
        assert!(!o.expectations_ok());
        assert!(o.failures[0].contains("availability"));
    }

    #[test]
    fn tiny_conntrack_sheds_but_audits_clean() {
        let mut s = small("tiny-ct", 4);
        s.traffic.flows = 200;
        s.ct = CtSpec {
            max_flows: 64,
            syn_backlog: 48,
        };
        let o = run_scenario(&s);
        let shed: u64 = o.drops.iter().sum();
        assert!(shed > 0, "200 flows cannot fit 64 slots");
        assert!(o.audit_ok, "overload must never corrupt the table");
    }
}
