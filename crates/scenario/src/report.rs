//! Rendering the campaign + fuzz record as `BENCH_scenario.json`
//! (experiment E18's artifact; schema checked by `ci.sh`).

use crate::engine::CampaignEntry;
use crate::fuzz::FuzzReport;
use std::fmt::Write as _;

/// Everything experiment E18 measured.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The standard campaign rows.
    pub scenarios: Vec<CampaignEntry>,
    /// The pinned-regression rows.
    pub regressions: Vec<CampaignEntry>,
    /// One population-fuzzing run per target.
    pub fuzz: Vec<FuzzReport>,
}

impl CampaignReport {
    /// Did every scenario and regression meet its expectations?
    #[must_use]
    pub fn all_expectations_pass(&self) -> bool {
        self.scenarios
            .iter()
            .chain(&self.regressions)
            .all(|e| e.outcome.expectations_ok())
    }

    /// Did every run replay to an identical digest (plain, replay, and
    /// traced)?
    #[must_use]
    pub fn all_replays_verified(&self) -> bool {
        self.scenarios
            .iter()
            .chain(&self.regressions)
            .all(|e| e.replay_verified)
    }

    /// Did the packet fuzzer rediscover the seeded trusting-parser bug?
    #[must_use]
    pub fn seeded_bug_found(&self) -> bool {
        self.fuzz.iter().any(|f| f.seeded_bug_found)
    }

    /// Renders `BENCH_scenario.json` (hand-rolled: no serde in the
    /// container, and the schema is flat).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"bench\": \"scenario\",");
        let _ = writeln!(s, "  \"schema\": 1,");
        let _ = writeln!(s, "  \"scenarios\": [");
        render_entries(&mut s, &self.scenarios);
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"regressions\": [");
        render_entries(&mut s, &self.regressions);
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"fuzz\": [");
        for (i, f) in self.fuzz.iter().enumerate() {
            let comma = if i + 1 == self.fuzz.len() { "" } else { "," };
            let minimized_len = f
                .crashes
                .first()
                .map_or_else(|| "null".to_owned(), |c| c.minimized.len().to_string());
            let _ = writeln!(
                s,
                "    {{\"target\": \"{}\", \"iterations\": {}, \
                 \"executions\": {}, \"population\": {}, \
                 \"distinct_features\": {}, \"crashes\": {}, \
                 \"seeded_bug_found\": {}, \"minimized_len\": {minimized_len}}}{comma}",
                f.target.name(),
                f.iterations,
                f.executions,
                f.population,
                f.distinct_features,
                f.crashes.len(),
                f.seeded_bug_found,
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"headline\": {{");
        let _ = writeln!(
            s,
            "    \"scenarios\": {},",
            self.scenarios.len() + self.regressions.len()
        );
        let _ = writeln!(
            s,
            "    \"all_expectations_pass\": {},",
            self.all_expectations_pass()
        );
        let _ = writeln!(
            s,
            "    \"all_replays_verified\": {},",
            self.all_replays_verified()
        );
        let _ = writeln!(s, "    \"seeded_bug_found\": {}", self.seeded_bug_found());
        let _ = writeln!(s, "  }}");
        s.push_str("}\n");
        s
    }
}

fn render_entries(s: &mut String, entries: &[CampaignEntry]) {
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let o = &e.outcome;
        let failures = o
            .failures
            .iter()
            .map(|f| format!("\"{}\"", f.escape_default()))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"seed\": {}, \"ticks\": {}, \
             \"flows\": {}, \"availability\": {:.4}, \
             \"worst_tick_goodput\": {:.4}, \"final_tick_goodput\": {:.4}, \
             \"outage_ticks\": {}, \"offered\": {}, \"delivered\": {}, \
             \"attack_sent\": {}, \"attack_forwarded\": {}, \
             \"wire_lost\": {}, \"flows_ejected\": {}, \"no_backend\": {}, \
             \"peak_flows\": {}, \"generation_delta\": {}, \
             \"invalidation_misses\": {}, \"ttl_violations\": {}, \
             \"stale_view_mismatches\": {}, \"audit_ok\": {}, \
             \"route_ns_per_packet\": {:.1}, \"digest\": \"{:#018x}\", \
             \"fault_digest\": \"{:#018x}\", \"shape_digest\": \"{:#018x}\", \
             \"replay_verified\": {}, \"postmortems\": {}, \
             \"expectations_ok\": {}, \"failures\": [{failures}]}}{comma}",
            o.name,
            o.seed,
            o.ticks,
            o.flows,
            o.availability(),
            o.worst_tick_goodput,
            o.final_tick_goodput,
            o.outage_ticks,
            o.offered,
            o.delivered,
            o.attack_sent,
            o.attack_forwarded,
            o.wire_lost,
            o.flows_ejected,
            o.no_backend,
            o.peak_flows,
            o.generation_delta,
            o.invalidation_misses,
            o.ttl_violations,
            o.stale_view_mismatches,
            o.audit_ok,
            o.route_ns_per_packet,
            o.digest,
            o.fault_digest,
            e.shape_digest,
            e.replay_verified,
            e.postmortems,
            o.expectations_ok(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_campaign;
    use crate::fuzz::{run_fuzz, FuzzConfig, FuzzTarget};
    use crate::library;
    use crate::spec::Scenario;

    #[test]
    fn report_json_is_balanced_and_carries_the_headline() {
        let mut s = Scenario::named("json-smoke", 1);
        s.ticks = 10;
        s.traffic.flows = 8;
        let report = CampaignReport {
            scenarios: run_campaign(&[s]),
            regressions: run_campaign(&[library::pin_crash(
                "pin-smoke",
                &library::parser_overread_fixture(),
            )]),
            fuzz: vec![run_fuzz(&FuzzConfig {
                iterations: 200,
                ..FuzzConfig::quick(FuzzTarget::Dns)
            })],
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"scenario\""));
        assert!(json.contains("\"schema\": 1,"));
        assert!(json.contains("\"regressions\": ["));
        assert!(json.contains("\"seeded_bug_found\""));
        assert!(json.contains("\"replay_verified\": true"));
        assert!(report.all_replays_verified());
        assert!(report.all_expectations_pass());
    }
}
