//! The scenario format: a declarative, seeded spec of one production
//! campaign.
//!
//! A [`Scenario`] composes the four previously-separate seeded mechanisms
//! on one virtual clock: traffic generation ([`TrafficSpec`]), fault
//! schedules (`sysfault` sites), control-plane churn ([`ControlEvent`]s at
//! scheduled ticks), and LB drain/kill events. Everything that runs is a
//! function of the spec and its single `seed`; the engine enforces this by
//! deriving every PRNG stream from `seed` and consulting nothing else.

use sysfault::Schedule;
use sysnet::pipeline::DropReason;

/// How client arrivals are paced across the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Every flow is active from tick 0 (steady population).
    Steady,
    /// Flows activate linearly over the first `ramp_ticks` ticks — the
    /// flash-crowd front: a wall of concurrent handshakes, then steady
    /// data.
    FlashCrowd {
        /// Ticks over which the population ramps from 0 to `flows`.
        ramp_ticks: u64,
    },
    /// Every flow establishes up front, then only every `stride`-th flow
    /// sends per tick (rotating) — the slowloris shape: a huge resident
    /// table trickling data.
    Trickle {
        /// Stride between talkative flows per tick.
        stride: usize,
    },
}

/// The offered traffic: who sends, how fast, and how hostile.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Client flows (each a unique `10.9/16` endpoint dialing the VIP).
    pub flows: usize,
    /// Arrival pacing.
    pub arrival: Arrival,
    /// Attack fraction of offered load: port-scan SYNs against the VIP
    /// host's non-service ports, spoofed sources, never completing.
    /// `0.5` means one attack packet per benign packet.
    pub attack_mix: f64,
    /// Data payload bytes per established-flow packet.
    pub payload_len: usize,
    /// TTL stamped on every client frame (the TTL-loop regression sets 1).
    pub ttl: u8,
    /// Raw frames injected verbatim once per tick (pinned fuzzer
    /// reproductions ride here; they must *drop cleanly*, never panic).
    pub inject: Vec<Vec<u8>>,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        TrafficSpec {
            flows: 128,
            arrival: Arrival::Steady,
            attack_mix: 0.0,
            payload_len: 32,
            ttl: 64,
            inject: Vec::new(),
        }
    }
}

/// A control-plane action applied at a scheduled tick, before that tick's
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlEvent {
    /// Insert (or re-insert) a route.
    RouteInsert {
        /// Network prefix.
        prefix: [u8; 4],
        /// Prefix length.
        len: u8,
        /// Next hop port.
        port: u16,
    },
    /// Remove a route.
    RouteRemove {
        /// Network prefix.
        prefix: [u8; 4],
        /// Prefix length.
        len: u8,
    },
    /// Re-insert every current route with its current next hop — the
    /// value-preserving no-op storm that used to nuke every flow cache.
    RouteNoopReinsertAll,
    /// Start draining a backend: established flows keep flowing, no new
    /// assignments.
    BackendDrain {
        /// Backend index.
        idx: u16,
    },
    /// Kill a backend (administrative force-down) and eject its flows —
    /// clients re-handshake and re-select.
    BackendKill {
        /// Backend index.
        idx: u16,
    },
    /// Return a killed or draining backend to service.
    BackendRevive {
        /// Backend index.
        idx: u16,
    },
}

/// A [`ControlEvent`] bound to its virtual tick (1-based, applied at the
/// start of the tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// Tick at which the event fires.
    pub tick: u64,
    /// What happens.
    pub event: ControlEvent,
}

/// Backend-pool knobs (the backend set itself is the engine's standard
/// weighted trio, as in the LB bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LbSpec {
    /// Health-probe interval in ticks.
    pub probe_interval_ticks: u64,
    /// Consecutive probe failures before Down.
    pub fall: u32,
    /// Consecutive probe successes before a down backend rises (set
    /// `u32::MAX` to make scripted deaths permanent).
    pub rise: u32,
}

impl Default for LbSpec {
    fn default() -> Self {
        LbSpec {
            probe_interval_ticks: 10,
            fall: 1,
            rise: u32::MAX,
        }
    }
}

/// Conntrack sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtSpec {
    /// Hard entry bound; `0` auto-sizes to `4 * flows + 2 * syn_backlog`
    /// (NAT twins double the population; ≤ 50% load).
    pub max_flows: usize,
    /// Half-open budget.
    pub syn_backlog: usize,
}

impl Default for CtSpec {
    fn default() -> Self {
        CtSpec {
            max_flows: 0,
            syn_backlog: 256,
        }
    }
}

/// Held epoch pin: at `pin_tick` the engine snapshots the route table,
/// pins a [`sysnet::RouteView`], and for `hold_ticks` ticks cross-checks
/// `probes` addresses per tick through the pinned view against the
/// snapshot — any divergence under churn means a reclaimed node was read
/// (the premature-epoch-free regression's oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinHold {
    /// Tick at which the view pins.
    pub pin_tick: u64,
    /// Ticks the pin is held across churn.
    pub hold_ticks: u64,
    /// Addresses probed through the pinned view per tick.
    pub probes: usize,
}

/// Which route plane the scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneSpec {
    /// Exclusive [`sysnet::TrieTable`] (single-owner, generation-counted).
    Trie,
    /// Epoch-protected [`sysnet::CowRouteTable`], optionally with a held
    /// pin cross-checked against a snapshot.
    Cow {
        /// Optional held-pin oracle.
        pin: Option<PinHold>,
    },
}

/// An acceptance check evaluated against the finished
/// [`crate::ScenarioOutcome`]. A scenario with a failed expectation fails
/// the campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expectation {
    /// Delivered/offered over the whole run ≥ this.
    MinAvailability(f64),
    /// Goodput on the final tick ≥ this (did the system recover?).
    FinalGoodputAtLeast(f64),
    /// Exactly this many data packets delivered (the TTL-loop regression
    /// demands 0).
    DeliveredExactly(u64),
    /// At least this many drops for the reason.
    DropsAtLeast(DropReason, u64),
    /// At most this many drops for the reason.
    DropsAtMost(DropReason, u64),
    /// Route-table generation (or COW publication count) advanced by at
    /// most this much.
    GenerationDeltaAtMost(u64),
    /// Flow-cache misses attributed to invalidation ≤ this.
    InvalidationMissesAtMost(u64),
    /// Every forwarded frame re-parsed with TTL exactly one less than
    /// offered (the forwarding-loop oracle).
    TtlViolationsZero,
    /// Every probe through a held epoch pin matched the pin-time snapshot.
    StaleViewMismatchesZero,
    /// `Conntrack::check_invariants` passed after the run (twin-pair and
    /// accounting conservation — the half-pair NAT oracle).
    AuditClean,
    /// At least this many conntrack entries ejected by backend death.
    FlowsEjectedAtLeast(u64),
    /// At most this many packets shed for want of any live backend.
    NoBackendAtMost(u64),
    /// Peak live conntrack entries ≥ this (slowloris residency).
    PeakFlowsAtLeast(u64),
}

/// One replayable campaign: a name, a seed, and the composed spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Campaign-unique name (also the JSON row key).
    pub name: String,
    /// The single seed every PRNG stream derives from.
    pub seed: u64,
    /// Measured virtual ticks (after any establishment phase the arrival
    /// shape implies).
    pub ticks: u64,
    /// Virtual nanoseconds per tick.
    pub tick_ns: u64,
    /// Offered traffic.
    pub traffic: TrafficSpec,
    /// Fault sites scheduled under `seed` (conntrack sites, the LB probe
    /// site, and the engine's wire-loss site all draw from one plan).
    pub faults: Vec<(String, Schedule)>,
    /// Control-plane events by tick.
    pub events: Vec<ScheduledEvent>,
    /// Backend-pool knobs.
    pub lb: LbSpec,
    /// Conntrack sizing.
    pub ct: CtSpec,
    /// Flow-cache slots (0 = no cache).
    pub cache_slots: usize,
    /// Route plane.
    pub plane: PlaneSpec,
    /// Acceptance checks.
    pub expect: Vec<Expectation>,
}

impl Scenario {
    /// A steady 128-flow scenario with no faults, no churn, and the
    /// universal oracles (TTL decrement, conntrack audit) armed — the
    /// base the library builds on.
    #[must_use]
    pub fn named(name: &str, seed: u64) -> Self {
        Scenario {
            name: name.to_owned(),
            seed,
            ticks: 100,
            tick_ns: 100_000,
            traffic: TrafficSpec::default(),
            faults: Vec::new(),
            events: Vec::new(),
            lb: LbSpec::default(),
            ct: CtSpec::default(),
            cache_slots: 0,
            plane: PlaneSpec::Trie,
            expect: vec![Expectation::TtlViolationsZero, Expectation::AuditClean],
        }
    }

    /// Auto-sized conntrack capacity (see [`CtSpec::max_flows`]).
    #[must_use]
    pub fn ct_capacity(&self) -> usize {
        if self.ct.max_flows > 0 {
            self.ct.max_flows
        } else {
            4 * self.traffic.flows + 2 * self.ct.syn_backlog
        }
    }
}
