//! Replay-determinism properties (ISSUE satellite).
//!
//! The whole point of a scenario being *a value* is that "the incident"
//! and "the replay of the incident" are the same artifact. These
//! properties pin that across the entire shipped library under arbitrary
//! seeds: same scenario + same seed ⇒ identical fault-log digest,
//! identical outcome digest, identical trace-shape digest, and identical
//! campaign-table rows — run to run, traced or not.

use proptest::prelude::*;
use sysscenario::engine::{run_campaign, run_scenario, run_scenario_traced};
use sysscenario::library;
use sysscenario::spec::Scenario;

/// The full shipped library (standard + regressions), scaled down to CI
/// size. Seeds get overridden per case, so this is a pool of *shapes*.
fn pool() -> Vec<Scenario> {
    let mut v = library::quick_scale(library::standard());
    v.extend(library::quick_scale(library::regressions()));
    for s in &mut v {
        s.ticks = s.ticks.min(40);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two plain runs of any library shape under any seed agree on every
    /// deterministic observable — the outcome digest folds all counters,
    /// the fault digest folds all three injector logs.
    #[test]
    fn replay_is_bit_identical(idx in 0usize..10, seed in any::<u64>()) {
        let mut s = pool().swap_remove(idx % pool().len());
        s.seed = seed;
        let a = run_scenario(&s);
        let b = run_scenario(&s);
        prop_assert_eq!(a.digest, b.digest);
        prop_assert_eq!(a.fault_digest, b.fault_digest);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.drops, b.drops);
        prop_assert_eq!(a.failures, b.failures);
    }

    /// Turning the observability plane on must not change what the system
    /// *does*: a traced run reproduces the untraced digests exactly, and
    /// two traced runs agree on the trace-shape digest as well.
    #[test]
    fn tracing_changes_nothing_and_shapes_replay(idx in 0usize..10, seed in any::<u64>()) {
        let mut s = pool().swap_remove(idx % pool().len());
        s.seed = seed;
        let plain = run_scenario(&s);
        let (traced_a, shape_a, _) = run_scenario_traced(&s);
        let (traced_b, shape_b, _) = run_scenario_traced(&s);
        prop_assert_eq!(plain.digest, traced_a.digest);
        prop_assert_eq!(plain.fault_digest, traced_a.fault_digest);
        prop_assert_eq!(traced_a.digest, traced_b.digest);
        prop_assert_eq!(shape_a, shape_b);
    }

    /// The campaign table row — the thing `BENCH_scenario.json` prints —
    /// is reproducible: two independent campaign runs of the same
    /// scenario produce identical digests, shapes, and verdicts, and each
    /// row's internal triple-run check holds.
    #[test]
    fn campaign_rows_replay(idx in 0usize..10, seed in any::<u64>()) {
        let mut s = pool().swap_remove(idx % pool().len());
        s.seed = seed;
        s.ticks = s.ticks.min(25);
        let rows_a = run_campaign(std::slice::from_ref(&s));
        let rows_b = run_campaign(std::slice::from_ref(&s));
        let (a, b) = (&rows_a[0], &rows_b[0]);
        prop_assert!(a.replay_verified, "triple-run digest check failed");
        prop_assert!(b.replay_verified);
        prop_assert_eq!(a.outcome.digest, b.outcome.digest);
        prop_assert_eq!(a.outcome.fault_digest, b.outcome.fault_digest);
        prop_assert_eq!(a.shape_digest, b.shape_digest);
        prop_assert_eq!(a.postmortems, b.postmortems);
        prop_assert_eq!(a.outcome.expectations_ok(), b.outcome.expectations_ok());
    }
}
