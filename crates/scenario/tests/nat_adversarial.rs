//! Adversarial coverage for `Ipv4ViewMut::{dnat, snat}` (ISSUE satellite).
//!
//! The NAT fast path rewrites address+port+checksums in one pass with no
//! per-packet transport re-validation, so *it* must be the layer that
//! refuses truncated, odd-length, and non-transport packets. These tests
//! drive the mutators with exactly those shapes and assert typed errors —
//! never panics, never silent corruption. The fuzzer's packet seed corpus
//! doubles as the well-formed fixture set.

use sysrepr::packet::{
    EthernetView, EthernetViewMut, Ipv4View, PacketBuilder, IPPROTO_TCP, IPPROTO_UDP,
};
use sysrepr::ReprError;
use sysscenario::fuzz;
use sysscenario::library;

const ETH: usize = 14;

/// Parses the frame mutably and applies `dnat` then `snat`.
fn nat_both(frame: &mut [u8]) -> Result<(), ReprError> {
    let mut ip = EthernetViewMut::parse(frame)?.ipv4_mut()?;
    ip.dnat([192, 0, 2, 9], 4242)?;
    ip.snat([198, 51, 100, 7], 2424)?;
    Ok(())
}

/// Oracle: a NAT rewrite of a fully-checksummed frame must be
/// byte-identical to building the post-NAT frame from scratch — header
/// checksum, transport checksum, payload, everything.
#[test]
fn tcp_rewrite_equals_rebuilt_frame() {
    let mut frame = PacketBuilder::tcp()
        .src_ip([10, 0, 0, 1])
        .dst_ip([10, 200, 0, 1])
        .src_port(3_301)
        .dst_port(80)
        .payload(b"GET / HTTP/1.1")
        .compute_transport_checksum()
        .build();
    nat_both(&mut frame).expect("valid frame rewrites cleanly");
    let reference = PacketBuilder::tcp()
        .src_ip([198, 51, 100, 7])
        .dst_ip([192, 0, 2, 9])
        .src_port(2_424)
        .dst_port(4_242)
        .payload(b"GET / HTTP/1.1")
        .compute_transport_checksum()
        .build();
    assert_eq!(frame, reference, "incremental fixup diverged from rebuild");
    let ip = EthernetView::parse(&frame).unwrap().ipv4().unwrap();
    ip.verify_checksum()
        .expect("header checksum still verifies");
}

#[test]
fn udp_rewrite_equals_rebuilt_frame() {
    let mut frame = PacketBuilder::udp()
        .src_ip([10, 9, 1, 2])
        .dst_ip([10, 200, 0, 1])
        .src_port(5_353)
        .dst_port(53)
        .payload(b"aaaa")
        .compute_transport_checksum()
        .build();
    nat_both(&mut frame).expect("valid frame rewrites cleanly");
    let reference = PacketBuilder::udp()
        .src_ip([198, 51, 100, 7])
        .dst_ip([192, 0, 2, 9])
        .src_port(2_424)
        .dst_port(4_242)
        .payload(b"aaaa")
        .compute_transport_checksum()
        .build();
    assert_eq!(frame, reference, "incremental fixup diverged from rebuild");
}

/// A UDP datagram with checksum 0 means "not computed"; NAT must leave it
/// 0, not fix it up into a bogus nonzero value.
#[test]
fn udp_zero_checksum_stays_zero() {
    let mut frame = PacketBuilder::udp()
        .src_ip([10, 9, 1, 2])
        .dst_ip([10, 200, 0, 1])
        .payload(b"zz")
        .build();
    {
        let view = EthernetView::parse(&frame).unwrap().ipv4().unwrap();
        assert_eq!(view.udp().unwrap().checksum(), 0, "fixture premise");
    }
    nat_both(&mut frame).expect("zero-checksum UDP rewrites cleanly");
    let view = EthernetView::parse(&frame).unwrap().ipv4().unwrap();
    assert_eq!(view.udp().unwrap().checksum(), 0);
    assert_eq!(view.dst(), [192, 0, 2, 9]);
    assert_eq!(view.udp().unwrap().dst_port(), 4_242);
}

/// Shrinks `total_len` so the claimed datagram ends mid-TCP-header. The
/// IPv4 header itself still parses; the NAT mutators must refuse with a
/// precise `Truncated` instead of patching a checksum word that lies
/// beyond the datagram.
#[test]
fn tcp_truncated_transport_is_refused_with_exact_lengths() {
    let mut frame = PacketBuilder::tcp().compute_transport_checksum().build();
    // total_len := 30 — the 20-byte header plus 10 transport bytes, which
    // is short of the 18 needed to reach past the TCP checksum word.
    frame[ETH + 2] = 0;
    frame[ETH + 3] = 30;
    let mut ip = EthernetViewMut::parse(&mut frame)
        .unwrap()
        .ipv4_mut()
        .expect("header itself is intact");
    assert_eq!(
        ip.dnat([192, 0, 2, 9], 4242),
        Err(ReprError::Truncated {
            needed: 38,
            got: 30
        })
    );
    assert_eq!(
        ip.snat([198, 51, 100, 7], 2424),
        Err(ReprError::Truncated {
            needed: 38,
            got: 30
        })
    );
}

/// Odd-length truncation: one byte short of the last word the rewrite
/// must touch. A sloppy `offset + 2 <= len` check done in u8 units is
/// exactly where off-by-ones live.
#[test]
fn odd_length_one_byte_short_is_refused() {
    // TCP: 37 = header(20) + 17, one byte short of the checksum word end.
    let mut tcp = PacketBuilder::tcp().build();
    tcp[ETH + 2] = 0;
    tcp[ETH + 3] = 37;
    let mut ip = EthernetViewMut::parse(&mut tcp)
        .unwrap()
        .ipv4_mut()
        .unwrap();
    assert_eq!(
        ip.dnat([192, 0, 2, 9], 4242),
        Err(ReprError::Truncated {
            needed: 38,
            got: 37
        })
    );
    // UDP: 27 = header(20) + 7, one byte short of the full 8-byte header.
    let mut udp = PacketBuilder::udp().payload(b"xy").build();
    udp[ETH + 2] = 0;
    udp[ETH + 3] = 27;
    let mut ip = EthernetViewMut::parse(&mut udp)
        .unwrap()
        .ipv4_mut()
        .unwrap();
    assert_eq!(
        ip.snat([198, 51, 100, 7], 2424),
        Err(ReprError::Truncated {
            needed: 28,
            got: 27
        })
    );
}

/// Port rewrites only mean something for TCP/UDP; anything else (here
/// GRE, protocol 47) is a typed refusal, not a blind byte-patch at a
/// TCP-shaped offset.
#[test]
fn non_transport_protocol_is_refused() {
    let mut frame = PacketBuilder::tcp().build();
    frame[ETH + 9] = 47;
    let mut ip = EthernetViewMut::parse(&mut frame)
        .unwrap()
        .ipv4_mut()
        .unwrap();
    assert_eq!(
        ip.dnat([192, 0, 2, 9], 4242),
        Err(ReprError::InvalidField {
            field: "protocol",
            value: 47,
        })
    );
}

/// The graduated fuzzer crasher (IHL overclaims past `total_len`): the
/// total mutable parse path must reject it before any NAT code runs.
#[test]
fn parser_overread_fixture_never_reaches_nat() {
    let mut fixture = library::parser_overread_fixture();
    let err = EthernetViewMut::parse(&mut fixture)
        .unwrap()
        .ipv4_mut()
        .expect_err("IHL past total_len must not produce a mutable view");
    assert!(
        matches!(
            err,
            ReprError::Truncated { .. } | ReprError::InvalidField { .. }
        ),
        "unexpected error class: {err:?}"
    );
}

/// Every fuzzer seed fixture, truncated at every possible length, fed
/// through parse→dnat→snat: the path must stay total (typed errors only;
/// a panic fails the test harness itself) and any frame that still
/// verified its header checksum after NAT must keep verifying.
#[test]
fn seed_corpus_truncations_stay_total_and_checksum_clean() {
    for seed in fuzz::seed_corpus(fuzz::FuzzTarget::Packet) {
        for len in 0..=seed.len() {
            let mut frame = seed[..len].to_vec();
            let Ok(eth) = EthernetViewMut::parse(&mut frame) else {
                continue;
            };
            let Ok(mut ip) = eth.ipv4_mut() else {
                continue;
            };
            let dnat_ok = ip.dnat([192, 0, 2, 9], 4242).is_ok();
            let snat_ok = ip.snat([198, 51, 100, 7], 2424).is_ok();
            if dnat_ok && snat_ok && len == seed.len() {
                let view = Ipv4View::parse(&frame[ETH..]).unwrap();
                view.verify_checksum()
                    .expect("NAT broke the header checksum of a pristine fixture");
                match view.protocol() {
                    IPPROTO_TCP => assert_eq!(view.tcp().unwrap().dst_port(), 4_242),
                    IPPROTO_UDP => assert_eq!(view.udp().unwrap().dst_port(), 4_242),
                    _ => {}
                }
            }
        }
    }
}
