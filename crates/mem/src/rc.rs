//! Reference counting with an optional Bacon–Rajan trial-deletion cycle
//! collector.
//!
//! Plain reference counting is the "incremental, predictable, and
//! understandable" scheme of the paper's survey — and it leaks cyclic
//! structures, which [`RcHeap::collect`] (the cycle collector) then reclaims.
//! The tests demonstrate both the leak and its repair, reproducing the
//! classic Figure-2 scenario from Wilson's GC survey cited by the course
//! notes that carried the paper.

use crate::freelist::WordPool;
use crate::stats::MemStats;
use crate::{Handle, Manager, MemError, WORD_BYTES};
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    /// In use or free.
    Black,
    /// Possible member of a cycle.
    Gray,
    /// Member of a garbage cycle.
    White,
    /// Possible root of a garbage cycle.
    Purple,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    off: usize,
    nrefs: u32,
    nwords: u32,
    strong: u32,
    live: bool,
    color: Color,
    buffered: bool,
}

/// A reference-counting manager.
///
/// Counts are adjusted by [`Manager::set_ref`] (the mutator never touches
/// counts directly), roots contribute to the count, and objects free eagerly
/// when their count reaches zero. Cycles survive eager freeing; call
/// [`Manager::collect`] to run trial deletion.
///
/// ```
/// use sysmem::{Manager, ManagerExt, rc::RcHeap};
///
/// let mut h = RcHeap::new(1 << 16);
/// let a = h.alloc(1, 0).unwrap();
/// let b = h.alloc(1, 0).unwrap();
/// h.add_root(a);
/// h.link(a, 0, Some(b)); // b kept alive by a
/// h.remove_root(a);      // whole chain freed eagerly
/// assert!(!h.is_live(a));
/// assert!(!h.is_live(b));
/// ```
#[derive(Debug)]
pub struct RcHeap {
    pool: WordPool,
    entries: Vec<Entry>,
    candidates: Vec<Handle>,
    stats: MemStats,
    live_bytes: usize,
}

impl RcHeap {
    /// Creates a heap with the given capacity in bytes.
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        RcHeap {
            pool: WordPool::new((capacity_bytes / WORD_BYTES).max(4)),
            entries: Vec::new(),
            candidates: Vec::new(),
            stats: MemStats::new(),
            live_bytes: 0,
        }
    }

    fn entry(&self, h: Handle) -> Result<&Entry, MemError> {
        match self.entries.get(h.0 as usize) {
            Some(e) if e.live => Ok(e),
            _ => Err(MemError::InvalidHandle(h)),
        }
    }

    fn children(&self, h: Handle) -> Vec<Handle> {
        let e = self.entries[h.0 as usize];
        (0..e.nrefs as usize)
            .filter_map(|slot| {
                let raw = self.pool.read(e.off + slot);
                (raw != 0).then(|| Handle(u32::try_from(raw - 1).expect("fits")))
            })
            .collect()
    }

    fn release(&mut self, h: Handle) {
        // Iterative cascade free.
        let mut worklist = vec![h];
        while let Some(h) = worklist.pop() {
            let e = self.entries[h.0 as usize];
            if !e.live {
                continue;
            }
            for child in self.children(h) {
                let ce = &mut self.entries[child.0 as usize];
                if ce.live {
                    ce.strong = ce.strong.saturating_sub(1);
                    if ce.strong == 0 {
                        worklist.push(child);
                    } else {
                        // A decrement that does not reach zero may have
                        // severed a cycle edge: buffer as candidate.
                        if !ce.buffered {
                            ce.buffered = true;
                            ce.color = Color::Purple;
                            self.candidates.push(child);
                        }
                    }
                }
            }
            let e = &mut self.entries[h.0 as usize];
            e.live = false;
            let bytes = (e.nrefs + e.nwords) as usize * WORD_BYTES;
            let off = e.off;
            self.live_bytes -= bytes;
            self.stats.frees += 1;
            self.pool.free(off);
        }
    }

    fn dec(&mut self, h: Handle) {
        let e = &mut self.entries[h.0 as usize];
        if !e.live {
            return;
        }
        e.strong = e.strong.saturating_sub(1);
        if e.strong == 0 {
            self.release(h);
        } else if !e.buffered {
            e.buffered = true;
            e.color = Color::Purple;
            self.candidates.push(h);
        }
    }

    fn inc(&mut self, h: Handle) {
        let e = &mut self.entries[h.0 as usize];
        e.strong += 1;
        e.color = Color::Black;
    }

    /// Bytes held by objects whose reference counts are nonzero but which a
    /// tracing collector would reclaim — i.e. leaked cycles. Used by tests
    /// and experiment E1's leak column. Computing this runs a shadow trace
    /// and does not modify the heap.
    #[must_use]
    pub fn cyclic_garbage_bytes(&self) -> usize {
        // Shadow mark from "externally rooted" objects: strong count greater
        // than the number of live internal references to the object.
        let mut internal = vec![0u32; self.entries.len()];
        for (i, e) in self.entries.iter().enumerate() {
            if !e.live {
                continue;
            }
            for child in self.children(Handle(u32::try_from(i).expect("fits"))) {
                internal[child.0 as usize] += 1;
            }
        }
        let mut marked = vec![false; self.entries.len()];
        let mut worklist: Vec<Handle> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(i, e)| e.live && e.strong > internal[*i])
            .map(|(i, _)| Handle(u32::try_from(i).expect("fits")))
            .collect();
        while let Some(h) = worklist.pop() {
            if std::mem::replace(&mut marked[h.0 as usize], true) {
                continue;
            }
            worklist.extend(self.children(h));
        }
        self.entries
            .iter()
            .enumerate()
            .filter(|(i, e)| e.live && !marked[*i])
            .map(|(_, e)| (e.nrefs + e.nwords) as usize * WORD_BYTES)
            .sum()
    }

    fn mark_gray(&mut self, start: Handle) {
        let mut stack = vec![start];
        while let Some(h) = stack.pop() {
            let e = &mut self.entries[h.0 as usize];
            if !e.live || e.color == Color::Gray {
                continue;
            }
            e.color = Color::Gray;
            for child in self.children(h) {
                let ce = &mut self.entries[child.0 as usize];
                if ce.live {
                    ce.strong = ce.strong.saturating_sub(1);
                    stack.push(child);
                }
            }
        }
    }

    fn scan(&mut self, start: Handle) {
        let mut stack = vec![start];
        while let Some(h) = stack.pop() {
            let e = self.entries[h.0 as usize];
            if !e.live || e.color != Color::Gray {
                continue;
            }
            if e.strong > 0 {
                self.scan_black(h);
            } else {
                self.entries[h.0 as usize].color = Color::White;
                stack.extend(self.children(h));
            }
        }
    }

    fn scan_black(&mut self, start: Handle) {
        let mut stack = vec![start];
        self.entries[start.0 as usize].color = Color::Black;
        while let Some(h) = stack.pop() {
            for child in self.children(h) {
                let ce = &mut self.entries[child.0 as usize];
                if ce.live {
                    ce.strong += 1;
                    if ce.color != Color::Black {
                        ce.color = Color::Black;
                        stack.push(child);
                    }
                }
            }
        }
    }

    fn collect_white(&mut self, start: Handle) {
        let mut to_free = Vec::new();
        let mut stack = vec![start];
        while let Some(h) = stack.pop() {
            let e = &mut self.entries[h.0 as usize];
            if !e.live || e.color != Color::White || e.buffered {
                continue;
            }
            e.color = Color::Black;
            stack.extend(self.children(h));
            to_free.push(h);
        }
        for h in to_free {
            let e = &mut self.entries[h.0 as usize];
            if e.live {
                e.live = false;
                let bytes = (e.nrefs + e.nwords) as usize * WORD_BYTES;
                let off = e.off;
                self.live_bytes -= bytes;
                self.stats.collected_objects += 1;
                self.pool.free(off);
            }
        }
    }
}

impl Manager for RcHeap {
    fn name(&self) -> &'static str {
        "refcount"
    }

    fn alloc(&mut self, nrefs: usize, nwords: usize) -> Result<Handle, MemError> {
        let payload = nrefs + nwords;
        let off = self.pool.alloc(payload).ok_or(MemError::OutOfMemory {
            requested: payload * WORD_BYTES,
        })?;
        // Zero the whole payload: recycled blocks must not leak stale data
        // (the same hygiene rule a kernel allocator follows).
        for i in 0..payload {
            self.pool.write(off + i, 0);
        }
        let h = Handle(u32::try_from(self.entries.len()).expect("handle space exhausted"));
        self.entries.push(Entry {
            off,
            nrefs: u32::try_from(nrefs).expect("fits"),
            nwords: u32::try_from(nwords).expect("fits"),
            strong: 0,
            live: true,
            color: Color::Black,
            buffered: false,
        });
        self.stats.allocs += 1;
        self.stats.bytes_allocated += (payload * WORD_BYTES) as u64;
        self.live_bytes += payload * WORD_BYTES;
        Ok(h)
    }

    fn free(&mut self, _h: Handle) -> Result<(), MemError> {
        Err(MemError::Unsupported(
            "refcount heap frees when counts reach zero",
        ))
    }

    fn set_ref(
        &mut self,
        obj: Handle,
        slot: usize,
        target: Option<Handle>,
    ) -> Result<(), MemError> {
        let e = *self.entry(obj)?;
        if slot >= e.nrefs as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: slot,
                len: e.nrefs as usize,
            });
        }
        if let Some(t) = target {
            self.entry(t)?;
        }
        let old_raw = self.pool.read(e.off + slot);
        if let Some(t) = target {
            self.inc(t);
        }
        self.pool
            .write(e.off + slot, target.map_or(0, |t| u64::from(t.0) + 1));
        if old_raw != 0 {
            self.dec(Handle(u32::try_from(old_raw - 1).expect("fits")));
        }
        Ok(())
    }

    fn get_ref(&self, obj: Handle, slot: usize) -> Result<Option<Handle>, MemError> {
        let e = self.entry(obj)?;
        if slot >= e.nrefs as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: slot,
                len: e.nrefs as usize,
            });
        }
        let raw = self.pool.read(e.off + slot);
        Ok(if raw == 0 {
            None
        } else {
            Some(Handle(u32::try_from(raw - 1).expect("fits")))
        })
    }

    fn set_word(&mut self, obj: Handle, idx: usize, val: u64) -> Result<(), MemError> {
        let e = *self.entry(obj)?;
        if idx >= e.nwords as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: idx,
                len: e.nwords as usize,
            });
        }
        self.pool.write(e.off + e.nrefs as usize + idx, val);
        Ok(())
    }

    fn get_word(&self, obj: Handle, idx: usize) -> Result<u64, MemError> {
        let e = self.entry(obj)?;
        if idx >= e.nwords as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: idx,
                len: e.nwords as usize,
            });
        }
        Ok(self.pool.read(e.off + e.nrefs as usize + idx))
    }

    fn add_root(&mut self, obj: Handle) {
        if self.entries.get(obj.0 as usize).is_some_and(|e| e.live) {
            self.inc(obj);
        }
    }

    fn remove_root(&mut self, obj: Handle) {
        if self.entries.get(obj.0 as usize).is_some_and(|e| e.live) {
            self.dec(obj);
        }
    }

    /// Runs the trial-deletion cycle collector over buffered candidates.
    fn collect(&mut self) {
        sysobs::obs_span!("mem.collect.rc");
        let t0 = Instant::now();
        let candidates: Vec<Handle> = std::mem::take(&mut self.candidates);
        let mut retained = Vec::new();
        for &h in &candidates {
            let e = &mut self.entries[h.0 as usize];
            if e.live && e.color == Color::Purple {
                retained.push(h);
            } else if e.live {
                e.buffered = false;
            }
        }
        for &h in &retained {
            self.mark_gray(h);
        }
        for &h in &retained {
            self.scan(h);
        }
        for &h in &retained {
            self.entries[h.0 as usize].buffered = false;
        }
        for &h in &retained {
            self.collect_white(h);
        }
        self.stats.collections += 1;
        self.stats.record_gc_pause(t0.elapsed());
    }

    fn is_live(&self, h: Handle) -> bool {
        self.entry(h).is_ok()
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn live_bytes(&self) -> usize {
        self.live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManagerExt;

    #[test]
    fn eager_free_on_last_reference() {
        let mut h = RcHeap::new(4096);
        let o = h.alloc(0, 1).unwrap();
        h.add_root(o);
        assert!(h.is_live(o));
        h.remove_root(o);
        assert!(!h.is_live(o), "count hit zero: freed immediately");
    }

    #[test]
    fn cascade_free_walks_chains() {
        let mut h = RcHeap::new(4096);
        let a = h.alloc(1, 0).unwrap();
        let b = h.alloc(1, 0).unwrap();
        let c = h.alloc(0, 0).unwrap();
        h.add_root(a);
        h.link(a, 0, Some(b));
        h.link(b, 0, Some(c));
        h.remove_root(a);
        assert!(!h.is_live(a));
        assert!(!h.is_live(b));
        assert!(!h.is_live(c));
    }

    #[test]
    fn overwriting_a_ref_releases_the_old_target() {
        let mut h = RcHeap::new(4096);
        let a = h.alloc(1, 0).unwrap();
        let b = h.alloc(0, 0).unwrap();
        let c = h.alloc(0, 0).unwrap();
        h.add_root(a);
        h.link(a, 0, Some(b));
        h.link(a, 0, Some(c)); // b's count drops to zero
        assert!(!h.is_live(b));
        assert!(h.is_live(c));
    }

    #[test]
    fn cycles_leak_without_the_cycle_collector() {
        let mut h = RcHeap::new(4096);
        let a = h.alloc(1, 1).unwrap();
        let b = h.alloc(1, 1).unwrap();
        h.add_root(a);
        h.link(a, 0, Some(b));
        h.link(b, 0, Some(a)); // cycle
        h.remove_root(a);
        // Both survive: the classic reference-counting leak.
        assert!(h.is_live(a));
        assert!(h.is_live(b));
        assert_eq!(h.cyclic_garbage_bytes(), 32);
    }

    #[test]
    fn cycle_collector_reclaims_leaked_cycles() {
        let mut h = RcHeap::new(4096);
        let a = h.alloc(1, 1).unwrap();
        let b = h.alloc(1, 1).unwrap();
        h.add_root(a);
        h.link(a, 0, Some(b));
        h.link(b, 0, Some(a));
        h.remove_root(a);
        assert!(h.is_live(a), "leaked before cycle collection");
        h.collect();
        assert!(!h.is_live(a));
        assert!(!h.is_live(b));
        assert_eq!(h.cyclic_garbage_bytes(), 0);
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn cycle_collector_spares_externally_reachable_cycles() {
        let mut h = RcHeap::new(4096);
        let a = h.alloc(1, 0).unwrap();
        let b = h.alloc(1, 0).unwrap();
        h.add_root(a);
        h.link(a, 0, Some(b));
        h.link(b, 0, Some(a));
        // a is still rooted: trial deletion must not free the cycle.
        let x = h.alloc(1, 0).unwrap();
        h.add_root(x);
        h.link(x, 0, Some(a));
        h.set_ref(x, 0, None).unwrap(); // buffers a as candidate
        h.collect();
        assert!(h.is_live(a));
        assert!(h.is_live(b));
    }

    #[test]
    fn self_loop_is_collected() {
        let mut h = RcHeap::new(4096);
        let a = h.alloc(1, 0).unwrap();
        h.add_root(a);
        h.link(a, 0, Some(a));
        h.remove_root(a);
        assert!(h.is_live(a), "self-loop leaks under plain RC");
        h.collect();
        assert!(!h.is_live(a));
    }

    #[test]
    fn shared_target_freed_only_after_all_owners() {
        let mut h = RcHeap::new(4096);
        let a = h.alloc(1, 0).unwrap();
        let b = h.alloc(1, 0).unwrap();
        let shared = h.alloc(0, 1).unwrap();
        h.add_root(a);
        h.add_root(b);
        h.link(a, 0, Some(shared));
        h.link(b, 0, Some(shared));
        h.remove_root(a);
        assert!(h.is_live(shared), "b still owns shared");
        h.remove_root(b);
        assert!(!h.is_live(shared));
    }

    #[test]
    fn pool_space_is_reused_after_free() {
        let mut h = RcHeap::new(256); // 32 words
        for _ in 0..50 {
            let o = h.alloc(0, 8).unwrap();
            h.add_root(o);
            h.remove_root(o);
        }
        assert_eq!(h.live_bytes(), 0);
    }
}
