//! Epoch-based reclamation — the seventh memory-management discipline.
//!
//! The six heaps in this crate all answer "when is it safe to reuse this
//! storage?" for a *single* owner. Concurrent readers break that framing:
//! an RCU-style data structure unlinks a node while other threads may still
//! be traversing it, so the unlink must be decoupled from the free. This
//! module supplies the decoupling — the reclamation protocol Shapiro's C2
//! names as exactly the idiom safe languages struggle to express.
//!
//! The protocol is classic three-epoch EBR:
//!
//! * A [`Domain`] owns a global epoch counter and a deferred-garbage list of
//!   epoch-tagged bins.
//! * Each reader registers a [`Handle`]; [`Handle::pin`] announces
//!   "I am reading under epoch *e*" in a single per-reader slot (one `SeqCst`
//!   store plus a re-check load — no locks, no shared writes with other
//!   readers), and the returned [`Guard`] un-announces on drop.
//! * Writers unlink nodes from their structure, then [`Domain::retire`] them
//!   into the bin tagged with the current epoch.
//! * [`Domain::collect`] tries to advance the epoch — allowed only when every
//!   *pinned* reader has caught up to the current one — and hands back every
//!   item whose bin is **two or more epochs old**. A reader pinned at epoch
//!   *e* blocks advancement past *e + 1*, so a bin tagged *e* cannot mature
//!   while any reader that might have seen its contents is still pinned.
//!
//! Why two epochs and not one: a reader pinned at *e* may hold pointers it
//! loaded just *before* a concurrent writer unlinked them and retired them
//! into bin *e*. The global epoch can still advance to *e + 1* (the reader
//! *is* current), so freeing at *one* epoch of age would free under that
//! reader's feet. The off-by-one is a real bug class, and it is seeded here
//! behind [`Domain::new_with_premature_reclaim_bug`] so the `syscheck`
//! model (`crates/mem/tests/epoch_model.rs`, experiment E15) can rediscover
//! it from the protocol's own interleavings and shrink the repro.
//!
//! Everything synchronizing is built on [`syscheck::shim`] primitives, so
//! under the checker every pin, unpin, retire, and advance is a scheduling
//! decision point — the whole protocol is exhaustively model-checkable at a
//! preemption bound. Outside the checker the shim compiles to plain `std`
//! atomics: a pin is two `SeqCst` ops on an uncontended cache line.
//!
//! Items are *values*, not frees: `retire` takes ownership of a `T` and
//! `collect` hands matured items to a sink. Callers that manage raw memory
//! (the copy-on-write trie in `sysnet`) pass node boxes through and recycle
//! them into an allocation pool, which is how route churn stays allocation-
//! free in the steady state.
//!
//! ```
//! use std::sync::Arc;
//! use sysmem::epoch::Domain;
//!
//! let domain: Arc<Domain<u32>> = Arc::new(Domain::new());
//! let reader = domain.register();
//!
//! let guard = reader.pin();
//! domain.retire(7); // a writer unlinked node 7
//! let mut freed = Vec::new();
//! domain.collect(|item| freed.push(item));
//! assert!(freed.is_empty(), "reader still pinned: nothing matures");
//! drop(guard);
//!
//! domain.collect(|item| freed.push(item));
//! domain.collect(|item| freed.push(item));
//! assert_eq!(freed, vec![7], "two advances later the item is safe");
//! ```

use std::sync::atomic::Ordering;
use std::sync::Arc;
use syscheck::shim::{AtomicU64, Mutex};

/// Low bit of a slot word: set while the reader is inside a critical
/// section. The remaining bits hold the epoch the reader announced.
const PINNED: u64 = 1;

/// How many epochs a bin must age before its items are handed back. Three-
/// epoch reclamation: retire at `e`, matured once the global epoch reaches
/// `e + 2`.
const SAFE_HORIZON: u64 = 2;

/// Per-reader announcement slot: `(epoch << 1) | pinned`, written only by
/// its owning reader, scanned by whoever tries to advance the epoch.
#[derive(Debug, Default)]
struct ReaderSlot {
    state: AtomicU64,
}

/// One epoch-tagged batch of retired items.
#[derive(Debug)]
struct Bin<T> {
    epoch: u64,
    items: Vec<T>,
}

/// Deferred garbage: bins in ascending epoch order, plus drained bins kept
/// for reuse so steady-state retirement allocates nothing.
#[derive(Debug)]
struct Garbage<T> {
    bins: Vec<Bin<T>>,
    spare: Vec<Bin<T>>,
}

/// When retired items may be handed back to the collector's sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReclaimPolicy {
    /// Correct: a bin matures `SAFE_HORIZON` epochs after retirement.
    Safe,
    /// Seeded off-by-one: a bin "matures" after a single epoch — exactly the
    /// premature free the module docs derive. Exists so the checker can
    /// rediscover the bug; never reachable through [`Domain::new`].
    PrematureOffByOne,
}

impl ReclaimPolicy {
    fn horizon(self) -> u64 {
        match self {
            ReclaimPolicy::Safe => SAFE_HORIZON,
            ReclaimPolicy::PrematureOffByOne => SAFE_HORIZON - 1,
        }
    }
}

/// An epoch-reclamation domain: one global epoch, one set of registered
/// readers, one deferred-garbage list for items of type `T`.
///
/// Readers come from [`Domain::register`]; writers call [`Domain::retire`]
/// and [`Domain::collect`]. The domain itself is `Sync` — wrap it in an
/// [`Arc`] and share it.
#[derive(Debug)]
pub struct Domain<T: Send> {
    epoch: AtomicU64,
    readers: Mutex<Vec<Arc<ReaderSlot>>>,
    garbage: Mutex<Garbage<T>>,
    policy: ReclaimPolicy,
    /// Advance attempts that found a pinned reader still announcing an
    /// older epoch — the "reclamation is lagging behind a slow reader"
    /// signal (mirrored to the `mem.epoch.advance_stalls` registry counter
    /// when metrics are on, so a trigger can watch it live).
    advance_stalls: AtomicU64,
}

impl<T: Send> Default for Domain<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> Domain<T> {
    /// A fresh domain at epoch 0 with no readers and no garbage.
    #[must_use]
    pub fn new() -> Self {
        Self::with_policy(ReclaimPolicy::Safe)
    }

    /// The seeded-bug variant: reclaims one epoch too early, so a reader
    /// pinned just before an unlink can observe freed memory. For the
    /// `syscheck` models and experiment E15 only.
    #[doc(hidden)]
    #[must_use]
    pub fn new_with_premature_reclaim_bug() -> Self {
        Self::with_policy(ReclaimPolicy::PrematureOffByOne)
    }

    fn with_policy(policy: ReclaimPolicy) -> Self {
        Domain {
            epoch: AtomicU64::new(0),
            readers: Mutex::new(Vec::new()),
            garbage: Mutex::new(Garbage {
                bins: Vec::new(),
                spare: Vec::new(),
            }),
            policy,
            advance_stalls: AtomicU64::new(0),
        }
    }

    /// The current global epoch (diagnostics and tests).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Registers a reader with this domain. Registration takes the reader
    /// list lock — do it at worker startup, not on the read path.
    ///
    /// # Panics
    ///
    /// Panics if the reader list mutex is poisoned (a reader panicked while
    /// registering, which already aborts the test run).
    #[must_use]
    pub fn register(self: &Arc<Self>) -> Handle<T> {
        let slot = Arc::new(ReaderSlot::default());
        self.readers
            .lock()
            .expect("epoch reader list poisoned")
            .push(Arc::clone(&slot));
        Handle {
            domain: Arc::clone(self),
            slot,
            _single_owner: std::marker::PhantomData,
        }
    }

    /// Defers `item` until every reader that might still see it has
    /// unpinned: it joins the bin tagged with the current epoch and comes
    /// back out through a future [`Domain::collect`].
    ///
    /// # Panics
    ///
    /// Panics if the garbage mutex is poisoned.
    pub fn retire(&self, item: T) {
        let e = self.epoch.load(Ordering::SeqCst);
        let mut garbage = self.garbage.lock().expect("epoch garbage poisoned");
        match garbage.bins.last_mut() {
            Some(bin) if bin.epoch == e => bin.items.push(item),
            _ => {
                let mut bin = garbage.spare.pop().unwrap_or(Bin {
                    epoch: e,
                    items: Vec::new(),
                });
                bin.epoch = e;
                bin.items.push(item);
                garbage.bins.push(bin);
            }
        }
    }

    /// Tries to advance the global epoch by one. Advancement succeeds only
    /// when every *pinned* reader has announced the current epoch; a single
    /// reader still inside an older critical section holds the epoch back
    /// (and with it, every bin that reader might reference).
    ///
    /// Returns the global epoch after the attempt.
    ///
    /// # Panics
    ///
    /// Panics if the reader list mutex is poisoned.
    pub fn try_advance(&self) -> u64 {
        let e = self.epoch.load(Ordering::SeqCst);
        {
            let readers = self.readers.lock().expect("epoch reader list poisoned");
            for slot in readers.iter() {
                let state = slot.state.load(Ordering::SeqCst);
                if state & PINNED != 0 && state >> 1 != e {
                    self.advance_stalls.fetch_add(1, Ordering::Relaxed);
                    sysobs::obs_count!("mem.epoch.advance_stalls", 1);
                    return e;
                }
            }
        }
        // Lost races are fine: someone advanced for us.
        let _ = self
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
        self.epoch.load(Ordering::SeqCst)
    }

    /// Advances the epoch if possible, then hands every matured item (bin
    /// old enough under the reclamation policy) to `sink`. Returns how many
    /// items were handed over.
    ///
    /// The sink owns each item: dropping it frees, pushing it into a pool
    /// recycles. Drained bins keep their capacity for future retirements.
    ///
    /// # Panics
    ///
    /// Panics if the garbage mutex is poisoned.
    pub fn collect(&self, mut sink: impl FnMut(T)) -> usize {
        let global = self.try_advance();
        let horizon = self.policy.horizon();
        let mut garbage = self.garbage.lock().expect("epoch garbage poisoned");
        let mut handed = 0;
        while let Some(first) = garbage.bins.first() {
            if first.epoch + horizon > global {
                break;
            }
            let mut bin = garbage.bins.remove(0);
            handed += bin.items.len();
            for item in bin.items.drain(..) {
                sink(item);
            }
            garbage.spare.push(bin);
        }
        handed
    }

    /// Hands back every deferred item regardless of age, newest bins last.
    /// Teardown only: callers must know no reader can still hold references
    /// (e.g. the owning structure is being dropped). Not unsafe in itself —
    /// items are values — but freeing them early is the caller's call.
    ///
    /// # Panics
    ///
    /// Panics if the garbage mutex is poisoned.
    pub fn drain(&self, mut sink: impl FnMut(T)) -> usize {
        let mut garbage = self.garbage.lock().expect("epoch garbage poisoned");
        let mut handed = 0;
        for bin in &mut garbage.bins {
            handed += bin.items.len();
            for item in bin.items.drain(..) {
                sink(item);
            }
        }
        garbage.bins.clear();
        handed
    }

    /// Advance attempts a lagging pinned reader blocked (cumulative).
    #[must_use]
    pub fn advance_stalls(&self) -> u64 {
        self.advance_stalls.load(Ordering::Relaxed)
    }

    /// Registered readers currently inside a pinned critical section.
    ///
    /// # Panics
    ///
    /// Panics if the reader list mutex is poisoned.
    #[must_use]
    pub fn pinned_readers(&self) -> usize {
        let readers = self.readers.lock().expect("epoch reader list poisoned");
        readers
            .iter()
            .filter(|s| s.state.load(Ordering::SeqCst) & PINNED != 0)
            .count()
    }

    /// Number of retired-but-not-yet-matured items (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if the garbage mutex is poisoned.
    #[must_use]
    pub fn pending(&self) -> usize {
        let garbage = self.garbage.lock().expect("epoch garbage poisoned");
        garbage.bins.iter().map(|b| b.items.len()).sum()
    }

    fn unregister(&self, slot: &Arc<ReaderSlot>) {
        if let Ok(mut readers) = self.readers.lock() {
            readers.retain(|s| !Arc::ptr_eq(s, slot));
        }
    }
}

/// A registered reader: owns one announcement slot in the domain. `Send`
/// (hand one to each worker thread) but deliberately not `Sync` — a slot has
/// exactly one announcing owner, and two threads pinning through the same
/// handle would clobber each other's announcements.
#[derive(Debug)]
pub struct Handle<T: Send> {
    domain: Arc<Domain<T>>,
    slot: Arc<ReaderSlot>,
    /// Suppresses auto-`Sync` (a `Cell` is `Send` but not `Sync`).
    _single_owner: std::marker::PhantomData<std::cell::Cell<()>>,
}

impl<T: Send> Handle<T> {
    /// Enters a read critical section: announce the current epoch, pinned.
    ///
    /// The announce-then-recheck loop is the load-bearing subtlety: after
    /// storing `(e, pinned)` the global epoch is reloaded, and if it moved
    /// the announcement is redone. Without the recheck a reader could pin a
    /// stale epoch *after* an advancer's scan already passed its slot,
    /// letting the epoch run two ahead of a live reader.
    #[must_use]
    pub fn pin(&self) -> Guard<'_, T> {
        let mut e = self.domain.epoch.load(Ordering::SeqCst);
        loop {
            self.slot.state.store((e << 1) | PINNED, Ordering::SeqCst);
            let now = self.domain.epoch.load(Ordering::SeqCst);
            if now == e {
                break;
            }
            e = now;
        }
        Guard { handle: self }
    }

    /// The owning domain (writers reach `retire`/`collect` through it).
    #[must_use]
    pub fn domain(&self) -> &Arc<Domain<T>> {
        &self.domain
    }
}

impl<T: Send> Drop for Handle<T> {
    fn drop(&mut self) {
        self.domain.unregister(&self.slot);
    }
}

/// An active pin: while alive, the epoch cannot advance more than one past
/// the announced epoch, so nothing retired at or after it is reclaimed.
/// Dropping un-announces with a single store.
#[derive(Debug)]
pub struct Guard<'a, T: Send> {
    handle: &'a Handle<T>,
}

impl<T: Send> Guard<'_, T> {
    /// The epoch this guard announced (diagnostics and tests).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.handle.slot.state.load(Ordering::SeqCst) >> 1
    }
}

impl<T: Send> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        let state = self.handle.slot.state.load(Ordering::SeqCst);
        self.handle
            .slot
            .state
            .store(state & !PINNED, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpinned_world_matures_in_two_collects() {
        let d: Arc<Domain<u32>> = Arc::new(Domain::new());
        d.retire(1);
        let mut out = Vec::new();
        d.collect(|v| out.push(v));
        assert!(out.is_empty(), "retired at 0, global 1: one epoch old");
        d.collect(|v| out.push(v));
        assert_eq!(out, vec![1], "retired at 0, global 2: matured");
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let d: Arc<Domain<u32>> = Arc::new(Domain::new());
        let r = d.register();
        let g = r.pin();
        d.retire(7);
        let mut out = Vec::new();
        for _ in 0..5 {
            d.collect(|v| out.push(v));
        }
        assert!(out.is_empty(), "a pin at epoch 0 holds bin 0 forever");
        assert!(d.epoch() <= 1, "epoch may reach e+1 but never e+2");
        drop(g);
        for _ in 0..3 {
            d.collect(|v| out.push(v));
        }
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn reader_pinned_at_current_epoch_does_not_block_one_advance() {
        let d: Arc<Domain<u32>> = Arc::new(Domain::new());
        let r = d.register();
        let g = r.pin();
        assert_eq!(g.epoch(), 0);
        assert_eq!(d.try_advance(), 1, "current-epoch pins allow one advance");
        assert_eq!(d.try_advance(), 1, "but hold the line after that");
        drop(g);
        assert_eq!(d.try_advance(), 2);
    }

    #[test]
    fn repin_catches_up_to_the_global_epoch() {
        let d: Arc<Domain<u32>> = Arc::new(Domain::new());
        let r = d.register();
        drop(r.pin());
        let _ = d.try_advance();
        let _ = d.try_advance();
        let g = r.pin();
        assert_eq!(
            g.epoch(),
            d.epoch(),
            "a fresh pin announces the current epoch"
        );
    }

    #[test]
    fn items_mature_in_retirement_order() {
        let d: Arc<Domain<u32>> = Arc::new(Domain::new());
        d.retire(1);
        let _ = d.try_advance();
        d.retire(2);
        let mut out = Vec::new();
        d.collect(|v| out.push(v)); // global 2: bin 0 matures
        assert_eq!(out, vec![1]);
        d.collect(|v| out.push(v)); // global 3: bin 1 matures
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn buggy_domain_reclaims_one_epoch_early() {
        let d: Arc<Domain<u32>> = Arc::new(Domain::new_with_premature_reclaim_bug());
        d.retire(9);
        let mut out = Vec::new();
        d.collect(|v| out.push(v));
        assert_eq!(out, vec![9], "the seeded bug frees after a single epoch");
    }

    #[test]
    fn dropped_handles_stop_blocking() {
        let d: Arc<Domain<u32>> = Arc::new(Domain::new());
        let r1 = d.register();
        let _r2 = d.register();
        let g = r1.pin();
        d.retire(3);
        let mut out = Vec::new();
        d.collect(|v| out.push(v));
        drop(g);
        drop(r1); // unregisters; _r2 stays registered but unpinned
        d.collect(|v| out.push(v));
        d.collect(|v| out.push(v));
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn collect_recycles_bin_storage() {
        let d: Arc<Domain<u32>> = Arc::new(Domain::new());
        for round in 0..10u32 {
            d.retire(round);
            d.collect(|_| ());
        }
        let garbage = d.garbage.lock().unwrap();
        assert!(
            garbage.bins.len() + garbage.spare.len() <= 3,
            "drained bins are reused, not reallocated"
        );
    }
}
