//! # sysmem — memory-management substrate
//!
//! Seven memory-management disciplines, built to test the paper's Fallacy 1
//! ("factors of 1.5x–2x in performance don't matter") and Challenge 2
//! ("idiomatic manual storage management"). Six are heap managers behind one
//! uniform object model:
//!
//! * [`arena::RegionHeap`] — region/arena allocation (the paper's preferred
//!   "idiomatic manual storage" discipline, as in Cyclone and later Rust),
//! * [`freelist::FreeListHeap`] — malloc-style segregated free lists with
//!   boundary-tag coalescing (the C baseline),
//! * [`rc::RcHeap`] — reference counting, including the classic cyclic-leak
//!   failure mode and an optional trial-deletion cycle collector,
//! * [`marksweep::MarkSweepHeap`] — stop-the-world tracing mark-sweep,
//! * [`semispace::SemiSpaceHeap`] — Cheney-style copying collection,
//! * [`generational::GenerationalHeap`] — nursery copying + promotion with a
//!   write barrier and remembered set, mature-space mark-sweep.
//!
//! The seventh is not a heap but a *protocol*: [`epoch`] — epoch-based
//! reclamation for concurrent readers (pin/unpin guards, deferred retire
//! bins, epoch advancement), built on [`syscheck::shim`] primitives so the
//! whole protocol is model-checkable. It is what lets `sysnet` publish
//! routing-table updates copy-on-write while workers read with zero
//! synchronization in the hot path.
//!
//! All managers implement the [`Manager`] trait over a common object model:
//! an object is a header, `nrefs` reference slots (handles to other objects),
//! and `nwords` 64-bit data words. Handles are indirect (a handle table maps
//! them to current storage), which lets moving collectors relocate objects
//! without invalidating user handles — the same device used by early Smalltalk
//! and some JVMs.
//!
//! [`workload`] generates allocation traces with controlled size and lifetime
//! distributions, and [`stats::PauseHistogram`] records per-operation pause
//! times so experiments E1/E6 can report tail latencies.
//!
//! ```
//! use sysmem::{Manager, ManagerExt, arena::RegionHeap};
//!
//! let mut heap = RegionHeap::new(1 << 20);
//! let r = heap.open_region();
//! let obj = heap.alloc(0, 2).unwrap();
//! heap.put(obj, 0, 42);
//! assert_eq!(heap.get(obj, 0), 42);
//! heap.close_region(r); // frees every object in the region at once
//! ```

pub mod arena;
pub mod epoch;
pub mod faulty;
pub mod freelist;
pub mod generational;
pub mod marksweep;
pub mod rc;
pub mod semispace;
pub mod stats;
pub mod workload;

use std::fmt;

/// A 64-bit data word stored in an object's payload.
pub type Word = u64;

/// An opaque, manager-scoped object handle.
///
/// Handles are indirect: moving collectors may relocate the underlying
/// storage, but the handle remains valid until the object is freed or
/// collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(pub u32);

impl fmt::Display for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Errors returned by memory managers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The heap cannot satisfy the request even after collection.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
    },
    /// The handle does not refer to a live object.
    InvalidHandle(Handle),
    /// A reference-slot or word index was out of bounds for the object.
    IndexOutOfBounds {
        /// The offending handle.
        handle: Handle,
        /// The offending slot or word index.
        index: usize,
        /// Number of valid slots of that kind.
        len: usize,
    },
    /// Operation is not supported by this manager (e.g. `free` on a GC).
    Unsupported(&'static str),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory { requested } => {
                write!(f, "out of memory: {requested} bytes requested")
            }
            MemError::InvalidHandle(h) => write!(f, "invalid handle {h}"),
            MemError::IndexOutOfBounds { handle, index, len } => {
                write!(f, "index {index} out of bounds for {handle} (len {len})")
            }
            MemError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Uniform interface over every memory manager in this crate.
///
/// Objects have `nrefs` reference slots (each holding `Option<Handle>`) and
/// `nwords` data words. Tracing collectors treat the reference slots as the
/// object's outgoing edges and the registered roots as the root set.
///
/// # Errors
///
/// All accessors return [`MemError::InvalidHandle`] when given a handle to a
/// dead object and [`MemError::IndexOutOfBounds`] for bad slot indices, so
/// use-after-free is a *detected* error rather than undefined behaviour —
/// this is the "well-typed programs don't go wrong" discipline the paper asks
/// for, applied to storage.
///
/// Managers are `Send` (not `Sync`): every implementation is plain owned
/// data, and requiring it here lets a kernel built over `Box<dyn Manager>`
/// move into model threads under the `syscheck` cooperative scheduler (one
/// thread at a time behind a shimmed mutex — `Sync` is never needed).
pub trait Manager: Send {
    /// A short stable name for reports ("region", "freelist", ...).
    fn name(&self) -> &'static str;

    /// Allocates an object with `nrefs` reference slots and `nwords` data
    /// words, returning its handle. Tracing managers may run a collection to
    /// satisfy the request.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] if space cannot be found.
    fn alloc(&mut self, nrefs: usize, nwords: usize) -> Result<Handle, MemError>;

    /// Fallible allocation entry point for callers with a recovery path.
    ///
    /// Semantically identical to [`Manager::alloc`] for the plain managers;
    /// instrumented managers ([`faulty::FaultyHeap`]) additionally consult
    /// their fault plan here, so code that degrades gracefully under OOM
    /// calls `try_alloc` and code that treats OOM as fatal calls `alloc`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] if space cannot be found or an
    /// injected allocation fault fires.
    fn try_alloc(&mut self, nrefs: usize, nwords: usize) -> Result<Handle, MemError> {
        self.alloc(nrefs, nwords)
    }

    /// Explicitly frees an object (manual managers only).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unsupported`] on tracing collectors and
    /// [`MemError::InvalidHandle`] on double free.
    fn free(&mut self, h: Handle) -> Result<(), MemError>;

    /// Stores `target` into reference slot `slot` of `obj`.
    ///
    /// # Errors
    ///
    /// Returns an error if `obj` (or `target`) is dead or `slot` is out of
    /// bounds.
    fn set_ref(&mut self, obj: Handle, slot: usize, target: Option<Handle>)
        -> Result<(), MemError>;

    /// Loads reference slot `slot` of `obj`.
    ///
    /// # Errors
    ///
    /// Returns an error if `obj` is dead or `slot` is out of bounds.
    fn get_ref(&self, obj: Handle, slot: usize) -> Result<Option<Handle>, MemError>;

    /// Stores a data word.
    ///
    /// # Errors
    ///
    /// Returns an error if `obj` is dead or `idx` is out of bounds.
    fn set_word(&mut self, obj: Handle, idx: usize, val: Word) -> Result<(), MemError>;

    /// Loads a data word.
    ///
    /// # Errors
    ///
    /// Returns an error if `obj` is dead or `idx` is out of bounds.
    fn get_word(&self, obj: Handle, idx: usize) -> Result<Word, MemError>;

    /// Registers `obj` as a GC root. No-op for purely manual managers.
    fn add_root(&mut self, obj: Handle);

    /// Unregisters one occurrence of `obj` from the root set.
    fn remove_root(&mut self, obj: Handle);

    /// Forces a full collection (no-op for manual managers).
    fn collect(&mut self);

    /// Returns `true` if `h` currently refers to a live object.
    fn is_live(&self, h: Handle) -> bool;

    /// Accounting and pause statistics.
    fn stats(&self) -> &stats::MemStats;

    /// Bytes currently devoted to live objects (headers excluded).
    fn live_bytes(&self) -> usize;
}

/// Size in bytes of one payload word.
pub const WORD_BYTES: usize = std::mem::size_of::<Word>();

/// Computes the payload size in bytes of an object with the given shape.
#[must_use]
pub fn object_bytes(nrefs: usize, nwords: usize) -> usize {
    nrefs * WORD_BYTES + nwords * WORD_BYTES
}

/// Convenience panicking wrappers used heavily by tests and benches.
///
/// These mirror the [`Manager`] accessors but panic on error, which keeps
/// experiment code legible. Production callers should prefer the fallible
/// trait methods.
pub trait ManagerExt: Manager {
    /// Like [`Manager::set_word`] but panics on error.
    ///
    /// # Panics
    ///
    /// Panics if the handle is dead or the index is out of range.
    fn put(&mut self, obj: Handle, idx: usize, val: Word) {
        self.set_word(obj, idx, val).expect("set_word failed");
    }

    /// Like [`Manager::get_word`] but panics on error.
    ///
    /// # Panics
    ///
    /// Panics if the handle is dead or the index is out of range.
    fn get(&self, obj: Handle, idx: usize) -> Word {
        self.get_word(obj, idx).expect("get_word failed")
    }

    /// Like [`Manager::set_ref`] but panics on error.
    ///
    /// # Panics
    ///
    /// Panics if a handle is dead or the slot is out of range.
    fn link(&mut self, obj: Handle, slot: usize, target: Option<Handle>) {
        self.set_ref(obj, slot, target).expect("set_ref failed");
    }

    /// Like [`Manager::get_ref`] but panics on error.
    ///
    /// # Panics
    ///
    /// Panics if the handle is dead or the slot is out of range.
    fn deref(&self, obj: Handle, slot: usize) -> Option<Handle> {
        self.get_ref(obj, slot).expect("get_ref failed")
    }
}

impl<M: Manager + ?Sized> ManagerExt for M {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_bytes_counts_refs_and_words() {
        assert_eq!(object_bytes(0, 0), 0);
        assert_eq!(object_bytes(1, 0), 8);
        assert_eq!(object_bytes(2, 3), 40);
    }

    #[test]
    fn handle_display_is_compact() {
        assert_eq!(Handle(7).to_string(), "h7");
    }

    #[test]
    fn mem_error_messages_are_lowercase_and_concise() {
        let e = MemError::OutOfMemory { requested: 64 };
        assert_eq!(e.to_string(), "out of memory: 64 bytes requested");
        let e = MemError::IndexOutOfBounds {
            handle: Handle(3),
            index: 9,
            len: 2,
        };
        assert!(e.to_string().contains("index 9"));
    }
}
