//! Generational collection: a bump-allocated nursery with copying promotion
//! into a mark-sweep mature space, connected by a write barrier and
//! remembered set.
//!
//! This is the configuration the paper's Fallacy 1 discussion concedes is
//! "lower overhead, more predictable" than classic GC — experiment E1
//! measures whether its pause profile approaches region allocation.

use crate::freelist::WordPool;
use crate::stats::MemStats;
use crate::{Handle, Manager, MemError, WORD_BYTES};
use std::collections::HashSet;
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Nursery(usize),
    Mature(usize),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    loc: Loc,
    nrefs: u32,
    nwords: u32,
    live: bool,
    marked: bool,
}

/// A two-generation collector with write barrier.
///
/// ```
/// use sysmem::{Manager, ManagerExt, generational::GenerationalHeap};
///
/// let mut h = GenerationalHeap::new(1 << 16, 1 << 10);
/// let root = h.alloc(1, 0).unwrap();
/// h.add_root(root);
/// let young = h.alloc(0, 1).unwrap();
/// h.link(root, 0, Some(young));
/// h.put(young, 0, 3);
/// h.minor_collect(); // young survives via the root chain and is promoted
/// assert_eq!(h.get(young, 0), 3);
/// ```
#[derive(Debug)]
pub struct GenerationalHeap {
    nursery: Vec<u64>,
    nursery_bump: usize,
    nursery_words: usize,
    mature: WordPool,
    entries: Vec<Entry>,
    nursery_list: Vec<Handle>,
    mature_list: Vec<Handle>,
    roots: Vec<Handle>,
    remembered: HashSet<Handle>,
    stats: MemStats,
    live_bytes: usize,
}

impl GenerationalHeap {
    /// Creates a heap with `mature_bytes` of mature space and a nursery of
    /// `nursery_bytes`.
    #[must_use]
    pub fn new(mature_bytes: usize, nursery_bytes: usize) -> Self {
        GenerationalHeap {
            nursery: vec![0; (nursery_bytes / WORD_BYTES).max(4)],
            nursery_bump: 0,
            nursery_words: (nursery_bytes / WORD_BYTES).max(4),
            mature: WordPool::new((mature_bytes / WORD_BYTES).max(4)),
            entries: Vec::new(),
            nursery_list: Vec::new(),
            mature_list: Vec::new(),
            roots: Vec::new(),
            remembered: HashSet::new(),
            stats: MemStats::new(),
            live_bytes: 0,
        }
    }

    fn entry(&self, h: Handle) -> Result<&Entry, MemError> {
        match self.entries.get(h.0 as usize) {
            Some(e) if e.live => Ok(e),
            _ => Err(MemError::InvalidHandle(h)),
        }
    }

    fn read_at(&self, loc: Loc, idx: usize) -> u64 {
        match loc {
            Loc::Nursery(off) => self.nursery[off + idx],
            Loc::Mature(off) => self.mature.read(off + idx),
        }
    }

    fn write_at(&mut self, loc: Loc, idx: usize, val: u64) {
        match loc {
            Loc::Nursery(off) => self.nursery[off + idx] = val,
            Loc::Mature(off) => self.mature.write(off + idx, val),
        }
    }

    /// Number of remembered-set entries (for tests and reports).
    #[must_use]
    pub fn remembered_len(&self) -> usize {
        self.remembered.len()
    }

    fn mature_alloc(&mut self, payload: usize) -> Result<usize, MemError> {
        if let Some(off) = self.mature.alloc(payload) {
            return Ok(off);
        }
        // Reclaim mature garbage and retry. This never re-enters a minor
        // collection (mark_and_sweep_mature is safe mid-promotion), so the
        // collector cannot recurse into itself.
        self.mark_and_sweep_mature();
        self.mature.alloc(payload).ok_or(MemError::OutOfMemory {
            requested: payload * WORD_BYTES,
        })
    }

    /// Copies a nursery object into the mature space; returns false if it was
    /// already mature.
    fn promote(&mut self, h: Handle) -> Result<bool, MemError> {
        let e = self.entries[h.0 as usize];
        let Loc::Nursery(off) = e.loc else {
            return Ok(false);
        };
        let len = (e.nrefs + e.nwords) as usize;
        let new_off = self.mature_alloc(len)?;
        for i in 0..len {
            let w = self.nursery[off + i];
            self.mature.write(new_off + i, w);
        }
        self.entries[h.0 as usize].loc = Loc::Mature(new_off);
        self.mature_list.push(h);
        self.stats.bytes_copied += (len * WORD_BYTES) as u64;
        Ok(true)
    }

    /// Runs a minor (nursery) collection: promotes reachable nursery objects
    /// and resets the nursery.
    ///
    /// # Panics
    ///
    /// Panics if promotion fails even after a major collection (mature space
    /// exhausted by live data).
    pub fn minor_collect(&mut self) {
        // Pre-emptive: if the mature space cannot absorb a full nursery of
        // survivors, reclaim mature garbage first (cheaper than discovering
        // it mid-promotion).
        if self.mature.free_words() < self.nursery_bump + 64 {
            self.mark_and_sweep_mature();
        }
        let t0 = Instant::now();
        // Scan queue: promoted objects whose refs may reach nursery objects,
        // plus remembered mature objects.
        let mut queue: Vec<Handle> = Vec::new();
        let roots: Vec<Handle> = self.roots.clone();
        for h in roots {
            if self.entries[h.0 as usize].live {
                match self.entries[h.0 as usize].loc {
                    Loc::Nursery(_) => {
                        self.promote(h)
                            .expect("promotion failed: mature space exhausted");
                        queue.push(h);
                    }
                    Loc::Mature(_) => {}
                }
            }
        }
        for h in self.remembered.iter().copied().collect::<Vec<_>>() {
            if self.entries[h.0 as usize].live {
                queue.push(h);
            }
        }
        let mut scan = 0;
        while scan < queue.len() {
            let h = queue[scan];
            scan += 1;
            let e = self.entries[h.0 as usize];
            for slot in 0..e.nrefs as usize {
                let raw = self.read_at(e.loc, slot);
                if raw == 0 {
                    continue;
                }
                let child = Handle(u32::try_from(raw - 1).expect("fits"));
                let ce = self.entries[child.0 as usize];
                if ce.live && matches!(ce.loc, Loc::Nursery(_)) {
                    self.promote(child)
                        .expect("promotion failed: mature space exhausted");
                    queue.push(child);
                }
            }
        }
        // Unpromoted nursery objects are dead.
        for h in std::mem::take(&mut self.nursery_list) {
            let e = &mut self.entries[h.0 as usize];
            if e.live && matches!(e.loc, Loc::Nursery(_)) {
                e.live = false;
                self.live_bytes -= (e.nrefs + e.nwords) as usize * WORD_BYTES;
                self.stats.collected_objects += 1;
            }
        }
        self.nursery_bump = 0;
        self.remembered.clear();
        self.stats.collections += 1;
        self.stats.record_gc_pause(t0.elapsed());
    }

    /// Marks from the roots (traversing nursery and mature objects alike)
    /// and sweeps unmarked *mature* objects. Safe to run at any point,
    /// including mid-promotion: every mark bit set here is cleared before
    /// returning, so no stale marks survive on nursery objects.
    fn mark_and_sweep_mature(&mut self) {
        let t0 = Instant::now();
        let mut marked: Vec<Handle> = Vec::new();
        let mut worklist: Vec<Handle> = self.roots.clone();
        while let Some(h) = worklist.pop() {
            let e = &mut self.entries[h.0 as usize];
            if !e.live || e.marked {
                continue;
            }
            e.marked = true;
            marked.push(h);
            let (loc, nrefs) = (e.loc, e.nrefs as usize);
            for slot in 0..nrefs {
                let raw = self.read_at(loc, slot);
                if raw != 0 {
                    worklist.push(Handle(u32::try_from(raw - 1).expect("fits")));
                }
            }
        }
        let mut survivors = Vec::with_capacity(self.mature_list.len());
        for &h in &self.mature_list.clone() {
            let e = &mut self.entries[h.0 as usize];
            if !e.live {
                continue;
            }
            if e.marked {
                survivors.push(h);
            } else {
                e.live = false;
                let bytes = (e.nrefs + e.nwords) as usize * WORD_BYTES;
                self.live_bytes -= bytes;
                self.stats.collected_objects += 1;
                if let Loc::Mature(off) = e.loc {
                    self.mature.free(off);
                }
            }
        }
        self.mature_list = survivors;
        // Clear every mark we set (nursery objects included).
        for h in marked {
            self.entries[h.0 as usize].marked = false;
        }
        self.stats.collections += 1;
        self.stats.record_gc_pause(t0.elapsed());
    }

    /// Runs a full collection: a minor collection followed by mark-sweep over
    /// the mature space.
    pub fn major_collect(&mut self) {
        if self.nursery_bump > 0 || !self.nursery_list.is_empty() {
            self.minor_collect();
        }
        self.mark_and_sweep_mature();
    }
}

impl Manager for GenerationalHeap {
    fn name(&self) -> &'static str {
        "generational"
    }

    fn alloc(&mut self, nrefs: usize, nwords: usize) -> Result<Handle, MemError> {
        let payload = nrefs + nwords;
        if payload > self.nursery_words {
            return Err(MemError::OutOfMemory {
                requested: payload * WORD_BYTES,
            });
        }
        if self.nursery_bump + payload > self.nursery_words {
            self.minor_collect();
        }
        let off = self.nursery_bump;
        self.nursery_bump += payload;
        for i in 0..payload {
            self.nursery[off + i] = 0;
        }
        let h = Handle(u32::try_from(self.entries.len()).expect("handle space exhausted"));
        self.entries.push(Entry {
            loc: Loc::Nursery(off),
            nrefs: u32::try_from(nrefs).expect("fits"),
            nwords: u32::try_from(nwords).expect("fits"),
            live: true,
            marked: false,
        });
        self.nursery_list.push(h);
        self.stats.allocs += 1;
        self.stats.bytes_allocated += (payload * WORD_BYTES) as u64;
        self.live_bytes += payload * WORD_BYTES;
        Ok(h)
    }

    fn free(&mut self, _h: Handle) -> Result<(), MemError> {
        Err(MemError::Unsupported(
            "generational heap reclaims automatically",
        ))
    }

    fn set_ref(
        &mut self,
        obj: Handle,
        slot: usize,
        target: Option<Handle>,
    ) -> Result<(), MemError> {
        let e = *self.entry(obj)?;
        if slot >= e.nrefs as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: slot,
                len: e.nrefs as usize,
            });
        }
        if let Some(t) = target {
            let te = *self.entry(t)?;
            // Write barrier: record old→young pointers.
            if matches!(e.loc, Loc::Mature(_)) && matches!(te.loc, Loc::Nursery(_)) {
                self.remembered.insert(obj);
                self.stats.barrier_hits += 1;
            }
        }
        self.write_at(e.loc, slot, target.map_or(0, |t| u64::from(t.0) + 1));
        Ok(())
    }

    fn get_ref(&self, obj: Handle, slot: usize) -> Result<Option<Handle>, MemError> {
        let e = self.entry(obj)?;
        if slot >= e.nrefs as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: slot,
                len: e.nrefs as usize,
            });
        }
        let raw = self.read_at(e.loc, slot);
        Ok(if raw == 0 {
            None
        } else {
            Some(Handle(u32::try_from(raw - 1).expect("fits")))
        })
    }

    fn set_word(&mut self, obj: Handle, idx: usize, val: u64) -> Result<(), MemError> {
        let e = *self.entry(obj)?;
        if idx >= e.nwords as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: idx,
                len: e.nwords as usize,
            });
        }
        self.write_at(e.loc, e.nrefs as usize + idx, val);
        Ok(())
    }

    fn get_word(&self, obj: Handle, idx: usize) -> Result<u64, MemError> {
        let e = self.entry(obj)?;
        if idx >= e.nwords as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: idx,
                len: e.nwords as usize,
            });
        }
        Ok(self.read_at(e.loc, e.nrefs as usize + idx))
    }

    fn add_root(&mut self, obj: Handle) {
        self.roots.push(obj);
    }

    fn remove_root(&mut self, obj: Handle) {
        if let Some(pos) = self.roots.iter().rposition(|&r| r == obj) {
            self.roots.swap_remove(pos);
        }
    }

    fn collect(&mut self) {
        sysobs::obs_span!("mem.collect.generational");
        self.major_collect();
    }

    fn is_live(&self, h: Handle) -> bool {
        self.entry(h).is_ok()
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn live_bytes(&self) -> usize {
        self.live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManagerExt;

    fn heap() -> GenerationalHeap {
        GenerationalHeap::new(1 << 16, 512)
    }

    #[test]
    fn dead_nursery_objects_die_in_minor_gc() {
        let mut h = heap();
        let junk = h.alloc(0, 2).unwrap();
        h.minor_collect();
        assert!(!h.is_live(junk));
    }

    #[test]
    fn rooted_nursery_objects_are_promoted() {
        let mut h = heap();
        let o = h.alloc(0, 1).unwrap();
        h.add_root(o);
        h.put(o, 0, 42);
        h.minor_collect();
        assert_eq!(h.get(o, 0), 42);
        assert!(h.stats().bytes_copied > 0);
    }

    #[test]
    fn write_barrier_keeps_young_objects_alive() {
        let mut h = heap();
        let old = h.alloc(1, 0).unwrap();
        h.add_root(old);
        h.minor_collect(); // old is now mature
        let young = h.alloc(0, 1).unwrap();
        h.put(young, 0, 9);
        h.link(old, 0, Some(young)); // barrier fires
        assert_eq!(h.stats().barrier_hits, 1);
        h.remove_root(old);
        h.add_root(old); // root set unchanged in effect
        h.minor_collect();
        assert_eq!(h.get(young, 0), 9, "remembered set must keep young alive");
    }

    #[test]
    fn nursery_exhaustion_triggers_minor_gc() {
        let mut h = GenerationalHeap::new(1 << 16, 256); // 32-word nursery
        for _ in 0..100 {
            h.alloc(0, 8).unwrap();
        }
        assert!(h.stats().collections > 0);
    }

    #[test]
    fn major_gc_reclaims_dead_mature_objects() {
        let mut h = heap();
        let o = h.alloc(0, 4).unwrap();
        h.add_root(o);
        h.minor_collect(); // promote
        h.remove_root(o);
        h.major_collect();
        assert!(!h.is_live(o));
    }

    #[test]
    fn mature_cycle_is_reclaimed_by_major_gc() {
        let mut h = heap();
        let a = h.alloc(1, 0).unwrap();
        let b = h.alloc(1, 0).unwrap();
        h.add_root(a);
        h.add_root(b);
        h.link(a, 0, Some(b));
        h.set_ref(b, 0, Some(a)).unwrap();
        h.minor_collect();
        h.remove_root(a);
        h.remove_root(b);
        h.major_collect();
        assert!(!h.is_live(a));
        assert!(!h.is_live(b));
    }

    #[test]
    fn oversized_allocation_is_rejected() {
        let mut h = GenerationalHeap::new(1 << 16, 64); // 8-word nursery
        assert!(matches!(h.alloc(0, 100), Err(MemError::OutOfMemory { .. })));
    }

    #[test]
    fn chain_through_nursery_survives_minor_gc() {
        let mut h = heap();
        let a = h.alloc(1, 0).unwrap();
        let b = h.alloc(1, 0).unwrap();
        let c = h.alloc(0, 1).unwrap();
        h.add_root(a);
        h.link(a, 0, Some(b));
        h.link(b, 0, Some(c));
        h.put(c, 0, 77);
        h.minor_collect();
        assert_eq!(h.get(c, 0), 77);
    }

    #[test]
    fn remembered_set_clears_after_minor_gc() {
        let mut h = heap();
        let old = h.alloc(1, 0).unwrap();
        h.add_root(old);
        h.minor_collect();
        let young = h.alloc(0, 0).unwrap();
        h.link(old, 0, Some(young));
        assert_eq!(h.remembered_len(), 1);
        h.minor_collect();
        assert_eq!(h.remembered_len(), 0);
    }

    #[test]
    fn data_integrity_across_many_cycles() {
        let mut h = GenerationalHeap::new(1 << 18, 1024);
        let keep = h.alloc(0, 4).unwrap();
        h.add_root(keep);
        for i in 0..4 {
            h.put(keep, i, 1000 + i as u64);
        }
        for _ in 0..50 {
            h.alloc(1, 8).unwrap();
        }
        h.major_collect();
        for i in 0..4 {
            assert_eq!(h.get(keep, i), 1000 + i as u64);
        }
    }
}
