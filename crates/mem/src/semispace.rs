//! Cheney-style semispace copying collection.
//!
//! The heap is split into two equal spaces; allocation bumps a pointer in the
//! active space, and collection copies live objects into the other space,
//! leaving garbage behind. Because handles are indirect (the handle table
//! maps handle → current offset), copying updates only the table — reference
//! slots hold handles and never need rewriting.

use crate::stats::MemStats;
use crate::{Handle, Manager, MemError, WORD_BYTES};
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Space {
    A,
    B,
}

impl Space {
    fn other(self) -> Space {
        match self {
            Space::A => Space::B,
            Space::B => Space::A,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    off: usize,
    nrefs: u32,
    nwords: u32,
    space: Space,
    live: bool,
}

/// A two-space copying collector.
///
/// ```
/// use sysmem::{Manager, ManagerExt, semispace::SemiSpaceHeap};
///
/// let mut h = SemiSpaceHeap::new(1 << 16);
/// let root = h.alloc(0, 1).unwrap();
/// h.add_root(root);
/// h.put(root, 0, 17);
/// h.collect(); // object moves, handle stays valid
/// assert_eq!(h.get(root, 0), 17);
/// ```
#[derive(Debug)]
pub struct SemiSpaceHeap {
    space_a: Vec<u64>,
    space_b: Vec<u64>,
    active: Space,
    bump: usize,
    space_words: usize,
    entries: Vec<Entry>,
    live_list: Vec<Handle>,
    roots: Vec<Handle>,
    stats: MemStats,
    live_bytes: usize,
}

impl SemiSpaceHeap {
    /// Creates a heap with the given *total* capacity in bytes; each space
    /// gets half (the classic 2x space overhead of copying collection).
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        let space_words = (capacity_bytes / WORD_BYTES / 2).max(4);
        SemiSpaceHeap {
            space_a: vec![0; space_words],
            space_b: vec![0; space_words],
            active: Space::A,
            bump: 0,
            space_words,
            entries: Vec::new(),
            live_list: Vec::new(),
            roots: Vec::new(),
            stats: MemStats::new(),
            live_bytes: 0,
        }
    }

    fn space(&self, s: Space) -> &Vec<u64> {
        match s {
            Space::A => &self.space_a,
            Space::B => &self.space_b,
        }
    }

    fn space_mut(&mut self, s: Space) -> &mut Vec<u64> {
        match s {
            Space::A => &mut self.space_a,
            Space::B => &mut self.space_b,
        }
    }

    fn entry(&self, h: Handle) -> Result<&Entry, MemError> {
        match self.entries.get(h.0 as usize) {
            Some(e) if e.live => Ok(e),
            _ => Err(MemError::InvalidHandle(h)),
        }
    }

    fn read(&self, e: &Entry, idx: usize) -> u64 {
        self.space(e.space)[e.off + idx]
    }

    fn write(&mut self, e: Entry, idx: usize, val: u64) {
        self.space_mut(e.space)[e.off + idx] = val;
    }

    /// Copies `h` into to-space if it still resides in from-space; returns
    /// whether a copy happened.
    fn evacuate(&mut self, h: Handle, to: Space, to_bump: &mut usize) -> bool {
        let e = self.entries[h.0 as usize];
        if !e.live || e.space == to {
            return false;
        }
        let len = (e.nrefs + e.nwords) as usize;
        debug_assert!(*to_bump + len <= self.space_words, "to-space overflow");
        for i in 0..len {
            let w = self.space(e.space)[e.off + i];
            self.space_mut(to)[*to_bump + i] = w;
        }
        let entry = &mut self.entries[h.0 as usize];
        entry.off = *to_bump;
        entry.space = to;
        *to_bump += len;
        self.stats.bytes_copied += (len * WORD_BYTES) as u64;
        true
    }
}

impl Manager for SemiSpaceHeap {
    fn name(&self) -> &'static str {
        "semispace"
    }

    fn alloc(&mut self, nrefs: usize, nwords: usize) -> Result<Handle, MemError> {
        let payload = nrefs + nwords;
        if self.bump + payload > self.space_words {
            self.collect();
            if self.bump + payload > self.space_words {
                return Err(MemError::OutOfMemory {
                    requested: payload * WORD_BYTES,
                });
            }
        }
        let off = self.bump;
        self.bump += payload;
        let active = self.active;
        for i in 0..payload {
            self.space_mut(active)[off + i] = 0;
        }
        let h = Handle(u32::try_from(self.entries.len()).expect("handle space exhausted"));
        self.entries.push(Entry {
            off,
            nrefs: u32::try_from(nrefs).expect("fits"),
            nwords: u32::try_from(nwords).expect("fits"),
            space: active,
            live: true,
        });
        self.live_list.push(h);
        self.stats.allocs += 1;
        self.stats.bytes_allocated += (payload * WORD_BYTES) as u64;
        self.live_bytes += payload * WORD_BYTES;
        Ok(h)
    }

    fn free(&mut self, _h: Handle) -> Result<(), MemError> {
        Err(MemError::Unsupported("semispace reclaims automatically"))
    }

    fn set_ref(
        &mut self,
        obj: Handle,
        slot: usize,
        target: Option<Handle>,
    ) -> Result<(), MemError> {
        let e = *self.entry(obj)?;
        if slot >= e.nrefs as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: slot,
                len: e.nrefs as usize,
            });
        }
        if let Some(t) = target {
            self.entry(t)?;
        }
        self.write(e, slot, target.map_or(0, |t| u64::from(t.0) + 1));
        Ok(())
    }

    fn get_ref(&self, obj: Handle, slot: usize) -> Result<Option<Handle>, MemError> {
        let e = self.entry(obj)?;
        if slot >= e.nrefs as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: slot,
                len: e.nrefs as usize,
            });
        }
        let raw = self.read(e, slot);
        Ok(if raw == 0 {
            None
        } else {
            Some(Handle(u32::try_from(raw - 1).expect("fits")))
        })
    }

    fn set_word(&mut self, obj: Handle, idx: usize, val: u64) -> Result<(), MemError> {
        let e = *self.entry(obj)?;
        if idx >= e.nwords as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: idx,
                len: e.nwords as usize,
            });
        }
        self.write(e, e.nrefs as usize + idx, val);
        Ok(())
    }

    fn get_word(&self, obj: Handle, idx: usize) -> Result<u64, MemError> {
        let e = self.entry(obj)?;
        if idx >= e.nwords as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: idx,
                len: e.nwords as usize,
            });
        }
        Ok(self.read(e, e.nrefs as usize + idx))
    }

    fn add_root(&mut self, obj: Handle) {
        self.roots.push(obj);
    }

    fn remove_root(&mut self, obj: Handle) {
        if let Some(pos) = self.roots.iter().rposition(|&r| r == obj) {
            self.roots.swap_remove(pos);
        }
    }

    fn collect(&mut self) {
        sysobs::obs_span!("mem.collect.semispace");
        let t0 = Instant::now();
        let to = self.active.other();
        let mut to_bump = 0usize;
        // Cheney's algorithm with an explicit scan queue of handles.
        let mut queue: Vec<Handle> = Vec::new();
        let roots = self.roots.clone();
        for h in roots {
            if self.evacuate(h, to, &mut to_bump) {
                queue.push(h);
            }
        }
        let mut scan = 0;
        while scan < queue.len() {
            let h = queue[scan];
            scan += 1;
            let e = self.entries[h.0 as usize];
            for slot in 0..e.nrefs as usize {
                let raw = self.space(to)[e.off + slot];
                if raw != 0 {
                    let child = Handle(u32::try_from(raw - 1).expect("fits"));
                    if self.evacuate(child, to, &mut to_bump) {
                        queue.push(child);
                    }
                }
            }
        }
        // Anything still in from-space is garbage.
        let from = self.active;
        let mut survivors = Vec::with_capacity(queue.len());
        for &h in &self.live_list {
            let e = &mut self.entries[h.0 as usize];
            if e.space == from && e.live {
                e.live = false;
                self.live_bytes -= (e.nrefs + e.nwords) as usize * WORD_BYTES;
                self.stats.collected_objects += 1;
            } else if e.live {
                survivors.push(h);
            }
        }
        self.live_list = survivors;
        self.active = to;
        self.bump = to_bump;
        self.stats.collections += 1;
        self.stats.record_gc_pause(t0.elapsed());
    }

    fn is_live(&self, h: Handle) -> bool {
        self.entry(h).is_ok()
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn live_bytes(&self) -> usize {
        self.live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManagerExt;

    #[test]
    fn data_survives_copying() {
        let mut h = SemiSpaceHeap::new(4096);
        let a = h.alloc(1, 2).unwrap();
        let b = h.alloc(0, 1).unwrap();
        h.add_root(a);
        h.link(a, 0, Some(b));
        h.put(a, 0, 11);
        h.put(a, 1, 22);
        h.put(b, 0, 33);
        h.collect();
        assert_eq!(h.get(a, 0), 11);
        assert_eq!(h.get(a, 1), 22);
        assert_eq!(h.deref(a, 0), Some(b));
        assert_eq!(h.get(b, 0), 33);
    }

    #[test]
    fn garbage_is_left_behind() {
        let mut h = SemiSpaceHeap::new(4096);
        let junk = h.alloc(0, 4).unwrap();
        h.collect();
        assert!(!h.is_live(junk));
        assert_eq!(h.stats().collected_objects, 1);
        assert_eq!(h.stats().bytes_copied, 0);
    }

    #[test]
    fn collection_triggered_by_exhaustion() {
        let mut h = SemiSpaceHeap::new(1024); // 64 words/space
        for i in 0..50 {
            let o = h.alloc(0, 8).unwrap();
            h.put(o, 0, i);
        }
        assert!(h.stats().collections >= 1);
    }

    #[test]
    fn shared_structure_is_copied_once() {
        let mut h = SemiSpaceHeap::new(4096);
        let shared = h.alloc(0, 1).unwrap();
        let a = h.alloc(1, 0).unwrap();
        let b = h.alloc(1, 0).unwrap();
        h.add_root(a);
        h.add_root(b);
        h.link(a, 0, Some(shared));
        h.link(b, 0, Some(shared));
        h.put(shared, 0, 5);
        let copied_before = h.stats().bytes_copied;
        h.collect();
        // shared(1 word) + a(1) + b(1) = 3 words copied, not 4.
        assert_eq!(h.stats().bytes_copied - copied_before, 3 * 8);
        assert_eq!(h.deref(a, 0), h.deref(b, 0));
    }

    #[test]
    fn cyclic_garbage_is_collected() {
        let mut h = SemiSpaceHeap::new(4096);
        let a = h.alloc(1, 0).unwrap();
        let b = h.alloc(1, 0).unwrap();
        h.link(a, 0, Some(b));
        h.link(b, 0, Some(a));
        h.collect();
        assert!(!h.is_live(a));
        assert!(!h.is_live(b));
    }

    #[test]
    fn rooted_cycle_survives() {
        let mut h = SemiSpaceHeap::new(4096);
        let a = h.alloc(1, 1).unwrap();
        let b = h.alloc(1, 1).unwrap();
        h.add_root(a);
        h.link(a, 0, Some(b));
        h.link(b, 0, Some(a));
        h.put(a, 0, 1);
        h.put(b, 0, 2);
        h.collect();
        assert_eq!(h.get(a, 0), 1);
        assert_eq!(h.get(b, 0), 2);
    }

    #[test]
    fn oom_when_live_exceeds_one_space() {
        let mut h = SemiSpaceHeap::new(256); // 16 words/space
        let a = h.alloc(0, 10).unwrap();
        h.add_root(a);
        assert!(matches!(h.alloc(0, 10), Err(MemError::OutOfMemory { .. })));
    }

    #[test]
    fn repeated_collections_preserve_long_lived_data() {
        let mut h = SemiSpaceHeap::new(8192);
        let keep = h.alloc(0, 4).unwrap();
        h.add_root(keep);
        for i in 0..4 {
            h.put(keep, i, i as u64 + 100);
        }
        for _ in 0..10 {
            h.alloc(0, 16).unwrap();
            h.collect();
        }
        for i in 0..4 {
            assert_eq!(h.get(keep, i), i as u64 + 100);
        }
    }
}
