//! Synthetic allocation workloads with controlled object-size and lifetime
//! distributions, used by experiment E1.
//!
//! Each allocated object gets a sentinel word written at birth and verified
//! at death, so any manager that corrupts or prematurely reuses storage is
//! caught *inside* the benchmark — performance numbers from a corrupting
//! manager are meaningless.

use crate::stats::PauseHistogram;
use crate::{Handle, Manager, ManagerExt, MemError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Object-lifetime distribution for a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lifetime {
    /// Strict stack discipline: the most recently allocated live object dies
    /// first. Matches the region-friendly pattern of most systems code.
    Lifo,
    /// Exponentially distributed lifetimes (most objects die young — the
    /// generational hypothesis).
    Exponential {
        /// Mean lifetime in operations.
        mean_ops: f64,
    },
    /// Uniformly distributed lifetimes in `[1, max_ops]`.
    Uniform {
        /// Maximum lifetime in operations.
        max_ops: usize,
    },
}

/// How the driver returns dead objects to the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimStrategy {
    /// Call [`Manager::free`] at death (manual managers).
    ExplicitFree,
    /// Drop the root at death and let the collector reclaim (tracing/RC).
    RootRelease,
    /// Ignore per-object deaths; allocate into a region and close it every
    /// `batch` allocations (region managers).
    RegionScope {
        /// Allocations per region.
        batch: usize,
    },
}

/// Parameters of a synthetic workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of allocation operations.
    pub ops: usize,
    /// Minimum payload words per object.
    pub min_words: usize,
    /// Maximum payload words per object (inclusive).
    pub max_words: usize,
    /// Reference slots per object.
    pub nrefs: usize,
    /// Probability that a new object is linked from a random live object.
    pub link_prob: f64,
    /// Lifetime distribution.
    pub lifetime: Lifetime,
    /// RNG seed (workloads are deterministic given the seed).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            ops: 10_000,
            min_words: 2,
            max_words: 32,
            nrefs: 2,
            link_prob: 0.2,
            lifetime: Lifetime::Exponential { mean_ops: 64.0 },
            seed: 0x5eed,
        }
    }
}

/// Result of running a workload against one manager.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Manager name.
    pub manager: &'static str,
    /// Total wall time in nanoseconds.
    pub elapsed_ns: u64,
    /// Per-operation latency histogram (alloc + any embedded GC pause).
    pub op_pauses: PauseHistogram,
    /// Successful allocations.
    pub allocs: u64,
    /// Allocations that failed with out-of-memory.
    pub oom: u64,
    /// Peak live bytes observed.
    pub peak_live_bytes: usize,
    /// Sentinel mismatches detected (must be zero for a correct manager).
    pub integrity_errors: u64,
    /// Collections run by the manager during the workload.
    pub collections: u64,
    /// Worst GC pause in nanoseconds.
    pub max_gc_pause_ns: u64,
}

impl WorkloadReport {
    /// Allocations per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.allocs as f64 / (self.elapsed_ns as f64 / 1e9)
        }
    }
}

fn sentinel(h: Handle, seed: u64) -> u64 {
    u64::from(h.0).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed
}

/// Runs `spec` against `mgr` using the given reclaim strategy.
///
/// The driver allocates one object per operation, writes a sentinel,
/// optionally links it into the live graph, and retires objects according to
/// the lifetime distribution and strategy. It is deterministic for a given
/// seed, so different managers see the identical request stream.
///
/// # Panics
///
/// Panics only on internal driver bugs, never on manager errors (OOM and
/// integrity failures are counted in the report).
#[allow(clippy::too_many_lines)]
pub fn run_workload(
    mgr: &mut dyn Manager,
    spec: &WorkloadSpec,
    strategy: ReclaimStrategy,
) -> WorkloadReport {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut report = WorkloadReport {
        manager: mgr.name(),
        elapsed_ns: 0,
        op_pauses: PauseHistogram::new(),
        allocs: 0,
        oom: 0,
        peak_live_bytes: 0,
        integrity_errors: 0,
        collections: 0,
        max_gc_pause_ns: 0,
    };
    // (death_op, handle); BinaryHeap is a max-heap, so wrap in Reverse.
    let mut deaths: BinaryHeap<Reverse<(usize, Handle)>> = BinaryHeap::new();
    let mut lifo_stack: Vec<Handle> = Vec::new();
    let mut live: Vec<Handle> = Vec::new();
    let start = Instant::now();

    let retire = |mgr: &mut dyn Manager, h: Handle, report: &mut WorkloadReport, seed: u64| {
        if mgr.is_live(h) {
            match mgr.get_word(h, 0) {
                Ok(w) if w == sentinel(h, seed) => {}
                _ => report.integrity_errors += 1,
            }
        } else {
            report.integrity_errors += 1;
        }
        match strategy {
            ReclaimStrategy::ExplicitFree => {
                if let Err(MemError::InvalidHandle(_)) = mgr.free(h) {
                    report.integrity_errors += 1;
                }
            }
            ReclaimStrategy::RootRelease => mgr.remove_root(h),
            ReclaimStrategy::RegionScope { .. } => {}
        }
    };

    for op in 0..spec.ops {
        // Process deaths scheduled at or before this op.
        match spec.lifetime {
            Lifetime::Lifo => {
                // Die with probability ~0.5 per op, newest first.
                while !lifo_stack.is_empty() && rng.gen_bool(0.5) {
                    let h = lifo_stack.pop().expect("nonempty");
                    live.retain(|&x| x != h);
                    retire(mgr, h, &mut report, spec.seed);
                }
            }
            _ => {
                while let Some(&Reverse((death, h))) = deaths.peek() {
                    if death > op {
                        break;
                    }
                    deaths.pop();
                    live.retain(|&x| x != h);
                    retire(mgr, h, &mut report, spec.seed);
                }
            }
        }

        let nwords = rng.gen_range(spec.min_words..=spec.max_words).max(1);
        let t0 = Instant::now();
        let h = match mgr.alloc(spec.nrefs, nwords) {
            Ok(h) => h,
            Err(_) => {
                report.oom += 1;
                continue;
            }
        };
        report.op_pauses.record(t0.elapsed());
        report.allocs += 1;
        mgr.put(h, 0, sentinel(h, spec.seed));
        if strategy == ReclaimStrategy::RootRelease {
            mgr.add_root(h);
        }
        // Link into the object graph.
        if spec.nrefs > 0 && !live.is_empty() && rng.gen_bool(spec.link_prob) {
            let src = live[rng.gen_range(0..live.len())];
            let slot = rng.gen_range(0..spec.nrefs);
            // Region managers may reject outward references; that is the
            // discipline working as intended, not an error.
            let _ = mgr.set_ref(src, slot, Some(h));
        }
        live.push(h);
        match spec.lifetime {
            Lifetime::Lifo => lifo_stack.push(h),
            Lifetime::Exponential { mean_ops } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let life = (-mean_ops * u.ln()).ceil().max(1.0) as usize;
                deaths.push(Reverse((op + life, h)));
            }
            Lifetime::Uniform { max_ops } => {
                let life = rng.gen_range(1..=max_ops.max(1));
                deaths.push(Reverse((op + life, h)));
            }
        }
        if op % 64 == 0 {
            report.peak_live_bytes = report.peak_live_bytes.max(mgr.live_bytes());
        }
    }
    // Drain survivors.
    for h in live {
        retire(mgr, h, &mut report, spec.seed);
    }
    report.elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    report.collections = mgr.stats().collections;
    report.max_gc_pause_ns = mgr.stats().gc_pauses.max_ns();
    report
}

/// Runs a region-scoped variant: objects are allocated into regions of
/// `batch` allocations which close in LIFO order.
///
/// This is the workload shape regions are *for*; E1 reports it alongside the
/// general workloads to show where the region discipline wins.
pub fn run_region_workload(
    heap: &mut crate::arena::RegionHeap,
    spec: &WorkloadSpec,
    batch: usize,
) -> WorkloadReport {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut report = WorkloadReport {
        manager: "region",
        elapsed_ns: 0,
        op_pauses: PauseHistogram::new(),
        allocs: 0,
        oom: 0,
        peak_live_bytes: 0,
        integrity_errors: 0,
        collections: 0,
        max_gc_pause_ns: 0,
    };
    let start = Instant::now();
    let mut in_batch = 0usize;
    let mut region = heap.open_region();
    let mut batch_handles: Vec<Handle> = Vec::new();
    for op in 0..spec.ops {
        let nwords = rng.gen_range(spec.min_words..=spec.max_words).max(1);
        let t0 = Instant::now();
        match heap.alloc(spec.nrefs, nwords) {
            Ok(h) => {
                report.op_pauses.record(t0.elapsed());
                report.allocs += 1;
                heap.put(h, 0, sentinel(h, spec.seed));
                batch_handles.push(h);
                in_batch += 1;
            }
            Err(_) => report.oom += 1,
        }
        if in_batch >= batch {
            for &h in &batch_handles {
                match heap.get_word(h, 0) {
                    Ok(w) if w == sentinel(h, spec.seed) => {}
                    _ => report.integrity_errors += 1,
                }
            }
            heap.close_region(region);
            region = heap.open_region();
            batch_handles.clear();
            in_batch = 0;
        }
        if op % 64 == 0 {
            report.peak_live_bytes = report.peak_live_bytes.max(heap.live_bytes());
        }
    }
    heap.close_region(region);
    report.elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::RegionHeap;
    use crate::freelist::FreeListHeap;
    use crate::generational::GenerationalHeap;
    use crate::marksweep::MarkSweepHeap;
    use crate::rc::RcHeap;
    use crate::semispace::SemiSpaceHeap;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            ops: 2000,
            min_words: 1,
            max_words: 8,
            nrefs: 1,
            link_prob: 0.1,
            lifetime: Lifetime::Exponential { mean_ops: 32.0 },
            seed: 42,
        }
    }

    #[test]
    fn freelist_runs_clean() {
        let mut h = FreeListHeap::new(1 << 20);
        let r = run_workload(&mut h, &small_spec(), ReclaimStrategy::ExplicitFree);
        assert_eq!(r.integrity_errors, 0);
        assert_eq!(r.oom, 0);
        assert_eq!(r.allocs, 2000);
    }

    #[test]
    fn marksweep_runs_clean() {
        let mut h = MarkSweepHeap::new(1 << 20);
        let r = run_workload(&mut h, &small_spec(), ReclaimStrategy::RootRelease);
        assert_eq!(r.integrity_errors, 0, "GC must not corrupt live data");
        assert_eq!(r.oom, 0);
    }

    #[test]
    fn semispace_runs_clean() {
        let mut h = SemiSpaceHeap::new(1 << 21);
        let r = run_workload(&mut h, &small_spec(), ReclaimStrategy::RootRelease);
        assert_eq!(r.integrity_errors, 0);
        assert_eq!(r.oom, 0);
    }

    #[test]
    fn generational_runs_clean() {
        let mut h = GenerationalHeap::new(1 << 21, 1 << 12);
        let r = run_workload(&mut h, &small_spec(), ReclaimStrategy::RootRelease);
        assert_eq!(r.integrity_errors, 0);
        assert_eq!(r.oom, 0);
    }

    #[test]
    fn refcount_runs_clean() {
        let mut h = RcHeap::new(1 << 20);
        let r = run_workload(&mut h, &small_spec(), ReclaimStrategy::RootRelease);
        assert_eq!(r.integrity_errors, 0);
        assert_eq!(r.oom, 0);
    }

    #[test]
    fn region_workload_runs_clean() {
        let mut h = RegionHeap::new(1 << 20);
        let r = run_region_workload(&mut h, &small_spec(), 128);
        assert_eq!(r.integrity_errors, 0);
        assert_eq!(r.oom, 0);
        assert_eq!(r.allocs, 2000);
    }

    #[test]
    fn lifo_lifetime_works_with_explicit_free() {
        let mut h = FreeListHeap::new(1 << 20);
        let spec = WorkloadSpec {
            lifetime: Lifetime::Lifo,
            ..small_spec()
        };
        let r = run_workload(&mut h, &spec, ReclaimStrategy::ExplicitFree);
        assert_eq!(r.integrity_errors, 0);
    }

    #[test]
    fn uniform_lifetime_works() {
        let mut h = MarkSweepHeap::new(1 << 20);
        let spec = WorkloadSpec {
            lifetime: Lifetime::Uniform { max_ops: 100 },
            ..small_spec()
        };
        let r = run_workload(&mut h, &spec, ReclaimStrategy::RootRelease);
        assert_eq!(r.integrity_errors, 0);
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let spec = small_spec();
        let mut h1 = FreeListHeap::new(1 << 20);
        let mut h2 = FreeListHeap::new(1 << 20);
        let r1 = run_workload(&mut h1, &spec, ReclaimStrategy::ExplicitFree);
        let r2 = run_workload(&mut h2, &spec, ReclaimStrategy::ExplicitFree);
        assert_eq!(r1.allocs, r2.allocs);
        assert_eq!(r1.peak_live_bytes, r2.peak_live_bytes);
    }

    #[test]
    fn throughput_is_positive() {
        let mut h = FreeListHeap::new(1 << 20);
        let r = run_workload(&mut h, &small_spec(), ReclaimStrategy::ExplicitFree);
        assert!(r.throughput() > 0.0);
    }
}
