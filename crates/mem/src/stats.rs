//! Accounting and pause-time statistics shared by all managers.

use std::fmt;
use std::time::Duration;

/// A fixed-bucket log-scale histogram of pause times in nanoseconds.
///
/// Buckets are powers of two from 1 ns up to ~17 s, which is plenty for
/// allocation and collection pauses. Recording is O(1) and allocation-free so
/// it can run inside the measured region.
#[derive(Debug, Clone)]
pub struct PauseHistogram {
    buckets: [u64; 64],
    count: u64,
    max_ns: u64,
    total_ns: u64,
}

impl Default for PauseHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl PauseHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        PauseHistogram { buckets: [0; 64], count: 0, max_ns: 0, total_ns: 0 }
    }

    /// Records one pause.
    pub fn record(&mut self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.record_ns(ns);
    }

    /// Records one pause expressed in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let bucket = if ns == 0 { 0 } else { 63 - u64::leading_zeros(ns) as usize };
        self.buckets[bucket.min(63)] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
        self.total_ns = self.total_ns.saturating_add(ns);
    }

    /// Number of recorded pauses.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded pause in nanoseconds.
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean pause in nanoseconds (0 if empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate percentile (0.0–1.0) in nanoseconds, resolved to the upper
    /// edge of the containing power-of-two bucket.
    #[must_use]
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let clamped = p.clamp(0.0, 1.0);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let target = ((clamped * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max_ns
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &PauseHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
    }
}

impl fmt::Display for PauseHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={}ns p50={}ns p99={}ns max={}ns",
            self.count,
            self.mean_ns(),
            self.percentile_ns(0.50),
            self.percentile_ns(0.99),
            self.max_ns
        )
    }
}

/// Allocation and collection accounting for one manager instance.
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of explicit frees (manual managers).
    pub frees: u64,
    /// Total bytes handed out over the lifetime of the heap.
    pub bytes_allocated: u64,
    /// Number of collection cycles run.
    pub collections: u64,
    /// Objects reclaimed by collection.
    pub collected_objects: u64,
    /// Bytes copied by moving collectors.
    pub bytes_copied: u64,
    /// Write-barrier triggers (generational).
    pub barrier_hits: u64,
    /// Pause histogram for collection pauses only.
    pub gc_pauses: PauseHistogram,
}

impl MemStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocs={} frees={} bytes={} collections={} reclaimed={} pauses[{}]",
            self.allocs,
            self.frees,
            self.bytes_allocated,
            self.collections,
            self.collected_objects,
            self.gc_pauses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = PauseHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.percentile_ns(0.99), 0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn single_sample_dominates_all_percentiles() {
        let mut h = PauseHistogram::new();
        h.record_ns(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean_ns(), 1000);
        assert!(h.percentile_ns(0.5) >= 1000);
        assert_eq!(h.max_ns(), 1000);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = PauseHistogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 17);
        }
        let p50 = h.percentile_ns(0.50);
        let p90 = h.percentile_ns(0.90);
        let p99 = h.percentile_ns(0.99);
        assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        assert!(p99 <= h.max_ns().next_power_of_two());
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let mut a = PauseHistogram::new();
        let mut b = PauseHistogram::new();
        a.record_ns(10);
        b.record_ns(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 1_000_000);
    }

    #[test]
    fn zero_pause_is_recorded() {
        let mut h = PauseHistogram::new();
        h.record_ns(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn display_contains_key_fields() {
        let mut h = PauseHistogram::new();
        h.record(Duration::from_nanos(64));
        let s = h.to_string();
        assert!(s.contains("n=1"));
        assert!(s.contains("max=64ns"));
    }
}
