//! Accounting and pause-time statistics shared by all managers.
//!
//! The pause histogram is now a thin wrapper over [`sysobs::LogHistogram`] —
//! the same log-bucketed structure the router's latency distribution and the
//! metrics registry use — so GC pauses, packet latencies, and registry
//! histograms all merge, compare, and print through one implementation. The
//! `*_ns`-suffixed API is kept so collector code and existing callers read
//! unchanged.

use std::fmt;
use std::time::Duration;
use sysobs::LogHistogram;

/// A fixed-bucket log-scale histogram of pause times in nanoseconds.
///
/// Buckets are powers of two from 1 ns up to ~17 s, which is plenty for
/// allocation and collection pauses. Recording is O(1) and allocation-free so
/// it can run inside the measured region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PauseHistogram {
    inner: LogHistogram,
}

impl PauseHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        PauseHistogram {
            inner: LogHistogram::new(),
        }
    }

    /// Records one pause.
    pub fn record(&mut self, d: Duration) {
        self.inner.record_duration(d);
    }

    /// Records one pause expressed in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.inner.record(ns);
    }

    /// Number of recorded pauses.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Largest recorded pause in nanoseconds.
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.inner.max()
    }

    /// Mean pause in nanoseconds (0 if empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.inner.mean()
    }

    /// Approximate percentile (0.0–1.0) in nanoseconds, resolved to the upper
    /// edge of the containing power-of-two bucket and clamped to the observed
    /// maximum.
    #[must_use]
    pub fn percentile_ns(&self, p: f64) -> u64 {
        self.inner.percentile(p)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &PauseHistogram) {
        self.inner.merge(&other.inner);
    }

    /// The underlying shared histogram (for metrics snapshots).
    #[must_use]
    pub fn as_log(&self) -> &LogHistogram {
        &self.inner
    }
}

impl fmt::Display for PauseHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={}ns p50={}ns p99={}ns max={}ns",
            self.count(),
            self.mean_ns(),
            self.percentile_ns(0.50),
            self.percentile_ns(0.99),
            self.max_ns()
        )
    }
}

/// Allocation and collection accounting for one manager instance.
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of explicit frees (manual managers).
    pub frees: u64,
    /// Total bytes handed out over the lifetime of the heap.
    pub bytes_allocated: u64,
    /// Number of collection cycles run.
    pub collections: u64,
    /// Objects reclaimed by collection.
    pub collected_objects: u64,
    /// Bytes copied by moving collectors.
    pub bytes_copied: u64,
    /// Write-barrier triggers (generational).
    pub barrier_hits: u64,
    /// Pause histogram for collection pauses only.
    pub gc_pauses: PauseHistogram,
}

impl MemStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed collection pause: into this instance's histogram
    /// and, when observability is enabled, into the global `mem.gc_pause_ns`
    /// registry histogram so every manager's pauses aggregate in one place.
    pub fn record_gc_pause(&mut self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.gc_pauses.record_ns(ns);
        sysobs::obs_hist!("mem.gc_pause_ns", ns);
        sysobs::obs_count!("mem.collections", 1);
    }

    /// Renders these stats as a [`sysobs::Snapshot`], keyed under
    /// `prefix` (e.g. `mem.semispace`) so several managers can merge into
    /// one unified snapshot without colliding.
    #[must_use]
    pub fn to_snapshot(&self, prefix: &str) -> sysobs::Snapshot {
        let mut snap = sysobs::Snapshot::default();
        snap.set_counter(format!("{prefix}.allocs"), self.allocs);
        snap.set_counter(format!("{prefix}.frees"), self.frees);
        snap.set_counter(format!("{prefix}.bytes_allocated"), self.bytes_allocated);
        snap.set_counter(format!("{prefix}.collections"), self.collections);
        snap.set_counter(
            format!("{prefix}.collected_objects"),
            self.collected_objects,
        );
        snap.set_counter(format!("{prefix}.bytes_copied"), self.bytes_copied);
        snap.set_counter(format!("{prefix}.barrier_hits"), self.barrier_hits);
        snap.set_hist(
            format!("{prefix}.gc_pause_ns"),
            self.gc_pauses.as_log().clone(),
        );
        snap
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocs={} frees={} bytes={} collections={} reclaimed={} pauses[{}]",
            self.allocs,
            self.frees,
            self.bytes_allocated,
            self.collections,
            self.collected_objects,
            self.gc_pauses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = PauseHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.percentile_ns(0.99), 0);
        assert_eq!(h.percentile_ns(0.0), 0);
        assert_eq!(h.percentile_ns(1.0), 0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn single_sample_dominates_all_percentiles() {
        let mut h = PauseHistogram::new();
        h.record_ns(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean_ns(), 1000);
        // Every percentile of a one-sample distribution is that sample.
        assert_eq!(h.percentile_ns(0.0), 1000);
        assert_eq!(h.percentile_ns(0.5), 1000);
        assert_eq!(h.percentile_ns(1.0), 1000);
        assert_eq!(h.max_ns(), 1000);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = PauseHistogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 17);
        }
        let p50 = h.percentile_ns(0.50);
        let p90 = h.percentile_ns(0.90);
        let p99 = h.percentile_ns(0.99);
        assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        assert!(p99 <= h.max_ns().next_power_of_two());
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let mut a = PauseHistogram::new();
        let mut b = PauseHistogram::new();
        a.record_ns(10);
        b.record_ns(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 1_000_000);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = PauseHistogram::new();
        a.record_ns(500);
        let before = a.clone();
        a.merge(&PauseHistogram::new());
        assert_eq!(a, before, "merging an empty histogram changes nothing");
        let mut empty = PauseHistogram::new();
        empty.merge(&before);
        assert_eq!(empty, before, "merging into empty copies the source");
    }

    #[test]
    fn zero_pause_is_recorded() {
        let mut h = PauseHistogram::new();
        h.record_ns(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_ns(), 0);
        // Non-empty data clamps percentiles to max(observed max, 1), so an
        // all-zero distribution answers at most 1 ns.
        assert!(h.percentile_ns(0.5) <= 1, "p50 of all-zero pauses is ~0");
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn saturating_pause_lands_at_u64_max_without_wrapping() {
        let mut h = PauseHistogram::new();
        h.record(Duration::from_secs(u64::MAX / 1_000_000_000 + 1)); // > u64::MAX ns, saturates
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), u64::MAX);
        // total_ns saturates rather than wrapping, so the mean stays huge
        // instead of collapsing toward zero.
        assert!(h.mean_ns() >= u64::MAX / 2);
        assert_eq!(h.percentile_ns(0.99), u64::MAX);
    }

    #[test]
    fn display_contains_key_fields() {
        let mut h = PauseHistogram::new();
        h.record(Duration::from_nanos(64));
        let s = h.to_string();
        assert!(s.contains("n=1"));
        assert!(s.contains("max=64ns"));
    }

    #[test]
    fn mem_stats_snapshot_carries_counters_and_pauses() {
        let mut stats = MemStats::new();
        stats.allocs = 7;
        stats.collections = 2;
        stats.gc_pauses.record_ns(4096);
        let snap = stats.to_snapshot("mem.test");
        assert_eq!(snap.counter("mem.test.allocs"), 7);
        assert_eq!(snap.counter("mem.test.collections"), 2);
        assert_eq!(
            snap.hist("mem.test.gc_pause_ns")
                .map(sysobs::LogHistogram::count),
            Some(1)
        );
    }
}
