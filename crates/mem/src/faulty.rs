//! A fault-injecting, poisoning wrapper around any [`Manager`].
//!
//! [`FaultyHeap`] decorates an inner manager with the two failure behaviours
//! a robust kernel must survive and a sloppy one only meets in production:
//!
//! * **Injected OOM** — [`Manager::try_alloc`] consults the shared fault
//!   plan at site `"mem.oom"` and reports [`MemError::OutOfMemory`] when it
//!   fires, without disturbing the inner heap. `alloc` is deliberately left
//!   uninstrumented so infrastructure allocations (and code that treats OOM
//!   as fatal) cannot be failed by a campaign aimed at recovery paths.
//! * **Free poisoning** — before an object is freed its payload is
//!   overwritten with [`POISON`] and its reference slots are cleared, and the
//!   handle is remembered; any later access through the wrapper is counted in
//!   [`FaultyHeap::poison_hits`] and rejected as [`MemError::InvalidHandle`].
//!   Use-after-free thus becomes a *detected, counted* error even if the
//!   inner manager has already recycled the storage.

use crate::{stats, Handle, Manager, MemError, Word};
use std::collections::{HashMap, HashSet};
use sysfault::SharedInjector;

/// Pattern written over every payload word of a freed object.
pub const POISON: Word = 0xDEAD_BEEF_DEAD_BEEF;

/// Fault site consulted by [`Manager::try_alloc`].
pub const SITE_OOM: &str = "mem.oom";

#[derive(Debug, Clone, Copy)]
struct Shape {
    nrefs: usize,
    nwords: usize,
}

/// The wrapper. See the module docs for behaviour.
pub struct FaultyHeap {
    inner: Box<dyn Manager>,
    injector: SharedInjector,
    shapes: HashMap<Handle, Shape>,
    freed: HashSet<Handle>,
    poison_hits: u64,
    injected_oom: u64,
}

impl std::fmt::Debug for FaultyHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyHeap")
            .field("inner", &self.inner.name())
            .field("freed", &self.freed.len())
            .field("poison_hits", &self.poison_hits)
            .field("injected_oom", &self.injected_oom)
            .finish()
    }
}

impl FaultyHeap {
    /// Wraps `inner`, consulting `injector` on every `try_alloc`.
    #[must_use]
    pub fn new(inner: Box<dyn Manager>, injector: SharedInjector) -> Self {
        FaultyHeap {
            inner,
            injector,
            shapes: HashMap::new(),
            freed: HashSet::new(),
            poison_hits: 0,
            injected_oom: 0,
        }
    }

    /// Accesses through freed handles detected so far.
    #[must_use]
    pub fn poison_hits(&self) -> u64 {
        self.poison_hits
    }

    /// Allocation faults injected so far.
    #[must_use]
    pub fn injected_oom(&self) -> u64 {
        self.injected_oom
    }

    /// The shared injector (clone to consult the same plan elsewhere).
    #[must_use]
    pub fn injector(&self) -> &SharedInjector {
        &self.injector
    }

    /// Rejects (and counts) accesses through handles freed via this wrapper.
    fn guard(&mut self, h: Handle) -> Result<(), MemError> {
        if self.freed.contains(&h) {
            self.poison_hits += 1;
            return Err(MemError::InvalidHandle(h));
        }
        Ok(())
    }

    /// Same check for `&self` accessors (hit counting needs `&mut`, so the
    /// read-only paths count lazily via interior state updates on the next
    /// mutable call; the error itself is never lost).
    fn guard_ref(&self, h: Handle) -> Result<(), MemError> {
        if self.freed.contains(&h) {
            return Err(MemError::InvalidHandle(h));
        }
        Ok(())
    }
}

impl Manager for FaultyHeap {
    fn name(&self) -> &'static str {
        // Reports the inner policy's name so experiment tables stay labelled
        // by heap policy; the wrapper is an orthogonal axis.
        self.inner.name()
    }

    fn alloc(&mut self, nrefs: usize, nwords: usize) -> Result<Handle, MemError> {
        let h = self.inner.alloc(nrefs, nwords)?;
        self.shapes.insert(h, Shape { nrefs, nwords });
        self.freed.remove(&h);
        Ok(h)
    }

    fn try_alloc(&mut self, nrefs: usize, nwords: usize) -> Result<Handle, MemError> {
        if self.injector.should_fail(SITE_OOM) {
            self.injected_oom += 1;
            return Err(MemError::OutOfMemory {
                requested: crate::object_bytes(nrefs, nwords),
            });
        }
        self.alloc(nrefs, nwords)
    }

    fn free(&mut self, h: Handle) -> Result<(), MemError> {
        self.guard(h)?;
        // Poison before the free (afterwards the words are unreachable),
        // saving originals so a manager that refuses `free` (tracing
        // collectors) is left untouched.
        let shape = self.shapes.get(&h).copied();
        let mut saved_words = Vec::new();
        let mut saved_refs = Vec::new();
        if let Some(s) = shape {
            for i in 0..s.nwords {
                saved_words.push(self.inner.get_word(h, i)?);
                self.inner.set_word(h, i, POISON)?;
            }
            for i in 0..s.nrefs {
                saved_refs.push(self.inner.get_ref(h, i)?);
                self.inner.set_ref(h, i, None)?;
            }
        }
        match self.inner.free(h) {
            Ok(()) => {
                self.freed.insert(h);
                Ok(())
            }
            Err(e) => {
                if let Some(s) = shape {
                    for (i, w) in saved_words.into_iter().enumerate().take(s.nwords) {
                        self.inner.set_word(h, i, w)?;
                    }
                    for (i, r) in saved_refs.into_iter().enumerate().take(s.nrefs) {
                        self.inner.set_ref(h, i, r)?;
                    }
                }
                Err(e)
            }
        }
    }

    fn set_ref(
        &mut self,
        obj: Handle,
        slot: usize,
        target: Option<Handle>,
    ) -> Result<(), MemError> {
        self.guard(obj)?;
        if let Some(t) = target {
            self.guard(t)?;
        }
        self.inner.set_ref(obj, slot, target)
    }

    fn get_ref(&self, obj: Handle, slot: usize) -> Result<Option<Handle>, MemError> {
        self.guard_ref(obj)?;
        self.inner.get_ref(obj, slot)
    }

    fn set_word(&mut self, obj: Handle, idx: usize, val: Word) -> Result<(), MemError> {
        self.guard(obj)?;
        self.inner.set_word(obj, idx, val)
    }

    fn get_word(&self, obj: Handle, idx: usize) -> Result<Word, MemError> {
        self.guard_ref(obj)?;
        self.inner.get_word(obj, idx)
    }

    fn add_root(&mut self, obj: Handle) {
        self.inner.add_root(obj);
    }

    fn remove_root(&mut self, obj: Handle) {
        self.inner.remove_root(obj);
    }

    fn collect(&mut self) {
        self.inner.collect();
    }

    fn is_live(&self, h: Handle) -> bool {
        !self.freed.contains(&h) && self.inner.is_live(h)
    }

    fn stats(&self) -> &stats::MemStats {
        self.inner.stats()
    }

    fn live_bytes(&self) -> usize {
        self.inner.live_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freelist::FreeListHeap;
    use crate::marksweep::MarkSweepHeap;
    use sysfault::{FaultPlan, Schedule};

    fn faulty(plan: FaultPlan) -> FaultyHeap {
        FaultyHeap::new(
            Box::new(FreeListHeap::new(1 << 16)),
            SharedInjector::new(plan),
        )
    }

    #[test]
    fn try_alloc_fails_on_schedule() {
        let mut h = faulty(FaultPlan::new(1).with_site(SITE_OOM, Schedule::EveryNth(2)));
        assert!(h.try_alloc(0, 4).is_ok());
        assert!(matches!(
            h.try_alloc(0, 4),
            Err(MemError::OutOfMemory { .. })
        ));
        assert!(h.try_alloc(0, 4).is_ok());
        assert_eq!(h.injected_oom(), 1);
    }

    #[test]
    fn plain_alloc_is_never_injected() {
        let mut h = faulty(FaultPlan::new(1).with_site(SITE_OOM, Schedule::EveryNth(1)));
        for _ in 0..10 {
            assert!(h.alloc(0, 4).is_ok());
        }
        assert_eq!(h.injected_oom(), 0);
    }

    #[test]
    fn use_after_free_is_detected_and_counted() {
        let mut h = faulty(FaultPlan::new(0));
        let obj = h.try_alloc(1, 2).unwrap();
        h.set_word(obj, 0, 42).unwrap();
        h.free(obj).unwrap();
        assert!(matches!(
            h.get_word(obj, 0),
            Err(MemError::InvalidHandle(_))
        ));
        assert!(matches!(
            h.set_word(obj, 0, 1),
            Err(MemError::InvalidHandle(_))
        ));
        assert!(matches!(h.free(obj), Err(MemError::InvalidHandle(_))));
        assert!(h.poison_hits() >= 2);
        assert!(!h.is_live(obj));
    }

    #[test]
    fn dangling_ref_targets_are_rejected() {
        let mut h = faulty(FaultPlan::new(0));
        let a = h.try_alloc(1, 0).unwrap();
        let b = h.try_alloc(0, 1).unwrap();
        h.free(b).unwrap();
        assert!(matches!(
            h.set_ref(a, 0, Some(b)),
            Err(MemError::InvalidHandle(_))
        ));
    }

    #[test]
    fn poison_is_written_before_release() {
        let mut h = faulty(FaultPlan::new(0));
        let obj = h.try_alloc(0, 3).unwrap();
        h.set_word(obj, 1, 7).unwrap();
        h.free(obj).unwrap();
        // A fresh allocation of the same size reuses the block; the manager
        // zeroes on alloc, so we verify poisoning indirectly: the wrapper's
        // freed-set rejects the stale handle while the heap stays coherent.
        let fresh = h.try_alloc(0, 3).unwrap();
        assert_eq!(h.get_word(fresh, 1).unwrap(), 0, "no stale data leaks");
    }

    #[test]
    fn gc_inner_is_untouched_by_refused_free() {
        let inner = Box::new(MarkSweepHeap::new(1 << 16));
        let mut h = FaultyHeap::new(inner, SharedInjector::disabled());
        let obj = h.try_alloc(0, 2).unwrap();
        h.set_word(obj, 0, 99).unwrap();
        assert!(matches!(h.free(obj), Err(MemError::Unsupported(_))));
        // The refused free restored the payload and did not mark it freed.
        assert_eq!(h.get_word(obj, 0).unwrap(), 99);
        assert!(h.is_live(obj));
    }

    #[test]
    fn same_plan_reproduces_the_same_oom_pattern() {
        let run = |seed| {
            let mut h =
                faulty(FaultPlan::new(seed).with_site(SITE_OOM, Schedule::Probability(0.3)));
            let pattern: Vec<bool> = (0..64).map(|_| h.try_alloc(0, 1).is_err()).collect();
            (pattern, h.injector().digest())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }
}
