//! Region (arena) allocation: bump allocation into lexically scoped regions,
//! freed wholesale when the region closes.
//!
//! This is the discipline the paper calls "idiomatic manual storage
//! management" (Challenge 2): allocation is a pointer bump, deallocation is
//! O(1) per region, and the scope structure statically bounds object
//! lifetimes — the model later adopted by Cyclone regions and Rust lifetimes.

use crate::stats::MemStats;
use crate::{Handle, Manager, MemError, WORD_BYTES};

/// Identifier of an open region. Regions form a stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(u32);

#[derive(Debug)]
struct Region {
    data: Vec<u64>,
    live_bytes: usize,
    closed: bool,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    region: u32,
    off: usize,
    nrefs: u32,
    nwords: u32,
}

/// A stack-of-regions heap.
///
/// Objects are bump-allocated into the innermost open region by default (or a
/// named region via [`RegionHeap::alloc_in`]). Closing a region frees every
/// object allocated in it; handles into a closed region become invalid, and
/// all accessors report [`MemError::InvalidHandle`] — the dynamic analogue of
/// the static scoping guarantee a region type system would give.
///
/// ```
/// use sysmem::{Manager, ManagerExt, arena::RegionHeap};
///
/// let mut h = RegionHeap::new(1 << 20);
/// let outer = h.open_region();
/// let a = h.alloc(0, 1).unwrap();
/// let inner = h.open_region();
/// let b = h.alloc(0, 1).unwrap();
/// h.close_region(inner);
/// assert!(h.is_live(a));
/// assert!(!h.is_live(b)); // b died with its region
/// h.close_region(outer);
/// ```
#[derive(Debug)]
pub struct RegionHeap {
    regions: Vec<Region>,
    stack: Vec<u32>,
    entries: Vec<Entry>,
    stats: MemStats,
    capacity_words: usize,
    used_words: usize,
}

impl RegionHeap {
    /// Creates a heap with the given total capacity in bytes. A base region
    /// (never closeable) is opened automatically.
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        let mut heap = RegionHeap {
            regions: Vec::new(),
            stack: Vec::new(),
            entries: Vec::new(),
            stats: MemStats::new(),
            capacity_words: capacity_bytes / WORD_BYTES,
            used_words: 0,
        };
        heap.open_region();
        heap
    }

    /// Opens a new region and makes it the current allocation target.
    pub fn open_region(&mut self) -> RegionId {
        let id = u32::try_from(self.regions.len()).expect("region count fits u32");
        self.regions.push(Region {
            data: Vec::new(),
            live_bytes: 0,
            closed: false,
        });
        self.stack.push(id);
        RegionId(id)
    }

    /// Closes a region, freeing all its objects at once.
    ///
    /// Regions must close in LIFO order; closing a region also closes any
    /// regions opened after it (like unwinding nested scopes).
    ///
    /// # Panics
    ///
    /// Panics if the region is already closed or is the base region.
    pub fn close_region(&mut self, id: RegionId) {
        assert!(id.0 != 0, "the base region cannot be closed");
        assert!(!self.regions[id.0 as usize].closed, "region closed twice");
        while let Some(&top) = self.stack.last() {
            let r = &mut self.regions[top as usize];
            r.closed = true;
            self.used_words -= r.data.len();
            self.stats.collected_objects += 0; // regions free in bulk; no per-object count
            r.data = Vec::new();
            r.live_bytes = 0;
            self.stack.pop();
            if top == id.0 {
                return;
            }
        }
        unreachable!("region {id:?} was not on the stack");
    }

    /// The innermost open region.
    #[must_use]
    pub fn current_region(&self) -> RegionId {
        RegionId(*self.stack.last().expect("base region always open"))
    }

    /// Number of currently open regions (including the base region).
    #[must_use]
    pub fn open_regions(&self) -> usize {
        self.stack.len()
    }

    /// Allocates into a specific open region rather than the innermost one.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unsupported`] if the region is closed, or
    /// [`MemError::OutOfMemory`] if capacity is exhausted.
    pub fn alloc_in(
        &mut self,
        region: RegionId,
        nrefs: usize,
        nwords: usize,
    ) -> Result<Handle, MemError> {
        let payload = nrefs + nwords;
        if self.used_words + payload > self.capacity_words {
            return Err(MemError::OutOfMemory {
                requested: payload * WORD_BYTES,
            });
        }
        let r = self
            .regions
            .get_mut(region.0 as usize)
            .filter(|r| !r.closed)
            .ok_or(MemError::Unsupported("allocation into closed region"))?;
        let off = r.data.len();
        r.data.resize(off + payload, 0);
        r.live_bytes += payload * WORD_BYTES;
        self.used_words += payload;
        let h = Handle(u32::try_from(self.entries.len()).expect("handle space exhausted"));
        self.entries.push(Entry {
            region: region.0,
            off,
            nrefs: u32::try_from(nrefs).expect("nrefs fits"),
            nwords: u32::try_from(nwords).expect("nwords fits"),
        });
        self.stats.allocs += 1;
        self.stats.bytes_allocated += (payload * WORD_BYTES) as u64;
        Ok(h)
    }

    fn entry(&self, h: Handle) -> Result<Entry, MemError> {
        let e = self
            .entries
            .get(h.0 as usize)
            .copied()
            .ok_or(MemError::InvalidHandle(h))?;
        if self.regions[e.region as usize].closed {
            return Err(MemError::InvalidHandle(h));
        }
        Ok(e)
    }
}

impl Manager for RegionHeap {
    fn name(&self) -> &'static str {
        "region"
    }

    fn alloc(&mut self, nrefs: usize, nwords: usize) -> Result<Handle, MemError> {
        let current = self.current_region();
        self.alloc_in(current, nrefs, nwords)
    }

    fn free(&mut self, _h: Handle) -> Result<(), MemError> {
        Err(MemError::Unsupported(
            "regions free objects in bulk via close_region",
        ))
    }

    fn set_ref(
        &mut self,
        obj: Handle,
        slot: usize,
        target: Option<Handle>,
    ) -> Result<(), MemError> {
        let e = self.entry(obj)?;
        if slot >= e.nrefs as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: slot,
                len: e.nrefs as usize,
            });
        }
        if let Some(t) = target {
            let te = self.entry(t)?;
            // Region discipline: an object may only point *inward-to-outward*
            // (toward longer-lived regions); this is the aliasing rule a
            // region type system enforces statically.
            if te.region > e.region {
                return Err(MemError::Unsupported(
                    "region discipline violation: reference into shorter-lived region",
                ));
            }
        }
        self.regions[e.region as usize].data[e.off + slot] =
            target.map_or(0, |t| u64::from(t.0) + 1);
        Ok(())
    }

    fn get_ref(&self, obj: Handle, slot: usize) -> Result<Option<Handle>, MemError> {
        let e = self.entry(obj)?;
        if slot >= e.nrefs as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: slot,
                len: e.nrefs as usize,
            });
        }
        let raw = self.regions[e.region as usize].data[e.off + slot];
        Ok(if raw == 0 {
            None
        } else {
            Some(Handle(u32::try_from(raw - 1).expect("fits")))
        })
    }

    fn set_word(&mut self, obj: Handle, idx: usize, val: u64) -> Result<(), MemError> {
        let e = self.entry(obj)?;
        if idx >= e.nwords as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: idx,
                len: e.nwords as usize,
            });
        }
        self.regions[e.region as usize].data[e.off + e.nrefs as usize + idx] = val;
        Ok(())
    }

    fn get_word(&self, obj: Handle, idx: usize) -> Result<u64, MemError> {
        let e = self.entry(obj)?;
        if idx >= e.nwords as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: idx,
                len: e.nwords as usize,
            });
        }
        Ok(self.regions[e.region as usize].data[e.off + e.nrefs as usize + idx])
    }

    fn add_root(&mut self, _obj: Handle) {}

    fn remove_root(&mut self, _obj: Handle) {}

    fn collect(&mut self) {}

    fn is_live(&self, h: Handle) -> bool {
        self.entry(h).is_ok()
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn live_bytes(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| !r.closed)
            .map(|r| r.live_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManagerExt;

    #[test]
    fn base_region_allocation_works() {
        let mut h = RegionHeap::new(4096);
        let o = h.alloc(1, 2).unwrap();
        h.put(o, 1, 5);
        assert_eq!(h.get(o, 1), 5);
        assert_eq!(h.live_bytes(), 24);
    }

    #[test]
    fn closing_region_invalidates_its_objects() {
        let mut h = RegionHeap::new(4096);
        let r = h.open_region();
        let o = h.alloc(0, 1).unwrap();
        h.close_region(r);
        assert_eq!(h.get_word(o, 0), Err(MemError::InvalidHandle(o)));
    }

    #[test]
    fn close_unwinds_nested_regions() {
        let mut h = RegionHeap::new(4096);
        let r1 = h.open_region();
        let _r2 = h.open_region();
        let _r3 = h.open_region();
        assert_eq!(h.open_regions(), 4);
        h.close_region(r1);
        assert_eq!(h.open_regions(), 1);
    }

    #[test]
    fn inward_references_are_allowed_outward_rejected() {
        let mut h = RegionHeap::new(4096);
        let outer_obj = h.alloc(1, 0).unwrap();
        let r = h.open_region();
        let inner_obj = h.alloc(1, 0).unwrap();
        // inner -> outer is fine (outer lives longer).
        h.link(inner_obj, 0, Some(outer_obj));
        // outer -> inner would dangle when r closes: rejected.
        assert!(matches!(
            h.set_ref(outer_obj, 0, Some(inner_obj)),
            Err(MemError::Unsupported(_))
        ));
        h.close_region(r);
        assert!(h.is_live(outer_obj));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut h = RegionHeap::new(64); // 8 words
        assert!(h.alloc(0, 6).is_ok());
        assert!(matches!(h.alloc(0, 6), Err(MemError::OutOfMemory { .. })));
    }

    #[test]
    fn closing_region_releases_capacity() {
        let mut h = RegionHeap::new(64);
        let r = h.open_region();
        h.alloc(0, 6).unwrap();
        h.close_region(r);
        assert!(h.alloc(0, 6).is_ok());
    }

    #[test]
    fn explicit_free_is_unsupported() {
        let mut h = RegionHeap::new(4096);
        let o = h.alloc(0, 1).unwrap();
        assert!(matches!(h.free(o), Err(MemError::Unsupported(_))));
    }

    #[test]
    fn alloc_in_targets_named_region() {
        let mut h = RegionHeap::new(4096);
        let base = h.current_region();
        let r = h.open_region();
        let o = h.alloc_in(base, 0, 1).unwrap();
        h.close_region(r);
        assert!(h.is_live(o), "object in outer region survives inner close");
    }

    #[test]
    #[should_panic(expected = "base region cannot be closed")]
    fn closing_base_region_panics() {
        let mut h = RegionHeap::new(4096);
        let base = h.current_region();
        h.close_region(base);
    }

    #[test]
    #[should_panic(expected = "region closed twice")]
    fn double_close_panics() {
        let mut h = RegionHeap::new(4096);
        let r = h.open_region();
        h.close_region(r);
        h.close_region(r);
    }
}
