//! Stop-the-world mark-sweep collection over the shared [`WordPool`]
//! block allocator.
//!
//! Allocation takes the free-list fast path; when the pool cannot satisfy a
//! request (or an allocation-volume threshold is crossed) the world stops,
//! live objects are marked from the root set, and unmarked objects are swept
//! back onto the free lists. Pause times are recorded per collection so
//! experiment E1 can report the tail the paper worries about.

use crate::freelist::WordPool;
use crate::stats::MemStats;
use crate::{Handle, Manager, MemError, WORD_BYTES};
use std::time::Instant;

#[derive(Debug, Clone, Copy)]
struct Entry {
    off: usize,
    nrefs: u32,
    nwords: u32,
    live: bool,
    marked: bool,
}

/// A tracing mark-sweep collector.
///
/// ```
/// use sysmem::{Manager, ManagerExt, marksweep::MarkSweepHeap};
///
/// let mut h = MarkSweepHeap::new(1 << 16);
/// let root = h.alloc(1, 0).unwrap();
/// h.add_root(root);
/// let child = h.alloc(0, 1).unwrap();
/// h.link(root, 0, Some(child));
/// h.collect();
/// assert!(h.is_live(child)); // reachable through root
/// h.link(root, 0, None);
/// h.collect();
/// assert!(!h.is_live(child)); // now garbage
/// ```
#[derive(Debug)]
pub struct MarkSweepHeap {
    pool: WordPool,
    entries: Vec<Entry>,
    live_list: Vec<Handle>,
    roots: Vec<Handle>,
    stats: MemStats,
    live_bytes: usize,
    bytes_since_gc: usize,
    gc_threshold: usize,
}

impl MarkSweepHeap {
    /// Creates a heap with the given capacity in bytes. A collection is
    /// triggered whenever allocation volume since the last collection exceeds
    /// half the capacity, or on allocation failure.
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        MarkSweepHeap {
            pool: WordPool::new((capacity_bytes / WORD_BYTES).max(4)),
            entries: Vec::new(),
            live_list: Vec::new(),
            roots: Vec::new(),
            stats: MemStats::new(),
            live_bytes: 0,
            bytes_since_gc: 0,
            gc_threshold: capacity_bytes / 2,
        }
    }

    fn entry(&self, h: Handle) -> Result<&Entry, MemError> {
        match self.entries.get(h.0 as usize) {
            Some(e) if e.live => Ok(e),
            _ => Err(MemError::InvalidHandle(h)),
        }
    }

    fn mark_from_roots(&mut self) {
        let mut worklist: Vec<Handle> = self.roots.clone();
        while let Some(h) = worklist.pop() {
            let e = &mut self.entries[h.0 as usize];
            if !e.live || e.marked {
                continue;
            }
            e.marked = true;
            let (off, nrefs) = (e.off, e.nrefs as usize);
            for slot in 0..nrefs {
                let raw = self.pool.read(off + slot);
                if raw != 0 {
                    worklist.push(Handle(u32::try_from(raw - 1).expect("handle fits")));
                }
            }
        }
    }

    fn sweep(&mut self) {
        let mut survivors = Vec::with_capacity(self.live_list.len());
        for &h in &self.live_list {
            let e = &mut self.entries[h.0 as usize];
            if e.marked {
                e.marked = false;
                survivors.push(h);
            } else {
                e.live = false;
                let bytes = (e.nrefs + e.nwords) as usize * WORD_BYTES;
                self.live_bytes -= bytes;
                self.stats.collected_objects += 1;
                let off = e.off;
                self.pool.free(off);
            }
        }
        self.live_list = survivors;
    }
}

impl Manager for MarkSweepHeap {
    fn name(&self) -> &'static str {
        "mark-sweep"
    }

    fn alloc(&mut self, nrefs: usize, nwords: usize) -> Result<Handle, MemError> {
        let payload = nrefs + nwords;
        if self.bytes_since_gc > self.gc_threshold {
            self.collect();
        }
        let off = match self.pool.alloc(payload) {
            Some(off) => off,
            None => {
                self.collect();
                self.pool.alloc(payload).ok_or(MemError::OutOfMemory {
                    requested: payload * WORD_BYTES,
                })?
            }
        };
        // Zero the whole payload: recycled blocks must not leak stale data
        // (the same hygiene rule a kernel allocator follows).
        for i in 0..payload {
            self.pool.write(off + i, 0);
        }
        let h = Handle(u32::try_from(self.entries.len()).expect("handle space exhausted"));
        self.entries.push(Entry {
            off,
            nrefs: u32::try_from(nrefs).expect("fits"),
            nwords: u32::try_from(nwords).expect("fits"),
            live: true,
            marked: false,
        });
        self.live_list.push(h);
        self.stats.allocs += 1;
        self.stats.bytes_allocated += (payload * WORD_BYTES) as u64;
        self.live_bytes += payload * WORD_BYTES;
        self.bytes_since_gc += payload * WORD_BYTES;
        Ok(h)
    }

    fn free(&mut self, _h: Handle) -> Result<(), MemError> {
        Err(MemError::Unsupported("mark-sweep reclaims automatically"))
    }

    fn set_ref(
        &mut self,
        obj: Handle,
        slot: usize,
        target: Option<Handle>,
    ) -> Result<(), MemError> {
        let e = *self.entry(obj)?;
        if slot >= e.nrefs as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: slot,
                len: e.nrefs as usize,
            });
        }
        if let Some(t) = target {
            self.entry(t)?;
        }
        self.pool
            .write(e.off + slot, target.map_or(0, |t| u64::from(t.0) + 1));
        Ok(())
    }

    fn get_ref(&self, obj: Handle, slot: usize) -> Result<Option<Handle>, MemError> {
        let e = self.entry(obj)?;
        if slot >= e.nrefs as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: slot,
                len: e.nrefs as usize,
            });
        }
        let raw = self.pool.read(e.off + slot);
        Ok(if raw == 0 {
            None
        } else {
            Some(Handle(u32::try_from(raw - 1).expect("fits")))
        })
    }

    fn set_word(&mut self, obj: Handle, idx: usize, val: u64) -> Result<(), MemError> {
        let e = *self.entry(obj)?;
        if idx >= e.nwords as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: idx,
                len: e.nwords as usize,
            });
        }
        self.pool.write(e.off + e.nrefs as usize + idx, val);
        Ok(())
    }

    fn get_word(&self, obj: Handle, idx: usize) -> Result<u64, MemError> {
        let e = self.entry(obj)?;
        if idx >= e.nwords as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: idx,
                len: e.nwords as usize,
            });
        }
        Ok(self.pool.read(e.off + e.nrefs as usize + idx))
    }

    fn add_root(&mut self, obj: Handle) {
        self.roots.push(obj);
    }

    fn remove_root(&mut self, obj: Handle) {
        if let Some(pos) = self.roots.iter().rposition(|&r| r == obj) {
            self.roots.swap_remove(pos);
        }
    }

    fn collect(&mut self) {
        sysobs::obs_span!("mem.collect.marksweep");
        let t0 = Instant::now();
        self.mark_from_roots();
        self.sweep();
        self.bytes_since_gc = 0;
        self.stats.collections += 1;
        self.stats.record_gc_pause(t0.elapsed());
    }

    fn is_live(&self, h: Handle) -> bool {
        self.entry(h).is_ok()
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn live_bytes(&self) -> usize {
        self.live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManagerExt;

    #[test]
    fn unrooted_objects_are_collected() {
        let mut h = MarkSweepHeap::new(4096);
        let o = h.alloc(0, 1).unwrap();
        h.collect();
        assert!(!h.is_live(o));
        assert_eq!(h.stats().collected_objects, 1);
    }

    #[test]
    fn rooted_objects_survive() {
        let mut h = MarkSweepHeap::new(4096);
        let o = h.alloc(0, 1).unwrap();
        h.add_root(o);
        h.put(o, 0, 99);
        h.collect();
        assert_eq!(h.get(o, 0), 99);
    }

    #[test]
    fn transitively_reachable_objects_survive() {
        let mut h = MarkSweepHeap::new(4096);
        let a = h.alloc(1, 0).unwrap();
        let b = h.alloc(1, 0).unwrap();
        let c = h.alloc(0, 1).unwrap();
        h.add_root(a);
        h.link(a, 0, Some(b));
        h.link(b, 0, Some(c));
        h.put(c, 0, 7);
        h.collect();
        assert_eq!(h.get(c, 0), 7);
    }

    #[test]
    fn cycles_are_collected_when_unrooted() {
        let mut h = MarkSweepHeap::new(4096);
        let a = h.alloc(1, 0).unwrap();
        let b = h.alloc(1, 0).unwrap();
        h.link(a, 0, Some(b));
        h.link(b, 0, Some(a));
        h.collect();
        assert!(!h.is_live(a));
        assert!(!h.is_live(b));
    }

    #[test]
    fn gc_runs_on_exhaustion_and_recycles_space() {
        let mut h = MarkSweepHeap::new(1024); // 128 words
                                              // Allocate garbage until well past capacity: must succeed via GC.
        for i in 0..100 {
            let o = h.alloc(0, 8).unwrap();
            h.put(o, 0, i);
        }
        assert!(h.stats().collections > 0);
    }

    #[test]
    fn remove_root_makes_object_collectable() {
        let mut h = MarkSweepHeap::new(4096);
        let o = h.alloc(0, 0).unwrap();
        h.add_root(o);
        h.collect();
        assert!(h.is_live(o));
        h.remove_root(o);
        h.collect();
        assert!(!h.is_live(o));
    }

    #[test]
    fn duplicate_roots_require_matching_removals() {
        let mut h = MarkSweepHeap::new(4096);
        let o = h.alloc(0, 0).unwrap();
        h.add_root(o);
        h.add_root(o);
        h.remove_root(o);
        h.collect();
        assert!(h.is_live(o), "one root registration remains");
    }

    #[test]
    fn oom_when_live_data_exceeds_capacity() {
        let mut h = MarkSweepHeap::new(512); // 64 words
        let mut prev: Option<Handle> = None;
        let mut oom = false;
        for _ in 0..20 {
            match h.alloc(1, 4) {
                Ok(o) => {
                    h.add_root(o);
                    h.set_ref(o, 0, prev).unwrap();
                    prev = Some(o);
                }
                Err(MemError::OutOfMemory { .. }) => {
                    oom = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(oom, "rooted data beyond capacity must OOM, not corrupt");
    }

    #[test]
    fn pause_histogram_records_collections() {
        let mut h = MarkSweepHeap::new(4096);
        for _ in 0..10 {
            h.alloc(0, 4).unwrap();
        }
        h.collect();
        assert_eq!(h.stats().gc_pauses.count(), 1);
    }
}
