//! Malloc-style allocation: a word-addressed pool with segregated free lists
//! and boundary-tag coalescing, plus the [`FreeListHeap`] manager built on it.
//!
//! This is the "C baseline" of experiment E1: explicit `alloc`/`free`, no
//! tracing, no moving. The pool itself ([`WordPool`]) is reused by the
//! mark-sweep and generational collectors as their underlying block
//! allocator, so all non-moving managers share identical allocation costs.

use crate::stats::MemStats;
use crate::{Handle, Manager, MemError, WORD_BYTES};

const NONE: u64 = u64::MAX;
const USED_BIT: u64 = 1;
/// Minimum block size in words: header, next, prev, footer.
const MIN_BLOCK: usize = 4;
const NUM_CLASSES: usize = 32;

/// A word-addressed memory pool with first-fit segregated free lists and
/// immediate boundary-tag coalescing.
///
/// Block layout (`size` counts words and includes header and footer):
///
/// ```text
/// [header: size<<1 | used] [payload or (next,prev) links ...] [footer: same]
/// ```
#[derive(Debug)]
pub struct WordPool {
    data: Vec<u64>,
    heads: [u64; NUM_CLASSES],
    free_words: usize,
}

fn class_of(payload_words: usize) -> usize {
    // Class i holds blocks whose payload capacity is >= 2^i.
    (usize::BITS - 1 - payload_words.max(1).leading_zeros()) as usize % NUM_CLASSES
}

impl WordPool {
    /// Creates a pool with the given capacity in 64-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_words < 4` (too small to hold one block).
    #[must_use]
    pub fn new(capacity_words: usize) -> Self {
        assert!(
            capacity_words >= MIN_BLOCK,
            "pool must hold at least one block"
        );
        let mut pool = WordPool {
            data: vec![0; capacity_words],
            heads: [NONE; NUM_CLASSES],
            free_words: 0,
        };
        pool.install_free_block(0, capacity_words);
        pool.free_words = capacity_words;
        pool
    }

    /// Total capacity in words.
    #[must_use]
    pub fn capacity_words(&self) -> usize {
        self.data.len()
    }

    /// Words currently on free lists (including block headers/footers).
    #[must_use]
    pub fn free_words(&self) -> usize {
        self.free_words
    }

    fn block_size(&self, h: usize) -> usize {
        usize::try_from(self.data[h] >> 1).expect("block size fits usize")
    }

    fn is_used(&self, h: usize) -> bool {
        self.data[h] & USED_BIT != 0
    }

    fn set_header(&mut self, h: usize, size: usize, used: bool) {
        let w = (size as u64) << 1 | u64::from(used);
        self.data[h] = w;
        self.data[h + size - 1] = w;
    }

    fn install_free_block(&mut self, h: usize, size: usize) {
        self.set_header(h, size, false);
        let class = class_of(size - 2);
        let head = self.heads[class];
        self.data[h + 1] = head; // next
        self.data[h + 2] = NONE; // prev
        if head != NONE {
            let head = usize::try_from(head).expect("offset fits");
            self.data[head + 2] = h as u64;
        }
        self.heads[class] = h as u64;
    }

    fn unlink_free_block(&mut self, h: usize) {
        let size = self.block_size(h);
        let class = class_of(size - 2);
        let next = self.data[h + 1];
        let prev = self.data[h + 2];
        if prev == NONE {
            self.heads[class] = next;
        } else {
            let prev = usize::try_from(prev).expect("offset fits");
            self.data[prev + 1] = next;
        }
        if next != NONE {
            let next = usize::try_from(next).expect("offset fits");
            self.data[next + 2] = prev;
        }
    }

    /// Allocates a block with at least `payload_words` of payload and returns
    /// the payload offset, or `None` if no block fits.
    pub fn alloc(&mut self, payload_words: usize) -> Option<usize> {
        let want = (payload_words + 2).max(MIN_BLOCK);
        let mut class = class_of(want - 2);
        while class < NUM_CLASSES {
            let mut cur = self.heads[class];
            while cur != NONE {
                let h = usize::try_from(cur).expect("offset fits");
                let size = self.block_size(h);
                if size >= want {
                    self.unlink_free_block(h);
                    // Split if the remainder can stand alone as a block.
                    if size - want >= MIN_BLOCK {
                        self.set_header(h, want, true);
                        self.install_free_block(h + want, size - want);
                        self.free_words -= want;
                    } else {
                        self.set_header(h, size, true);
                        self.free_words -= size;
                    }
                    return Some(h + 1);
                }
                cur = self.data[h + 1];
            }
            class += 1;
        }
        None
    }

    /// Frees the block whose payload starts at `payload_off`, coalescing with
    /// free neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the offset does not name an allocated block (double free or
    /// corruption).
    pub fn free(&mut self, payload_off: usize) {
        let mut h = payload_off - 1;
        assert!(self.is_used(h), "free of unallocated block at {h}");
        let mut size = self.block_size(h);
        self.free_words += size;
        // Coalesce with previous block.
        if h > 0 {
            let prev_footer = self.data[h - 1];
            if prev_footer & USED_BIT == 0 {
                let prev_size = usize::try_from(prev_footer >> 1).expect("size fits");
                let prev_h = h - prev_size;
                self.unlink_free_block(prev_h);
                h = prev_h;
                size += prev_size;
            }
        }
        // Coalesce with next block.
        let next_h = h + size;
        if next_h < self.data.len() && !self.is_used(next_h) {
            let next_size = self.block_size(next_h);
            self.unlink_free_block(next_h);
            size += next_size;
        }
        self.install_free_block(h, size);
    }

    /// Reads the payload word at absolute offset `off`.
    #[must_use]
    pub fn read(&self, off: usize) -> u64 {
        self.data[off]
    }

    /// Writes the payload word at absolute offset `off`.
    pub fn write(&mut self, off: usize, val: u64) {
        self.data[off] = val;
    }

    /// Walks all blocks in address order, yielding `(payload_off, payload_words, used)`.
    pub fn blocks(&self) -> impl Iterator<Item = (usize, usize, bool)> + '_ {
        let mut h = 0;
        std::iter::from_fn(move || {
            if h >= self.data.len() {
                return None;
            }
            let size = self.block_size(h);
            let item = (h + 1, size - 2, self.is_used(h));
            h += size;
            Some(item)
        })
    }

    /// Checks pool invariants: block sizes tile the pool exactly, headers
    /// match footers, and no two free blocks are adjacent.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        let mut h = 0;
        let mut prev_free = false;
        let mut free_total = 0;
        while h < self.data.len() {
            let size = self.block_size(h);
            assert!(size >= MIN_BLOCK, "undersized block at {h}");
            assert!(h + size <= self.data.len(), "block at {h} overruns pool");
            assert_eq!(
                self.data[h],
                self.data[h + size - 1],
                "header/footer mismatch at {h}"
            );
            let used = self.is_used(h);
            assert!(!prev_free || used, "adjacent free blocks at {h}");
            if !used {
                free_total += size;
            }
            prev_free = !used;
            h += size;
        }
        assert_eq!(h, self.data.len(), "blocks do not tile pool");
        assert_eq!(free_total, self.free_words, "free-word accounting drift");
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    off: usize,
    nrefs: u32,
    nwords: u32,
    live: bool,
}

/// A malloc/free-style manager: explicit deallocation, no tracing.
///
/// ```
/// use sysmem::{Manager, ManagerExt, freelist::FreeListHeap};
///
/// let mut heap = FreeListHeap::new(1 << 16);
/// let a = heap.alloc(1, 1).unwrap();
/// let b = heap.alloc(0, 1).unwrap();
/// heap.link(a, 0, Some(b));
/// heap.free(b).unwrap();
/// assert!(heap.free(b).is_err()); // double free is detected
/// ```
#[derive(Debug)]
pub struct FreeListHeap {
    pool: WordPool,
    entries: Vec<Entry>,
    stats: MemStats,
    live_bytes: usize,
}

impl FreeListHeap {
    /// Creates a heap with the given capacity in bytes.
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        FreeListHeap {
            pool: WordPool::new((capacity_bytes / WORD_BYTES).max(MIN_BLOCK)),
            entries: Vec::new(),
            stats: MemStats::new(),
            live_bytes: 0,
        }
    }

    fn entry(&self, h: Handle) -> Result<&Entry, MemError> {
        match self.entries.get(h.0 as usize) {
            Some(e) if e.live => Ok(e),
            _ => Err(MemError::InvalidHandle(h)),
        }
    }

    /// Exposes the underlying pool for invariant checks in tests.
    #[must_use]
    pub fn pool(&self) -> &WordPool {
        &self.pool
    }
}

impl Manager for FreeListHeap {
    fn name(&self) -> &'static str {
        "freelist"
    }

    fn alloc(&mut self, nrefs: usize, nwords: usize) -> Result<Handle, MemError> {
        let payload = nrefs + nwords;
        let off = self.pool.alloc(payload).ok_or(MemError::OutOfMemory {
            requested: payload * WORD_BYTES,
        })?;
        // Zero the whole payload: recycled blocks must not leak stale data
        // (the same hygiene rule a kernel allocator follows).
        for i in 0..payload {
            self.pool.write(off + i, 0);
        }
        let h = Handle(u32::try_from(self.entries.len()).expect("handle space exhausted"));
        self.entries.push(Entry {
            off,
            nrefs: u32::try_from(nrefs).expect("nrefs fits u32"),
            nwords: u32::try_from(nwords).expect("nwords fits u32"),
            live: true,
        });
        self.stats.allocs += 1;
        self.stats.bytes_allocated += (payload * WORD_BYTES) as u64;
        self.live_bytes += payload * WORD_BYTES;
        Ok(h)
    }

    fn free(&mut self, h: Handle) -> Result<(), MemError> {
        let e = *self.entry(h)?;
        self.pool.free(e.off);
        self.entries[h.0 as usize].live = false;
        self.stats.frees += 1;
        self.live_bytes -= (e.nrefs + e.nwords) as usize * WORD_BYTES;
        Ok(())
    }

    fn set_ref(
        &mut self,
        obj: Handle,
        slot: usize,
        target: Option<Handle>,
    ) -> Result<(), MemError> {
        let e = *self.entry(obj)?;
        if slot >= e.nrefs as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: slot,
                len: e.nrefs as usize,
            });
        }
        if let Some(t) = target {
            self.entry(t)?;
        }
        self.pool
            .write(e.off + slot, target.map_or(0, |t| u64::from(t.0) + 1));
        Ok(())
    }

    fn get_ref(&self, obj: Handle, slot: usize) -> Result<Option<Handle>, MemError> {
        let e = self.entry(obj)?;
        if slot >= e.nrefs as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: slot,
                len: e.nrefs as usize,
            });
        }
        let raw = self.pool.read(e.off + slot);
        Ok(if raw == 0 {
            None
        } else {
            Some(Handle(u32::try_from(raw - 1).expect("handle fits")))
        })
    }

    fn set_word(&mut self, obj: Handle, idx: usize, val: u64) -> Result<(), MemError> {
        let e = *self.entry(obj)?;
        if idx >= e.nwords as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: idx,
                len: e.nwords as usize,
            });
        }
        self.pool.write(e.off + e.nrefs as usize + idx, val);
        Ok(())
    }

    fn get_word(&self, obj: Handle, idx: usize) -> Result<u64, MemError> {
        let e = self.entry(obj)?;
        if idx >= e.nwords as usize {
            return Err(MemError::IndexOutOfBounds {
                handle: obj,
                index: idx,
                len: e.nwords as usize,
            });
        }
        Ok(self.pool.read(e.off + e.nrefs as usize + idx))
    }

    fn add_root(&mut self, _obj: Handle) {}

    fn remove_root(&mut self, _obj: Handle) {}

    fn collect(&mut self) {}

    fn is_live(&self, h: Handle) -> bool {
        self.entry(h).is_ok()
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn live_bytes(&self) -> usize {
        self.live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManagerExt;
    use proptest::prelude::*;

    #[test]
    fn pool_single_block_alloc_free_roundtrip() {
        let mut p = WordPool::new(64);
        let a = p.alloc(10).unwrap();
        p.check_invariants();
        p.free(a);
        p.check_invariants();
        assert_eq!(p.free_words(), 64);
    }

    #[test]
    fn pool_splits_and_coalesces() {
        let mut p = WordPool::new(128);
        let a = p.alloc(10).unwrap();
        let b = p.alloc(10).unwrap();
        let c = p.alloc(10).unwrap();
        p.check_invariants();
        // Free middle, then left, then right: must coalesce back to one block.
        p.free(b);
        p.check_invariants();
        p.free(a);
        p.check_invariants();
        p.free(c);
        p.check_invariants();
        assert_eq!(p.free_words(), 128);
        assert_eq!(p.blocks().count(), 1);
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut p = WordPool::new(16);
        assert!(p.alloc(100).is_none());
        let a = p.alloc(4).unwrap();
        // 16 - 6 = 10 words left; a 9-word payload needs 11.
        assert!(p.alloc(9).is_none());
        p.free(a);
        assert!(p.alloc(9).is_some());
    }

    #[test]
    #[should_panic(expected = "free of unallocated block")]
    fn pool_double_free_panics() {
        let mut p = WordPool::new(64);
        let a = p.alloc(4).unwrap();
        p.free(a);
        p.free(a);
    }

    #[test]
    fn heap_alloc_write_read() {
        let mut h = FreeListHeap::new(4096);
        let o = h.alloc(2, 3).unwrap();
        h.put(o, 0, 7);
        h.put(o, 2, 9);
        assert_eq!(h.get(o, 0), 7);
        assert_eq!(h.get(o, 2), 9);
        assert_eq!(h.get(o, 1), 0);
    }

    #[test]
    fn heap_refs_are_independent_of_words() {
        let mut h = FreeListHeap::new(4096);
        let a = h.alloc(2, 2).unwrap();
        let b = h.alloc(0, 1).unwrap();
        h.link(a, 0, Some(b));
        h.put(a, 0, 0xdead);
        assert_eq!(h.deref(a, 0), Some(b));
        assert_eq!(h.deref(a, 1), None);
    }

    #[test]
    fn heap_use_after_free_is_detected() {
        let mut h = FreeListHeap::new(4096);
        let o = h.alloc(0, 1).unwrap();
        h.free(o).unwrap();
        assert_eq!(h.get_word(o, 0), Err(MemError::InvalidHandle(o)));
        assert_eq!(h.free(o), Err(MemError::InvalidHandle(o)));
        assert!(!h.is_live(o));
    }

    #[test]
    fn heap_out_of_bounds_is_detected() {
        let mut h = FreeListHeap::new(4096);
        let o = h.alloc(1, 1).unwrap();
        assert!(matches!(
            h.get_word(o, 1),
            Err(MemError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            h.get_ref(o, 1),
            Err(MemError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn heap_live_bytes_tracks_alloc_and_free() {
        let mut h = FreeListHeap::new(4096);
        let o = h.alloc(1, 3).unwrap();
        assert_eq!(h.live_bytes(), 32);
        h.free(o).unwrap();
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn heap_link_to_dead_target_is_rejected() {
        let mut h = FreeListHeap::new(4096);
        let a = h.alloc(1, 0).unwrap();
        let b = h.alloc(0, 0).unwrap();
        h.free(b).unwrap();
        assert_eq!(h.set_ref(a, 0, Some(b)), Err(MemError::InvalidHandle(b)));
    }

    proptest! {
        /// Random alloc/free sequences keep pool invariants and match a
        /// shadow model of live payloads.
        #[test]
        fn pool_random_ops_preserve_invariants(ops in proptest::collection::vec((0usize..3, 1usize..40), 1..200)) {
            let mut p = WordPool::new(4096);
            let mut live: Vec<(usize, usize)> = Vec::new();
            for (kind, size) in ops {
                match kind {
                    0 | 1 => {
                        if let Some(off) = p.alloc(size) {
                            live.push((off, size));
                        }
                    }
                    _ => {
                        if !live.is_empty() {
                            let (off, _) = live.swap_remove(size % live.len());
                            p.free(off);
                        }
                    }
                }
                p.check_invariants();
            }
        }

        /// Payload data survives unrelated alloc/free churn.
        #[test]
        fn heap_data_integrity_under_churn(seed in 0u64..1000) {
            let mut h = FreeListHeap::new(1 << 16);
            let keep = h.alloc(0, 4).unwrap();
            for i in 0..4 {
                h.put(keep, i, seed.wrapping_mul(i as u64 + 1));
            }
            let mut tmp = Vec::new();
            for i in 0..50u64 {
                let o = h.alloc(1, (seed as usize + i as usize) % 8 + 1).unwrap();
                tmp.push(o);
                if i % 3 == 0 {
                    if let Some(o) = tmp.pop() {
                        h.free(o).unwrap();
                    }
                }
            }
            for i in 0..4 {
                prop_assert_eq!(h.get(keep, i), seed.wrapping_mul(i as u64 + 1));
            }
        }
    }
}
