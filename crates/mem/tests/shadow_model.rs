//! Differential testing of every manager against a shadow model.
//!
//! The model is a plain `HashMap` of live objects and their contents. Any
//! divergence — data loss, premature reuse, resurrection, wrong liveness —
//! is a memory-safety bug in the manager. This is the strongest automated
//! statement the crate makes: all six managers implement the *same*
//! observable semantics for the mutator.

use proptest::prelude::*;
use std::collections::HashMap;
use sysmem::freelist::FreeListHeap;
use sysmem::generational::GenerationalHeap;
use sysmem::marksweep::MarkSweepHeap;
use sysmem::rc::RcHeap;
use sysmem::semispace::SemiSpaceHeap;
use sysmem::{Handle, Manager};

/// One mutator operation, chosen by proptest.
#[derive(Debug, Clone)]
enum Op {
    Alloc {
        nwords: usize,
    },
    Free {
        victim: usize,
    },
    Write {
        victim: usize,
        idx: usize,
        value: u64,
    },
    Read {
        victim: usize,
        idx: usize,
    },
    Collect,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1usize..16).prop_map(|nwords| Op::Alloc { nwords }),
        2 => any::<usize>().prop_map(|victim| Op::Free { victim }),
        3 => (any::<usize>(), any::<usize>(), any::<u64>())
            .prop_map(|(victim, idx, value)| Op::Write { victim, idx, value }),
        3 => (any::<usize>(), any::<usize>()).prop_map(|(victim, idx)| Op::Read { victim, idx }),
        1 => Just(Op::Collect),
    ]
}

/// Drives `mgr` and the shadow model with the same op sequence; `manual`
/// selects free-based or root-based retirement.
fn drive(mgr: &mut dyn Manager, ops: &[Op], manual: bool) {
    // live: handle -> model contents.
    let mut live: Vec<(Handle, Vec<u64>)> = Vec::new();
    let mut model: HashMap<Handle, Vec<u64>> = HashMap::new();
    for op in ops {
        match op {
            Op::Alloc { nwords } => {
                if let Ok(h) = mgr.alloc(0, *nwords) {
                    if !manual {
                        mgr.add_root(h);
                    }
                    live.push((h, vec![0; *nwords]));
                    model.insert(h, vec![0; *nwords]);
                }
            }
            Op::Free { victim } => {
                if live.is_empty() {
                    continue;
                }
                let (h, _) = live.swap_remove(victim % live.len());
                model.remove(&h);
                if manual {
                    mgr.free(h).expect("freeing a live object succeeds");
                } else {
                    mgr.remove_root(h);
                    mgr.collect();
                }
                assert!(!mgr.is_live(h), "object must be dead after retirement");
                assert!(
                    mgr.get_word(h, 0).is_err(),
                    "use-after-free must be detected"
                );
            }
            Op::Write { victim, idx, value } => {
                if live.is_empty() {
                    continue;
                }
                let len = live.len();
                let (h, contents) = &mut live[victim % len];
                let idx = idx % contents.len();
                mgr.set_word(*h, idx, *value)
                    .expect("write to live object succeeds");
                contents[idx] = *value;
                model.get_mut(h).expect("model in sync")[idx] = *value;
            }
            Op::Read { victim, idx } => {
                if live.is_empty() {
                    continue;
                }
                let (h, contents) = &live[victim % live.len()];
                let idx = idx % contents.len();
                let got = mgr
                    .get_word(*h, idx)
                    .expect("read from live object succeeds");
                assert_eq!(got, contents[idx], "data divergence at {h} word {idx}");
            }
            Op::Collect => mgr.collect(),
        }
    }
    // Final sweep: every live object still matches the model exactly.
    for (h, contents) in &live {
        assert!(mgr.is_live(*h));
        for (i, expected) in contents.iter().enumerate() {
            assert_eq!(
                mgr.get_word(*h, i).unwrap(),
                *expected,
                "final check {h} word {i}"
            );
        }
    }
    let model_bytes: usize = model.values().map(|v| v.len() * 8).sum();
    assert_eq!(mgr.live_bytes(), model_bytes, "live-byte accounting drift");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn freelist_matches_shadow_model(ops in proptest::collection::vec(arb_op(), 1..150)) {
        let mut h = FreeListHeap::new(1 << 18);
        drive(&mut h, &ops, true);
        h.pool().check_invariants();
    }

    #[test]
    fn marksweep_matches_shadow_model(ops in proptest::collection::vec(arb_op(), 1..150)) {
        let mut h = MarkSweepHeap::new(1 << 18);
        drive(&mut h, &ops, false);
    }

    #[test]
    fn semispace_matches_shadow_model(ops in proptest::collection::vec(arb_op(), 1..150)) {
        let mut h = SemiSpaceHeap::new(1 << 19);
        drive(&mut h, &ops, false);
    }

    #[test]
    fn generational_matches_shadow_model(ops in proptest::collection::vec(arb_op(), 1..150)) {
        let mut h = GenerationalHeap::new(1 << 18, 1 << 12);
        drive(&mut h, &ops, false);
    }

    #[test]
    fn refcount_matches_shadow_model(ops in proptest::collection::vec(arb_op(), 1..150)) {
        let mut h = RcHeap::new(1 << 18);
        drive(&mut h, &ops, false);
    }
}
