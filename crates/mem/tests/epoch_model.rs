//! syscheck models of the epoch reclamation protocol.
//!
//! The protocol obligation is use-after-free freedom: an item handed to the
//! collector's sink must be invisible to every pinned reader. The models
//! make that checkable without real UB by reclaiming *canaries* — a pair of
//! shim-atomic `alive` flags standing in for two versions of a node, plus a
//! shim-atomic `current` index standing in for the structure's root
//! pointer. "Dereferencing" is loading `current` and then asserting the
//! canary it names is still alive; "freeing" is the collect sink clearing
//! the flag. Every load, store, pin, and advance routes through
//! `syscheck::shim`, so the checker owns the full interleaving space.
//!
//! Two models:
//!
//! * the **safe** domain (`Domain::new`, three-epoch horizon) must verify
//!   clean — exhaustively, at preemption bound 2 — and collapse to a single
//!   terminal state: exactly one canary reclaimed, always the unlinked one;
//! * the **seeded off-by-one** domain
//!   (`Domain::new_with_premature_reclaim_bug`, one-epoch horizon) must
//!   *fail*: there is a schedule where a reader pins, loads `current`, the
//!   writer unlinks + retires + collects — and the single epoch advance the
//!   pinned reader permits is already enough to mature the bin. The checker
//!   must find that schedule under both DFS and seeded-random search, and
//!   the shrinker must cut the repro to at most two forced preemptions.
//!
//! The module docs in `sysmem::epoch` derive the off-by-one on paper; these
//! models are the mechanical version of that argument.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use syscheck::shim::{AtomicBool, AtomicUsize};
use syscheck::{explore, explore_random, shrink, Config};
use sysmem::epoch::Domain;

/// One reader races one writer over a two-slot "structure".
///
/// Reader: pin, load `current`, assert that canary is alive, unpin.
/// Writer: swap `current` 0 → 1 (the unlink), retire slot 0, collect once
/// (the racing advance), join the reader, then collect twice more so the
/// retired canary matures deterministically before the digest is taken.
fn reclaim_model(domain: Arc<Domain<usize>>) -> u64 {
    let alive = Arc::new([AtomicBool::new(true), AtomicBool::new(true)]);
    let current = Arc::new(AtomicUsize::new(0));
    let handle = domain.register();

    let (a, c) = (Arc::clone(&alive), Arc::clone(&current));
    let reader = syscheck::shim::spawn(move || {
        let guard = handle.pin();
        let i = c.load(Ordering::SeqCst);
        assert!(
            a[i].load(Ordering::SeqCst),
            "pinned reader dereferenced a reclaimed canary (slot {i})"
        );
        drop(guard);
    });

    let unlinked = current.swap(1, Ordering::SeqCst);
    domain.retire(unlinked);
    let mut freed = domain.collect(|i| alive[i].store(false, Ordering::SeqCst));
    reader.join().unwrap();
    // No reader is pinned now: two more advances mature the bin for certain.
    for _ in 0..2 {
        freed += domain.collect(|i| alive[i].store(false, Ordering::SeqCst));
    }

    assert_eq!(freed, 1, "exactly the unlinked canary is reclaimed");
    assert_eq!(domain.pending(), 0, "nothing left deferred");
    // Terminal digest: which canaries survived. Schedule-independent for
    // the safe domain — slot 0 reclaimed, slot 1 untouched, every time.
    u64::from(alive[0].load(Ordering::SeqCst)) << 1 | u64::from(alive[1].load(Ordering::SeqCst))
}

fn safe_model() -> u64 {
    reclaim_model(Arc::new(Domain::new()))
}

fn premature_model() -> u64 {
    reclaim_model(Arc::new(Domain::new_with_premature_reclaim_bug()))
}

#[test]
fn checker_safe_domain_verifies_exhaustively() {
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 200_000,
        ..Config::default()
    };
    let ex = explore(&cfg, safe_model);
    assert!(
        ex.failure.is_none(),
        "three-epoch reclamation freed under a pinned reader: {:?}",
        ex.failure
    );
    assert!(
        ex.complete,
        "model must be exhaustively checkable at preemption bound 2 \
         (ran {} schedules without finishing the tree)",
        ex.schedules
    );
    assert_eq!(
        ex.distinct_states, 1,
        "reclamation outcome must not depend on the schedule"
    );
}

#[test]
fn checker_premature_reclaim_bug_is_found_and_shrinks() {
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 200_000,
        ..Config::default()
    };

    let dfs = explore(&cfg, premature_model);
    let failure = dfs
        .failure
        .as_ref()
        .expect("DFS must find the off-by-one premature free");
    assert!(
        failure.message.contains("reclaimed canary"),
        "wrong failure found: {failure:?}"
    );
    let minimal = shrink::shrink_failure(&cfg, failure, premature_model);
    assert!(
        minimal.deviations.len() <= 2,
        "premature reclaim needs at most two forced preemptions, shrinker \
         kept {}",
        minimal.deviations.len()
    );

    let rnd = explore_random(&cfg, 0xE15_0001, premature_model);
    let failure = rnd
        .failure
        .as_ref()
        .expect("seeded random schedules must find the premature free");
    let seed = failure.seed.expect("random-mode failures carry their seed");
    let replay = syscheck::replay_seed(&cfg, seed, premature_model);
    assert!(
        replay.failure.is_some(),
        "failing seed {seed:#x} must replay deterministically"
    );
}

#[test]
fn checker_unpinned_readers_never_hold_the_epoch() {
    // A handle that is registered but never pinned must not block
    // reclamation — otherwise one idle worker would wedge the whole
    // domain's garbage list. Single-threaded on the checker's scheduler:
    // still exercises the shim paths, trivially exhaustive.
    fn model() -> u64 {
        let domain: Arc<Domain<usize>> = Arc::new(Domain::new());
        let _idle = domain.register();
        domain.retire(0);
        let mut freed = 0;
        for _ in 0..3 {
            freed += domain.collect(|_| {});
        }
        assert_eq!(freed, 1, "idle (unpinned) reader blocked reclamation");
        domain.epoch()
    }
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 1_000,
        ..Config::default()
    };
    let ex = explore(&cfg, model);
    assert!(ex.failure.is_none(), "{:?}", ex.failure);
    assert!(ex.complete);
}
