//! Profiling harness replicating E1's exact sequence (used to chase a
//! pause anomaly; kept as a diagnostic example).
use sysmem::arena::RegionHeap;
use sysmem::freelist::FreeListHeap;
use sysmem::generational::GenerationalHeap;
use sysmem::marksweep::MarkSweepHeap;
use sysmem::rc::RcHeap;
use sysmem::semispace::SemiSpaceHeap;
use sysmem::workload::{
    run_region_workload, run_workload, Lifetime, ReclaimStrategy, WorkloadSpec,
};

fn main() {
    let spec = WorkloadSpec {
        ops: 400_000,
        min_words: 2,
        max_words: 32,
        nrefs: 2,
        link_prob: 0.2,
        lifetime: Lifetime::Exponential { mean_ops: 64.0 },
        seed: 0x51A5_u64 ^ 0x9e37_79b9,
    };
    let bytes = 1 << 26;
    let t = std::time::Instant::now();
    {
        let mut region = RegionHeap::new(bytes);
        let r = run_region_workload(&mut region, &spec, 256);
        println!("region: {:?} rate={:.0}/s", t.elapsed(), r.throughput());
    }
    let t = std::time::Instant::now();
    {
        let mut fl = FreeListHeap::new(bytes);
        let r = run_workload(&mut fl, &spec, ReclaimStrategy::ExplicitFree);
        println!("freelist: {:?} rate={:.0}/s", t.elapsed(), r.throughput());
    }
    let t = std::time::Instant::now();
    {
        let mut rc = RcHeap::new(bytes);
        let r = run_workload(&mut rc, &spec, ReclaimStrategy::RootRelease);
        println!("rc: {:?} rate={:.0}/s", t.elapsed(), r.throughput());
    }
    let t = std::time::Instant::now();
    {
        let mut ms = MarkSweepHeap::new(bytes);
        let r = run_workload(&mut ms, &spec, ReclaimStrategy::RootRelease);
        println!("marksweep: {:?} rate={:.0}/s", t.elapsed(), r.throughput());
    }
    let t = std::time::Instant::now();
    {
        let mut ss = SemiSpaceHeap::new(bytes * 2);
        let r = run_workload(&mut ss, &spec, ReclaimStrategy::RootRelease);
        println!(
            "semispace: {:?} rate={:.0}/s maxpause={}us",
            t.elapsed(),
            r.throughput(),
            r.op_pauses.max_ns() / 1000
        );
    }
    let t = std::time::Instant::now();
    let mut g = GenerationalHeap::new(bytes, bytes / 16);
    let r = run_workload(&mut g, &spec, ReclaimStrategy::RootRelease);
    println!(
        "generational: {:?} rate={:.0}/s maxpause={}us gcs={}",
        t.elapsed(),
        r.throughput(),
        r.op_pauses.max_ns() / 1000,
        r.collections
    );
}
