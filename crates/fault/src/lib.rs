//! # sysfault — deterministic, seedable fault injection
//!
//! The paper's systems-code checklist is dominated by *failure*: kernels must
//! keep their invariants when allocation fails, messages vanish, and
//! transactions abort. Testing those paths by hand is hopeless — they are the
//! paths nobody exercises — so this crate makes failure a first-class,
//! *reproducible* input:
//!
//! * a [`FaultPlan`] names injection sites (`"kernel.ipc.drop"`,
//!   `"mem.oom"`, `"stm.abort"`, ...) and gives each a [`Schedule`] —
//!   every-Nth call, per-call probability, or one-shot at call K — under a
//!   single 64-bit seed;
//! * a [`FaultInjector`] evaluates the plan call by call. Each site draws
//!   from its **own** PRNG stream, seeded by `plan.seed ^ fnv(site name)`,
//!   so whether site A fires never depends on how often site B was
//!   consulted — replays are byte-for-byte identical even if unrelated
//!   subsystems interleave differently;
//! * a [`FaultLog`] records every fault that fired (site, per-site call
//!   number, global sequence number) and digests to a single `u64`, so a
//!   failing campaign is reproduced by re-running the same plan and comparing
//!   digests;
//! * [`shrink::minimize`] reduces a failing plan to a minimal one that still
//!   fails — the fault-injection analogue of property-test shrinking.
//!
//! [`SharedInjector`] wraps an injector in `Arc<Mutex<..>>` for the
//! concurrency substrate, where multiple threads consult the same plan.
//!
//! ```
//! use sysfault::{FaultPlan, FaultInjector, Schedule};
//!
//! let plan = FaultPlan::new(42)
//!     .with_site("mem.oom", Schedule::EveryNth(3))
//!     .with_site("kernel.ipc.drop", Schedule::Probability(0.5));
//! let mut inj = FaultInjector::new(plan.clone());
//! let fired: Vec<bool> = (0..6).map(|_| inj.should_fail("mem.oom")).collect();
//! assert_eq!(fired, vec![false, false, true, false, false, true]);
//!
//! // Same plan, fresh injector: identical log digest. Always.
//! let mut replay = FaultInjector::new(plan);
//! for _ in 0..6 { replay.should_fail("mem.oom"); }
//! assert_eq!(inj.log().digest(), replay.log().digest());
//! ```

pub mod shrink;

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// FNV-1a hash of a byte string; used to derive per-site seeds and log
/// digests. Stable across platforms and runs by construction. The
/// implementation lives in `sysobs` (one copy for fault digests, flow
/// hashing, and trace shape digests); re-exported here so existing callers
/// keep their import path.
pub use sysobs::fnv1a;

/// SplitMix64: tiny, fast, well-distributed PRNG. One per site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// When a fault site fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Fires on the Nth, 2Nth, 3Nth... consultation of the site (1-based).
    /// `EveryNth(1)` fires always; `EveryNth(0)` never fires.
    EveryNth(u64),
    /// Fires with probability `p` per consultation, drawn from the site's
    /// private PRNG stream. Clamped to [0, 1].
    Probability(f64),
    /// Fires exactly once, on consultation number K (1-based).
    OneShotAt(u64),
}

impl Schedule {
    /// Rate as a rough per-call probability, used only for display.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Schedule::EveryNth(0) => "never".to_string(),
            Schedule::EveryNth(n) => format!("every {n}th call"),
            Schedule::Probability(p) => format!("p={p}"),
            Schedule::OneShotAt(k) => format!("once at call {k}"),
        }
    }
}

/// A complete, seeded fault campaign: which sites fail, and on what schedule.
///
/// Plans are *values*: cloneable, comparable, printable. A failing campaign
/// is its plan; re-running the plan reproduces the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed. Each site derives its stream as `seed ^ fnv(site)`.
    pub seed: u64,
    sites: BTreeMap<String, Schedule>,
}

impl FaultPlan {
    /// An empty plan (no sites, nothing ever fires) under `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: BTreeMap::new(),
        }
    }

    /// Builder: adds or replaces a site schedule.
    #[must_use]
    pub fn with_site(mut self, site: impl Into<String>, schedule: Schedule) -> Self {
        self.sites.insert(site.into(), schedule);
        self
    }

    /// Adds or replaces a site schedule in place.
    pub fn set_site(&mut self, site: impl Into<String>, schedule: Schedule) {
        self.sites.insert(site.into(), schedule);
    }

    /// Removes a site; returns its schedule if it was present.
    pub fn remove_site(&mut self, site: &str) -> Option<Schedule> {
        self.sites.remove(site)
    }

    /// The schedule for `site`, if any.
    #[must_use]
    pub fn site(&self, site: &str) -> Option<&Schedule> {
        self.sites.get(site)
    }

    /// Iterates sites in deterministic (lexicographic) order.
    pub fn sites(&self) -> impl Iterator<Item = (&str, &Schedule)> {
        self.sites.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of scheduled sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if no site is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan(seed={:#x}", self.seed)?;
        for (name, sched) in &self.sites {
            write!(f, ", {name}: {}", sched.describe())?;
        }
        write!(f, ")")
    }
}

/// One fault that fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Site name.
    pub site: String,
    /// 1-based consultation number *of that site* at which it fired.
    pub site_call: u64,
    /// Global sequence number across all sites (0-based injection order).
    pub seq: u64,
}

/// Ordered record of every fault that fired during a campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    records: Vec<FaultRecord>,
}

impl FaultLog {
    /// Number of faults fired.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing fired.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates records in firing order.
    pub fn iter(&self) -> impl Iterator<Item = &FaultRecord> {
        self.records.iter()
    }

    /// Order-sensitive digest of the whole log. Two campaigns with equal
    /// digests fired the same faults at the same points.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for r in &self.records {
            h ^= fnv1a(r.site.as_bytes());
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            h ^= r.site_call;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            h ^= r.seq;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn push(&mut self, site: &str, site_call: u64) {
        let seq = self.records.len() as u64;
        self.records.push(FaultRecord {
            site: site.to_string(),
            site_call,
            seq,
        });
    }
}

/// Publishes `digest` as the *active* campaign digest in the `sysobs`
/// registry (gauge `fault.active_digest`, digest bits stored as `i64`):
/// the link between a live incident and the fault plan that provoked it.
/// A trigger-engine poll loop reads this back with [`active_digest`] and
/// stamps it into every postmortem it captures, making the incident
/// replayable from its plan. Publish 0 (or call with the final digest) at
/// campaign end.
pub fn publish_active_digest(digest: u64) {
    #[allow(clippy::cast_possible_wrap)]
    sysobs::registry()
        .gauge("fault.active_digest")
        .set(digest as i64);
}

/// The published campaign digest, or `None` when no campaign has announced
/// itself (gauge absent or zero).
#[must_use]
pub fn active_digest() -> Option<u64> {
    #[allow(clippy::cast_sign_loss)]
    let d = sysobs::registry().gauge("fault.active_digest").get() as u64;
    (d != 0).then_some(d)
}

#[derive(Debug)]
struct SiteState {
    schedule: Schedule,
    rng: SplitMix64,
    calls: u64,
}

/// Evaluates a [`FaultPlan`] one consultation at a time.
///
/// Each instrumented operation asks `should_fail("site.name")` exactly once;
/// the injector answers from the site's schedule and private PRNG stream and
/// records every `true` in the [`FaultLog`].
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    sites: BTreeMap<String, SiteState>,
    log: FaultLog,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let sites = plan
            .sites()
            .map(|(name, sched)| {
                let state = SiteState {
                    schedule: *sched,
                    rng: SplitMix64::new(plan.seed ^ fnv1a(name.as_bytes())),
                    calls: 0,
                };
                (name.to_string(), state)
            })
            .collect();
        FaultInjector {
            plan,
            sites,
            log: FaultLog::default(),
        }
    }

    /// An injector that never fires (empty plan). The zero-cost default for
    /// production paths.
    #[must_use]
    pub fn disabled() -> Self {
        FaultInjector::new(FaultPlan::new(0))
    }

    /// Consults `site`: should the current operation fail?
    ///
    /// Sites absent from the plan never fail (and are not counted), so
    /// instrumented code needs no configuration to run fault-free.
    pub fn should_fail(&mut self, site: &str) -> bool {
        let Some(state) = self.sites.get_mut(site) else {
            return false;
        };
        state.calls += 1;
        let fire = match state.schedule {
            Schedule::EveryNth(0) => false,
            Schedule::EveryNth(n) => state.calls % n == 0,
            Schedule::Probability(p) => state.rng.next_f64() < p.clamp(0.0, 1.0),
            Schedule::OneShotAt(k) => state.calls == k,
        };
        if fire {
            self.log.push(site, state.calls);
            // Mirror the firing into the observability layer: a counter for
            // the metrics snapshot, and (under full tracing) an instant
            // event named after the site so a flight-recorder dump lines up
            // with the FaultLog record by (site, site_call).
            sysobs::obs_count!("fault.fired", 1);
            if sysobs::tracing_on() {
                sysobs::instant_dynamic(&format!("fault.fired.{site}"), state.calls);
            }
        }
        fire
    }

    /// The plan this injector is executing.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Everything that has fired so far.
    #[must_use]
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Total consultations of `site` so far (fired or not).
    #[must_use]
    pub fn calls(&self, site: &str) -> u64 {
        self.sites.get(site).map_or(0, |s| s.calls)
    }
}

/// A cloneable, thread-safe handle to a [`FaultInjector`].
///
/// The concurrency substrate consults one plan from many threads; the kernel
/// holds one of these too so a single campaign spans all three runtime
/// crates.
#[derive(Debug, Clone)]
pub struct SharedInjector {
    inner: Arc<Mutex<FaultInjector>>,
}

impl SharedInjector {
    /// Wraps a plan for shared use.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        SharedInjector {
            inner: Arc::new(Mutex::new(FaultInjector::new(plan))),
        }
    }

    /// A shared injector that never fires.
    #[must_use]
    pub fn disabled() -> Self {
        SharedInjector {
            inner: Arc::new(Mutex::new(FaultInjector::disabled())),
        }
    }

    /// Consults `site` under the lock.
    pub fn should_fail(&self, site: &str) -> bool {
        self.lock().should_fail(site)
    }

    /// Snapshot of the fault log.
    #[must_use]
    pub fn log_snapshot(&self) -> FaultLog {
        self.lock().log().clone()
    }

    /// Digest of the log so far.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.lock().log().digest()
    }

    /// Number of faults fired so far.
    #[must_use]
    pub fn faults_fired(&self) -> usize {
        self.lock().log().len()
    }

    /// Runs `f` with the locked injector (for compound queries).
    pub fn with<R>(&self, f: impl FnOnce(&mut FaultInjector) -> R) -> R {
        f(&mut self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultInjector> {
        // A panic while holding the lock poisons it; the injector state is
        // still internally consistent (every mutation is a single push), so
        // recover the guard rather than propagate the panic.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_nth_fires_periodically() {
        let plan = FaultPlan::new(1).with_site("s", Schedule::EveryNth(4));
        let mut inj = FaultInjector::new(plan);
        let fired: Vec<bool> = (0..8).map(|_| inj.should_fail("s")).collect();
        assert_eq!(
            fired,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn every_zero_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::new(1).with_site("s", Schedule::EveryNth(0)));
        assert!((0..100).all(|_| !inj.should_fail("s")));
    }

    #[test]
    fn one_shot_fires_exactly_once() {
        let mut inj = FaultInjector::new(FaultPlan::new(1).with_site("s", Schedule::OneShotAt(3)));
        let fired: Vec<bool> = (0..6).map(|_| inj.should_fail("s")).collect();
        assert_eq!(fired.iter().filter(|&&b| b).count(), 1);
        assert!(fired[2]);
    }

    #[test]
    fn probability_rate_is_roughly_honoured() {
        let mut inj =
            FaultInjector::new(FaultPlan::new(7).with_site("s", Schedule::Probability(0.25)));
        let n = 10_000;
        let fired = (0..n).filter(|_| inj.should_fail("s")).count();
        let rate = fired as f64 / f64::from(n);
        assert!((rate - 0.25).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn unknown_sites_never_fail() {
        let mut inj = FaultInjector::disabled();
        assert!(!inj.should_fail("anything"));
        assert!(inj.log().is_empty());
    }

    #[test]
    fn same_seed_same_log_digest() {
        let plan = FaultPlan::new(0xDECAF)
            .with_site("a", Schedule::Probability(0.3))
            .with_site("b", Schedule::EveryNth(7));
        let run = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(plan);
            for i in 0..500 {
                inj.should_fail(if i % 3 == 0 { "b" } else { "a" });
            }
            inj.log().digest()
        };
        assert_eq!(run(plan.clone()), run(plan));
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| FaultPlan::new(seed).with_site("a", Schedule::Probability(0.5));
        let run = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(plan);
            (0..64).map(|_| inj.should_fail("a")).collect::<Vec<_>>()
        };
        assert_ne!(run(mk(1)), run(mk(2)));
    }

    #[test]
    fn site_streams_are_independent_of_interleaving() {
        // Consulting site B more or fewer times must not change site A's
        // decisions — the property that makes replay interleaving-proof.
        let plan = FaultPlan::new(99)
            .with_site("a", Schedule::Probability(0.5))
            .with_site("b", Schedule::Probability(0.5));
        let mut lone = FaultInjector::new(plan.clone());
        let solo: Vec<bool> = (0..32).map(|_| lone.should_fail("a")).collect();
        let mut mixed = FaultInjector::new(plan);
        let interleaved: Vec<bool> = (0..32)
            .map(|_| {
                mixed.should_fail("b");
                mixed.should_fail("b");
                mixed.should_fail("a")
            })
            .collect();
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn log_records_site_call_and_seq() {
        let plan = FaultPlan::new(1).with_site("x", Schedule::EveryNth(2));
        let mut inj = FaultInjector::new(plan);
        for _ in 0..4 {
            inj.should_fail("x");
        }
        let recs: Vec<_> = inj.log().iter().cloned().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].site_call, recs[0].seq), (2, 0));
        assert_eq!((recs[1].site_call, recs[1].seq), (4, 1));
    }

    #[test]
    fn shared_injector_is_usable_across_threads() {
        let shared = SharedInjector::new(FaultPlan::new(5).with_site("s", Schedule::EveryNth(10)));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = shared.clone();
                scope.spawn(move || {
                    for _ in 0..250 {
                        s.should_fail("s");
                    }
                });
            }
        });
        // 1000 consultations at every-10th = exactly 100 fires, regardless
        // of thread interleaving (the counter is under the lock).
        assert_eq!(shared.faults_fired(), 100);
    }

    #[test]
    fn plan_display_names_sites() {
        let plan = FaultPlan::new(2).with_site("mem.oom", Schedule::EveryNth(3));
        let s = plan.to_string();
        assert!(s.contains("mem.oom"), "{s}");
        assert!(s.contains("every 3th call"), "{s}");
    }
}
