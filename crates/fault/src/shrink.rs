//! Shrinking failing fault plans to minimal reproductions.
//!
//! A campaign that fails under a 12-site plan is a poor bug report; the same
//! failure under one site firing once is a diagnosis. [`minimize`] performs
//! the domain-specific shrinking that a generic property-test shrinker cannot:
//! it knows that removing a site, or replacing a noisy schedule with a
//! [`Schedule::OneShotAt`] pinpointing a single firing, yields a *simpler*
//! plan, and it re-runs the caller's failure predicate after each candidate
//! edit to keep only edits that preserve the failure.

use crate::{FaultInjector, FaultPlan, Schedule};

/// Shrinks `plan` while `fails` keeps returning `true`.
///
/// The predicate must be deterministic in the plan (which it is whenever the
/// system under test consults a fresh [`FaultInjector`] built from the plan
/// and has no other nondeterminism). Strategy, in order:
///
/// 1. **Drop sites.** Remove each site in turn; keep the removal if the
///    failure persists. Repeated to a fixed point, so mutually redundant
///    sites all disappear.
/// 2. **Simplify schedules.** For each surviving probabilistic or periodic
///    site, probe which single firing suffices: replay the full plan to learn
///    the per-site call numbers that fired, then try pinning the site to
///    `OneShotAt(k)` for each observed `k` (earliest first).
///
/// Returns the smallest plan found; at worst, the original.
pub fn minimize(plan: &FaultPlan, mut fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut best = plan.clone();
    if !fails(&best) {
        return best;
    }

    // Phase 1: drop whole sites to a fixed point.
    let mut changed = true;
    while changed {
        changed = false;
        let names: Vec<String> = best.sites().map(|(n, _)| n.to_string()).collect();
        for name in names {
            let mut candidate = best.clone();
            candidate.remove_site(&name);
            if fails(&candidate) {
                best = candidate;
                changed = true;
            }
        }
    }

    // Phase 2: pin each remaining site to a single observed firing.
    let names: Vec<String> = best.sites().map(|(n, _)| n.to_string()).collect();
    for name in names {
        if matches!(best.site(&name), Some(Schedule::OneShotAt(_))) {
            continue;
        }
        for k in observed_firings(&best, &name) {
            let mut candidate = best.clone();
            candidate.set_site(&name, Schedule::OneShotAt(k));
            if fails(&candidate) {
                best = candidate;
                break;
            }
        }
    }
    best
}

/// Shrinks a failing byte-string input while `fails` keeps returning
/// `true` — the fuzzer-facing analogue of [`minimize`], for campaigns
/// whose failing reproduction is an *input* rather than a plan.
///
/// The predicate must be deterministic in the bytes (true for the total
/// parsers and the VM under a fixed fuel budget). Strategy, in order:
///
/// 1. **Delta-debug chunks.** Remove contiguous chunks at halving
///    granularity (ddmin style) down to single bytes, keeping every
///    removal that preserves the failure, repeated to a fixed point.
/// 2. **Normalize bytes.** Try replacing each surviving byte with `0`
///    (then `0xFF`), keeping substitutions that preserve the failure, so
///    the reproduction reads as "these are the bytes that matter".
///
/// Returns the smallest input found; at worst, the original.
#[must_use]
pub fn minimize_bytes(input: &[u8], mut fails: impl FnMut(&[u8]) -> bool) -> Vec<u8> {
    let mut best = input.to_vec();
    if !fails(&best) {
        return best;
    }

    // Phase 1: ddmin-style chunk removal to a fixed point.
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 {
        let mut changed = false;
        let mut start = 0;
        while start < best.len() {
            let end = (start + chunk).min(best.len());
            let mut candidate = Vec::with_capacity(best.len() - (end - start));
            candidate.extend_from_slice(&best[..start]);
            candidate.extend_from_slice(&best[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                best = candidate;
                changed = true;
                // Retry the same offset: the next chunk slid into place.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 && !changed {
            break;
        }
        if !changed {
            chunk /= 2;
        }
    }

    // Phase 2: normalize surviving bytes — 0 first, 0xFF only for bytes
    // that refused 0 (so zeroed don't-cares stay zeroed).
    for probe in [0u8, 0xFF] {
        for i in 0..best.len() {
            if best[i] == probe || (probe == 0xFF && best[i] == 0) {
                continue;
            }
            let saved = best[i];
            best[i] = probe;
            if !fails(&best) {
                best[i] = saved;
            }
        }
    }
    best
}

/// Replays `plan` against a worst-case consultation pattern to collect the
/// per-site call numbers at which `site` fires within the first
/// `PROBE_CALLS` consultations.
fn observed_firings(plan: &FaultPlan, site: &str) -> Vec<u64> {
    const PROBE_CALLS: u64 = 4096;
    let mut inj = FaultInjector::new(plan.clone());
    let mut firings = Vec::new();
    for call in 1..=PROBE_CALLS {
        if inj.should_fail(site) {
            firings.push(call);
        }
    }
    firings
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy system: fails iff "b" fires at least once in 100 calls.
    fn b_fires(plan: &FaultPlan) -> bool {
        let mut inj = FaultInjector::new(plan.clone());
        (0..100).any(|_| {
            inj.should_fail("a");
            inj.should_fail("b")
        })
    }

    #[test]
    fn irrelevant_sites_are_dropped() {
        let plan = FaultPlan::new(3)
            .with_site("a", Schedule::Probability(0.9))
            .with_site("b", Schedule::EveryNth(10))
            .with_site("c", Schedule::Probability(0.5));
        let min = minimize(&plan, b_fires);
        assert_eq!(min.len(), 1);
        assert!(min.site("b").is_some());
    }

    #[test]
    fn schedules_shrink_to_one_shot() {
        let plan = FaultPlan::new(3).with_site("b", Schedule::EveryNth(10));
        let min = minimize(&plan, b_fires);
        assert_eq!(min.site("b"), Some(&Schedule::OneShotAt(10)));
    }

    #[test]
    fn passing_plans_are_returned_unchanged() {
        let plan = FaultPlan::new(1).with_site("x", Schedule::EveryNth(2));
        let min = minimize(&plan, |_| false);
        assert_eq!(min, plan);
    }

    #[test]
    fn minimize_bytes_strips_irrelevant_bytes() {
        // Fails iff the input contains the two-byte marker 0xDE 0xAD.
        let fails = |b: &[u8]| b.windows(2).any(|w| w == [0xDE, 0xAD]);
        let mut input = vec![7u8; 64];
        input[40] = 0xDE;
        input[41] = 0xAD;
        let min = minimize_bytes(&input, fails);
        assert!(fails(&min), "shrinking must preserve the failure");
        assert_eq!(min, vec![0xDE, 0xAD], "only the marker survives");
    }

    #[test]
    fn minimize_bytes_normalizes_dont_care_bytes() {
        // Fails iff the input is exactly 4 bytes with byte 0 == 0x7F: the
        // other three bytes are load-bearing only in count, not value.
        let fails = |b: &[u8]| b.len() == 4 && b[0] == 0x7F;
        let min = minimize_bytes(&[0x7F, 9, 9, 9], fails);
        assert_eq!(min, vec![0x7F, 0, 0, 0]);
    }

    #[test]
    fn minimize_bytes_returns_passing_inputs_unchanged() {
        let input = vec![1, 2, 3];
        assert_eq!(minimize_bytes(&input, |_| false), input);
    }

    #[test]
    fn probabilistic_schedules_pin_to_observed_firing() {
        let plan = FaultPlan::new(11).with_site("b", Schedule::Probability(0.2));
        let min = minimize(&plan, b_fires);
        // Must still fail, and must be a one-shot now.
        assert!(b_fires(&min));
        assert!(matches!(min.site("b"), Some(Schedule::OneShotAt(_))));
    }
}
