//! Abstract syntax for the BitC-style language.
//!
//! The language is an ML-semantics, S-expression-syntax core with the two
//! features the paper insists a systems language cannot drop: *mutability*
//! (`set!`, mutable vectors, `while`) and *unboxed values* (the VM offers
//! both representations; see [`crate::vm`]). Functions are first-class with
//! lexical closures; `let` is polymorphic (Hindley–Milner).

use std::fmt;

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The unit value `(unit)`.
    Unit,
    /// Variable reference.
    Var(String),
    /// `(if c t e)`
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `(let ((x e) ...) body)` — parallel, polymorphic bindings.
    Let(Vec<(String, Expr)>, Box<Expr>),
    /// `(lambda (x ...) body)`
    Lambda(Vec<String>, Box<Expr>),
    /// `(f a ...)` — application (head may be any expression).
    Apply(Box<Expr>, Vec<Expr>),
    /// `(begin e ...)` — sequencing; value of the last expression.
    Begin(Vec<Expr>),
    /// `(set! x e)` — mutation of a bound variable.
    SetBang(String, Box<Expr>),
    /// `(while c body...)` — loops while `c` is true; evaluates to unit.
    While(Box<Expr>, Vec<Expr>),
    /// `(make-vector n init)`
    MakeVector(Box<Expr>, Box<Expr>),
    /// `(vec-ref v i)`
    VectorRef(Box<Expr>, Box<Expr>),
    /// `(vec-set! v i e)`
    VectorSet(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `(vec-len v)`
    VectorLen(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for applications of named functions.
    #[must_use]
    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Apply(Box::new(Expr::Var(name.to_owned())), args)
    }
}

/// A top-level definition `(define name expr)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Def {
    /// Binding name.
    pub name: String,
    /// Bound expression (usually a lambda).
    pub expr: Expr,
}

/// A whole program: definitions followed by a main expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level definitions, in order; later ones may reference earlier
    /// ones, and any definition may reference itself (recursion).
    pub defs: Vec<Def>,
    /// The program body evaluated for the result.
    pub main: Expr,
}

fn fmt_list(f: &mut fmt::Formatter<'_>, head: &str, items: &[Expr]) -> fmt::Result {
    write!(f, "({head}")?;
    for e in items {
        write!(f, " {e}")?;
    }
    write!(f, ")")
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(n) => write!(f, "{n}"),
            Expr::Bool(true) => write!(f, "#t"),
            Expr::Bool(false) => write!(f, "#f"),
            Expr::Unit => write!(f, "(unit)"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::If(c, t, e) => write!(f, "(if {c} {t} {e})"),
            Expr::Let(binds, body) => {
                write!(f, "(let (")?;
                for (i, (x, e)) in binds.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "({x} {e})")?;
                }
                write!(f, ") {body})")
            }
            Expr::Lambda(params, body) => {
                write!(f, "(lambda (")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") {body})")
            }
            Expr::Apply(head, args) => {
                write!(f, "({head}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            Expr::Begin(es) => fmt_list(f, "begin", es),
            Expr::SetBang(x, e) => write!(f, "(set! {x} {e})"),
            Expr::While(c, body) => {
                write!(f, "(while {c}")?;
                for e in body {
                    write!(f, " {e}")?;
                }
                write!(f, ")")
            }
            Expr::MakeVector(n, init) => write!(f, "(make-vector {n} {init})"),
            Expr::VectorRef(v, i) => write!(f, "(vec-ref {v} {i})"),
            Expr::VectorSet(v, i, e) => write!(f, "(vec-set! {v} {i} {e})"),
            Expr::VectorLen(v) => write!(f, "(vec-len {v})"),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.defs {
            writeln!(f, "(define {} {})", d.name, d.expr)?;
        }
        write!(f, "{}", self.main)
    }
}

/// Names treated as primitive operators by the type checker, interpreter,
/// and compiler: `(op, arity)`.
pub const PRIMITIVES: &[(&str, usize)] = &[
    ("+", 2),
    ("-", 2),
    ("*", 2),
    ("div", 2),
    ("mod", 2),
    ("<", 2),
    ("<=", 2),
    (">", 2),
    (">=", 2),
    ("=", 2),
    ("!=", 2),
    ("and", 2),
    ("or", 2),
    ("not", 1),
];

/// True if `name` is a primitive operator.
#[must_use]
pub fn is_primitive(name: &str) -> bool {
    PRIMITIVES.iter().any(|(p, _)| *p == name)
}

/// Arity of a primitive operator.
#[must_use]
pub fn primitive_arity(name: &str) -> Option<usize> {
    PRIMITIVES.iter().find(|(p, _)| *p == name).map(|(_, a)| *a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_shape() {
        let e = Expr::If(
            Box::new(Expr::call("<", vec![Expr::Var("x".into()), Expr::Int(10)])),
            Box::new(Expr::Int(1)),
            Box::new(Expr::Int(0)),
        );
        assert_eq!(e.to_string(), "(if (< x 10) 1 0)");
    }

    #[test]
    fn primitives_are_recognized() {
        assert!(is_primitive("+"));
        assert!(!is_primitive("vec-ref"));
        assert_eq!(primitive_arity("not"), Some(1));
        assert_eq!(primitive_arity("frobnicate"), None);
    }

    #[test]
    fn program_display_lists_defs_then_main() {
        let p = Program {
            defs: vec![Def {
                name: "id".into(),
                expr: Expr::Lambda(vec!["x".into()], Box::new(Expr::Var("x".into()))),
            }],
            main: Expr::call("id", vec![Expr::Int(5)]),
        };
        let s = p.to_string();
        assert!(s.starts_with("(define id (lambda (x) x))"));
        assert!(s.ends_with("(id 5)"));
    }
}
