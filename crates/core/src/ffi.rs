//! Native-function registry: the foreign-function boundary between VM code
//! and host (Rust/"C") code.
//!
//! The paper's Fallacy 4 discussion turns on whether incremental adoption is
//! viable — can new-language code call the legacy world cheaply enough to
//! rewrite one component at a time? Experiment E4 measures exactly this
//! boundary: a VM→native call pays argument marshalling (and, in the boxed
//! representation, unboxing) that a VM→VM call does not.

use crate::diag::{BitcError, Result};
use std::collections::HashMap;

/// A native function: integer arguments in, integer result out — the C ABI
/// of this miniature world.
pub type NativeFn = fn(&[i64]) -> std::result::Result<i64, String>;

/// A registry of named native functions with arities.
#[derive(Default)]
pub struct NativeRegistry {
    entries: HashMap<String, (NativeFn, usize)>,
}

impl std::fmt::Debug for NativeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeRegistry")
            .field("count", &self.entries.len())
            .finish()
    }
}

impl NativeRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry preloaded with the standard test natives.
    #[must_use]
    pub fn with_defaults() -> Self {
        let mut r = Self::new();
        r.register("host-add", 2, |args| Ok(args[0].wrapping_add(args[1])));
        r.register("host-mul", 2, |args| Ok(args[0].wrapping_mul(args[1])));
        r.register("host-clamp", 3, |args| Ok(args[0].clamp(args[1], args[2])));
        r.register("host-sum-to", 1, |args| {
            // A native leaf with real work: sum 1..=n.
            let n = args[0].max(0);
            Ok(n * (n + 1) / 2)
        });
        r
    }

    /// Registers `f` under `name` with the given arity.
    pub fn register(&mut self, name: &str, arity: usize, f: NativeFn) {
        self.entries.insert(name.to_owned(), (f, arity));
    }

    /// Looks up a native by name.
    ///
    /// # Errors
    ///
    /// Returns a compile error naming the missing native.
    pub fn lookup(&self, name: &str) -> Result<(NativeFn, usize)> {
        self.entries
            .get(name)
            .copied()
            .ok_or_else(|| BitcError::compile(format!("native function {name} is not registered")))
    }

    /// `(name, arity)` pairs for handing to the compiler.
    #[must_use]
    pub fn signatures(&self) -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = self
            .entries
            .iter()
            .map(|(n, (_, a))| (n.clone(), *a))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_callable() {
        let r = NativeRegistry::with_defaults();
        let (f, arity) = r.lookup("host-add").unwrap();
        assert_eq!(arity, 2);
        assert_eq!(f(&[2, 3]).unwrap(), 5);
        let (f, _) = r.lookup("host-sum-to").unwrap();
        assert_eq!(f(&[10]).unwrap(), 55);
    }

    #[test]
    fn missing_native_is_reported_by_name() {
        let r = NativeRegistry::new();
        let err = r.lookup("nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn custom_natives_can_fail() {
        let mut r = NativeRegistry::new();
        r.register("checked-div", 2, |args| {
            if args[1] == 0 {
                Err("division by zero".into())
            } else {
                Ok(args[0] / args[1])
            }
        });
        let (f, _) = r.lookup("checked-div").unwrap();
        assert!(f(&[1, 0]).is_err());
        assert_eq!(f(&[6, 2]).unwrap(), 3);
    }

    #[test]
    fn signatures_are_sorted_and_complete() {
        let r = NativeRegistry::with_defaults();
        let sigs = r.signatures();
        assert_eq!(sigs.len(), 4);
        assert!(sigs.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
