//! Lexer for the BitC-style S-expression surface syntax.
//!
//! BitC used an S-expression concrete syntax in its early revisions (the
//! paper's group published the grammar that way), which keeps the reader
//! small and unambiguous: parentheses, identifiers, integer literals,
//! booleans `#t`/`#f`, and line comments starting with `;`.

use crate::diag::{BitcError, Result, Span};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// An integer literal.
    Int(i64),
    /// `#t` or `#f`.
    Bool(bool),
    /// An identifier or operator symbol.
    Ident(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Int(n) => write!(f, "{n}"),
            Token::Bool(true) => write!(f, "#t"),
            Token::Bool(false) => write!(f, "#f"),
            Token::Ident(s) => write!(f, "{s}"),
        }
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Its source location.
    pub span: Span,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || "+-*/<>=!?_.:%".contains(c)
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns [`BitcError::Lex`] on malformed literals or stray characters.
pub fn lex(src: &str) -> Result<Vec<SpannedToken>> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ';' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(SpannedToken {
                    token: Token::LParen,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            ')' => {
                out.push(SpannedToken {
                    token: Token::RParen,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            '#' => {
                let start = i;
                i += 1;
                match bytes.get(i) {
                    Some('t') => {
                        out.push(SpannedToken {
                            token: Token::Bool(true),
                            span: Span::new(start, i + 1),
                        });
                        i += 1;
                    }
                    Some('f') => {
                        out.push(SpannedToken {
                            token: Token::Bool(false),
                            span: Span::new(start, i + 1),
                        });
                        i += 1;
                    }
                    _ => {
                        return Err(BitcError::Lex {
                            span: Span::new(start, i),
                            message: "expected #t or #f".into(),
                        })
                    }
                }
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let n = text.parse::<i64>().map_err(|_| BitcError::Lex {
                    span: Span::new(start, i),
                    message: format!("integer literal {text} out of range"),
                })?;
                out.push(SpannedToken {
                    token: Token::Int(n),
                    span: Span::new(start, i),
                });
            }
            c if is_ident_char(c) => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(SpannedToken {
                    token: Token::Ident(text),
                    span: Span::new(start, i),
                });
            }
            other => {
                return Err(BitcError::Lex {
                    span: Span::new(i, i + 1),
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("(+ 1 23)"),
            vec![
                Token::LParen,
                Token::Ident("+".into()),
                Token::Int(1),
                Token::Int(23),
                Token::RParen
            ]
        );
    }

    #[test]
    fn negative_numbers_vs_minus_operator() {
        assert_eq!(toks("-5"), vec![Token::Int(-5)]);
        assert_eq!(toks("- 5"), vec![Token::Ident("-".into()), Token::Int(5)]);
    }

    #[test]
    fn booleans() {
        assert_eq!(toks("#t #f"), vec![Token::Bool(true), Token::Bool(false)]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 ; the loneliest number\n2"),
            vec![Token::Int(1), Token::Int(2)]
        );
    }

    #[test]
    fn identifiers_with_punctuation() {
        assert_eq!(
            toks("set! vec-ref <= foo_bar"),
            vec![
                Token::Ident("set!".into()),
                Token::Ident("vec-ref".into()),
                Token::Ident("<=".into()),
                Token::Ident("foo_bar".into())
            ]
        );
    }

    #[test]
    fn spans_point_into_source() {
        let ts = lex("(ab 12)").unwrap();
        assert_eq!(ts[1].span, Span::new(1, 3));
        assert_eq!(ts[2].span, Span::new(4, 6));
    }

    #[test]
    fn bad_hash_is_an_error() {
        assert!(lex("#x").is_err());
    }

    #[test]
    fn stray_character_is_an_error() {
        assert!(lex("[1]").is_err());
    }

    #[test]
    fn out_of_range_integer_is_an_error() {
        assert!(lex("999999999999999999999999").is_err());
    }

    #[test]
    fn empty_source_lexes_to_nothing() {
        assert!(toks("").is_empty());
    }
}
