//! Types and unification for the Hindley–Milner checker.

use crate::diag::{BitcError, Result};
use std::collections::HashMap;
use std::fmt;

/// A monotype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 64-bit signed integer (unboxed machine word).
    Int,
    /// Boolean.
    Bool,
    /// Unit.
    Unit,
    /// Inference variable.
    Var(u32),
    /// Function type `(args) -> ret`.
    Fn(Vec<Type>, Box<Type>),
    /// Mutable vector.
    Vector(Box<Type>),
}

impl Type {
    /// Collects free inference variables into `out`.
    pub fn free_vars(&self, out: &mut Vec<u32>) {
        match self {
            Type::Int | Type::Bool | Type::Unit => {}
            Type::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Type::Fn(args, ret) => {
                for a in args {
                    a.free_vars(out);
                }
                ret.free_vars(out);
            }
            Type::Vector(t) => t.free_vars(out),
        }
    }
}

fn var_name(v: u32) -> String {
    // a, b, ..., z, t26, t27, ...
    if v < 26 {
        char::from(b'a' + u8::try_from(v).expect("< 26")).to_string()
    } else {
        format!("t{v}")
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::Unit => write!(f, "unit"),
            Type::Var(v) => write!(f, "'{}", var_name(*v)),
            Type::Fn(args, ret) => {
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ") -> {ret}")
            }
            Type::Vector(t) => write!(f, "(vector {t})"),
        }
    }
}

/// A type scheme `forall vars. ty`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheme {
    /// Universally quantified variables.
    pub vars: Vec<u32>,
    /// The quantified type.
    pub ty: Type,
}

impl Scheme {
    /// A scheme with no quantified variables.
    #[must_use]
    pub fn mono(ty: Type) -> Self {
        Scheme {
            vars: Vec::new(),
            ty,
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.vars.is_empty() {
            write!(f, "{}", self.ty)
        } else {
            write!(f, "forall")?;
            for v in &self.vars {
                write!(f, " '{}", var_name(*v))?;
            }
            write!(f, ". {}", self.ty)
        }
    }
}

/// A substitution from inference variables to types, with path resolution.
#[derive(Debug, Clone, Default)]
pub struct Subst {
    map: HashMap<u32, Type>,
}

impl Subst {
    /// The empty substitution.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves `t` one level: follows variable bindings until a non-variable
    /// or unbound variable is reached.
    #[must_use]
    pub fn resolve_shallow(&self, mut t: Type) -> Type {
        while let Type::Var(v) = t {
            match self.map.get(&v) {
                Some(next) => t = next.clone(),
                None => return Type::Var(v),
            }
        }
        t
    }

    /// Fully applies the substitution.
    #[must_use]
    pub fn apply(&self, t: &Type) -> Type {
        match self.resolve_shallow(t.clone()) {
            Type::Fn(args, ret) => Type::Fn(
                args.iter().map(|a| self.apply(a)).collect(),
                Box::new(self.apply(&ret)),
            ),
            Type::Vector(inner) => Type::Vector(Box::new(self.apply(&inner))),
            other => other,
        }
    }

    fn occurs(&self, v: u32, t: &Type) -> bool {
        match self.resolve_shallow(t.clone()) {
            Type::Var(w) => w == v,
            Type::Fn(args, ret) => args.iter().any(|a| self.occurs(v, a)) || self.occurs(v, &ret),
            Type::Vector(inner) => self.occurs(v, &inner),
            _ => false,
        }
    }

    /// Unifies two types, extending the substitution.
    ///
    /// # Errors
    ///
    /// Returns a type error on constructor mismatch, arity mismatch, or an
    /// occurs-check failure (infinite type).
    pub fn unify(&mut self, a: &Type, b: &Type) -> Result<()> {
        let a = self.resolve_shallow(a.clone());
        let b = self.resolve_shallow(b.clone());
        match (a, b) {
            (Type::Int, Type::Int) | (Type::Bool, Type::Bool) | (Type::Unit, Type::Unit) => Ok(()),
            (Type::Var(v), t) | (t, Type::Var(v)) => {
                if t == Type::Var(v) {
                    return Ok(());
                }
                if self.occurs(v, &t) {
                    return Err(BitcError::type_error(format!(
                        "infinite type: '{} occurs in {}",
                        var_name(v),
                        self.apply(&t)
                    )));
                }
                self.map.insert(v, t);
                Ok(())
            }
            (Type::Fn(a_args, a_ret), Type::Fn(b_args, b_ret)) => {
                if a_args.len() != b_args.len() {
                    return Err(BitcError::type_error(format!(
                        "arity mismatch: function of {} arguments vs {}",
                        a_args.len(),
                        b_args.len()
                    )));
                }
                for (x, y) in a_args.iter().zip(b_args.iter()) {
                    self.unify(x, y)?;
                }
                self.unify(&a_ret, &b_ret)
            }
            (Type::Vector(x), Type::Vector(y)) => self.unify(&x, &y),
            (a, b) => Err(BitcError::type_error(format!(
                "cannot unify {} with {}",
                self.apply(&a),
                self.apply(&b)
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_identical_bases() {
        let mut s = Subst::new();
        assert!(s.unify(&Type::Int, &Type::Int).is_ok());
        assert!(s.unify(&Type::Int, &Type::Bool).is_err());
    }

    #[test]
    fn unify_binds_variables() {
        let mut s = Subst::new();
        s.unify(&Type::Var(0), &Type::Int).unwrap();
        assert_eq!(s.apply(&Type::Var(0)), Type::Int);
    }

    #[test]
    fn unify_chains_variables() {
        let mut s = Subst::new();
        s.unify(&Type::Var(0), &Type::Var(1)).unwrap();
        s.unify(&Type::Var(1), &Type::Bool).unwrap();
        assert_eq!(s.apply(&Type::Var(0)), Type::Bool);
    }

    #[test]
    fn occurs_check_rejects_infinite_types() {
        let mut s = Subst::new();
        let t = Type::Fn(vec![Type::Var(0)], Box::new(Type::Int));
        assert!(s.unify(&Type::Var(0), &t).is_err());
    }

    #[test]
    fn function_types_unify_structurally() {
        let mut s = Subst::new();
        let f = Type::Fn(vec![Type::Var(0)], Box::new(Type::Var(0)));
        let g = Type::Fn(vec![Type::Int], Box::new(Type::Var(1)));
        s.unify(&f, &g).unwrap();
        assert_eq!(s.apply(&Type::Var(1)), Type::Int);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let mut s = Subst::new();
        let f = Type::Fn(vec![Type::Int], Box::new(Type::Int));
        let g = Type::Fn(vec![Type::Int, Type::Int], Box::new(Type::Int));
        assert!(s.unify(&f, &g).is_err());
    }

    #[test]
    fn display_is_readable() {
        let t = Type::Fn(
            vec![Type::Int, Type::Var(1)],
            Box::new(Type::Vector(Box::new(Type::Var(1)))),
        );
        assert_eq!(t.to_string(), "(int 'b) -> (vector 'b)");
        let s = Scheme {
            vars: vec![1],
            ty: t,
        };
        assert_eq!(s.to_string(), "forall 'b. (int 'b) -> (vector 'b)");
    }
}
