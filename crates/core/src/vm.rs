//! The stack VM, generic over value representation.
//!
//! The same bytecode executes under two representations:
//!
//! * [`Unboxed`] — every value is one raw machine word (`u64`). The type
//!   checker has already proven the tags unnecessary, so none are stored or
//!   checked: this is the representation BitC argues a systems language must
//!   deliver.
//! * [`Boxed`] — every value is a reference-counted heap cell with a tag,
//!   checked on every use: the representation a uniformly-boxed managed
//!   runtime pays for.
//!
//! Experiment E2 runs identical programs under both and measures the gap the
//! paper's Fallacy 2 says can be optimised away; E3 then turns optimizer
//! passes on to see how much of the gap they actually recover.

use crate::bytecode::{Bytecode, CaptureSrc, Instr};
use crate::diag::{BitcError, Result};
use crate::ffi::{NativeFn, NativeRegistry};
use std::fmt;
use std::rc::Rc;

/// A value representation strategy.
pub trait Rep {
    /// The runtime value type.
    type Value: Clone + fmt::Debug;

    /// Display name for reports.
    const NAME: &'static str;

    /// True if producing a value heap-allocates (for allocation accounting).
    const ALLOCATES: bool;

    /// Wraps an integer.
    fn from_int(n: i64) -> Self::Value;

    /// Extracts an integer.
    ///
    /// # Errors
    ///
    /// Tag mismatch (boxed representation only).
    fn to_int(v: &Self::Value) -> Result<i64>;

    /// Wraps a boolean.
    fn from_bool(b: bool) -> Self::Value;

    /// Extracts a boolean.
    ///
    /// # Errors
    ///
    /// Tag mismatch (boxed representation only).
    fn to_bool(v: &Self::Value) -> Result<bool>;

    /// The unit value.
    fn unit() -> Self::Value;

    /// Wraps a closure handle.
    fn from_closure(idx: u32) -> Self::Value;

    /// Extracts a closure handle.
    ///
    /// # Errors
    ///
    /// Tag mismatch (boxed representation only).
    fn to_closure(v: &Self::Value) -> Result<u32>;

    /// Wraps a vector handle.
    fn from_vec(idx: u32) -> Self::Value;

    /// Extracts a vector handle.
    ///
    /// # Errors
    ///
    /// Tag mismatch (boxed representation only).
    fn to_vec(v: &Self::Value) -> Result<u32>;
}

/// Unboxed representation: raw 64-bit words, no tags, no checks.
#[derive(Debug, Clone, Copy)]
pub struct Unboxed;

impl Rep for Unboxed {
    type Value = u64;

    const NAME: &'static str = "unboxed";
    const ALLOCATES: bool = false;

    #[inline]
    fn from_int(n: i64) -> u64 {
        n.cast_unsigned()
    }

    #[inline]
    fn to_int(v: &u64) -> Result<i64> {
        Ok(v.cast_signed())
    }

    #[inline]
    fn from_bool(b: bool) -> u64 {
        u64::from(b)
    }

    #[inline]
    fn to_bool(v: &u64) -> Result<bool> {
        Ok(*v != 0)
    }

    #[inline]
    fn unit() -> u64 {
        0
    }

    #[inline]
    fn from_closure(idx: u32) -> u64 {
        u64::from(idx)
    }

    #[inline]
    fn to_closure(v: &u64) -> Result<u32> {
        u32::try_from(*v).map_err(|_| BitcError::runtime("corrupt closure handle"))
    }

    #[inline]
    fn from_vec(idx: u32) -> u64 {
        u64::from(idx)
    }

    #[inline]
    fn to_vec(v: &u64) -> Result<u32> {
        u32::try_from(*v).map_err(|_| BitcError::runtime("corrupt vector handle"))
    }
}

/// A tagged, heap-allocated value cell.
#[derive(Debug, Clone, PartialEq)]
pub enum BoxedCell {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Unit.
    Unit,
    /// Closure handle.
    Closure(u32),
    /// Vector handle.
    Vector(u32),
}

/// Boxed representation: every value is `Rc<BoxedCell>`, checked on use.
#[derive(Debug, Clone, Copy)]
pub struct Boxed;

impl Rep for Boxed {
    type Value = Rc<BoxedCell>;

    const NAME: &'static str = "boxed";
    const ALLOCATES: bool = true;

    fn from_int(n: i64) -> Rc<BoxedCell> {
        Rc::new(BoxedCell::Int(n))
    }

    fn to_int(v: &Rc<BoxedCell>) -> Result<i64> {
        match **v {
            BoxedCell::Int(n) => Ok(n),
            ref other => Err(BitcError::runtime(format!("expected int, found {other:?}"))),
        }
    }

    fn from_bool(b: bool) -> Rc<BoxedCell> {
        Rc::new(BoxedCell::Bool(b))
    }

    fn to_bool(v: &Rc<BoxedCell>) -> Result<bool> {
        match **v {
            BoxedCell::Bool(b) => Ok(b),
            ref other => Err(BitcError::runtime(format!(
                "expected bool, found {other:?}"
            ))),
        }
    }

    fn unit() -> Rc<BoxedCell> {
        Rc::new(BoxedCell::Unit)
    }

    fn from_closure(idx: u32) -> Rc<BoxedCell> {
        Rc::new(BoxedCell::Closure(idx))
    }

    fn to_closure(v: &Rc<BoxedCell>) -> Result<u32> {
        match **v {
            BoxedCell::Closure(i) => Ok(i),
            ref other => Err(BitcError::runtime(format!(
                "expected closure, found {other:?}"
            ))),
        }
    }

    fn from_vec(idx: u32) -> Rc<BoxedCell> {
        Rc::new(BoxedCell::Vector(idx))
    }

    fn to_vec(v: &Rc<BoxedCell>) -> Result<u32> {
        match **v {
            BoxedCell::Vector(i) => Ok(i),
            ref other => Err(BitcError::runtime(format!(
                "expected vector, found {other:?}"
            ))),
        }
    }
}

#[derive(Debug)]
struct ClosureRt<R: Rep> {
    func: u16,
    captures: Vec<R::Value>,
}

#[derive(Debug)]
struct Frame {
    func: usize,
    ip: usize,
    base: usize,
    closure: Option<u32>,
}

/// Execution counters for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Heap cells allocated by the value representation.
    pub value_allocations: u64,
    /// VM→VM calls.
    pub calls: u64,
    /// VM→native calls.
    pub native_calls: u64,
}

/// Maximum call depth (guards against runaway recursion in tests).
const MAX_DEPTH: usize = 100_000;

/// The virtual machine, parameterized by representation.
#[derive(Debug)]
pub struct Vm<'a, R: Rep> {
    bc: &'a Bytecode,
    natives: Vec<NativeFn>,
    globals: Vec<R::Value>,
    closures: Vec<ClosureRt<R>>,
    vectors: Vec<Vec<R::Value>>,
    /// Instruction budget: `Some(n)` traps after `n` executed instructions.
    fuel: Option<u64>,
    /// Execution counters.
    pub stats: VmStats,
}

impl<'a, R: Rep> Vm<'a, R> {
    /// Prepares a VM for `bc`, resolving natives against `registry`.
    ///
    /// # Errors
    ///
    /// Returns a compile error if a referenced native is missing.
    pub fn new(bc: &'a Bytecode, registry: &NativeRegistry) -> Result<Self> {
        let natives: Result<Vec<NativeFn>> = bc
            .natives
            .iter()
            .map(|n| registry.lookup(n).map(|(f, _)| f))
            .collect();
        // Globals default to unit until their defining code runs.
        let max_global = bc
            .functions
            .iter()
            .flat_map(|f| &f.code)
            .filter_map(|i| match i {
                Instr::LoadGlobal(g) | Instr::StoreGlobal(g) => Some(usize::from(*g) + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        Ok(Vm {
            bc,
            natives: natives?,
            globals: (0..max_global).map(|_| R::unit()).collect(),
            closures: Vec::new(),
            vectors: Vec::new(),
            fuel: None,
            stats: VmStats::default(),
        })
    }

    /// Caps execution at `fuel` instructions: the run traps with a runtime
    /// error instead of looping forever. Untrusted programs — fuzzer
    /// populations, scenario-injected filters — must always run fueled;
    /// `None` (the default) leaves execution unbounded.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    fn produce(&mut self, v: R::Value) -> R::Value {
        if R::ALLOCATES {
            self.stats.value_allocations += 1;
        }
        v
    }

    /// Runs the entry function to completion.
    ///
    /// # Errors
    ///
    /// Returns [`BitcError::Runtime`] on traps (division by zero, bounds,
    /// call-depth, or — in the boxed representation — tag mismatches).
    #[allow(clippy::too_many_lines)]
    pub fn run(&mut self) -> Result<R::Value> {
        let mut stack: Vec<R::Value> = Vec::with_capacity(256);
        let mut frames: Vec<Frame> = Vec::with_capacity(64);
        // Enter main.
        for _ in 0..self.bc.functions[0].n_locals {
            stack.push(R::unit());
        }
        frames.push(Frame {
            func: 0,
            ip: 0,
            base: 0,
            closure: None,
        });

        macro_rules! pop {
            () => {
                stack
                    .pop()
                    .ok_or_else(|| BitcError::runtime("operand stack underflow"))?
            };
        }
        macro_rules! int_binop {
            ($op:expr) => {{
                let b = R::to_int(&pop!())?;
                let a = R::to_int(&pop!())?;
                let r = R::from_int($op(a, b));
                let r = self.produce(r);
                stack.push(r);
            }};
        }
        macro_rules! cmp_binop {
            ($op:expr) => {{
                let b = R::to_int(&pop!())?;
                let a = R::to_int(&pop!())?;
                let r = R::from_bool($op(a, b));
                let r = self.produce(r);
                stack.push(r);
            }};
        }

        loop {
            let frame = frames.last_mut().expect("at least one frame");
            let func = &self.bc.functions[frame.func];
            let Some(instr) = func.code.get(frame.ip) else {
                return Err(BitcError::runtime("fell off the end of a function"));
            };
            frame.ip += 1;
            self.stats.instructions += 1;
            if self.fuel.is_some_and(|f| self.stats.instructions > f) {
                return Err(BitcError::runtime("fuel exhausted"));
            }
            let (func_idx, base) = (frame.func, frame.base);
            let _ = func_idx;
            match instr.clone() {
                Instr::Const(n) => {
                    let v = self.produce(R::from_int(n));
                    stack.push(v);
                }
                Instr::ConstBool(b) => {
                    let v = self.produce(R::from_bool(b));
                    stack.push(v);
                }
                Instr::ConstUnit => {
                    let v = self.produce(R::unit());
                    stack.push(v);
                }
                Instr::LoadLocal(i) => {
                    let v = stack[base + usize::from(i)].clone();
                    stack.push(v);
                }
                Instr::StoreLocal(i) => {
                    let v = pop!();
                    stack[base + usize::from(i)] = v;
                }
                Instr::LoadCapture(i) => {
                    let closure = frames
                        .last()
                        .and_then(|f| f.closure)
                        .ok_or_else(|| BitcError::runtime("capture load outside closure"))?;
                    let v = self.closures[closure as usize].captures[usize::from(i)].clone();
                    stack.push(v);
                }
                Instr::LoadGlobal(g) => {
                    let v = self.globals[usize::from(g)].clone();
                    stack.push(v);
                }
                Instr::StoreGlobal(g) => {
                    let v = pop!();
                    self.globals[usize::from(g)] = v;
                }
                Instr::Add => int_binop!(i64::wrapping_add),
                Instr::Sub => int_binop!(i64::wrapping_sub),
                Instr::Mul => int_binop!(i64::wrapping_mul),
                Instr::Div => {
                    let b = R::to_int(&pop!())?;
                    let a = R::to_int(&pop!())?;
                    if b == 0 {
                        return Err(BitcError::runtime("division by zero"));
                    }
                    let v = self.produce(R::from_int(a.wrapping_div(b)));
                    stack.push(v);
                }
                Instr::Mod => {
                    let b = R::to_int(&pop!())?;
                    let a = R::to_int(&pop!())?;
                    if b == 0 {
                        return Err(BitcError::runtime("modulo by zero"));
                    }
                    let v = self.produce(R::from_int(a.wrapping_rem(b)));
                    stack.push(v);
                }
                Instr::Lt => cmp_binop!(|a, b| a < b),
                Instr::Le => cmp_binop!(|a, b| a <= b),
                Instr::Gt => cmp_binop!(|a, b| a > b),
                Instr::Ge => cmp_binop!(|a, b| a >= b),
                Instr::Eq => cmp_binop!(|a, b| a == b),
                Instr::Ne => cmp_binop!(|a, b| a != b),
                Instr::And => {
                    let b = R::to_bool(&pop!())?;
                    let a = R::to_bool(&pop!())?;
                    let v = self.produce(R::from_bool(a && b));
                    stack.push(v);
                }
                Instr::Or => {
                    let b = R::to_bool(&pop!())?;
                    let a = R::to_bool(&pop!())?;
                    let v = self.produce(R::from_bool(a || b));
                    stack.push(v);
                }
                Instr::Not => {
                    let a = R::to_bool(&pop!())?;
                    let v = self.produce(R::from_bool(!a));
                    stack.push(v);
                }
                Instr::AddImm(n) => {
                    let a = R::to_int(&pop!())?;
                    let v = self.produce(R::from_int(a.wrapping_add(n)));
                    stack.push(v);
                }
                Instr::Jump(d) => {
                    let frame = frames.last_mut().expect("frame");
                    frame.ip = offset(frame.ip, d)?;
                }
                Instr::JumpIfFalse(d) => {
                    let c = R::to_bool(&pop!())?;
                    if !c {
                        let frame = frames.last_mut().expect("frame");
                        frame.ip = offset(frame.ip, d)?;
                    }
                }
                Instr::MakeClosure { func, captures } => {
                    let mut values = Vec::with_capacity(captures.len());
                    for src in &captures {
                        let v = match *src {
                            CaptureSrc::Local(s) => stack[base + usize::from(s)].clone(),
                            CaptureSrc::Capture(c) => {
                                let closure = frames
                                    .last()
                                    .and_then(|f| f.closure)
                                    .ok_or_else(|| BitcError::runtime("capture outside closure"))?;
                                self.closures[closure as usize].captures[usize::from(c)].clone()
                            }
                        };
                        values.push(v);
                    }
                    let idx = u32::try_from(self.closures.len())
                        .map_err(|_| BitcError::runtime("closure heap exhausted"))?;
                    self.closures.push(ClosureRt {
                        func,
                        captures: values,
                    });
                    let v = self.produce(R::from_closure(idx));
                    stack.push(v);
                }
                Instr::Call(nargs) => {
                    if frames.len() >= MAX_DEPTH {
                        return Err(BitcError::runtime("call depth exceeded"));
                    }
                    self.stats.calls += 1;
                    let nargs = usize::from(nargs);
                    if stack.len() < nargs + 1 {
                        return Err(BitcError::runtime("operand stack underflow at call"));
                    }
                    let args_start = stack.len() - nargs;
                    let closure_idx = R::to_closure(&stack[args_start - 1])?;
                    let callee = self.closures[closure_idx as usize].func;
                    let callee_fn = &self.bc.functions[usize::from(callee)];
                    if callee_fn.arity != nargs {
                        return Err(BitcError::runtime(format!(
                            "function {} expects {} arguments, got {nargs}",
                            callee_fn.name, callee_fn.arity
                        )));
                    }
                    // Locals: args already in place; remove the closure slot
                    // by shifting args down one.
                    stack.remove(args_start - 1);
                    let new_base = stack.len() - nargs;
                    for _ in 0..callee_fn.n_locals - nargs {
                        stack.push(R::unit());
                    }
                    frames.push(Frame {
                        func: usize::from(callee),
                        ip: 0,
                        base: new_base,
                        closure: Some(closure_idx),
                    });
                }
                Instr::TailCall(nargs) => {
                    self.stats.calls += 1;
                    let nargs = usize::from(nargs);
                    if stack.len() < nargs + 1 {
                        return Err(BitcError::runtime("operand stack underflow at tail call"));
                    }
                    let args_start = stack.len() - nargs;
                    let closure_idx = R::to_closure(&stack[args_start - 1])?;
                    let callee = self.closures[closure_idx as usize].func;
                    let callee_fn = &self.bc.functions[usize::from(callee)];
                    if callee_fn.arity != nargs {
                        return Err(BitcError::runtime(format!(
                            "function {} expects {} arguments, got {nargs}",
                            callee_fn.name, callee_fn.arity
                        )));
                    }
                    // Move args down over the current frame, then reuse it.
                    let frame = frames.last_mut().expect("frame");
                    let base = frame.base;
                    for i in 0..nargs {
                        stack[base + i] = stack[args_start + i].clone();
                    }
                    stack.truncate(base + nargs);
                    for _ in 0..callee_fn.n_locals - nargs {
                        stack.push(R::unit());
                    }
                    frame.func = usize::from(callee);
                    frame.ip = 0;
                    frame.closure = Some(closure_idx);
                }
                Instr::Ret => {
                    let result = pop!();
                    let frame = frames.pop().expect("frame to return from");
                    stack.truncate(frame.base);
                    if frames.is_empty() {
                        return Ok(result);
                    }
                    stack.push(result);
                }
                Instr::CallNative { idx, nargs } => {
                    self.stats.native_calls += 1;
                    let nargs = usize::from(nargs);
                    let mut args = vec![0i64; nargs];
                    for i in (0..nargs).rev() {
                        args[i] = R::to_int(&pop!())?;
                    }
                    let f = self.natives[usize::from(idx)];
                    let r = f(&args).map_err(BitcError::runtime)?;
                    let v = self.produce(R::from_int(r));
                    stack.push(v);
                }
                Instr::VecNew => {
                    let init = pop!();
                    let len = R::to_int(&pop!())?;
                    if len < 0 {
                        return Err(BitcError::runtime(format!(
                            "make-vector with negative length {len}"
                        )));
                    }
                    let idx = u32::try_from(self.vectors.len())
                        .map_err(|_| BitcError::runtime("vector heap exhausted"))?;
                    self.vectors
                        .push(vec![init; usize::try_from(len).expect("nonnegative")]);
                    self.stats.value_allocations += 1;
                    let v = self.produce(R::from_vec(idx));
                    stack.push(v);
                }
                Instr::VecGet => {
                    let i = R::to_int(&pop!())?;
                    let v = R::to_vec(&pop!())?;
                    let vec = &self.vectors[v as usize];
                    let item = usize::try_from(i).ok().and_then(|i| vec.get(i)).cloned();
                    match item {
                        Some(x) => stack.push(x),
                        None => {
                            return Err(BitcError::runtime(format!(
                                "vector index {i} out of bounds (len {})",
                                vec.len()
                            )))
                        }
                    }
                }
                Instr::VecSet => {
                    let x = pop!();
                    let i = R::to_int(&pop!())?;
                    let v = R::to_vec(&pop!())?;
                    let vec = &mut self.vectors[v as usize];
                    let len = vec.len();
                    match usize::try_from(i).ok().and_then(|i| vec.get_mut(i)) {
                        Some(slot) => *slot = x,
                        None => {
                            return Err(BitcError::runtime(format!(
                                "vector index {i} out of bounds (len {len})"
                            )))
                        }
                    }
                    let u = self.produce(R::unit());
                    stack.push(u);
                }
                Instr::VecLen => {
                    let v = R::to_vec(&pop!())?;
                    let len = i64::try_from(self.vectors[v as usize].len())
                        .map_err(|_| BitcError::runtime("vector length overflows i64"))?;
                    let r = self.produce(R::from_int(len));
                    stack.push(r);
                }
                Instr::Pop => {
                    let _ = pop!();
                }
            }
        }
    }

    /// Runs and extracts the result as an integer.
    ///
    /// # Errors
    ///
    /// Runtime traps, or a non-integer result.
    pub fn run_int(&mut self) -> Result<i64> {
        let v = self.run()?;
        R::to_int(&v)
    }
}

fn offset(ip: usize, delta: i32) -> Result<usize> {
    let target = i64::try_from(ip).expect("ip fits") + i64::from(delta);
    usize::try_from(target).map_err(|_| BitcError::runtime("jump before function start"))
}

/// Compiles and runs `src` under the unboxed representation.
///
/// # Errors
///
/// Any pipeline error.
pub fn run_unboxed(src: &str) -> Result<i64> {
    let bc = crate::compile::compile_source(src)?;
    Vm::<Unboxed>::new(&bc, &NativeRegistry::new())?.run_int()
}

/// Compiles and runs `src` under the unboxed representation with an
/// instruction budget — the entry point for untrusted (fuzzed) programs,
/// which may loop forever without one.
///
/// # Errors
///
/// Any pipeline error, including a runtime trap when the budget runs out.
pub fn run_fueled(src: &str, fuel: u64) -> Result<i64> {
    let bc = crate::compile::compile_source(src)?;
    Vm::<Unboxed>::new(&bc, &NativeRegistry::new())?
        .with_fuel(fuel)
        .run_int()
}

/// Compiles and runs `src` under the boxed representation.
///
/// # Errors
///
/// Any pipeline error.
pub fn run_boxed(src: &str) -> Result<i64> {
    let bc = crate::compile::compile_source(src)?;
    Vm::<Boxed>::new(&bc, &NativeRegistry::new())?.run_int()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_program_with_natives, compile_source};
    use crate::parser::parse_program;

    fn both(src: &str) -> (i64, i64) {
        (run_unboxed(src).unwrap(), run_boxed(src).unwrap())
    }

    #[test]
    fn arithmetic_matches_between_representations() {
        let (u, b) = both("(+ 1 (* 2 3))");
        assert_eq!(u, 7);
        assert_eq!(b, 7);
    }

    #[test]
    fn conditionals_and_comparisons() {
        let (u, b) = both("(if (< 3 5) 10 20)");
        assert_eq!((u, b), (10, 10));
    }

    #[test]
    fn let_bindings_and_shadowing() {
        let (u, b) = both("(let ((x 1)) (let ((x (+ x 1))) (* x 10)))");
        assert_eq!((u, b), (20, 20));
    }

    #[test]
    fn while_loop_accumulates() {
        let src = "(let ((i 0) (acc 0))
                     (begin
                       (while (< i 10) (set! acc (+ acc i)) (set! i (+ i 1)))
                       acc))";
        assert_eq!(both(src), (45, 45));
    }

    #[test]
    fn closures_capture_and_call() {
        let src = "(let ((make-adder (lambda (n) (lambda (x) (+ x n)))))
                     ((make-adder 3) 4))";
        assert_eq!(both(src), (7, 7));
    }

    #[test]
    fn mutation_through_closures_works_after_conversion() {
        let src = "(let ((counter 0))
                     (let ((bump (lambda (u) (set! counter (+ counter 1)))))
                       (begin (bump (unit)) (bump (unit)) counter)))";
        assert_eq!(both(src), (2, 2));
    }

    #[test]
    fn recursion_via_globals() {
        let src = "(define fib (lambda (n)
                      (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))
                    (fib 15)";
        assert_eq!(both(src), (610, 610));
    }

    #[test]
    fn vectors_work_in_both_reps() {
        let src = "(let ((v (make-vector 5 1)))
                     (begin
                       (vec-set! v 2 42)
                       (+ (vec-ref v 2) (+ (vec-ref v 0) (vec-len v)))))";
        assert_eq!(both(src), (48, 48));
    }

    #[test]
    fn division_by_zero_traps_in_both() {
        assert!(run_unboxed("(div 1 0)").is_err());
        assert!(run_boxed("(div 1 0)").is_err());
    }

    #[test]
    fn vector_bounds_trap_in_both() {
        assert!(run_unboxed("(vec-ref (make-vector 2 0) 9)").is_err());
        assert!(run_boxed("(vec-ref (make-vector 2 0) 9)").is_err());
    }

    #[test]
    fn deep_nontail_recursion_hits_depth_limit_not_host_stack() {
        // sum is NOT tail recursive: the + happens after the recursive call.
        let src = "(define sum (lambda (n) (if (= n 0) 0 (+ n (sum (- n 1))))))
                    (sum 200000)";
        let err = run_unboxed(src).unwrap_err();
        assert!(err.to_string().contains("call depth"));
    }

    #[test]
    fn tail_recursion_runs_in_constant_stack_space() {
        // spin IS tail recursive: two million iterations, no depth limit.
        let src = "(define spin (lambda (n) (if (= n 0) 42 (spin (- n 1)))))
                    (spin 2000000)";
        assert_eq!(run_unboxed(src).unwrap(), 42);
        assert_eq!(run_boxed(src).unwrap(), 42);
    }

    #[test]
    fn fuel_traps_runaway_loops_but_spares_terminating_runs() {
        // An infinite tail loop never returns; fuel turns it into a trap.
        let spin = "(define spin (lambda (n) (spin (+ n 1)))) (spin 0)";
        let err = run_fueled(spin, 10_000).unwrap_err();
        assert!(err.to_string().contains("fuel exhausted"), "{err}");
        // A terminating program under a generous budget is untouched.
        assert_eq!(run_fueled("(+ 1 (* 2 3))", 10_000).unwrap(), 7);
        // And the unfueled entry points keep their unbounded behavior.
        assert_eq!(run_unboxed("(+ 1 2)").unwrap(), 3);
    }

    #[test]
    fn tail_call_compiles_into_the_bytecode() {
        let bc =
            compile_source("(define spin (lambda (n) (if (= n 0) 0 (spin (- n 1))))) (spin 3)")
                .unwrap();
        let has_tail = bc
            .functions
            .iter()
            .flat_map(|f| &f.code)
            .any(|i| matches!(i, crate::bytecode::Instr::TailCall(_)));
        assert!(has_tail, "{}", bc.disassemble());
    }

    #[test]
    fn tail_calls_between_different_functions_work() {
        // f tail-calls g with different arity/locals: frame reshaping.
        let src = "(define g (lambda (a b) (+ a b)))
                   (define f (lambda (x) (g x (* x 10))))
                   (f 4)";
        assert_eq!(run_unboxed(src).unwrap(), 44);
        assert_eq!(run_boxed(src).unwrap(), 44);
    }

    #[test]
    fn boxed_rep_counts_allocations_unboxed_does_not() {
        let bc = compile_source("(+ 1 (+ 2 3))").unwrap();
        let reg = NativeRegistry::new();
        let mut vu = Vm::<Unboxed>::new(&bc, &reg).unwrap();
        vu.run().unwrap();
        assert_eq!(vu.stats.value_allocations, 0);
        let mut vb = Vm::<Boxed>::new(&bc, &reg).unwrap();
        vb.run().unwrap();
        assert!(
            vb.stats.value_allocations >= 5,
            "3 consts + 2 sums allocate"
        );
    }

    #[test]
    fn native_calls_work_in_both_reps() {
        let p = parse_program("(host-add (host-sum-to 10) 5)").unwrap();
        let bc = compile_program_with_natives(&p, &[("host-add", 2), ("host-sum-to", 1)]).unwrap();
        let reg = NativeRegistry::with_defaults();
        assert_eq!(
            Vm::<Unboxed>::new(&bc, &reg).unwrap().run_int().unwrap(),
            60
        );
        assert_eq!(Vm::<Boxed>::new(&bc, &reg).unwrap().run_int().unwrap(), 60);
    }

    #[test]
    fn missing_native_is_rejected_at_vm_construction() {
        let p = parse_program("(ghost 1)").unwrap();
        let bc = compile_program_with_natives(&p, &[("ghost", 1)]).unwrap();
        assert!(Vm::<Unboxed>::new(&bc, &NativeRegistry::new()).is_err());
    }

    #[test]
    fn instruction_counts_are_reported() {
        let bc = compile_source("(+ 1 2)").unwrap();
        let mut vm = Vm::<Unboxed>::new(&bc, &NativeRegistry::new()).unwrap();
        vm.run().unwrap();
        assert_eq!(vm.stats.instructions, 4, "const const add ret");
    }

    #[test]
    fn higher_order_and_transitive_captures() {
        let src = "(let ((a 100))
                     (let ((outer (lambda (x) (lambda (y) (+ (+ x y) a)))))
                       ((outer 10) 1)))";
        assert_eq!(both(src), (111, 111));
    }

    #[test]
    fn vm_agrees_with_interpreter_on_corpus() {
        let corpus = [
            "(+ 1 2)",
            "(if (> 2 1) (* 3 3) 0)",
            "(let ((x 5)) (begin (set! x (* x x)) x))",
            "(define dbl (lambda (x) (* 2 x))) (dbl (dbl 7))",
            "(let ((v (make-vector 3 7))) (+ (vec-ref v 1) (vec-len v)))",
            "(let ((i 0)) (begin (while (< i 7) (set! i (+ i 1))) i))",
            "(define half (lambda (n) (div n 2)))
             (define quarter (lambda (n) (half (half n))))
             (quarter 100)",
            "(mod (* 13 17) 10)",
        ];
        for src in corpus {
            let expected = match crate::interp::run_source(src) {
                Ok(crate::interp::Value::Int(n)) => n,
                Ok(other) => panic!("corpus programs return ints, got {other}"),
                Err(e) => panic!("interpreter failed on {src}: {e}"),
            };
            assert_eq!(
                run_unboxed(src).unwrap(),
                expected,
                "unboxed vs interp: {src}"
            );
            assert_eq!(run_boxed(src).unwrap(), expected, "boxed vs interp: {src}");
        }
    }
}
