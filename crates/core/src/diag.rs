//! Diagnostics: source spans and the unified error type.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Start byte offset.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both inputs.
    #[must_use]
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Any error produced by the BitC pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitcError {
    /// Lexical error.
    Lex {
        /// Where.
        span: Span,
        /// What went wrong.
        message: String,
    },
    /// Syntactic error.
    Parse {
        /// Where.
        span: Span,
        /// What went wrong.
        message: String,
    },
    /// Type error.
    Type {
        /// What went wrong.
        message: String,
    },
    /// Compilation error (scope resolution, arity).
    Compile {
        /// What went wrong.
        message: String,
    },
    /// Runtime error raised by the interpreter or VM.
    Runtime {
        /// What went wrong.
        message: String,
    },
}

impl BitcError {
    /// Constructs a type error.
    #[must_use]
    pub fn type_error(message: impl Into<String>) -> Self {
        BitcError::Type {
            message: message.into(),
        }
    }

    /// Constructs a runtime error.
    #[must_use]
    pub fn runtime(message: impl Into<String>) -> Self {
        BitcError::Runtime {
            message: message.into(),
        }
    }

    /// Constructs a compile error.
    #[must_use]
    pub fn compile(message: impl Into<String>) -> Self {
        BitcError::Compile {
            message: message.into(),
        }
    }
}

impl fmt::Display for BitcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitcError::Lex { span, message } => write!(f, "lex error at {span}: {message}"),
            BitcError::Parse { span, message } => write!(f, "parse error at {span}: {message}"),
            BitcError::Type { message } => write!(f, "type error: {message}"),
            BitcError::Compile { message } => write!(f, "compile error: {message}"),
            BitcError::Runtime { message } => write!(f, "runtime error: {message}"),
        }
    }
}

impl std::error::Error for BitcError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BitcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_merge_to_cover_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
    }

    #[test]
    fn errors_render_their_kind() {
        let e = BitcError::type_error("expected int, found bool");
        assert_eq!(e.to_string(), "type error: expected int, found bool");
        let e = BitcError::Parse {
            span: Span::new(1, 2),
            message: "unbalanced paren".into(),
        };
        assert!(e.to_string().contains("1..2"));
    }
}
