//! Hindley–Milner type inference (Algorithm W) with the value restriction.
//!
//! BitC's pitch — and this reproduction's — is that an ML-strength type
//! system can coexist with mutation and unboxed data. The checker therefore
//! supports `set!`, mutable vectors, and `while`, and applies the standard
//! *value restriction*: only syntactic values generalize at `let`, which
//! keeps polymorphism sound in the presence of mutation.

use crate::ast::{Expr, Program};
use crate::diag::{BitcError, Result};
use crate::types::{Scheme, Subst, Type};
use std::collections::HashMap;

/// Inference context: environment, substitution, fresh-variable counter.
#[derive(Debug, Default)]
pub struct Inferencer {
    subst: Subst,
    fresh: u32,
}

type Env = HashMap<String, Scheme>;

impl Inferencer {
    /// Creates an empty inference context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_var(&mut self) -> Type {
        self.fresh += 1;
        Type::Var(self.fresh - 1)
    }

    fn instantiate(&mut self, scheme: &Scheme) -> Type {
        let mut mapping = HashMap::new();
        for &v in &scheme.vars {
            mapping.insert(v, self.fresh_var());
        }
        fn walk(t: &Type, mapping: &HashMap<u32, Type>) -> Type {
            match t {
                Type::Var(v) => mapping.get(v).cloned().unwrap_or(Type::Var(*v)),
                Type::Fn(args, ret) => Type::Fn(
                    args.iter().map(|a| walk(a, mapping)).collect(),
                    Box::new(walk(ret, mapping)),
                ),
                Type::Vector(inner) => Type::Vector(Box::new(walk(inner, mapping))),
                other => other.clone(),
            }
        }
        walk(&scheme.ty, &mapping)
    }

    fn generalize(&self, env: &Env, t: &Type) -> Scheme {
        let t = self.subst.apply(t);
        let mut type_vars = Vec::new();
        t.free_vars(&mut type_vars);
        let mut env_vars = Vec::new();
        for scheme in env.values() {
            let applied = self.subst.apply(&scheme.ty);
            applied.free_vars(&mut env_vars);
        }
        let vars: Vec<u32> = type_vars
            .into_iter()
            .filter(|v| !env_vars.contains(v))
            .collect();
        Scheme { vars, ty: t }
    }

    /// Primitive operator type.
    fn primitive_type(&mut self, name: &str) -> Option<Type> {
        let int2int = || Type::Fn(vec![Type::Int, Type::Int], Box::new(Type::Int));
        let int2bool = || Type::Fn(vec![Type::Int, Type::Int], Box::new(Type::Bool));
        let bool2bool = || Type::Fn(vec![Type::Bool, Type::Bool], Box::new(Type::Bool));
        match name {
            "+" | "-" | "*" | "div" | "mod" => Some(int2int()),
            "<" | "<=" | ">" | ">=" | "=" | "!=" => Some(int2bool()),
            "and" | "or" => Some(bool2bool()),
            "not" => Some(Type::Fn(vec![Type::Bool], Box::new(Type::Bool))),
            _ => None,
        }
    }

    /// Infers the type of `e` under `env`.
    ///
    /// # Errors
    ///
    /// Returns [`BitcError::Type`] on any type violation.
    pub fn infer(&mut self, env: &Env, e: &Expr) -> Result<Type> {
        match e {
            Expr::Int(_) => Ok(Type::Int),
            Expr::Bool(_) => Ok(Type::Bool),
            Expr::Unit => Ok(Type::Unit),
            Expr::Var(name) => {
                if let Some(scheme) = env.get(name) {
                    Ok(self.instantiate(&scheme.clone()))
                } else if let Some(t) = self.primitive_type(name) {
                    Ok(t)
                } else {
                    Err(BitcError::type_error(format!("unbound variable {name}")))
                }
            }
            Expr::If(c, t, f) => {
                let ct = self.infer(env, c)?;
                self.subst.unify(&ct, &Type::Bool).map_err(|e| {
                    BitcError::type_error(format!("if condition must be bool: {e}"))
                })?;
                let tt = self.infer(env, t)?;
                let ft = self.infer(env, f)?;
                self.subst.unify(&tt, &ft)?;
                Ok(tt)
            }
            Expr::Let(bindings, body) => {
                let mut extended = env.clone();
                for (name, bound) in bindings {
                    let bt = self.infer(env, bound)?;
                    // Value restriction: only syntactic values generalize.
                    let scheme = if is_syntactic_value(bound) {
                        self.generalize(env, &bt)
                    } else {
                        Scheme::mono(self.subst.apply(&bt))
                    };
                    extended.insert(name.clone(), scheme);
                }
                self.infer(&extended, body)
            }
            Expr::Lambda(params, body) => {
                let mut extended = env.clone();
                let mut arg_types = Vec::new();
                for p in params {
                    let t = self.fresh_var();
                    extended.insert(p.clone(), Scheme::mono(t.clone()));
                    arg_types.push(t);
                }
                let ret = self.infer(&extended, body)?;
                Ok(Type::Fn(arg_types, Box::new(ret)))
            }
            Expr::Apply(head, args) => {
                let ft = self.infer(env, head)?;
                let mut arg_types = Vec::new();
                for a in args {
                    arg_types.push(self.infer(env, a)?);
                }
                let ret = self.fresh_var();
                self.subst
                    .unify(&ft, &Type::Fn(arg_types, Box::new(ret.clone())))?;
                Ok(ret)
            }
            Expr::Begin(es) => {
                let mut last = Type::Unit;
                for e in es {
                    last = self.infer(env, e)?;
                }
                Ok(last)
            }
            Expr::SetBang(name, value) => {
                let Some(scheme) = env.get(name).cloned() else {
                    return Err(BitcError::type_error(format!(
                        "set! of unbound variable {name}"
                    )));
                };
                if !scheme.vars.is_empty() {
                    return Err(BitcError::type_error(format!(
                        "set! of polymorphic binding {name} is not allowed"
                    )));
                }
                let vt = self.infer(env, value)?;
                self.subst.unify(&scheme.ty, &vt)?;
                Ok(Type::Unit)
            }
            Expr::While(cond, body) => {
                let ct = self.infer(env, cond)?;
                self.subst.unify(&ct, &Type::Bool).map_err(|e| {
                    BitcError::type_error(format!("while condition must be bool: {e}"))
                })?;
                for e in body {
                    self.infer(env, e)?;
                }
                Ok(Type::Unit)
            }
            Expr::MakeVector(n, init) => {
                let nt = self.infer(env, n)?;
                self.subst.unify(&nt, &Type::Int)?;
                let it = self.infer(env, init)?;
                Ok(Type::Vector(Box::new(it)))
            }
            Expr::VectorRef(v, i) => {
                let vt = self.infer(env, v)?;
                let it = self.infer(env, i)?;
                self.subst.unify(&it, &Type::Int)?;
                let elem = self.fresh_var();
                self.subst
                    .unify(&vt, &Type::Vector(Box::new(elem.clone())))?;
                Ok(elem)
            }
            Expr::VectorSet(v, i, x) => {
                let vt = self.infer(env, v)?;
                let it = self.infer(env, i)?;
                self.subst.unify(&it, &Type::Int)?;
                let xt = self.infer(env, x)?;
                self.subst.unify(&vt, &Type::Vector(Box::new(xt)))?;
                Ok(Type::Unit)
            }
            Expr::VectorLen(v) => {
                let vt = self.infer(env, v)?;
                let elem = self.fresh_var();
                self.subst.unify(&vt, &Type::Vector(Box::new(elem)))?;
                Ok(Type::Int)
            }
        }
    }

    /// Applies the final substitution (for rendering inferred types).
    #[must_use]
    pub fn finalize(&self, t: &Type) -> Type {
        self.subst.apply(t)
    }
}

fn is_syntactic_value(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Int(_) | Expr::Bool(_) | Expr::Unit | Expr::Var(_) | Expr::Lambda(_, _)
    )
}

/// Result of typechecking a whole program.
#[derive(Debug, Clone)]
pub struct TypedProgram {
    /// Inferred scheme of each top-level definition, in order.
    pub def_types: Vec<(String, Scheme)>,
    /// Type of the main expression.
    pub main_type: Type,
}

/// Typechecks a program: definitions may be recursive (each sees itself at a
/// monomorphic type while being checked, then generalizes).
///
/// # Errors
///
/// Returns the first type error found.
pub fn infer_program(p: &Program) -> Result<TypedProgram> {
    let mut inf = Inferencer::new();
    let mut env: Env = HashMap::new();
    let mut def_types = Vec::new();
    for def in &p.defs {
        let assumed = inf.fresh_var();
        let mut rec_env = env.clone();
        rec_env.insert(def.name.clone(), Scheme::mono(assumed.clone()));
        let actual = inf.infer(&rec_env, &def.expr)?;
        inf.subst.unify(&assumed, &actual)?;
        let scheme = if is_syntactic_value(&def.expr) {
            inf.generalize(&env, &actual)
        } else {
            Scheme::mono(inf.finalize(&actual))
        };
        env.insert(def.name.clone(), scheme.clone());
        def_types.push((def.name.clone(), scheme));
    }
    let main_type = inf.infer(&env, &p.main)?;
    Ok(TypedProgram {
        def_types,
        main_type: inf.finalize(&main_type),
    })
}

/// Typechecks a single expression with no definitions in scope.
///
/// # Errors
///
/// Returns the first type error found.
pub fn infer_expr(e: &Expr) -> Result<Type> {
    let mut inf = Inferencer::new();
    let t = inf.infer(&HashMap::new(), e)?;
    Ok(inf.finalize(&t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn ty(src: &str) -> Result<Type> {
        infer_expr(&parse_expr(src).unwrap())
    }

    #[test]
    fn literals() {
        assert_eq!(ty("42").unwrap(), Type::Int);
        assert_eq!(ty("#t").unwrap(), Type::Bool);
        assert_eq!(ty("(unit)").unwrap(), Type::Unit);
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(ty("(+ 1 2)").unwrap(), Type::Int);
        assert_eq!(ty("(< 1 2)").unwrap(), Type::Bool);
        assert!(ty("(+ 1 #t)").is_err());
    }

    #[test]
    fn if_branches_must_agree() {
        assert_eq!(ty("(if #t 1 2)").unwrap(), Type::Int);
        assert!(ty("(if #t 1 #f)").is_err());
        assert!(ty("(if 1 2 3)").is_err());
    }

    #[test]
    fn lambda_and_application() {
        assert_eq!(ty("((lambda (x) (+ x 1)) 41)").unwrap(), Type::Int);
        assert!(ty("((lambda (x) (+ x 1)) #t)").is_err());
        assert!(ty("((lambda (x y) x) 1)").is_err(), "arity mismatch");
    }

    #[test]
    fn let_polymorphism_works_for_values() {
        // id used at both int and bool.
        let t = ty("(let ((id (lambda (x) x))) (if (id #t) (id 1) (id 2)))").unwrap();
        assert_eq!(t, Type::Int);
    }

    #[test]
    fn value_restriction_blocks_non_value_generalization() {
        // (make-vector 1 ...) is not a syntactic value; its element type must
        // stay monomorphic, so using it at two types fails.
        let r = ty("(let ((v (make-vector 1 (vec-ref (make-vector 1 0) 0))))
                      (begin (vec-set! v 0 1) (vec-len v)))");
        assert!(r.is_ok(), "monomorphic use is fine");
        // A vector created with unknown element type can't serve two types.
        // Construct via lambda to keep elem type open, then misuse:
        let bad = ty("(let ((mk (lambda (x) (make-vector 1 x))))
                        (let ((v (mk 1)))
                          (vec-set! v 0 #t)))");
        assert!(bad.is_err());
    }

    #[test]
    fn mutation_is_type_checked() {
        assert_eq!(ty("(let ((x 1)) (begin (set! x 2) x))").unwrap(), Type::Int);
        assert!(ty("(let ((x 1)) (set! x #t))").is_err());
        assert!(ty("(set! nope 1)").is_err());
    }

    #[test]
    fn while_requires_bool_condition() {
        assert_eq!(
            ty("(let ((i 0)) (while (< i 3) (set! i (+ i 1))))").unwrap(),
            Type::Unit
        );
        assert!(ty("(while 1 2)").is_err());
    }

    #[test]
    fn vectors_are_homogeneous() {
        assert_eq!(
            ty("(make-vector 3 0)").unwrap(),
            Type::Vector(Box::new(Type::Int))
        );
        assert_eq!(ty("(vec-ref (make-vector 3 #t) 0)").unwrap(), Type::Bool);
        assert!(ty("(vec-set! (make-vector 3 0) 0 #f)").is_err());
        assert!(ty("(vec-ref 5 0)").is_err());
    }

    #[test]
    fn unbound_variables_are_reported() {
        let err = ty("undefined-thing").unwrap_err();
        assert!(err.to_string().contains("unbound variable undefined-thing"));
    }

    #[test]
    fn recursive_definitions_typecheck() {
        let p = parse_program(
            "(define fact (lambda (n) (if (<= n 1) 1 (* n (fact (- n 1))))))
             (fact 10)",
        )
        .unwrap();
        let tp = infer_program(&p).unwrap();
        assert_eq!(tp.main_type, Type::Int);
        assert_eq!(tp.def_types[0].1.ty.to_string(), "(int) -> int");
    }

    #[test]
    fn mutual_recursion_via_forward_monotype_fails_gracefully() {
        // Later defs can use earlier ones; a def cannot use a later one.
        let p = parse_program("(define f (lambda (x) (g x))) (define g (lambda (x) x)) (f 1)");
        assert!(infer_program(&p.unwrap()).is_err());
    }

    #[test]
    fn polymorphic_definition_generalizes() {
        let p = parse_program("(define id (lambda (x) x)) (if (id #t) (id 1) (id 2))").unwrap();
        let tp = infer_program(&p).unwrap();
        assert_eq!(tp.main_type, Type::Int);
        assert!(!tp.def_types[0].1.vars.is_empty(), "id must be polymorphic");
    }

    #[test]
    fn higher_order_functions_infer() {
        let t = ty("(let ((twice (lambda (f x) (f (f x)))))
                      (twice (lambda (n) (* n 2)) 3))")
        .unwrap();
        assert_eq!(t, Type::Int);
    }

    #[test]
    fn occurs_check_fires_on_self_application() {
        assert!(ty("(lambda (x) (x x))").is_err());
    }
}
